//! Minimal, dependency-free stand-in for the `criterion` benchmark crate.
//!
//! The workspace's benches were written against the real `criterion` API,
//! but this build environment has no network access to crates.io. This shim
//! provides the subset those benches use — `Criterion::benchmark_group`,
//! `BenchmarkGroup::{throughput, sample_size, bench_function, finish}`,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! mean-over-N-samples timer instead of criterion's statistical engine.
//!
//! Each benchmark prints one line:
//!
//! ```text
//! encode/proposed/256      time: 12.345 ms/iter   thrpt: 5.31 Melem/s
//! ```

#![forbid(unsafe_code)]

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Units for reporting throughput alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// A benchmark label, `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_id: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_id}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Runs the timed closure; handed to `bench_function` callbacks.
pub struct Bencher {
    samples: u64,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`: one untimed warm-up call, then `samples` timed calls.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.total += start.elapsed();
        self.iters += self.samples;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration workload used for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(1) as u64;
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.total / b.iters as u32
        };
        let label = format!("{}/{}", self.name, id.id);
        let thrpt = match (self.throughput, per_iter.as_secs_f64()) {
            (Some(Throughput::Elements(n)), s) if s > 0.0 => {
                format!("   thrpt: {:>8.2} Melem/s", n as f64 / s / 1e6)
            }
            (Some(Throughput::Bytes(n)), s) if s > 0.0 => {
                format!("   thrpt: {:>8.2} MiB/s", n as f64 / s / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!(
            "{label:<40} time: {:>10.3} ms/iter{thrpt}",
            per_iter.as_secs_f64() * 1e3
        );
        self
    }

    /// Ends the group (spacing only; kept for API compatibility).
    pub fn finish(self) {
        println!();
    }
}

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- {name} --");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
            sample_size: 10,
        }
    }
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups (ignores harness CLI flags).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(1000));
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        g.finish();
        // one warm-up + three timed samples
        assert_eq!(runs, 4);
    }
}
