//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace's property tests were written against the real `proptest`
//! API, but this build environment has no network access to crates.io, so
//! this vendored shim provides the subset the tests use:
//!
//! * [`Strategy`] with `prop_map` / `prop_flat_map`,
//! * range strategies (`0u32..100`, `-5i32..=5`, `0.0f64..1.0`),
//! * [`any`] for primitive types, [`Just`], tuple strategies,
//! * [`collection::vec`] with exact or ranged lengths,
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assert_ne!`] macros.
//!
//! Unlike the real crate it does no shrinking: failures report the seed and
//! case number instead. Generation is fully deterministic — the RNG is
//! seeded from the test's name — so failures reproduce exactly. Set
//! `PROPTEST_CASES` to change the number of cases per test (default 64).

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Number of generated cases per property, from `PROPTEST_CASES` (default 64).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic RNG seeded from a test name (FNV-1a over the name).
pub fn rng_for(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng(h | 1)
}

/// SplitMix64 pseudo-random generator — small, fast, deterministic.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u128) -> u128 {
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        wide % n
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test values — the shim's version of proptest's trait.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types that can be drawn uniformly from a range.
pub trait UniformSample: Copy {
    /// Uniform sample from `[lo, hi)`.
    fn from_range(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn from_range_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn from_range(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as u128) - (lo as u128);
                lo + rng.below(span) as $t
            }
            fn from_range_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

macro_rules! uniform_signed {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn from_range(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                let span = ((hi as i128) - (lo as i128)) as u128;
                ((lo as i128) + rng.below(span) as i128) as $t
            }
            fn from_range_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range");
                let span = ((hi as i128) - (lo as i128)) as u128 + 1;
                ((lo as i128) + rng.below(span) as i128) as $t
            }
        }
    )*};
}

uniform_unsigned!(u8, u16, u32, u64, usize);
uniform_signed!(i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn from_range(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range");
        lo + rng.unit_f64() * (hi - lo)
    }
    fn from_range_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
        Self::from_range(rng, lo, hi)
    }
}

impl<T: UniformSample> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::from_range(rng, self.start, self.end)
    }
}

impl<T: UniformSample> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::from_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Produces arbitrary values of a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length specification: exact, half-open, or inclusive.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u128;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Generates vectors of values from `elem` with a length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Defines deterministic property tests with `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases();
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cases {
                    let _ = case;
                    $(let $p = $crate::Strategy::generate(&($s), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The glob-importable API surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng_for("ranges");
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (-5i32..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
            let f = (1.0f64..2.0).generate(&mut rng);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = collection::vec(any::<u8>(), 0..64);
        let a: Vec<Vec<u8>> = {
            let mut rng = rng_for("det");
            (0..10).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<Vec<u8>> = {
            let mut rng = rng_for("det");
            (0..10).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn exact_vec_lengths() {
        let mut rng = rng_for("exact");
        let v = collection::vec(any::<bool>(), 12).generate(&mut rng);
        assert_eq!(v.len(), 12);
    }

    proptest! {
        /// The macro itself: bindings, tuples, maps and flat maps.
        #[test]
        fn macro_smoke(x in 0u8..200, (a, b) in (0u32..10, Just(7u32)),
                       v in collection::vec(any::<u8>(), 0..9)) {
            prop_assert!(x < 200);
            prop_assert!(a < 10);
            prop_assert_eq!(b, 7);
            prop_assert!(v.len() < 9);
        }

        #[test]
        fn flat_map_dependent_values(
            (n, k) in (1usize..20).prop_flat_map(|n| (Just(n), 0usize..n)),
        ) {
            prop_assert!(k < n);
        }
    }
}
