//! Satellite downlink scenario — the paper's motivating application.
//!
//! The work was done with ESA's On-Board Payload Data Processing section:
//! an imaging satellite must compress pushbroom strips losslessly in real
//! time before downlinking them through a constrained channel. This
//! example models that pipeline end to end:
//!
//! 1. acquire a wide image strip (synthetic terrain),
//! 2. compress each scan block with the hardware-amenable codec,
//! 3. check the real-time budget with the cycle-accurate pipeline model at
//!    the paper's 123 MHz clock,
//! 4. size the downlink saving.
//!
//! Run with: `cargo run --release --example satellite_downlink`

use cbic::core::{decode_raw, encode_raw, CodecConfig};
use cbic::hw::pipeline::{PipelineConfig, PixelTrace};
use cbic::image::{synth, Image};

/// Synthesizes one pushbroom strip of terrain: ridged relief, a river
/// meander, and agricultural field blocks.
fn terrain_strip(width: usize, height: usize, seed: u64) -> Image {
    Image::from_fn(width, height, |xi, yi| {
        let (x, y) = (xi as f64, yi as f64);
        // Relief: ridged multi-octave noise.
        let relief = 110.0 + 70.0 * synth::fbm(seed, x, y, 90.0, 4, 0.55).abs();
        // River: dark meandering band.
        let meander = 0.25 * (x / 60.0).sin() + 0.1 * (x / 17.0).sin();
        let river_d = (y / height as f64 - 0.5 - meander).abs() * height as f64;
        let river = if river_d < 6.0 {
            -60.0 * (1.0 - river_d / 6.0)
        } else {
            0.0
        };
        // Fields: rectangular tonal patches on one bank.
        let field = if y / height as f64 > 0.65 {
            18.0 * synth::lattice(seed ^ 0xF1E1D, (xi / 48) as i64, (yi / 24) as i64) - 9.0
        } else {
            0.0
        };
        let texture = 6.0 * synth::fbm(seed + 7, x, y, 4.0, 2, 0.6);
        let noise = 2.2 * synth::gauss(seed, xi as i64, yi as i64);
        synth::quantize(relief + river + field + texture + noise)
    })
}

fn main() {
    // A 2048-wide strip, processed as 512-line blocks (the on-board core
    // buffers 3 lines at a time; blocks bound the latency of a retransmit).
    const WIDTH: usize = 2048;
    const BLOCK_LINES: usize = 512;
    const BLOCKS: usize = 3;

    let cfg = CodecConfig::default();
    let pipeline = PipelineConfig::default();

    let mut raw_bits = 0u64;
    let mut coded_bits = 0u64;
    let mut worst_block_bpp = 0.0f64;
    let mut total_cycles = 0u64;

    println!("block  size          bpp     ratio   cycles      wall@123MHz");
    for b in 0..BLOCKS {
        let strip = terrain_strip(WIDTH, BLOCK_LINES, 0xE5A + b as u64);
        let (payload, stats) = encode_raw(strip.view(), &cfg);

        // Losslessness is non-negotiable for science data: verify.
        let back = decode_raw(&payload, WIDTH, BLOCK_LINES, 8, &cfg);
        assert_eq!(back, strip, "downlink block {b} must decode losslessly");

        // Real-time check against the paper's clock.
        let trace = PixelTrace::uniform(WIDTH, BLOCK_LINES, 9);
        let report = pipeline.simulate(&trace);

        raw_bits += stats.pixels * 8;
        coded_bits += stats.payload_bits;
        worst_block_bpp = worst_block_bpp.max(stats.bits_per_pixel());
        total_cycles += report.cycles;

        println!(
            "{b:>5}  {WIDTH}x{BLOCK_LINES}  {:>8.3}  {:>7.2}  {:>9}  {:>8.1} ms",
            stats.bits_per_pixel(),
            8.0 / stats.bits_per_pixel(),
            report.cycles,
            report.cycles as f64 / 123.0e6 * 1e3,
        );
    }

    let ratio = raw_bits as f64 / coded_bits as f64;
    println!("\ndownlink summary:");
    println!(
        "  {:.2} MB raw -> {:.2} MB coded (ratio {ratio:.2}, worst block {worst_block_bpp:.3} bpp)",
        raw_bits as f64 / 8e6,
        coded_bits as f64 / 8e6,
    );
    let seconds = total_cycles as f64 / 123.0e6;
    let mpix = (WIDTH * BLOCK_LINES * BLOCKS) as f64 / 1e6;
    println!(
        "  on-board encode time at 123 MHz: {:.1} ms for {mpix:.1} Mpixel \
         ({:.1} Mpixel/s sustained)",
        seconds * 1e3,
        mpix / seconds
    );
    println!(
        "  channel time saved on a 10 Mbit/s downlink: {:.1} s per pass",
        (raw_bits - coded_bits) as f64 / 10.0e6
    );
}
