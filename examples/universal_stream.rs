//! The Fig. 1 universal compressor on a converged downlink stream.
//!
//! The paper's motivation: "the current trend of network convergence where
//! visual and general data are transmitted along the same physical
//! channel ... suggests a technology capable of fast adaptation to the
//! nature of the data". This example multiplexes telemetry text, a still
//! image, and a short video clip through the universal codec and shows the
//! dispatcher reconfiguring the modeling front end per chunk.
//!
//! Run with: `cargo run --release --example universal_stream`

use cbic::image::corpus::CorpusImage;
use cbic::universal::dispatch::{Chunk, ChunkReport, UniversalCodec};
use cbic::universal::video::synthetic_sequence;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A plausible spacecraft downlink: housekeeping logs, a camera frame,
    // a short observation clip, then more logs.
    let telemetry: Vec<u8> = (0..400)
        .flat_map(|i| {
            format!(
                "T+{:06}s bus_v=27.{:02} temp_c={:+03} wheel_rpm={:04} mode=NOMINAL\n",
                i * 10,
                (i * 7) % 100,
                (i * 13 % 61) as i64 - 30,
                3000 + (i * 37) % 500
            )
            .into_bytes()
        })
        .collect();
    let still = CorpusImage::Goldhill.generate(256, 256);
    let clip = synthetic_sequence(96, 96, 6, 2, 1);
    let trailer = b"EOF checksum=0xDEADBEEF status=complete\n".repeat(40);

    let chunks = vec![
        Chunk::Data(telemetry.clone()),
        Chunk::Image(still.clone()),
        Chunk::Video(clip.clone()),
        Chunk::Data(trailer.to_vec()),
    ];
    let raw_size: usize =
        telemetry.len() + still.pixel_count() + clip.len() * clip[0].pixel_count() + trailer.len();

    let codec = UniversalCodec::default();
    let (bytes, reports) = codec.encode_with_report(&chunks);

    println!(
        "universal stream: {} chunks, {} KB raw",
        chunks.len(),
        raw_size / 1024
    );
    println!("\nchunk  front-end        detail");
    for (i, report) in reports.iter().enumerate() {
        match report {
            ChunkReport::Data(s) => println!(
                "{i:>5}  data model       {} bytes at {:.2} bits/byte ({} escapes)",
                s.bytes,
                s.bits_per_byte(),
                s.escapes
            ),
            ChunkReport::Image(bits) => println!(
                "{i:>5}  image model      {:.3} bpp (context modeling + arithmetic coding)",
                *bits as f64 / still.pixel_count() as f64
            ),
            ChunkReport::Video(s) => println!(
                "{i:>5}  video model      {} frames, {} intra, {:.3} bpp \
                 (motion estimation + predictive coding)",
                s.frames,
                s.intra_frames,
                s.bits_per_pixel()
            ),
        }
    }

    // Verify the multiplexed container decodes exactly.
    let decoded = codec.decode(&bytes)?;
    assert_eq!(decoded, chunks, "universal roundtrip must be lossless");

    println!(
        "\ncontainer: {} KB -> overall ratio {:.2} (lossless, all chunks verified)",
        bytes.len() / 1024,
        raw_size as f64 / bytes.len() as f64
    );
    Ok(())
}
