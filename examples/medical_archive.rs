//! Tele-medicine archive scenario — the paper's second motivating
//! application ("lossless image compression is increasingly significant
//! since it is required by many upcoming applications, such as
//! Tele-medicine").
//!
//! A radiology archive must store scans *bit-exactly* (lossy artifacts are
//! diagnostically unacceptable and often legally prohibited), yet fit as
//! many studies as possible on its storage tier. This example:
//!
//! 1. synthesizes a small study of CT-slice-like images,
//! 2. archives them with all four Table 1 codecs,
//! 3. verifies every slice decodes bit-exactly (a checksum audit, as an
//!    archive integrity pass would do),
//! 4. reports the capacity gained over raw storage.
//!
//! Run with: `cargo run --release --example medical_archive`

use cbic::core::CodecConfig;
use cbic::image::{synth, Image};

/// Synthesizes a CT-slice-like image: an elliptical body outline, organ
/// blobs, fine parenchymal texture, and scanner noise, on a black air
/// background.
fn ct_slice(size: usize, z: u64) -> Image {
    let s = size as f64;
    Image::from_fn(size, size, |xi, yi| {
        let (x, y) = (xi as f64 / s - 0.5, yi as f64 / s - 0.5);
        let r = (x * x * 1.6 + y * y * 2.4).sqrt();
        if r > 0.46 {
            // Air: near-black with faint detector noise.
            return synth::quantize(4.0 + 1.2 * synth::gauss(z, xi as i64, yi as i64));
        }
        let body = 95.0 + 25.0 * synth::fbm(z, xi as f64, yi as f64, 40.0, 3, 0.5);
        // Organ blobs vary slowly across slices (z enters the seed).
        let organ = 45.0 * synth::soft_disk(x, y, -0.10, 0.02 + z as f64 * 0.004, 0.16, 0.05)
            + 30.0 * synth::soft_disk(x, y, 0.14, -0.05, 0.12, 0.04);
        // Bone: bright rim.
        let rim = if r > 0.40 {
            90.0 * ((r - 0.40) / 0.06)
        } else {
            0.0
        };
        let texture = 7.0 * synth::fbm(z + 13, xi as f64, yi as f64, 5.0, 2, 0.6);
        let noise = 2.0 * synth::gauss(z ^ 0xC7, xi as i64, yi as i64);
        synth::quantize(body + organ + rim + texture + noise)
    })
}

/// FNV-1a over pixel data — the archive's integrity checksum.
fn checksum(img: &Image) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &p in img.samples() {
        h ^= u64::from(p);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn main() {
    const SLICES: usize = 8;
    const SIZE: usize = 384;

    let study: Vec<Image> = (0..SLICES).map(|z| ct_slice(SIZE, z as u64)).collect();
    let raw_bytes = SLICES * SIZE * SIZE;
    println!(
        "study: {SLICES} slices of {SIZE}x{SIZE} = {} KB raw",
        raw_bytes / 1024
    );

    // Archive with each codec and audit bit-exactness via checksums.
    let mut results: Vec<(&str, usize)> = Vec::new();

    let mut proposed_total = 0usize;
    for img in &study {
        let bytes = cbic::core::compress(img.view(), &CodecConfig::default());
        let restored = cbic::core::decompress(&bytes).expect("valid container");
        assert_eq!(checksum(&restored), checksum(img), "audit failure");
        proposed_total += bytes.len();
    }
    results.push(("proposed (SOCC 2007)", proposed_total));

    let mut calic_total = 0usize;
    for img in &study {
        let bytes = cbic::calic::compress(img.view());
        assert_eq!(
            checksum(&cbic::calic::decompress(&bytes).expect("valid")),
            checksum(img)
        );
        calic_total += bytes.len();
    }
    results.push(("CALIC", calic_total));

    let mut jpegls_total = 0usize;
    for img in &study {
        let bytes = cbic::jpegls::compress(img.view(), &cbic::jpegls::JpeglsConfig::default());
        assert_eq!(
            checksum(&cbic::jpegls::decompress(&bytes).expect("valid")),
            checksum(img)
        );
        jpegls_total += bytes.len();
    }
    results.push(("JPEG-LS", jpegls_total));

    let mut slp_total = 0usize;
    for img in &study {
        let bytes = cbic::slp::compress(img.view());
        assert_eq!(
            checksum(&cbic::slp::decompress(&bytes).expect("valid")),
            checksum(img)
        );
        slp_total += bytes.len();
    }
    results.push(("SLP(M0)", slp_total));

    println!(
        "\nall {} slices audited bit-exact under every codec\n",
        SLICES
    );
    println!(
        "{:<22} {:>10} {:>8} {:>14}",
        "codec", "archive", "ratio", "studies/TB"
    );
    for (name, total) in &results {
        println!(
            "{name:<22} {:>7} KB {:>8.2} {:>14.0}",
            total / 1024,
            raw_bytes as f64 / *total as f64,
            1e12 / *total as f64
        );
    }
    let (best, best_total) = results.iter().min_by_key(|(_, t)| *t).expect("nonempty");
    println!(
        "\nbest: {best} stores {:.1}x more studies than raw storage",
        raw_bytes as f64 / *best_total as f64
    );
}
