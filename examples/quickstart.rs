//! Quickstart: compress an image, decompress it, verify losslessness, and
//! compare against the order-0 entropy bound.
//!
//! Run with: `cargo run --release --example quickstart`

use cbic::core::{compress, decompress, encode_raw, CodecConfig};
use cbic::image::corpus::CorpusImage;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The synthetic stand-in for the classic 512x512 "lena" test image.
    let img = CorpusImage::Lena.generate(512, 512);
    println!(
        "input: {}x{} pixels, order-0 entropy {:.2} bpp",
        img.width(),
        img.height(),
        img.entropy()
    );

    // One-call API: self-describing container.
    let cfg = CodecConfig::default();
    let bytes = compress(img.view(), &cfg);
    let restored = decompress(&bytes)?;
    assert_eq!(img, restored, "the codec is lossless");

    // The raw API exposes coding statistics.
    let (_, stats) = encode_raw(img.view(), &cfg);
    println!(
        "compressed: {} bytes = {:.3} bpp ({:.1}% of raw, {:.1}% of the \
         order-0 bound)",
        bytes.len(),
        stats.bits_per_pixel(),
        100.0 * stats.bits_per_pixel() / 8.0,
        100.0 * stats.bits_per_pixel() / img.entropy(),
    );
    println!(
        "model activity: {} escapes, {} estimator rescales, {} context halvings",
        stats.escapes, stats.estimator_rescales, stats.context_halvings
    );
    println!(
        "hardware view: {:.1} binary decisions/pixel through the arithmetic coder",
        stats.decisions_per_pixel()
    );

    // Configurations are carried in the container; decoding needs nothing
    // else. Try a 10-bit estimator (more escapes, worse rate):
    let small = CodecConfig {
        estimator: cbic::arith::EstimatorConfig {
            count_bits: 10,
            ..Default::default()
        },
        ..CodecConfig::default()
    };
    let (_, small_stats) = encode_raw(img.view(), &small);
    println!(
        "with 10-bit counters (Fig. 4 left edge): {:.3} bpp, {} escapes",
        small_stats.bits_per_pixel(),
        small_stats.escapes
    );
    Ok(())
}
