//! `cbic` — command-line front end for the workspace codecs.
//!
//! Every codec-facing command is registry-driven: codecs are enumerated
//! from [`cbic::all_codecs`] / [`cbic::default_registry`] and used through
//! `&dyn Codec`, so a codec added to the registry appears in `compress`,
//! `decompress`, `bench`, and `codecs` with no CLI changes.
//!
//! ```text
//! cbic compress   [--codec NAME] [--near N] [--threads N] [--tile WxH] [--model M] IN.pgm OUT
//! cbic decompress [--threads N] IN OUT.pgm   (codec auto-detected)
//! cbic crop       --rect X,Y,W,H [--threads N] IN OUT.pgm  (random-access ROI decode)
//! cbic info       IN                         (describe a compressed container)
//! cbic codecs                                (list registered codecs)
//! cbic corpus     [--size N] OUTDIR          (write the synthetic corpus as PGM)
//! cbic bench      [--iters N] IN.pgm         (bit rate + encode/decode MP/s of all codecs)
//! ```
//!
//! PGM input may be 8-bit (`maxval ≤ 255`) or deep (two big-endian bytes
//! per sample, `maxval ≤ 65535`); the sample depth rides through every
//! codec and back out to PGM. `compress` and `decompress` accept `-` for
//! stdin/stdout and print their status lines to stderr, so containers pipe
//! cleanly: `cbic compress - - < in.pgm | cbic decompress - - > out.pgm`.
//! For the default `proposed` codec both directions run the
//! bounded-memory streaming pipeline (three line buffers, the paper's
//! Fig. 3 constraint), so image size is limited by the format, not by RAM.

use cbic::core::stream::{StreamDecoder, StreamEncoder};
use cbic::core::CodecConfig;
use cbic::image::pgm;
use cbic::{DecodeOptions, EncodeOptions, Parallelism};
use std::io::{BufReader, BufWriter, Read, Write};
use std::process::ExitCode;

/// `println!` that tolerates a closed stdout (e.g. `cbic info … | head`):
/// a broken pipe silently ends the report instead of panicking, while any
/// other write failure (full disk, dead redirect target) still aborts with
/// a nonzero exit so a truncated report cannot look like success.
macro_rules! say {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        if let Err(e) = writeln!(std::io::stdout(), $($arg)*) {
            if e.kind() == std::io::ErrorKind::BrokenPipe {
                std::process::exit(0);
            }
            eprintln!("error: writing to stdout: {e}");
            std::process::exit(1);
        }
    }};
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  cbic compress [--codec NAME] [--near N] [--threads N] [--lanes N] [--tile WxH] \
         [--model classic|wide[:B]] IN.pgm OUT\n  \
         cbic decompress [--threads N] IN OUT.pgm\n  \
         cbic crop --rect X,Y,W,H [--threads N] IN OUT.pgm\n  cbic info IN\n  cbic codecs\n  \
         cbic corpus [--size N] OUTDIR\n  cbic bench [--iters N] IN.pgm\n\
         (compress/decompress accept `-` for stdin/stdout piping; PGM may be 8- or 16-bit;\n \
         --tile writes the seekable tile grid, which `crop` decodes without reading other tiles;\n \
         --model wide[:B] uses the enlarged hash-banked context model with 2^B banks, v5 container)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let r = match cmd.as_str() {
        "compress" => cmd_compress(&args[1..]),
        "decompress" => cmd_decompress(&args[1..]),
        "crop" => cmd_crop(&args[1..]),
        "info" => cmd_info(&args[1..]),
        "codecs" => cmd_codecs(),
        "corpus" => cmd_corpus(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        _ => return usage(),
    };
    match r {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Pulls `--flag value` out of an argument list, returning remaining
/// positional arguments.
fn parse_flags(args: &[String], flags: &[&str]) -> (Vec<(String, String)>, Vec<String>) {
    let mut out = Vec::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if flags.contains(&name) && i + 1 < args.len() {
                out.push((name.to_string(), args[i + 1].clone()));
                i += 2;
                continue;
            }
        }
        positional.push(args[i].clone());
        i += 1;
    }
    (out, positional)
}

fn flag_value<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn parse_threads(flags: &[(String, String)]) -> Result<usize, Box<dyn std::error::Error>> {
    Ok(flag_value(flags, "threads")
        .map(str::parse)
        .transpose()?
        .unwrap_or(0))
}

/// Opens `path` for buffered reading, with `-` meaning stdin.
fn open_input(path: &str) -> std::io::Result<BufReader<Box<dyn Read>>> {
    let inner: Box<dyn Read> = if path == "-" {
        Box::new(std::io::stdin().lock())
    } else {
        Box::new(std::fs::File::open(path)?)
    };
    Ok(BufReader::new(inner))
}

/// Opens `path` for buffered writing, with `-` meaning stdout.
fn open_output(path: &str) -> std::io::Result<BufWriter<Box<dyn Write>>> {
    let inner: Box<dyn Write> = if path == "-" {
        Box::new(std::io::stdout().lock())
    } else {
        Box::new(std::fs::File::create(path)?)
    };
    Ok(BufWriter::new(inner))
}

/// Parses a `--tile WxH` value like `256x256`.
fn parse_tile(value: &str) -> Result<(u32, u32), Box<dyn std::error::Error>> {
    let (w, h) = value
        .split_once(['x', 'X'])
        .ok_or_else(|| format!("--tile wants WxH (e.g. 256x256), got {value}"))?;
    let (w, h): (u32, u32) = (w.trim().parse()?, h.trim().parse()?);
    if w == 0 || h == 0 {
        return Err(format!("--tile {value}: tile dimensions must be nonzero").into());
    }
    Ok((w, h))
}

/// Parses a `--model` value: `classic`, `wide`, or `wide:B` where `B`
/// is the base-2 log of the hash bank count (`4..=16`).
fn parse_model(value: &str) -> Result<cbic::core::ModelMode, Box<dyn std::error::Error>> {
    use cbic::core::ModelMode;
    let model = match value.strip_prefix("wide") {
        None if value == "classic" => ModelMode::Classic,
        Some("") => ModelMode::WideHash {
            banks_log2: cbic::core::bigctx::DEFAULT_BANKS_LOG2,
        },
        Some(rest) if rest.starts_with(':') => ModelMode::WideHash {
            banks_log2: rest[1..].trim().parse()?,
        },
        _ => return Err(format!("--model wants classic or wide[:B], got {value}").into()),
    };
    model
        .validate()
        .map_err(|e| format!("--model {value}: {e}"))?;
    Ok(model)
}

/// Parses a `--rect X,Y,W,H` value like `1024,512,256,256`.
fn parse_rect(value: &str) -> Result<cbic::Rect, Box<dyn std::error::Error>> {
    let parts: Vec<&str> = value.split(',').map(str::trim).collect();
    let [x, y, w, h] = parts.as_slice() else {
        return Err(format!("--rect wants X,Y,W,H (e.g. 1024,512,256,256), got {value}").into());
    };
    Ok(cbic::Rect::new(
        x.parse()?,
        y.parse()?,
        w.parse()?,
        h.parse()?,
    ))
}

fn cmd_compress(args: &[String]) -> CliResult {
    let (flags, pos) = parse_flags(
        args,
        &["codec", "near", "threads", "lanes", "tile", "model"],
    );
    let [input, output] = pos.as_slice() else {
        return Err("compress needs IN.pgm and OUT (either may be `-`)".into());
    };
    let codec_name = flag_value(&flags, "codec").unwrap_or("proposed");
    let near: u8 = flag_value(&flags, "near")
        .map(str::parse)
        .transpose()?
        .unwrap_or(0);
    let threads = parse_threads(&flags)?;
    let lanes: usize = flag_value(&flags, "lanes")
        .map(str::parse)
        .transpose()?
        .unwrap_or(1);
    if lanes == 0 || lanes > cbic::core::MAX_LANES {
        return Err(format!("--lanes {lanes} outside 1..={}", cbic::core::MAX_LANES).into());
    }
    if lanes > 1 && (codec_name != "proposed" && codec_name != "tiled" || near > 0) {
        return Err(
            format!("--lanes applies to the proposed and tiled codecs, not {codec_name}").into(),
        );
    }
    let tile = flag_value(&flags, "tile").map(parse_tile).transpose()?;
    if tile.is_some() && (codec_name != "proposed" || near > 0) {
        return Err(format!("--tile applies to the proposed codec, not {codec_name}").into());
    }
    let model = flag_value(&flags, "model")
        .map(parse_model)
        .transpose()?
        .unwrap_or_default();
    if !model.is_classic() && (codec_name != "proposed" && codec_name != "tiled" || near > 0) {
        return Err(format!(
            "--model wide applies to the proposed and tiled codecs, not {codec_name}"
        )
        .into());
    }

    if let Some((tile_w, tile_h)) = tile {
        // The v4 seekable tile grid: every tile an independently
        // decodable substream, coded on the wavefront scheduler.
        let mut reader = open_input(input)?;
        let mut pgm_bytes = Vec::new();
        reader.read_to_end(&mut pgm_bytes)?;
        let img = pgm::decode(&pgm_bytes)?;
        let opts = EncodeOptions::new()
            .with_tile(tile_w, tile_h)
            .with_lanes(lanes)
            .with_model(model)
            .with_parallelism(Parallelism::from_threads(threads));
        let mut container = Vec::new();
        let stats = cbic::default_registry().expect_name("proposed")?.encode(
            img.view(),
            &opts,
            &mut container,
        )?;
        let mut out = open_output(output)?;
        out.write_all(&container)?;
        out.flush()?;
        let lane_note = if lanes > 1 {
            format!(" x {lanes} lanes")
        } else {
            String::new()
        };
        let model_note = if model.is_classic() {
            String::new()
        } else {
            format!(", {model} model")
        };
        let grid_version = if model.is_classic() { 4 } else { 5 };
        eprintln!(
            "{input}: {} pixels ({}-bit) -> {} bytes ({:.3} bpp) with proposed \
             (v{grid_version} grid, {tile_w}x{tile_h} tiles{lane_note}{model_note}, \
             {threads} threads)",
            stats.pixels,
            img.bit_depth(),
            stats.container_bytes,
            stats.bits_per_pixel()
        );
        return Ok(());
    }

    if codec_name == "proposed" && near == 0 && threads <= 1 {
        // Bounded-memory path: PGM rows flow straight through the
        // three-line-buffer pipeline into the output — neither the image
        // nor the container is ever materialized, so `- -` piping handles
        // images far larger than RAM-friendly buffers. (With --lanes ≥ 2
        // the per-lane substreams buffer until the end, since the v3
        // length table precedes them.)
        return compress_streaming(input, output, lanes, model);
    }

    // Validate every flag combination *before* touching the output path,
    // so a typo cannot truncate an existing output file.
    let registry = cbic::default_registry();
    if threads > 1 {
        if codec_name != "proposed" && codec_name != "tiled" {
            return Err(
                format!("--threads applies to the proposed codec, not {codec_name}").into(),
            );
        }
        if near > 0 {
            return Err("--near (jpegls) cannot be combined with --threads".into());
        }
    } else if near > 0 && codec_name != "jpegls" {
        return Err(format!("--near applies to jpegls, not {codec_name}").into());
    }
    if near == 0 && registry.by_name(codec_name).is_none() {
        return Err(format!(
            "unknown codec {codec_name} (available: {})",
            registry.names().join(", ")
        )
        .into());
    }

    let mut reader = open_input(input)?;
    let mut pgm_bytes = Vec::new();
    reader.read_to_end(&mut pgm_bytes)?;
    let img = pgm::decode(&pgm_bytes)?;
    let mut label = codec_name.to_string();
    // The image is already fully resident here, so encode into memory and
    // only open (truncate) the output once the encode has succeeded — a
    // failed encode must not destroy an existing output file. (The
    // streaming path above trades this for bounded memory.)
    let mut container = Vec::new();
    let stats = if threads > 1 {
        // Multi-threaded coding uses the tiled container: one band per
        // worker, each an independent instance of the paper's codec coding
        // a zero-copy row-range view.
        let bands = threads.min(img.height());
        label = format!("tiled ({bands} bands, {threads} threads)");
        if lanes > 1 {
            label.push_str(&format!(" x {lanes} lanes"));
        }
        if !model.is_classic() {
            label.push_str(&format!(" [{model}]"));
        }
        let opts = EncodeOptions::new()
            .with_tiles(bands)
            .with_parallelism(Parallelism::Threads(threads))
            .with_lanes(lanes)
            .with_model(model);
        registry
            .expect_name("tiled")?
            .encode(img.view(), &opts, &mut container)?
    } else if near > 0 {
        // Near-lossless operation is outside the lossless Codec contract;
        // reach the JPEG-LS crate directly, with exactly the configuration
        // `decompress` will rebuild from the container's (depth, NEAR).
        container = cbic::jpegls::compress(
            img.view(),
            &cbic::jpegls::JpeglsConfig::for_depth(img.bit_depth(), near),
        );
        cbic::image::EncodeStats::new(img.pixel_count() as u64, container.len() as u64, None)
    } else {
        let codec = registry.expect_name(codec_name)?;
        if lanes > 1 {
            let container_version = if model.is_classic() { 3 } else { 5 };
            label = format!("{codec_name} ({lanes} lanes, v{container_version} container)");
        }
        if !model.is_classic() {
            label.push_str(&format!(" [{model}]"));
        }
        codec.encode(
            img.view(),
            &EncodeOptions::default().with_lanes(lanes).with_model(model),
            &mut container,
        )?
    };
    let mut out = open_output(output)?;
    out.write_all(&container)?;
    out.flush()?;
    eprintln!(
        "{input}: {} pixels ({}-bit) -> {} bytes ({:.3} bpp) with {label}",
        stats.pixels,
        img.bit_depth(),
        stats.container_bytes,
        stats.bits_per_pixel()
    );
    Ok(())
}

/// The bounded-memory compress path: PGM header off the reader, rows
/// through [`StreamEncoder`], container bytes out as they resolve.
fn compress_streaming(
    input: &str,
    output: &str,
    lanes: usize,
    model: cbic::core::ModelMode,
) -> CliResult {
    let mut reader = open_input(input)?;
    let header = pgm::read_header(&mut reader)?;
    let (width, height) = (header.width, header.height);
    let out = open_output(output)?;
    let cfg = CodecConfig {
        model,
        ..CodecConfig::default()
    };
    let mut enc = StreamEncoder::with_lanes(out, width, height, header.bit_depth(), &cfg, lanes)?;
    let mut row = vec![0u16; width];
    for y in 0..height {
        pgm::read_row(&mut reader, &header, &mut row)
            .map_err(|e| format!("reading pixel row {y}: {e}"))?;
        enc.push_row(&row)?;
    }
    let (mut out, stats) = enc.finish_with_stats()?;
    out.flush()?;
    let pixels = width * height;
    let label = match (lanes > 1, model.is_classic()) {
        (true, true) => format!("proposed ({lanes} lanes, v3 container)"),
        (true, false) => format!("proposed ({lanes} lanes, v5 container, {model} model)"),
        (false, true) => "proposed (streamed, O(3 lines) memory)".into(),
        (false, false) => format!("proposed (streamed, {model} model)"),
    };
    // Same payload-bytes-over-pixels rate `cbic info` reports for the
    // finished container, so the two commands agree on every lane count.
    eprintln!(
        "{input}: {pixels} pixels ({}-bit) -> {} bytes ({:.3} bpp) with {label}",
        header.bit_depth(),
        stats.container_bytes,
        stats.payload_bytes as f64 * 8.0 / pixels as f64
    );
    Ok(())
}

fn cmd_decompress(args: &[String]) -> CliResult {
    let (flags, pos) = parse_flags(args, &["threads"]);
    let [input, output] = pos.as_slice() else {
        return Err("decompress needs IN and OUT.pgm (either may be `-`)".into());
    };
    let threads = parse_threads(&flags)?;
    let mut reader = open_input(input)?;
    let mut magic = [0u8; 4];
    reader
        .read_exact(&mut magic)
        .map_err(|e| format!("reading container magic: {e}"))?;
    if &magic == b"CBUN" {
        return Err("universal containers hold more than one image; use the library API".into());
    }

    if &magic == b"CBIC" {
        // Peek the version byte: a v4 tile grid (or a v5 container whose
        // layout flag says "tiled") wants the (optionally parallel) grid
        // decoder, everything flat streams row by row.
        let mut version = [0u8; 1];
        reader
            .read_exact(&mut version)
            .map_err(|e| format!("reading container version: {e}"))?;
        let mut prefix = magic.to_vec();
        prefix.push(version[0]);
        if version[0] == 5 {
            // The v5 layout flag sits at byte 26 (0 flat, 1 tiled); read
            // through it so a flat container can still stream row by row.
            let mut rest = [0u8; 22];
            reader
                .read_exact(&mut rest)
                .map_err(|e| format!("reading v5 container header: {e}"))?;
            prefix.extend_from_slice(&rest);
        }
        if version[0] == 4 || (version[0] == 5 && prefix[26] == 1) {
            let mut bytes = prefix;
            reader.read_to_end(&mut bytes)?;
            let img = cbic::core::decompress_grid(&bytes, Parallelism::from_threads(threads))?;
            let mut out = open_output(output)?;
            pgm::write_header(&mut out, img.width(), img.height(), img.max_val())?;
            for y in 0..img.height() {
                out.write_all(&pgm::row_bytes(img.row(y), img.max_val()))?;
            }
            out.flush()?;
            eprintln!(
                "{input}: proposed (v{} grid, {threads} threads) -> {}x{} {}-bit PGM",
                version[0],
                img.width(),
                img.height(),
                img.bit_depth()
            );
            return Ok(());
        }
        // Bounded-memory path: decode rows straight to PGM output without
        // slurping the container or materializing the image.
        let mut chained = (&prefix[..]).chain(reader);
        let mut dec = StreamDecoder::new(&mut chained)?;
        let (width, height) = dec.dimensions();
        let maxval = cbic::image::max_val_for(dec.bit_depth());
        let mut out = open_output(output)?;
        pgm::write_header(&mut out, width, height, maxval)?;
        let mut row = vec![0u16; width];
        for _ in 0..height {
            dec.next_row(&mut row)?;
            out.write_all(&pgm::row_bytes(&row, maxval))?;
        }
        out.flush()?;
        eprintln!(
            "{input}: proposed (streamed) -> {width}x{height} {}-bit PGM",
            dec.bit_depth()
        );
        return Ok(());
    }

    // Everything else goes through the streaming codec dispatch: tiled
    // containers read band by band, the remaining codecs through their
    // whole-buffer fallback.
    let registry = cbic::default_registry();
    let codec = registry
        .detect(&magic)
        .ok_or("unrecognized container magic")?;
    let opts = DecodeOptions::new().with_parallelism(Parallelism::from_threads(threads));
    let mut chained = (&magic[..]).chain(reader);
    let img = codec.decode(&mut chained, &opts)?;
    let mut out = open_output(output)?;
    // Header then row-by-row wire conversion: no second image-sized buffer.
    pgm::write_header(&mut out, img.width(), img.height(), img.max_val())?;
    for y in 0..img.height() {
        out.write_all(&pgm::row_bytes(img.row(y), img.max_val()))?;
    }
    out.flush()?;
    eprintln!(
        "{input}: {} -> {}x{} {}-bit PGM",
        codec.name(),
        img.width(),
        img.height(),
        img.bit_depth()
    );
    Ok(())
}

/// `crop`: random-access ROI decode. On a seekable file holding a v4 tile
/// grid this reads the header, the index, and *only the covering tiles'
/// bytes*; on stdin (or a flat v1–v3 container) it decodes what it must
/// and crops. Either way the output PGM is exactly the requested rect.
fn cmd_crop(args: &[String]) -> CliResult {
    let (flags, pos) = parse_flags(args, &["rect", "threads"]);
    let [input, output] = pos.as_slice() else {
        return Err(
            "crop needs IN and OUT.pgm (IN may be `-`; seekable files skip non-covering tiles)"
                .into(),
        );
    };
    let rect = parse_rect(flag_value(&flags, "rect").ok_or("crop needs --rect X,Y,W,H (pixels)")?)?;
    let threads = parse_threads(&flags)?;
    let par = Parallelism::from_threads(threads);
    let (img, how) = if input == "-" {
        let mut bytes = Vec::new();
        std::io::stdin().lock().read_to_end(&mut bytes)?;
        (cbic::core::decode_roi_any(&bytes, rect, par)?, "buffered")
    } else {
        // A real file seeks: non-covering tiles' bytes are never read.
        let mut file = std::fs::File::open(input)?;
        match cbic::core::decode_roi_from(&mut file, rect, par) {
            Ok(img) => (img, "seek"),
            Err(cbic::core::CodecError::InvalidHeader(_)) => {
                // Not a v4 grid (flat v1–v3 container): fall back to a
                // full decode + crop of the slurped bytes.
                let bytes = std::fs::read(input)?;
                (cbic::core::decode_roi_any(&bytes, rect, par)?, "buffered")
            }
            Err(e) => return Err(e.into()),
        }
    };
    let mut out = open_output(output)?;
    pgm::write_header(&mut out, img.width(), img.height(), img.max_val())?;
    for y in 0..img.height() {
        out.write_all(&pgm::row_bytes(img.row(y), img.max_val()))?;
    }
    out.flush()?;
    eprintln!(
        "{input}: {}x{} crop at ({}, {}) -> {}-bit PGM ({how} path)",
        rect.w,
        rect.h,
        rect.x,
        rect.y,
        img.bit_depth()
    );
    Ok(())
}

/// `info`: describe a compressed container — codec, dimensions, bit depth,
/// band layout, payload sizes — without decoding any payload.
fn cmd_info(args: &[String]) -> CliResult {
    let [input] = args else {
        return Err("info needs IN".into());
    };
    let bytes = std::fs::read(input)?;
    let kind = if bytes.get(..4) == Some(b"CBUN") {
        "universal"
    } else {
        cbic::default_registry()
            .detect(&bytes)
            .map(|c| c.name())
            .ok_or("unrecognized container magic")?
    };
    say!("container: {kind}, {} bytes", bytes.len());
    match kind {
        "proposed" => {
            let (hdr, payload) = cbic::core::container::parse_header(&bytes)?;
            print_proposed_header(&hdr, payload);
            if hdr.tile.is_some() {
                // v4: validate and print the tile index. Length
                // mismatches and malformed indexes surface as the
                // library's structured InvalidHeader/Truncated errors.
                let (_, index, grid_payload) = cbic::core::grid::parse_grid(&bytes)?;
                print_grid_index(&index, grid_payload.len());
            }
        }
        "tiled" => {
            let count_bytes = bytes
                .get(4..8)
                .ok_or("container truncated inside the tiled header")?;
            let tiles = u32::from_le_bytes(count_bytes.try_into().expect("sized")) as usize;
            say!("bands: {tiles}");
            let mut pos = 8usize;
            for t in 0..tiles {
                let len_bytes = bytes
                    .get(pos..pos + 4)
                    .ok_or("container truncated inside band table")?;
                let len = u32::from_le_bytes(len_bytes.try_into().expect("sized")) as usize;
                pos += 4;
                let band = bytes
                    .get(pos..pos + len)
                    .ok_or("container truncated inside a band")?;
                pos += len;
                let (hdr, payload) = cbic::core::container::parse_header(band)?;
                let lanes = if hdr.lanes > 1 {
                    format!(", {} lanes", hdr.lanes)
                } else {
                    String::new()
                };
                say!(
                    "  band {t}: {}x{} {}-bit, payload {} bytes ({:.3} bpp){lanes}",
                    hdr.width,
                    hdr.height,
                    hdr.bit_depth,
                    payload.len(),
                    payload.len() as f64 * 8.0 / (hdr.width * hdr.height) as f64
                );
            }
        }
        "calic" => {
            let (w, h, depth, payload) = cbic::calic::parse_container(&bytes)?;
            print_baseline_header(w, h, depth, payload.len(), None);
        }
        "slp" => {
            let (w, h, depth, payload) = cbic::slp::parse_container(&bytes)?;
            print_baseline_header(w, h, depth, payload.len(), None);
        }
        "jpegls" => {
            let (w, h, depth, near, payload) = cbic::jpegls::parse_container(&bytes)?;
            print_baseline_header(w, h, depth, payload.len(), Some(near));
        }
        "universal" => {
            let count = bytes
                .get(5..9)
                .map(|b| u32::from_le_bytes(b.try_into().expect("sized")))
                .ok_or("container truncated inside the universal header")?;
            say!("version: {}, chunks: {count}", bytes[4]);
        }
        _ => {}
    }
    Ok(())
}

fn print_proposed_header(hdr: &cbic::core::container::ContainerHeader, payload: &[u8]) {
    let payload_len = payload.len();
    let version = if !hdr.cfg.model.is_classic() {
        5
    } else if hdr.tile.is_some() {
        4
    } else if hdr.lanes > 1 {
        3
    } else if hdr.bit_depth != 8 {
        2
    } else {
        1
    };
    say!(
        "version: {version}, dimensions: {}x{}, {}-bit samples",
        hdr.width,
        hdr.height,
        hdr.bit_depth
    );
    say!("model: {}", hdr.cfg.model);
    say!(
        "config: {} counter bits, increment {}, feedback={}, aging={}, division={:?}, \
         {} compound contexts",
        hdr.cfg.estimator.count_bits,
        hdr.cfg.estimator.increment,
        hdr.cfg.error_feedback,
        hdr.cfg.aging,
        hdr.cfg.division,
        hdr.cfg.compound_contexts()
    );
    say!(
        "payload: {payload_len} bytes = {:.3} bpp",
        payload_len as f64 * 8.0 / (hdr.width * hdr.height) as f64
    );
    if hdr.tile.is_some() {
        // v4 frames its lanes per tile; the caller prints the index.
        if hdr.lanes > 1 {
            say!("lanes: {} (framed per tile)", hdr.lanes);
        }
    } else if hdr.lanes > 1 {
        match cbic::core::container::split_lane_payload(hdr, payload) {
            Ok(subs) => {
                let sizes: Vec<String> = subs.iter().map(|s| s.len().to_string()).collect();
                say!(
                    "lanes: {} (substream bytes: {})",
                    hdr.lanes,
                    sizes.join(", ")
                );
            }
            Err(e) => say!("lanes: {} (malformed lane table: {e})", hdr.lanes),
        }
    }
}

/// Prints a v4 container's tile index: grid shape, tile geometry, and the
/// per-tile (offset, length, checksum) entries the random-access paths
/// seek by.
fn print_grid_index(index: &cbic::core::grid::TileIndex, payload_len: usize) {
    let (tw, th) = index.geometry.tile_size();
    say!(
        "grid: {}x{} tiles of {tw}x{th} px, index {} bytes, substreams {payload_len} bytes",
        index.cols,
        index.rows,
        index.entries.len() * cbic::core::grid::INDEX_ENTRY_LEN
    );
    for (i, e) in index.entries.iter().enumerate() {
        let (x, y, w, h) = index.tile_rect(i % index.cols, i / index.cols);
        say!(
            "  tile ({}, {}): {w}x{h} px at ({x}, {y}), offset {}, {} bytes, crc32 {:08x}",
            i % index.cols,
            i / index.cols,
            e.offset,
            e.len,
            e.crc32
        );
    }
}

fn print_baseline_header(w: usize, h: usize, depth: u8, payload_len: usize, near: Option<u8>) {
    say!("dimensions: {w}x{h}, {depth}-bit samples");
    if let Some(near) = near {
        say!(
            "near: {near} ({})",
            if near == 0 {
                "lossless"
            } else {
                "near-lossless"
            }
        );
    }
    say!(
        "payload: {payload_len} bytes = {:.3} bpp",
        payload_len as f64 * 8.0 / (w * h) as f64
    );
}

fn cmd_codecs() -> CliResult {
    let registry = cbic::default_registry();
    say!("registered codecs ({}):", registry.len());
    for codec in registry.codecs() {
        let magic = codec
            .magic()
            .map(|m| String::from_utf8_lossy(&m).into_owned())
            .unwrap_or_else(|| "-".into());
        let (lo, hi) = codec.bit_depths();
        say!(
            "  {:<10} magic {magic}  depths {lo}..={hi}  models {}",
            codec.name(),
            codec.model_modes().join(", ")
        );
    }
    Ok(())
}

fn cmd_corpus(args: &[String]) -> CliResult {
    let (flags, pos) = parse_flags(args, &["size"]);
    let [outdir] = pos.as_slice() else {
        return Err("corpus needs OUTDIR".into());
    };
    let size: usize = flag_value(&flags, "size")
        .map(str::parse)
        .transpose()?
        .unwrap_or(512);
    std::fs::create_dir_all(outdir)?;
    for (c, img) in cbic::image::corpus::generate(size) {
        let path = std::path::Path::new(outdir).join(format!("{}.pgm", c.name()));
        pgm::write_file(&path, &img)?;
        say!("wrote {} ({size}x{size})", path.display());
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> CliResult {
    let (flags, pos) = parse_flags(args, &["iters"]);
    let [input] = pos.as_slice() else {
        return Err("bench needs IN.pgm (optional: --iters N, default 5)".into());
    };
    let iters: u32 = flag_value(&flags, "iters")
        .map(str::parse)
        .transpose()?
        .unwrap_or(5);
    if iters == 0 {
        return Err("--iters must be at least 1".into());
    }
    let img = pgm::read_file(input)?;
    say!(
        "{input}: {}x{} at {} bits/sample, order-0 entropy {:.3} bpp",
        img.width(),
        img.height(),
        img.bit_depth(),
        img.entropy()
    );
    let raw_bits = f64::from(img.bit_depth());
    let pixels = img.pixel_count() as f64;
    // Best-of-N wall-clock per direction: the minimum is robust against
    // background load, and N stays small because `bench` is interactive.
    let min_time = |f: &mut dyn FnMut()| -> f64 {
        let mut best = f64::MAX;
        for _ in 0..iters {
            let t = std::time::Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };
    say!(
        "  {:<10} {:>9} {:>7} {:>12} {:>12}",
        "codec",
        "bpp",
        "ratio",
        "enc MP/s",
        "dec MP/s"
    );
    for codec in cbic::all_codecs() {
        // Lane-aware codecs get one row per lane setting; the rest a
        // single row at the default options.
        let lane_settings: &[usize] = if codec.name() == "proposed" {
            &[1, 2, 4, 8]
        } else {
            &[1]
        };
        for &lanes in lane_settings {
            let opts = EncodeOptions::default().with_lanes(lanes);
            let bytes = codec.encode_vec(img.view(), &opts)?;
            // The bpp column stays payload-only (as it always was), so
            // bench numbers remain comparable across versions; container
            // framing is not charged to the codec.
            let bpp = codec.payload_bits_per_pixel(img.view(), &opts)?;
            let enc_secs = min_time(&mut || {
                std::hint::black_box(codec.encode_vec(img.view(), &opts).expect("Vec sink"));
            });
            let dec_secs = min_time(&mut || {
                std::hint::black_box(
                    codec
                        .decode_vec(&bytes, &DecodeOptions::default())
                        .expect("own container"),
                );
            });
            let label = if lanes > 1 {
                format!("{}/{lanes}", codec.name())
            } else {
                codec.name().to_string()
            };
            say!(
                "  {label:<10} {bpp:>9.3} {:>7.2} {:>12.2} {:>12.2}",
                raw_bits / bpp,
                pixels / enc_secs / 1e6,
                pixels / dec_secs / 1e6
            );
        }
    }
    // Decision profile of the proposed codec's estimator: the static
    // per-pixel budget (the paper's 1 escape + 8 tree levels for 8-bit
    // samples) against the decisions that actually reached the arithmetic
    // coder — the rest were deterministic and coded for free.
    let stats = cbic::core::encode_model_only(img.view(), &CodecConfig::default());
    say!(
        "  proposed model: {:.0} decisions/px budget, {:.2} coded ({:.1}% deterministic)",
        stats.decisions_per_pixel(),
        stats.coded_decisions_per_pixel(),
        stats.deterministic_fraction() * 100.0
    );
    Ok(())
}
