//! `cbic` — command-line front end for the workspace codecs.
//!
//! ```text
//! cbic compress   [--codec proposed|calic|jpegls|slp] [--near N] IN.pgm OUT
//! cbic decompress IN OUT.pgm          (codec auto-detected from the magic)
//! cbic info       IN                  (describe a compressed container)
//! cbic corpus     [--size N] OUTDIR   (write the synthetic corpus as PGM)
//! cbic bench      [--size N] IN.pgm   (bit rates of all codecs on one image)
//! ```

use cbic::core::CodecConfig;
use cbic::image::{pgm, Image};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  cbic compress [--codec proposed|calic|jpegls|slp] [--near N] IN.pgm OUT\n  \
         cbic decompress IN OUT.pgm\n  cbic info IN\n  cbic corpus [--size N] OUTDIR\n  \
         cbic bench IN.pgm"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let r = match cmd.as_str() {
        "compress" => cmd_compress(&args[1..]),
        "decompress" => cmd_decompress(&args[1..]),
        "info" => cmd_info(&args[1..]),
        "corpus" => cmd_corpus(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        _ => return usage(),
    };
    match r {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Pulls `--flag value` out of an argument list, returning remaining
/// positional arguments.
fn parse_flags(args: &[String], flags: &[&str]) -> (Vec<(String, String)>, Vec<String>) {
    let mut out = Vec::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if flags.contains(&name) && i + 1 < args.len() {
                out.push((name.to_string(), args[i + 1].clone()));
                i += 2;
                continue;
            }
        }
        positional.push(args[i].clone());
        i += 1;
    }
    (out, positional)
}

fn cmd_compress(args: &[String]) -> CliResult {
    let (flags, pos) = parse_flags(args, &["codec", "near"]);
    let [input, output] = pos.as_slice() else {
        return Err("compress needs IN.pgm and OUT".into());
    };
    let codec = flags
        .iter()
        .find(|(k, _)| k == "codec")
        .map(|(_, v)| v.as_str())
        .unwrap_or("proposed");
    let near: u8 = flags
        .iter()
        .find(|(k, _)| k == "near")
        .map(|(_, v)| v.parse())
        .transpose()?
        .unwrap_or(0);

    let img = pgm::read_file(input)?;
    let bytes = match codec {
        "proposed" => cbic::core::compress(&img, &CodecConfig::default()),
        "calic" => cbic::calic::compress(&img),
        "jpegls" => cbic::jpegls::compress(
            &img,
            &cbic::jpegls::JpeglsConfig {
                near,
                ..Default::default()
            },
        ),
        "slp" => cbic::slp::compress(&img),
        other => return Err(format!("unknown codec {other}").into()),
    };
    std::fs::write(output, &bytes)?;
    println!(
        "{input}: {} pixels -> {} bytes ({:.3} bpp) with {codec}",
        img.pixel_count(),
        bytes.len(),
        bytes.len() as f64 * 8.0 / img.pixel_count() as f64
    );
    Ok(())
}

fn detect(bytes: &[u8]) -> Option<&'static str> {
    match bytes.get(..4)? {
        b"CBIC" => Some("proposed"),
        b"CBTI" => Some("proposed (tiled)"),
        b"CBCA" => Some("calic"),
        b"CBLS" => Some("jpegls"),
        b"CBSL" => Some("slp"),
        b"CBUN" => Some("universal"),
        _ => None,
    }
}

fn decode_any(bytes: &[u8]) -> Result<Image, Box<dyn std::error::Error>> {
    match detect(bytes) {
        Some("proposed") => Ok(cbic::core::decompress(bytes)?),
        Some("proposed (tiled)") => Ok(cbic::core::tiles::decompress_tiled(bytes)?),
        Some("calic") => Ok(cbic::calic::decompress(bytes)?),
        Some("jpegls") => Ok(cbic::jpegls::decompress(bytes)?),
        Some("slp") => Ok(cbic::slp::decompress(bytes)?),
        Some(other) => Err(format!("{other} containers hold more than one image").into()),
        None => Err("unrecognized container magic".into()),
    }
}

fn cmd_decompress(args: &[String]) -> CliResult {
    let [input, output] = args else {
        return Err("decompress needs IN and OUT.pgm".into());
    };
    let bytes = std::fs::read(input)?;
    let img = decode_any(&bytes)?;
    pgm::write_file(output, &img)?;
    println!(
        "{input}: {} ({} bytes) -> {}x{} PGM",
        detect(&bytes).unwrap_or("?"),
        bytes.len(),
        img.width(),
        img.height()
    );
    Ok(())
}

fn cmd_info(args: &[String]) -> CliResult {
    let [input] = args else {
        return Err("info needs IN".into());
    };
    let bytes = std::fs::read(input)?;
    let kind = detect(&bytes).ok_or("unrecognized container magic")?;
    println!("container: {kind}, {} bytes", bytes.len());
    if kind == "proposed" {
        let (cfg, w, h, payload) = cbic::core::container::parse_header(&bytes)?;
        println!("dimensions: {w}x{h}");
        println!(
            "config: {} counter bits, increment {}, feedback={}, aging={}, division={:?}, \
             {} compound contexts",
            cfg.estimator.count_bits,
            cfg.estimator.increment,
            cfg.error_feedback,
            cfg.aging,
            cfg.division,
            cfg.compound_contexts()
        );
        println!(
            "payload: {} bytes = {:.3} bpp",
            payload.len(),
            payload.len() as f64 * 8.0 / (w * h) as f64
        );
    }
    Ok(())
}

fn cmd_corpus(args: &[String]) -> CliResult {
    let (flags, pos) = parse_flags(args, &["size"]);
    let [outdir] = pos.as_slice() else {
        return Err("corpus needs OUTDIR".into());
    };
    let size: usize = flags
        .iter()
        .find(|(k, _)| k == "size")
        .map(|(_, v)| v.parse())
        .transpose()?
        .unwrap_or(512);
    std::fs::create_dir_all(outdir)?;
    for (c, img) in cbic::image::corpus::generate(size) {
        let path = std::path::Path::new(outdir).join(format!("{}.pgm", c.name()));
        pgm::write_file(&path, &img)?;
        println!("wrote {} ({size}x{size})", path.display());
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> CliResult {
    let [input] = args else {
        return Err("bench needs IN.pgm".into());
    };
    let img = pgm::read_file(input)?;
    println!(
        "{input}: {}x{}, order-0 entropy {:.3} bpp",
        img.width(),
        img.height(),
        img.entropy()
    );
    let results = [
        (
            "proposed",
            cbic::core::encode_raw(&img, &CodecConfig::default())
                .1
                .bits_per_pixel(),
        ),
        (
            "calic",
            cbic::calic::encode_raw(&img, &cbic::calic::CalicConfig::default())
                .1
                .bits_per_pixel(),
        ),
        (
            "jpegls",
            cbic::jpegls::encode_raw(&img, &cbic::jpegls::JpeglsConfig::default())
                .1
                .bits_per_pixel(),
        ),
        ("slp", cbic::slp::encode_raw(&img).1.bits_per_pixel()),
    ];
    for (name, bpp) in results {
        println!("  {name:<10} {bpp:.3} bpp (ratio {:.2})", 8.0 / bpp);
    }
    Ok(())
}
