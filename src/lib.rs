//! # cbic — context-based lossless image compression
//!
//! A complete Rust reproduction of *"Hardware Architecture for Lossless
//! Image Compression Based on Context-based Modeling and Arithmetic
//! Coding"* (Chen, Canagarajah, Nunez-Yanez & Vitulli, IEEE SOCC 2007):
//! the paper's codec, every substrate it depends on, every baseline it
//! compares against, and an analytic model of its FPGA implementation.
//!
//! This crate is a facade: each subsystem lives in its own workspace crate
//! and is re-exported here under a short module name.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `cbic-core` | the paper's codec (GAP-lite prediction, 512 compound contexts, error feedback, arithmetic coding) |
//! | [`arith`] | `cbic-arith` | binary arithmetic coder + tree probability estimator |
//! | [`image`] | `cbic-image` | image container, PGM I/O, synthetic corpus |
//! | [`hw`] | `cbic-hw` | division LUT, pipeline simulator, resource estimator, memory model |
//! | [`bitio`] | `cbic-bitio` | MSB-first bit reader/writer |
//! | [`rice`] | `cbic-rice` | Golomb-Rice coding |
//! | [`jpegls`] | `cbic-jpegls` | JPEG-LS (LOCO-I) baseline |
//! | [`calic`] | `cbic-calic` | CALIC baseline |
//! | [`slp`] | `cbic-slp` | SLP(M0) baseline (reconstruction) |
//! | [`universal`] | `cbic-universal` | the Fig. 1 universal system (data/image/video multiplexer) |
//!
//! # Quickstart
//!
//! ```
//! use cbic::core::{compress, decompress, CodecConfig};
//! use cbic::image::corpus::CorpusImage;
//!
//! let img = CorpusImage::Lena.generate(64, 64);
//! let bytes = compress(img.view(), &CodecConfig::default());
//! assert_eq!(decompress(&bytes)?, img);
//! println!(
//!     "compressed {} pixels into {} bytes",
//!     img.pixel_count(),
//!     bytes.len()
//! );
//! # Ok::<(), cbic::core::CodecError>(())
//! ```
//!
//! See `README.md` for the architecture overview and `EXPERIMENTS.md` for
//! the paper-vs-measured record of every table and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cbic_arith as arith;
pub use cbic_bitio as bitio;
pub use cbic_calic as calic;
pub use cbic_core as core;
pub use cbic_hw as hw;
pub use cbic_image as image;
pub use cbic_jpegls as jpegls;
pub use cbic_rice as rice;
pub use cbic_slp as slp;
pub use cbic_universal as universal;

pub use cbic_image::{
    CbicError, Codec, CodecRegistry, CountingSink, DecodeOptions, EncodeOptions, Parallelism, Rect,
};
pub use cbic_universal::codecs::{all_codecs, default_registry};
