//! Differential tests for the streaming layer, plus the
//! truncated/corrupted-stream contract of every decoder.
//!
//! The streaming pipeline (`StreamEncoder`/`StreamDecoder`,
//! `StreamBitWriter`/`StreamBitReader`) must be a pure *transport* change:
//! byte-identical to the buffered `compress`/`encode_raw`/`HwEncoder`
//! paths on every input. The property tests here drive all three encoders
//! over random images (including 1-pixel-wide, 1-row, and extreme-aspect
//! shapes) and a config sweep, and the corruption suite pins down that
//! mid-stream EOF and flipped magic bytes produce errors — never panics,
//! never unbounded allocation.

use cbic::core::hwpipe::HwEncoder;
use cbic::core::stream::{compress_to, decompress_from, StreamDecoder, StreamEncoder};
use cbic::core::tiles::{compress_tiled, decompress_tiled, Parallelism};
use cbic::core::{compress, decompress, encode_raw, CodecConfig, CodecError};
use cbic::image::corpus::CorpusImage;
use cbic::image::Image;
use cbic::universal::dispatch::{Chunk, UniversalCodec};
use cbic::{Codec, DecodeOptions, EncodeOptions};
use proptest::prelude::*;

fn arb_image() -> impl Strategy<Value = Image> {
    (1usize..40, 1usize..40).prop_flat_map(|(w, h)| {
        proptest::collection::vec(any::<u8>(), w * h)
            .prop_map(move |data| Image::from_vec(w, h, data).expect("sized to match"))
    })
}

proptest! {
    /// The tentpole equivalence: StreamEncoder output == buffered
    /// `compress` == header + `encode_raw` == header + `HwEncoder`, byte
    /// for byte, on arbitrary images.
    #[test]
    fn stream_encoder_is_byte_identical_to_all_buffered_encoders(img in arb_image()) {
        let cfg = CodecConfig::default();
        let buffered = compress(img.view(), &cfg);
        let streamed = compress_to(img.view(), &cfg, Vec::new()).expect("Vec sink");
        prop_assert_eq!(&streamed, &buffered);

        let (raw, _) = encode_raw(img.view(), &cfg);
        prop_assert_eq!(&buffered[buffered.len() - raw.len()..], &raw[..]);
        let hw = HwEncoder::encode_image(img.view(), &cfg);
        prop_assert_eq!(&raw, &hw);
    }

    /// Streaming decode of streaming output reproduces the image exactly.
    #[test]
    fn stream_roundtrip_is_lossless(img in arb_image()) {
        let cfg = CodecConfig::default();
        let bytes = compress_to(img.view(), &cfg, Vec::new()).expect("Vec sink");
        prop_assert_eq!(decompress_from(&bytes[..]).expect("own stream"), img);
    }

    /// Cross-matrix: buffered decoder reads streamed bytes and vice versa.
    #[test]
    fn stream_and_buffered_decoders_are_interchangeable(img in arb_image()) {
        let cfg = CodecConfig::default();
        let bytes = compress(img.view(), &cfg);
        prop_assert_eq!(decompress_from(&bytes[..]).expect("buffered bytes"), img.clone());
        let streamed = compress_to(img.view(), &cfg, Vec::new()).expect("Vec sink");
        prop_assert_eq!(decompress(&streamed).expect("streamed bytes"), img);
    }
}

proptest! {
    /// Container v3 (lane-striped): the streaming encoder, the buffered
    /// `compress_with_lanes`, and the reusable `EncoderSession` emit
    /// byte-identical v3 streams, and streaming + buffered decoders are
    /// interchangeable over them.
    #[test]
    fn lane_streaming_matches_buffered_paths(img in arb_image(), lanes in 2usize..=8) {
        use cbic::core::{compress_with_lanes, EncoderSession};
        let cfg = CodecConfig::default();
        let buffered = compress_with_lanes(img.view(), &cfg, lanes);

        let mut enc = StreamEncoder::with_lanes(
            Vec::new(), img.width(), img.height(), img.bit_depth(), &cfg, lanes,
        ).expect("Vec sink");
        for row in img.view().rows() {
            enc.push_row(row).expect("Vec sink");
        }
        let streamed = enc.finish().expect("Vec sink");
        prop_assert_eq!(&streamed, &buffered);

        let mut session_out = Vec::new();
        EncoderSession::with_lanes(&cfg, lanes)
            .encode(img.view(), &mut session_out)
            .expect("Vec sink");
        prop_assert_eq!(&session_out, &buffered);

        prop_assert_eq!(&decompress_from(&buffered[..]).expect("v3 stream"), &img);
        prop_assert_eq!(&decompress(&buffered).expect("v3 slice"), &img);
    }

    /// Truncating a v3 stream anywhere produces a structured error from
    /// the *streaming* decoder — the per-lane length table makes every
    /// short read detectable before pixels are trusted.
    #[test]
    fn lane_streaming_decoder_errors_on_truncation(
        img in arb_image(),
        lanes in 2usize..=8,
        cut_frac in 0.0f64..1.0,
    ) {
        use cbic::core::compress_with_lanes;
        let bytes = compress_with_lanes(img.view(), &CodecConfig::default(), lanes);
        let cut = (((bytes.len() - 1) as f64) * cut_frac) as usize;
        let result = StreamDecoder::new(&bytes[..cut]).and_then(|d| d.decode_all());
        prop_assert!(result.is_err(), "strict prefix decoded at cut {}", cut);
    }
}

#[test]
fn equivalence_holds_on_edge_shapes() {
    // 1-pixel-wide, 1-row, and maximum-aspect shapes: the line-buffer
    // rotation and the first-row/first-column boundary rules all degenerate
    // here, so these shapes catch any divergence the random sizes miss.
    let cfg = CodecConfig::default();
    for (w, h) in [
        (1, 1),
        (1, 2),
        (2, 1),
        (1, 257),
        (257, 1),
        (1, 4096),
        (4096, 1),
        (16384, 2),
        (2, 16384),
    ] {
        let img = Image::from_fn(w, h, |x, y| (x * 31 + y * 17) as u8);
        let buffered = compress(img.view(), &cfg);
        let streamed = compress_to(img.view(), &cfg, Vec::new()).unwrap();
        assert_eq!(streamed, buffered, "{w}x{h}");
        assert_eq!(decompress_from(&streamed[..]).unwrap(), img, "{w}x{h}");
    }
}

#[test]
fn equivalence_holds_across_configs() {
    let img = CorpusImage::Barb.generate(40, 40);
    for cfg in [
        CodecConfig::default(),
        CodecConfig {
            error_feedback: false,
            ..CodecConfig::default()
        },
        CodecConfig {
            texture_bits: 0,
            ..CodecConfig::default()
        },
        CodecConfig {
            division: cbic::core::DivisionKind::Exact,
            ..CodecConfig::default()
        },
    ] {
        let buffered = compress(img.view(), &cfg);
        let streamed = compress_to(img.view(), &cfg, Vec::new()).unwrap();
        assert_eq!(streamed, buffered, "{cfg:?}");
    }
}

#[test]
fn sink_and_buffered_paths_match_for_every_registry_codec() {
    let img = CorpusImage::Peppers.generate(32, 32);
    let registry = cbic::default_registry();
    let enc = EncodeOptions::default();
    let dec = DecodeOptions::default();
    for codec in registry.codecs() {
        let buffered = codec.encode_vec(img.view(), &enc).unwrap();
        let mut streamed = Vec::new();
        let stats = codec.encode(img.view(), &enc, &mut streamed).unwrap();
        assert_eq!(streamed, buffered, "{}", codec.name());
        assert_eq!(
            stats.container_bytes,
            buffered.len() as u64,
            "{} container_bytes must be exact",
            codec.name()
        );
        // The counting-sink measure path reports the same size without
        // materializing anything.
        let measured = codec.measure(img.view(), &enc).unwrap();
        assert_eq!(measured, stats, "{}", codec.name());
        let mut source: &[u8] = &buffered;
        let back = codec.decode(&mut source, &dec).unwrap();
        assert_eq!(back, img, "{}", codec.name());
        // And through magic-routed stream dispatch.
        assert_eq!(
            registry.decode_stream(&mut &buffered[..], &dec).unwrap(),
            img,
            "{}",
            codec.name()
        );
    }
}

// ---------------------------------------------------------------------------
// Truncated / corrupted streams: error, never panic, never unbounded alloc.
// ---------------------------------------------------------------------------

#[test]
fn core_decoder_errors_on_mid_stream_eof() {
    let img = CorpusImage::Goldhill.generate(64, 64);
    let bytes = compress(img.view(), &CodecConfig::default());
    assert!(bytes.len() > 120, "need a real payload for the cuts below");
    // Cuts inside the header, just past it, mid-payload, and near the end.
    for cut in [0, 3, 12, 22, 23, 40, bytes.len() / 2, bytes.len() - 32] {
        let err = decompress(&bytes[..cut]).expect_err("truncated must error");
        assert!(
            matches!(err, CodecError::Truncated),
            "cut {cut}: got {err:?}"
        );
        // The streaming decoder agrees.
        let stream_err = decompress_from(&bytes[..cut]).expect_err("truncated must error");
        assert!(
            matches!(stream_err, CodecError::Truncated),
            "stream cut {cut}: got {stream_err:?}"
        );
    }
}

#[test]
fn tiled_decoder_errors_on_mid_stream_eof() {
    let img = CorpusImage::Boat.generate(48, 48);
    let bytes = compress_tiled(
        img.view(),
        &CodecConfig::default(),
        3,
        Parallelism::Sequential,
    );
    for cut in [0, 5, 9, 30, bytes.len() / 2, bytes.len() - 24] {
        assert!(
            decompress_tiled(&bytes[..cut], Parallelism::Sequential).is_err(),
            "cut {cut}"
        );
        // The Tiled streaming decode path must agree.
        let codec = cbic::core::Tiled::default();
        let mut source: &[u8] = &bytes[..cut];
        assert!(
            codec
                .decode(&mut source, &DecodeOptions::default())
                .is_err(),
            "stream cut {cut}"
        );
    }
}

#[test]
fn tiled_decoder_errors_on_truncated_final_band_payload() {
    // A cut *inside* the last band's arithmetic payload keeps the framing
    // intact-looking from the front but must still be rejected.
    let img = CorpusImage::Barb.generate(48, 48);
    let mut bytes = compress_tiled(
        img.view(),
        &CodecConfig::default(),
        2,
        Parallelism::Sequential,
    );
    let cut = 40;
    bytes.truncate(bytes.len() - cut);
    // Also shrink the final band's length prefix so the container parses.
    // Band layout: CBTI count | len0 band0 | len1 band1.
    let len0 = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let len1_at = 12 + len0;
    let len1 = u32::from_le_bytes(bytes[len1_at..len1_at + 4].try_into().unwrap()) as usize;
    bytes[len1_at..len1_at + 4].copy_from_slice(&((len1 - cut) as u32).to_le_bytes());
    assert!(matches!(
        decompress_tiled(&bytes, Parallelism::Sequential),
        Err(CodecError::Truncated)
    ));
}

#[test]
fn universal_decoder_errors_on_mid_stream_eof() {
    let codec = UniversalCodec::default();
    let bytes = codec.encode(&[
        Chunk::Data(b"telemetry ".repeat(30)),
        Chunk::Image(CorpusImage::Zelda.generate(24, 24)),
    ]);
    for cut in 0..bytes.len() {
        assert!(codec.decode(&bytes[..cut]).is_err(), "cut {cut}");
    }
}

#[test]
fn every_decoder_rejects_flipped_magic() {
    let img = CorpusImage::Zelda.generate(24, 24);
    let cfg = CodecConfig::default();

    let mut core_bytes = compress(img.view(), &cfg);
    core_bytes[0] ^= 0x20;
    assert_eq!(decompress(&core_bytes), Err(CodecError::BadMagic));
    assert_eq!(
        decompress_from(&core_bytes[..]).expect_err("flipped magic"),
        CodecError::BadMagic
    );

    let mut tiled_bytes = compress_tiled(img.view(), &cfg, 2, Parallelism::Sequential);
    tiled_bytes[1] ^= 0xFF;
    assert_eq!(
        decompress_tiled(&tiled_bytes, Parallelism::Sequential),
        Err(CodecError::BadMagic)
    );

    let universal = UniversalCodec::default();
    let mut uni_bytes = universal.encode(&[Chunk::Data(vec![1, 2, 3])]);
    uni_bytes[2] ^= 0x01;
    assert_eq!(
        universal.decode(&uni_bytes),
        Err(cbic::universal::UniversalError::BadMagic)
    );
}

#[test]
fn forged_headers_cannot_force_huge_allocations() {
    // A corrupted header claiming a gigantic image must be rejected before
    // any allocation proportional to the claim.
    let img = CorpusImage::Boat.generate(16, 16);
    let mut bytes = compress(img.view(), &CodecConfig::default());
    bytes[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
    bytes[10..14].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        decompress(&bytes),
        Err(CodecError::InvalidHeader(_))
    ));
    assert!(matches!(
        StreamDecoder::new(&bytes[..]).err(),
        Some(CodecError::InvalidHeader(_))
    ));
}

/// The ≥64-megapixel acceptance check: an 8192×8192 synthetic image
/// round-trips through the row-streaming encoder/decoder with codec-side
/// state bounded to O(rows). Rows are generated and checked on the fly —
/// the *source* image is never materialized either. Ignored by default
/// (several seconds in release, minutes in debug); run explicitly with
/// `cargo test --release --test streaming -- --ignored`.
#[test]
#[ignore = "64-megapixel soak test; run with --ignored in release"]
fn sixty_four_megapixel_roundtrip_in_bounded_memory() {
    const N: usize = 8192;
    let cfg = CodecConfig::default();
    let pixel = |x: usize, y: usize| {
        u16::from(((x / 7) as u8).wrapping_add((y / 5) as u8).wrapping_mul(31))
    };

    let mut enc = StreamEncoder::new(Vec::new(), N, N, &cfg).unwrap();
    let mut row = vec![0u16; N];
    for y in 0..N {
        for (x, slot) in row.iter_mut().enumerate() {
            *slot = pixel(x, y);
        }
        enc.push_row(&row).unwrap();
    }
    let bytes = enc.finish().unwrap();
    assert!(bytes.len() < N * N, "synthetic content must compress");

    let mut dec = StreamDecoder::new(&bytes[..]).unwrap();
    assert_eq!(dec.dimensions(), (N, N));
    for y in 0..N {
        dec.next_row(&mut row).unwrap();
        for (x, &v) in row.iter().enumerate() {
            assert_eq!(v, pixel(x, y), "mismatch at ({x},{y})");
        }
    }
}

/// The 64-megapixel soak for the v4 tile grid: an 8192×8192 frame goes
/// through `compress_grid` on four worker threads (32×32 grid of 256×256
/// tiles), decodes back bit-exactly in parallel, the parallel bytes match
/// the sequential bytes, and a random-access crop out of the middle needs
/// only the covering tiles. Ignored by default for the same reason as the
/// streaming soak above; run with `cargo test --release --test streaming
/// -- --ignored`.
#[test]
#[ignore = "64-megapixel tiled soak test; run with --ignored in release"]
fn sixty_four_megapixel_tiled_roundtrip_and_roi() {
    use cbic::core::grid::{compress_grid, decode_roi, decompress_grid, parse_grid, TileGeometry};
    use cbic::Rect;

    const N: usize = 8192;
    let cfg = CodecConfig::default();
    let pixel = |x: usize, y: usize| ((x / 7) as u8).wrapping_add((y / 5) as u8).wrapping_mul(31);
    let img = Image::from_fn(N, N, pixel);
    let geom = TileGeometry::default(); // 256×256 → a 32×32 grid

    let par = Parallelism::Threads(4);
    let bytes = compress_grid(img.view(), &cfg, geom, 1, par);
    assert!(bytes.len() < N * N, "synthetic content must compress");
    let (_, index, _) = parse_grid(&bytes).unwrap();
    assert_eq!((index.cols, index.rows), (32, 32));

    // The wavefront schedule must never leak into the bytes.
    let sequential = compress_grid(img.view(), &cfg, geom, 1, Parallelism::Sequential);
    assert_eq!(bytes, sequential, "parallel encode must be deterministic");

    let back = decompress_grid(&bytes, par).unwrap();
    assert_eq!(back, img, "64 MP tiled roundtrip must be lossless");

    // Random access: a 300×200 crop straddling tile boundaries.
    let roi = Rect::new(4000, 4000, 300, 200);
    let crop = decode_roi(&bytes, roi, Parallelism::Sequential).unwrap();
    assert_eq!(crop, img.view().crop(4000, 4000, 300, 200).to_image());
}

/// Regression: `StreamEncoder::payload_bits()` returned 0 on lane paths
/// until the first 1024-decision batch drained, so `cbic compress
/// --lanes N` printed ~0.000 bpp for any small image while `cbic info`
/// reported the true rate. Pin, for lanes {1, 2, 4, 8}: a live non-zero
/// mid-stream count, an exact final count shared by every encode path,
/// and `StreamEncodeStats` payload/container byte totals that match the
/// finished v3 container (the quantities `info` prints).
#[test]
fn lane_payload_bits_match_v3_payload_exactly() {
    use cbic::core::{compress_with_lanes, EncoderSession};
    let img = CorpusImage::Lena.generate(32, 32);
    let cfg = CodecConfig::default();
    for lanes in [1usize, 2, 4, 8] {
        let buffered = compress_with_lanes(img.view(), &cfg, lanes);

        let mut enc = StreamEncoder::with_lanes(
            Vec::new(),
            img.width(),
            img.height(),
            img.bit_depth(),
            &cfg,
            lanes,
        )
        .unwrap();
        let mut mid_stream_bits = 0;
        for (y, row) in img.view().rows().enumerate() {
            enc.push_row(row).unwrap();
            if y == img.height() / 2 {
                mid_stream_bits = enc.payload_bits();
            }
        }
        assert!(
            mid_stream_bits > 0,
            "lanes {lanes}: payload_bits() must count buffered decisions mid-stream"
        );
        let (out, stats) = enc.finish_with_stats().unwrap();
        assert_eq!(out, buffered, "lanes {lanes}");
        assert_eq!(
            stats.container_bytes as usize,
            buffered.len(),
            "lanes {lanes}"
        );
        assert!(stats.payload_bits >= mid_stream_bits, "lanes {lanes}");

        // `cbic info`'s payload is the container minus its fixed header
        // (23 bytes for v1, 25 for v3) — `payload_bytes` must be exactly
        // that, so the CLI's bpp agrees with `info` on every lane count.
        let header_len = if lanes > 1 { 25 } else { 23 };
        assert_eq!(
            stats.payload_bytes,
            (buffered.len() - header_len) as u64,
            "lanes {lanes}"
        );

        // The exact coded-bit count: at most the byte-aligned substream
        // total (payload minus the v3 lane table), short of it only by the
        // per-lane align padding — strictly under 8 bits per lane.
        let table_bytes = if lanes > 1 { 4 * lanes as u64 } else { 0 };
        let substream_bits = (stats.payload_bytes - table_bytes) * 8;
        assert!(stats.payload_bits <= substream_bits, "lanes {lanes}");
        assert!(
            substream_bits - stats.payload_bits < 8 * lanes as u64,
            "lanes {lanes}: {} vs {}",
            stats.payload_bits,
            substream_bits
        );

        // Both buffered encode paths report the identical exact count.
        let mut session_out = Vec::new();
        let session_stats = EncoderSession::with_lanes(&cfg, lanes)
            .encode(img.view(), &mut session_out)
            .unwrap();
        assert_eq!(
            session_stats.payload_bits, stats.payload_bits,
            "lanes {lanes}"
        );
        assert_eq!(session_out, buffered, "lanes {lanes}");
    }
}

#[test]
fn stream_encoder_counts_rows_and_rejects_overflow() {
    let cfg = CodecConfig::default();
    let mut enc = StreamEncoder::new(Vec::new(), 8, 2, &cfg).unwrap();
    assert_eq!((enc.width(), enc.height()), (8, 2));
    enc.push_row(&[1; 8]).unwrap();
    enc.push_row(&[2; 8]).unwrap();
    assert_eq!(enc.rows_pushed(), 2);
    let bytes = enc.finish().unwrap();
    let img = decompress(&bytes).unwrap();
    assert_eq!(img.dimensions(), (8, 2));
}
