//! Shape assertions for the paper's evaluation claims, measured on the
//! synthetic corpus. Absolute bit rates differ from the paper (different
//! pixels — see DESIGN.md §6), so these tests pin the *qualitative* results
//! the reproduction must preserve:
//!
//! * Table 1: CALIC ≤ proposed < JPEG-LS < SLP on average; per-image
//!   hardness ordering (mandrill hardest, zelda easiest);
//! * Fig. 4: 14-bit counters beat 10-bit counters; escapes grow as the
//!   counter narrows;
//! * the paper's prose claims: error feedback helps, aging helps, LUT
//!   division is free.
//!
//! Most tests run on a 256-pixel corpus (the smallest size at which the
//! adaptive models warm up enough for stable orderings); the headline
//! codec-ordering test uses the paper's full 512.

use cbic::arith::EstimatorConfig;
use cbic::core::{encode_raw, CodecConfig, DivisionKind};
use cbic::image::corpus;

const SIZE: usize = 256;

fn corpus_avg(cfg: &CodecConfig) -> f64 {
    let c = corpus::generate(SIZE);
    c.iter()
        .map(|(_, img)| encode_raw(img.view(), cfg).1.bits_per_pixel())
        .sum::<f64>()
        / c.len() as f64
}

#[test]
fn table1_codec_ordering_matches_paper() {
    // The adaptive models (especially CALIC's 1024 contexts) need the full
    // 512x512 images to warm up; at smaller sizes the CALIC/proposed gap
    // (0.05 bpp in the paper) is inside the cold-start noise.
    let c = corpus::generate(512);
    let n = c.len() as f64;
    let mut sums = [0.0f64; 4]; // jpegls, slp, calic, proposed
    for (_, img) in &c {
        let (j, s, ca, p) = cbic_bench::measure_image(img);
        sums[0] += j;
        sums[1] += s;
        sums[2] += ca;
        sums[3] += p;
    }
    let [jpegls, slp, calic, proposed] = sums.map(|s| s / n);

    // The paper's Table 1 ordering: CALIC 4.50 < proposed 4.55 <
    // JPEG-LS 4.66 ~ SLP 4.63.
    assert!(
        calic <= proposed,
        "CALIC ({calic:.3}) must not lose to the proposed codec ({proposed:.3})"
    );
    assert!(
        proposed < jpegls,
        "proposed ({proposed:.3}) must beat JPEG-LS ({jpegls:.3})"
    );
    assert!(
        proposed < slp,
        "proposed ({proposed:.3}) must beat SLP ({slp:.3})"
    );
    // The gap to CALIC is small (the paper: 0.05 bpp), nothing dramatic.
    assert!(
        proposed - calic < 0.15,
        "proposed trails CALIC by {:.3} bpp, expected a small gap",
        proposed - calic
    );
}

#[test]
fn table1_image_hardness_ordering() {
    let cfg = CodecConfig::default();
    let c = corpus::generate(SIZE);
    let bpp: std::collections::HashMap<&str, f64> = c
        .iter()
        .map(|(n, img)| (n.name(), encode_raw(img.view(), &cfg).1.bits_per_pixel()))
        .collect();
    // Paper row order (easiest to hardest): zelda < lena < boat < peppers
    // < goldhill ~ barb < mandrill. We assert the robust extremes plus the
    // smooth-vs-textured split.
    for name in ["barb", "boat", "goldhill", "lena", "peppers", "zelda"] {
        assert!(
            bpp[name] < bpp["mandrill"],
            "{name} ({}) must be easier than mandrill ({})",
            bpp[name],
            bpp["mandrill"]
        );
        if name != "zelda" {
            assert!(
                bpp[name] > bpp["zelda"],
                "{name} ({}) must be harder than zelda ({})",
                bpp[name],
                bpp["zelda"]
            );
        }
    }
    assert!(bpp["lena"] < bpp["goldhill"]);
    assert!(bpp["lena"] < bpp["barb"]);
}

#[test]
fn fig4_narrow_counters_cost_bits_and_escapes() {
    let c = corpus::generate(SIZE);
    let run = |bits: u8| -> (f64, u64) {
        let cfg = CodecConfig {
            estimator: EstimatorConfig {
                count_bits: bits,
                ..EstimatorConfig::default()
            },
            ..CodecConfig::default()
        };
        let mut bpp = 0.0;
        let mut escapes = 0;
        for (_, img) in &c {
            let stats = encode_raw(img.view(), &cfg).1;
            bpp += stats.bits_per_pixel();
            escapes += stats.escapes;
        }
        (bpp / c.len() as f64, escapes)
    };
    let (bpp10, esc10) = run(10);
    let (bpp14, esc14) = run(14);
    // Fig. 4: the 10-bit point sits clearly above the 14-bit point...
    assert!(
        bpp10 > bpp14 + 0.01,
        "10-bit ({bpp10:.3}) must cost more than 14-bit ({bpp14:.3})"
    );
    // ...because narrow counters rescale constantly and escape more (the
    // paper: "when too few bits are used, more escapes happen").
    assert!(
        esc10 > esc14 * 5,
        "10-bit escapes ({esc10}) should dwarf 14-bit escapes ({esc14})"
    );
}

#[test]
fn paper_claim_error_feedback_improves_ratio() {
    let with = corpus_avg(&CodecConfig::default());
    let without = corpus_avg(&CodecConfig {
        error_feedback: false,
        ..CodecConfig::default()
    });
    assert!(
        with < without,
        "error feedback must help: {with:.4} vs {without:.4}"
    );
}

#[test]
fn paper_claim_aging_slightly_improves_ratio() {
    let aged = corpus_avg(&CodecConfig::default());
    let frozen = corpus_avg(&CodecConfig {
        aging: false,
        ..CodecConfig::default()
    });
    // "Experimental results prove that this rescaling technique slightly
    // improves the compression ratio."
    assert!(aged < frozen, "aging must help: {aged:.4} vs {frozen:.4}");
    assert!(
        frozen - aged < 0.1,
        "aging is a *slight* improvement, got {:.4}",
        frozen - aged
    );
}

#[test]
fn paper_claim_lut_division_is_free() {
    let lut = corpus_avg(&CodecConfig::default());
    let exact = corpus_avg(&CodecConfig {
        division: DivisionKind::Exact,
        ..CodecConfig::default()
    });
    // "Although the result of division is only an approximation, it does
    // not affect the compression performance in our experiments."
    assert!(
        (lut - exact).abs() < 0.01,
        "LUT vs exact division: {lut:.4} vs {exact:.4}"
    );
}

#[test]
fn more_texture_contexts_help_monotonically_enough() {
    // A3: growing the compound-context set 8 -> 512 must not hurt, and the
    // full 512 should beat the context-free variant.
    let full = corpus_avg(&CodecConfig::default()); // 6 texture bits
    let none = corpus_avg(&CodecConfig {
        texture_bits: 0,
        ..CodecConfig::default()
    });
    assert!(
        full <= none + 0.005,
        "512 contexts ({full:.4}) should beat 8 contexts ({none:.4})"
    );
}

#[test]
fn compression_beats_order0_entropy_on_every_corpus_image() {
    let cfg = CodecConfig::default();
    for (name, img) in corpus::generate(SIZE) {
        let bpp = encode_raw(img.view(), &cfg).1.bits_per_pixel();
        assert!(
            bpp < img.entropy(),
            "{name:?}: {bpp:.3} bpp should beat order-0 {:.3}",
            img.entropy()
        );
    }
}
