//! The view-API redesign, locked down: encoding through borrowed, strided
//! [`ImageView`]s is byte-identical to encoding owned copies (stride can
//! never leak into the bits), and 8–16-bit sample depths round-trip
//! losslessly through every registry codec, the universal dispatcher, and
//! the tiled + streaming paths.

use cbic::core::stream::{compress_to, decompress_from};
use cbic::core::tiles::{compress_tiled, decompress_tiled, split_bands};
use cbic::core::CodecConfig;
use cbic::image::corpus::CorpusImage;
use cbic::image::{pgm, Image, ImageView};
use cbic::universal::dispatch::{Chunk, UniversalCodec};
use cbic::{DecodeOptions, EncodeOptions, Parallelism};
use proptest::prelude::*;

fn opts() -> (EncodeOptions, DecodeOptions) {
    (EncodeOptions::default(), DecodeOptions::default())
}

/// A deterministic deep test image: depth-scaled corpus-like content with
/// full use of the sample range.
fn deep_image(width: usize, height: usize, depth: u8) -> Image {
    let modulus = if depth == 16 { 65536u32 } else { 1u32 << depth };
    Image::from_fn16(width, height, depth, |x, y| {
        (((x * x + 3 * y) as u32 * 1103 + (x * y) as u32 * 13) % modulus) as u16
    })
}

#[test]
fn every_codec_is_stride_blind() {
    // A band view and an interior crop of a larger image must encode to
    // exactly the bytes of their owned contiguous copies.
    let img = CorpusImage::Barb.generate(48, 40);
    let (enc, _) = opts();
    let windows: Vec<ImageView<'_>> = vec![
        img.view(),
        img.view().row_range(7, 21),
        img.view().crop(5, 3, 31, 29),
        img.view().crop(17, 0, 31, 40),
    ];
    for codec in cbic::all_codecs() {
        for (i, window) in windows.iter().enumerate() {
            let from_view = codec.encode_vec(*window, &enc).unwrap();
            let from_copy = codec.encode_vec(window.to_image().view(), &enc).unwrap();
            assert_eq!(
                from_view,
                from_copy,
                "{} window {i}: stride leaked into the bits",
                codec.name()
            );
        }
    }
}

#[test]
fn split_bands_is_zero_copy_and_matches_owned_encodes() {
    let img = CorpusImage::Lena.generate(40, 37);
    let cfg = CodecConfig::default();
    for tiles in [1, 3, 5] {
        let bands = split_bands(img.view(), tiles);
        let mut y0 = 0;
        for band in &bands {
            // Zero-copy: the band's rows are the image's rows.
            assert_eq!(band.row(0), img.row(y0));
            // Differential: band view encode == owned band encode.
            let (from_view, _) = cbic::core::encode_raw(*band, &cfg);
            let (from_copy, _) = cbic::core::encode_raw(band.to_image().view(), &cfg);
            assert_eq!(from_view, from_copy);
            y0 += band.height();
        }
    }
}

#[test]
fn sixteen_bit_roundtrips_through_every_registry_codec() {
    let registry = cbic::default_registry();
    let (enc, dec) = opts();
    for depth in [9u8, 12, 16] {
        let img = deep_image(33, 29, depth);
        for codec in registry.codecs() {
            let bytes = codec.encode_vec(img.view(), &enc).unwrap();
            let back = codec.decode_vec(&bytes, &dec).unwrap();
            assert_eq!(back, img, "{} at depth {depth}", codec.name());
            assert_eq!(back.bit_depth(), depth, "{}", codec.name());
            // Deep containers must still auto-detect by magic.
            assert_eq!(
                registry.detect(&bytes).map(|c| c.name()),
                Some(codec.name()),
                "detection lost at depth {depth}"
            );
            assert_eq!(registry.decode_auto(&bytes, &dec).unwrap(), img);
        }
    }
}

#[test]
fn sixteen_bit_universal_dispatch_roundtrips() {
    let codec = UniversalCodec::default();
    let chunks = vec![
        Chunk::Data(b"deep imagery manifest\n".repeat(10)),
        Chunk::Image(deep_image(24, 24, 16)),
        Chunk::Image(CorpusImage::Zelda.generate(24, 24)),
        Chunk::Image(deep_image(16, 31, 12)),
    ];
    let bytes = codec.encode(&chunks);
    assert_eq!(codec.decode(&bytes).unwrap(), chunks);
}

#[test]
fn sixteen_bit_tiled_and_streaming_paths_roundtrip() {
    let cfg = CodecConfig::default();
    for depth in [10u8, 16] {
        let img = deep_image(40, 33, depth);
        // Tiled, sequential and parallel.
        for tiles in [2, 4] {
            let bytes = compress_tiled(img.view(), &cfg, tiles, Parallelism::Auto);
            assert_eq!(
                decompress_tiled(&bytes, Parallelism::Threads(3)).unwrap(),
                img,
                "depth {depth}, {tiles} tiles"
            );
        }
        // Row streaming, byte-identical to buffered.
        let streamed = compress_to(img.view(), &cfg, Vec::new()).unwrap();
        assert_eq!(streamed, cbic::core::compress(img.view(), &cfg));
        assert_eq!(decompress_from(&streamed[..]).unwrap(), img);
    }
}

#[test]
fn sixteen_bit_pgm_to_codec_to_pgm() {
    // The acceptance path: PGM in, any registry codec, PGM out, losslessly.
    let registry = cbic::default_registry();
    let (enc, dec) = opts();
    let img = deep_image(21, 17, 16);
    let pgm_bytes = pgm::encode(&img);
    let loaded = pgm::decode(&pgm_bytes).unwrap();
    assert_eq!(loaded, img);
    for codec in registry.codecs() {
        let container = codec.encode_vec(loaded.view(), &enc).unwrap();
        let decoded = codec.decode_vec(&container, &dec).unwrap();
        let out = pgm::encode(&decoded);
        assert_eq!(out, pgm_bytes, "{} PGM roundtrip", codec.name());
    }
}

proptest! {
    /// Differential property: for every registry codec, an arbitrary
    /// interior window encodes byte-identically through the borrowed view
    /// and through its owned copy.
    #[test]
    fn arbitrary_windows_are_stride_blind(
        seed in 0u64..512,
        x0 in 0usize..12,
        y0 in 0usize..12,
        w in 4usize..20,
        h in 4usize..20,
    ) {
        let img = Image::from_fn(32, 32, |x, y| {
            (128.0 + 90.0 * cbic::image::synth::fbm(seed, x as f64, y as f64, 6.0, 3, 0.5)) as u8
        });
        let w = w.min(32 - x0);
        let h = h.min(32 - y0);
        let window = img.view().crop(x0, y0, w, h);
        let (enc, _) = opts();
        for codec in cbic::all_codecs() {
            let a = codec.encode_vec(window, &enc).unwrap();
            let b = codec.encode_vec(window.to_image().view(), &enc).unwrap();
            prop_assert_eq!(a, b, "{} leaked the stride", codec.name());
        }
    }

    /// Arbitrary deep images round-trip losslessly through every registry
    /// codec and keep their declared depth.
    #[test]
    fn arbitrary_deep_images_roundtrip(
        w in 1usize..14,
        h in 1usize..14,
        depth in 9u8..=16,
        seed in any::<u64>(),
    ) {
        let mask = if depth == 16 { u16::MAX } else { (1u16 << depth) - 1 };
        let mut state = seed | 1;
        let img = Image::from_fn16(w, h, depth, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as u16) & mask
        });
        let (enc, dec) = opts();
        for codec in cbic::all_codecs() {
            let bytes = codec.encode_vec(img.view(), &enc).unwrap();
            let back = codec.decode_vec(&bytes, &dec).unwrap();
            prop_assert_eq!(&back, &img, "{} at depth {}", codec.name(), depth);
            prop_assert_eq!(back.bit_depth(), depth);
        }
    }
}
