//! Golden-corpus regression fixtures: the compressed bitstream of every
//! registry codec on a panel of synthetic image classes is checked in
//! under `tests/golden/`, and each fresh encode is byte-compared against
//! its fixture.
//!
//! Any change to the bitstream — an estimator tweak, a reordered decision,
//! a container field — shows up as a failing diff here instead of a silent
//! format break. If a change is *intentional*, regenerate the fixtures
//! with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```
//!
//! and commit the resulting `tests/golden/*.bin` files together with the
//! change that moved the bits.

use cbic::image::corpus::CorpusImage;
use cbic::universal::dispatch::{Chunk, UniversalCodec};
use std::path::PathBuf;

/// Fixture image size: small enough that the whole corpus stays a few
/// kilobytes, large enough to exercise adaptation and escapes.
const SIZE: usize = 32;

/// One fixture per codec per image class: a smooth portrait stand-in, an
/// oriented texture, and a high-frequency one.
const CLASSES: [CorpusImage; 3] = [CorpusImage::Lena, CorpusImage::Barb, CorpusImage::Mandrill];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn check(name: &str, fresh: &[u8]) {
    let path = golden_dir().join(format!("{name}.bin"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, fresh).expect("write fixture");
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run UPDATE_GOLDEN=1 cargo test --test golden",
            path.display()
        )
    });
    if golden != fresh {
        let first_diff = golden
            .iter()
            .zip(fresh.iter())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| golden.len().min(fresh.len()));
        panic!(
            "bitstream drift for {name}: fixture {} bytes, fresh {} bytes, first diff at \
             offset {first_diff}.\nIf this change is intentional, regenerate with \
             UPDATE_GOLDEN=1 cargo test --test golden and commit the new fixtures.",
            golden.len(),
            fresh.len()
        );
    }
}

#[test]
fn every_registry_codec_matches_its_golden_fixtures() {
    let registry = cbic::default_registry();
    let enc = cbic::EncodeOptions::default();
    let dec = cbic::DecodeOptions::default();
    for codec in registry.codecs() {
        for class in CLASSES {
            let img = class.generate(SIZE, SIZE);
            let bytes = codec.encode_vec(img.view(), &enc).unwrap();
            check(
                &format!("{}_{}_{}", codec.name(), class.name(), SIZE),
                &bytes,
            );
            // The fixture must also still decode to the source image, so a
            // decoder regression cannot hide behind a matching encoder.
            assert_eq!(
                codec.decode_vec(&bytes, &dec).unwrap(),
                img,
                "{} on {:?}",
                codec.name(),
                class
            );
        }
    }
}

#[test]
fn universal_container_matches_its_golden_fixture() {
    let codec = UniversalCodec::default();
    let chunks = vec![
        Chunk::Data(b"status: nominal; queue: empty\n".repeat(8)),
        Chunk::Image(CorpusImage::Zelda.generate(SIZE, SIZE)),
    ];
    let bytes = codec.encode(&chunks);
    check("universal_mixed", &bytes);
    assert_eq!(codec.decode(&bytes).unwrap(), chunks);
}

#[test]
fn lane_striped_containers_match_their_golden_fixtures() {
    // Container v3: the proposed codec with the decision stream striped
    // round-robin across independent coder lanes. Two lane counts pin the
    // framing (lane byte + length table) and the striping order itself.
    use cbic::core::{compress_with_lanes, decompress, CodecConfig};
    for lanes in [4usize, 8] {
        for class in CLASSES {
            let img = class.generate(SIZE, SIZE);
            let bytes = compress_with_lanes(img.view(), &CodecConfig::default(), lanes);
            check(
                &format!("proposed_lanes{lanes}_{}_{}", class.name(), SIZE),
                &bytes,
            );
            assert_eq!(decompress(&bytes).unwrap(), img, "lanes={lanes}");
        }
    }
}

#[test]
fn legacy_fixtures_stay_on_pre_lane_container_versions() {
    // Lane striping added container v3, but single-lane streams must keep
    // the exact pre-lane format: decode the committed v1 fixtures straight
    // off disk and check their version byte. (Skipped while regenerating —
    // the fixtures may not exist yet on a fresh checkout.)
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        return;
    }
    for class in CLASSES {
        let path = golden_dir().join(format!("proposed_{}_{}.bin", class.name(), SIZE));
        let bytes = std::fs::read(&path).expect("committed fixture");
        assert_eq!(bytes[4], 1, "single-lane fixtures stay container v1");
        assert_eq!(
            cbic::core::decompress(&bytes).unwrap(),
            class.generate(SIZE, SIZE),
            "{class:?}"
        );
    }
}

#[test]
fn grid_v4_containers_match_their_golden_fixtures() {
    // Container v4: the 2D tile grid with its seekable index. Two
    // geometries pin the index layout and the per-tile substream framing —
    // a 2×2 grid of single-lane tiles and a 4×4 grid of 4-lane tiles
    // (tile-local lane tables). Each fixture must also decode losslessly,
    // both whole and through a random-access crop.
    use cbic::core::grid::{compress_grid, decode_roi, decompress_grid, TileGeometry};
    use cbic::core::CodecConfig;
    use cbic::image::Parallelism;
    use cbic::Rect;
    let cfg = CodecConfig::default();
    for (grid_name, tile, lanes) in [("grid2x2", 16u32, 1usize), ("grid4x4", 8, 4)] {
        for class in CLASSES {
            let img = class.generate(SIZE, SIZE);
            let bytes = compress_grid(
                img.view(),
                &cfg,
                TileGeometry::new(tile, tile),
                lanes,
                Parallelism::Sequential,
            );
            assert_eq!(bytes[4], 4, "v4 version byte");
            check(
                &format!("proposed_{grid_name}_{}_{}", class.name(), SIZE),
                &bytes,
            );
            assert_eq!(
                decompress_grid(&bytes, Parallelism::Sequential).unwrap(),
                img,
                "{grid_name} on {class:?}"
            );
            // A crop straddling all four interior tile corners.
            let roi = Rect::new(tile - 3, tile - 3, 7, 7);
            assert_eq!(
                decode_roi(&bytes, roi, Parallelism::Sequential).unwrap(),
                img.view()
                    .crop(roi.x as usize, roi.y as usize, 7, 7)
                    .to_image(),
                "{grid_name} ROI on {class:?}"
            );
        }
    }
}

#[test]
fn pre_v4_fixtures_stay_byte_identical() {
    // Shipping container v4 must not move a single bit of v1–v3: pin the
    // checksum and length of every fixture that existed before the grid
    // subsystem. A mismatch here means an old container version changed —
    // that is a format break, never something to regenerate past.
    // (Skipped while regenerating, like the other committed-file checks.)
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        return;
    }
    const PRE_V4: [(&str, u32, usize); 22] = [
        ("calic_barb_32.bin", 0x4B52_924C, 900),
        ("calic_lena_32.bin", 0x58E8_1651, 846),
        ("calic_mandrill_32.bin", 0x63BC_7A0F, 940),
        ("jpegls_barb_32.bin", 0x936A_F0BE, 735),
        ("jpegls_lena_32.bin", 0x2682_7387, 662),
        ("jpegls_mandrill_32.bin", 0xEDA3_CF50, 933),
        ("proposed_barb_32.bin", 0xB82F_A693, 859),
        ("proposed_lanes4_barb_32.bin", 0x8D69_F991, 879),
        ("proposed_lanes4_lena_32.bin", 0x7629_15DF, 824),
        ("proposed_lanes4_mandrill_32.bin", 0x72DD_8446, 948),
        ("proposed_lanes8_barb_32.bin", 0x2761_43F3, 898),
        ("proposed_lanes8_lena_32.bin", 0x1406_5DFA, 840),
        ("proposed_lanes8_mandrill_32.bin", 0x4306_516B, 967),
        ("proposed_lena_32.bin", 0xDA99_2458, 803),
        ("proposed_mandrill_32.bin", 0x0BCA_39C8, 928),
        ("slp_barb_32.bin", 0x4A23_FCDF, 701),
        ("slp_lena_32.bin", 0x8C1E_8A3B, 648),
        ("slp_mandrill_32.bin", 0xEAB8_667D, 830),
        ("tiled_barb_32.bin", 0x032A_7ED5, 1063),
        ("tiled_lena_32.bin", 0x4A23_AD83, 1017),
        ("tiled_mandrill_32.bin", 0xF975_995F, 1099),
        ("universal_mixed.bin", 0x38CC_299E, 897),
    ];
    for (name, crc, len) in PRE_V4 {
        let bytes = std::fs::read(golden_dir().join(name))
            .unwrap_or_else(|e| panic!("pre-v4 fixture {name} must stay committed: {e}"));
        assert_eq!(bytes.len(), len, "{name} length drifted");
        assert_eq!(
            cbic::core::grid::crc32(&bytes),
            crc,
            "{name} bytes drifted — a pre-v4 container format changed"
        );
    }
}

#[test]
fn pre_v5_fixtures_stay_byte_identical() {
    // Shipping the v5 model-mode container (and the wide-hash model
    // behind it) must not move a single bit of any earlier container:
    // together with `pre_v4_fixtures_stay_byte_identical` this pins all
    // 28 fixtures that existed before v5. The classic path is the wire
    // default, so every one of them must survive the model dispatch
    // untouched.
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        return;
    }
    const V4_GRID: [(&str, u32, usize); 6] = [
        ("proposed_grid2x2_barb_32.bin", 0xE8CB_93F4, 1042),
        ("proposed_grid2x2_lena_32.bin", 0xE4AD_B1B4, 985),
        ("proposed_grid2x2_mandrill_32.bin", 0xBE44_31DA, 1073),
        ("proposed_grid4x4_barb_32.bin", 0x1DE2_51AF, 1589),
        ("proposed_grid4x4_lena_32.bin", 0x4D0F_D90F, 1564),
        ("proposed_grid4x4_mandrill_32.bin", 0x22CF_323A, 1608),
    ];
    for (name, crc, len) in V4_GRID {
        let bytes = std::fs::read(golden_dir().join(name))
            .unwrap_or_else(|e| panic!("pre-v5 fixture {name} must stay committed: {e}"));
        assert_eq!(bytes.len(), len, "{name} length drifted");
        assert_eq!(
            cbic::core::grid::crc32(&bytes),
            crc,
            "{name} bytes drifted — a pre-v5 container format changed"
        );
    }
}

#[test]
fn wide_model_containers_match_their_golden_fixtures() {
    // Container v5: the flat stream with the model-mode byte, carrying
    // the wide-hash context model at the wire-default bank count. One
    // fixture per corpus class pins the v5 header layout and the wide
    // model's coding behavior; each must also decode losslessly.
    use cbic::core::bigctx::DEFAULT_BANKS_LOG2;
    use cbic::core::{compress, decompress, CodecConfig, ModelMode};
    let cfg = CodecConfig {
        model: ModelMode::WideHash {
            banks_log2: DEFAULT_BANKS_LOG2,
        },
        ..CodecConfig::default()
    };
    for class in CLASSES {
        let img = class.generate(SIZE, SIZE);
        let bytes = compress(img.view(), &cfg);
        assert_eq!(bytes[4], 5, "wide streams ride container v5");
        check(&format!("proposed_wide_{}_{}", class.name(), SIZE), &bytes);
        assert_eq!(decompress(&bytes).unwrap(), img, "{class:?}");
    }
}

#[test]
fn streaming_encoder_matches_the_proposed_golden_fixtures() {
    // The streaming path must produce the exact fixture bytes too — the
    // golden corpus pins the format for *both* transports.
    use cbic::core::{stream::compress_to, CodecConfig};
    for class in CLASSES {
        let img = class.generate(SIZE, SIZE);
        let bytes = compress_to(img.view(), &CodecConfig::default(), Vec::new()).unwrap();
        check(&format!("proposed_{}_{}", class.name(), SIZE), &bytes);
    }
}
