//! Cross-crate integration: every codec in the workspace must round-trip
//! the shared corpus losslessly, through both the raw and container APIs,
//! and interoperate with the PGM pipeline.

use cbic::core::CodecConfig;
use cbic::image::corpus::{self, CorpusImage};
use cbic::image::{pgm, Image};

const SIZE: usize = 96;

#[test]
fn every_codec_roundtrips_the_whole_corpus() {
    for (name, img) in corpus::generate(SIZE) {
        // Proposed (container API).
        let bytes = cbic::core::compress(img.view(), &CodecConfig::default());
        assert_eq!(
            cbic::core::decompress(&bytes).unwrap(),
            img,
            "proposed on {name:?}"
        );
        // CALIC.
        let bytes = cbic::calic::compress(img.view());
        assert_eq!(
            cbic::calic::decompress(&bytes).unwrap(),
            img,
            "calic on {name:?}"
        );
        // JPEG-LS.
        let bytes = cbic::jpegls::compress(img.view(), &cbic::jpegls::JpeglsConfig::default());
        assert_eq!(
            cbic::jpegls::decompress(&bytes).unwrap(),
            img,
            "jpegls on {name:?}"
        );
        // SLP.
        let bytes = cbic::slp::compress(img.view());
        assert_eq!(
            cbic::slp::decompress(&bytes).unwrap(),
            img,
            "slp on {name:?}"
        );
    }
}

#[test]
fn pgm_to_codec_to_pgm_pipeline() {
    // The workflow a user with real images follows: PGM in, compress,
    // decompress, PGM out, bit-identical.
    let img = CorpusImage::Peppers.generate(SIZE, SIZE);
    let pgm_bytes = pgm::encode(&img);
    let loaded = pgm::decode(&pgm_bytes).unwrap();
    let compressed = cbic::core::compress(loaded.view(), &CodecConfig::default());
    let restored = cbic::core::decompress(&compressed).unwrap();
    assert_eq!(pgm::encode(&restored), pgm_bytes);
}

#[test]
fn containers_are_mutually_unintelligible() {
    // Feeding one codec's container to another must error, not crash or
    // silently decode.
    let img = CorpusImage::Boat.generate(32, 32);
    let core_bytes = cbic::core::compress(img.view(), &CodecConfig::default());
    assert!(cbic::jpegls::decompress(&core_bytes).is_err());
    assert!(cbic::calic::decompress(&core_bytes).is_err());
    assert!(cbic::slp::decompress(&core_bytes).is_err());
    let ls_bytes = cbic::jpegls::compress(img.view(), &cbic::jpegls::JpeglsConfig::default());
    assert!(cbic::core::decompress(&ls_bytes).is_err());
}

#[test]
fn extreme_images_roundtrip_everywhere() {
    let cases: Vec<(&str, Image)> = vec![
        ("all_black", Image::from_fn(40, 40, |_, _| 0)),
        ("all_white", Image::from_fn(40, 40, |_, _| 255)),
        (
            "checkerboard",
            Image::from_fn(40, 40, |x, y| ((x + y) % 2 * 255) as u8),
        ),
        (
            "vertical_bars",
            Image::from_fn(40, 40, |x, _| ((x % 2) * 255) as u8),
        ),
        (
            "impulse",
            Image::from_fn(40, 40, |x, y| if (x, y) == (20, 20) { 255 } else { 0 }),
        ),
        ("single_pixel", Image::from_fn(1, 1, |_, _| 137)),
        ("one_row", Image::from_fn(64, 1, |x, _| (x * 4) as u8)),
        ("one_col", Image::from_fn(1, 64, |_, y| (y * 4) as u8)),
    ];
    for (name, img) in &cases {
        let b = cbic::core::compress(img.view(), &CodecConfig::default());
        assert_eq!(&cbic::core::decompress(&b).unwrap(), img, "core on {name}");
        let b = cbic::calic::compress(img.view());
        assert_eq!(
            &cbic::calic::decompress(&b).unwrap(),
            img,
            "calic on {name}"
        );
        let b = cbic::jpegls::compress(img.view(), &cbic::jpegls::JpeglsConfig::default());
        assert_eq!(
            &cbic::jpegls::decompress(&b).unwrap(),
            img,
            "jpegls on {name}"
        );
        let b = cbic::slp::compress(img.view());
        assert_eq!(&cbic::slp::decompress(&b).unwrap(), img, "slp on {name}");
    }
}

#[test]
fn facade_reexports_are_usable_together() {
    // One program using every layer through the facade.
    let img = CorpusImage::Zelda.generate(48, 48);
    let mut w = cbic::bitio::BitWriter::new();
    cbic::rice::encode(&mut w, 42, 3);
    let rice_bytes = w.into_bytes();
    let mut r = cbic::bitio::BitReader::new(&rice_bytes);
    assert_eq!(cbic::rice::decode(&mut r, 3), Some(42));

    let lut = cbic::hw::divlut::DivLut::new();
    assert_eq!(lut.table_bytes(), 1024);

    let (payload, stats) = cbic::core::encode_raw(img.view(), &CodecConfig::default());
    assert!(stats.bits_per_pixel() > 0.0);
    assert_eq!(
        cbic::core::decode_raw(&payload, 48, 48, 8, &CodecConfig::default()),
        img
    );
}

#[test]
fn codec_trait_objects_are_interchangeable() {
    // The registry is the single source of codecs; nothing is hand-listed.
    let codecs = cbic::all_codecs();
    let img = CorpusImage::Goldhill.generate(64, 64);
    let enc = cbic::EncodeOptions::default();
    let dec = cbic::DecodeOptions::default();
    let mut seen = std::collections::HashSet::new();
    for codec in &codecs {
        assert!(seen.insert(codec.name()), "duplicate codec name");
        let bytes = codec.encode_vec(img.view(), &enc).unwrap();
        assert_eq!(
            codec.decode_vec(&bytes, &dec).unwrap(),
            img,
            "{}",
            codec.name()
        );
        let bpp = codec.bits_per_pixel(img.view(), &enc).unwrap();
        assert!(bpp > 0.0 && bpp < 8.0, "{}: {bpp}", codec.name());
        // Cross-feeding another codec's container must error.
        for other in &codecs {
            if other.name() != codec.name() {
                assert!(
                    other.decode_vec(&bytes, &dec).is_err(),
                    "{} accepted a {} container",
                    other.name(),
                    codec.name()
                );
            }
        }
    }
}

#[test]
fn random_garbage_never_panics_any_decoder() {
    // Deterministic pseudo-random garbage, with and without valid magics:
    // every decoder must return an error or garbage pixels, never panic.
    use cbic::image::synth::lattice;
    for seed in 0..20u64 {
        let len = 16 + (seed as usize * 37) % 200;
        let mut garbage: Vec<u8> = (0..len)
            .map(|i| (lattice(seed, i as i64, 0) * 256.0) as u8)
            .collect();
        let registry = cbic::default_registry();
        let opts = cbic::DecodeOptions::default();
        let _ = cbic::core::decompress(&garbage);
        let _ = cbic::calic::decompress(&garbage);
        let _ = cbic::jpegls::decompress(&garbage);
        let _ = cbic::slp::decompress(&garbage);
        let _ = cbic::core::tiles::decompress_tiled(&garbage, cbic::core::Parallelism::Auto);
        let _ = registry.decode_auto(&garbage, &opts);
        // Now with a valid magic but garbage bodies (small dims so a
        // "successful" garbage decode stays cheap).
        for magic in [b"CBIC", b"CBCA", b"CBLS", b"CBSL", b"CBTI"] {
            garbage[..4].copy_from_slice(magic);
            garbage[4..12].copy_from_slice(&[1, 1, 16, 0, 0, 0, 16, 0]);
            let _ = cbic::core::decompress(&garbage);
            let _ = cbic::calic::decompress(&garbage);
            let _ = cbic::jpegls::decompress(&garbage);
            let _ = cbic::slp::decompress(&garbage);
            let _ = cbic::core::tiles::decompress_tiled(&garbage, cbic::core::Parallelism::Auto);
            let _ = registry.decode_auto(&garbage, &opts);
        }
    }
}
