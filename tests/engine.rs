//! Engine-parity differential suite: every coding path in the workspace
//! drives the one `cbic_core::engine` datapath, so every encoder must
//! produce byte-identical streams and every decoder must reconstruct
//! identically — across bit depths 1..=16, strided views, and the
//! `CodecConfig` sweep (texture/count bits, division kinds, feedback and
//! aging toggles).
//!
//! These proptests are the lock on the tentpole refactor: any divergence
//! between `encode_raw`, the pixel-streaming `HwEncoder`, the
//! bounded-memory `StreamEncoder`, and the reusable session path is a
//! failure here before it is a corrupted stream in the wild.

use cbic::core::hwpipe::{HwDecoder, HwEncoder};
use cbic::core::session::{DecoderSession, EncoderSession};
use cbic::core::stream::{compress_to, decompress_from};
use cbic::core::{compress, decompress, encode_raw, CodecConfig, DivisionKind, ModelMode};
use cbic::image::Image;
use cbic_arith::EstimatorConfig;
use cbic_bitio::BitReader;
use proptest::prelude::*;

/// Arbitrary images at arbitrary 1..=16-bit depths, samples masked to the
/// depth.
fn arb_any_depth_image() -> impl Strategy<Value = Image> {
    (1usize..24, 1usize..24, 1u8..=16).prop_flat_map(|(w, h, depth)| {
        proptest::collection::vec(any::<u16>(), w * h).prop_map(move |data| {
            let mask = if depth == 16 {
                u16::MAX
            } else {
                (1u16 << depth) - 1
            };
            let data = data.into_iter().map(|v| v & mask).collect();
            Image::from_samples(w, h, depth, data).expect("masked to depth")
        })
    })
}

/// The full configuration sweep the container can carry, including both
/// context-model modes (classic compound and wide-hash banks across the
/// header's `banks_log2` range).
fn arb_config() -> impl Strategy<Value = CodecConfig> {
    (
        10u8..=16,
        1u16..=64,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0u8..=6,
        (any::<bool>(), 4u8..=12),
    )
        .prop_map(
            |(count_bits, increment, feedback, aging, exact, texture_bits, (wide, banks))| {
                CodecConfig {
                    estimator: EstimatorConfig {
                        count_bits,
                        increment,
                        ..EstimatorConfig::default()
                    },
                    error_feedback: feedback,
                    aging,
                    division: if exact {
                        DivisionKind::Exact
                    } else {
                        DivisionKind::Lut
                    },
                    texture_bits,
                    model: if wide {
                        ModelMode::WideHash { banks_log2: banks }
                    } else {
                        ModelMode::Classic
                    },
                }
            },
        )
}

/// Encode `img` through all four entry points, asserting the raw payload
/// (and container where applicable) is byte-identical everywhere, then
/// decode through all four dual paths and assert pixel-exact recovery.
fn assert_all_paths_agree(img: &Image, cfg: &CodecConfig) {
    // 1. The algorithmic reference.
    let (raw, stats) = encode_raw(img.view(), cfg);
    assert_eq!(stats.pixels as usize, img.pixel_count());

    // 2. The hardware model: one pixel per call through the line buffers.
    let mut hw = HwEncoder::with_sink(
        img.width(),
        img.bit_depth(),
        cfg,
        cbic_bitio::BitWriter::new(),
    );
    for row in img.view().rows() {
        for &px in row {
            hw.push_pixel(px);
        }
    }
    let hw_bytes = hw.finish_sink().into_bytes();
    assert_eq!(hw_bytes, raw, "HwEncoder diverged from encode_raw");

    // 3. The bounded-memory streaming encoder (emits the container).
    let container = compress(img.view(), cfg);
    let streamed = compress_to(img.view(), cfg, Vec::new()).expect("Vec sink");
    assert_eq!(streamed, container, "StreamEncoder diverged from compress");
    assert_eq!(
        &container[container.len() - raw.len()..],
        &raw[..],
        "container payload diverged from encode_raw"
    );

    // 4. The reusable session (fresh here; reuse is exercised separately).
    let mut session = EncoderSession::new(cfg);
    let mut session_bytes = Vec::new();
    session
        .encode(img.view(), &mut session_bytes)
        .expect("Vec sink");
    assert_eq!(
        session_bytes, container,
        "EncoderSession diverged from compress"
    );

    // Decode side: all four duals must reconstruct the image exactly.
    assert_eq!(&decompress(&container).expect("own container"), img);
    assert_eq!(&decompress_from(&container[..]).expect("own stream"), img);
    let mut dec_session = DecoderSession::new();
    assert_eq!(
        &dec_session.decode(&mut &container[..]).expect("session"),
        img
    );
    let mut hw_dec =
        HwDecoder::with_source(BitReader::new(&raw), img.width(), img.bit_depth(), cfg);
    for (y, row) in img.view().rows().enumerate() {
        for (x, &px) in row.iter().enumerate() {
            assert_eq!(hw_dec.next_pixel(), px, "HwDecoder at ({x},{y})");
        }
    }
}

proptest! {
    /// The tentpole lock: all four encode paths and all four decode paths
    /// agree on arbitrary content at arbitrary depth under the default
    /// configuration.
    #[test]
    fn all_paths_agree_across_depths(img in arb_any_depth_image()) {
        assert_all_paths_agree(&img, &CodecConfig::default());
    }

    /// The same equivalence under the full configuration sweep.
    #[test]
    fn all_paths_agree_across_configs(img in arb_any_depth_image(), cfg in arb_config()) {
        assert_all_paths_agree(&img, &cfg);
    }

    /// Strided band/crop views feed the engine identically to their
    /// contiguous copies at every depth — the stride can never leak into
    /// the bits.
    #[test]
    fn strided_views_encode_identically_at_any_depth(
        img in arb_any_depth_image(),
        frac in 0u8..4,
    ) {
        let (w, h) = img.dimensions();
        let x0 = (usize::from(frac) * w / 5).min(w - 1);
        let y0 = (usize::from(frac) * h / 5).min(h - 1);
        let window = img.view().crop(x0, y0, w - x0, h - y0);
        let cfg = CodecConfig::default();
        let (from_view, _) = encode_raw(window, &cfg);
        let (from_copy, _) = encode_raw(window.to_image().view(), &cfg);
        prop_assert_eq!(from_view, from_copy);
    }

    /// A session reused across a random mixed-depth batch stays
    /// byte-identical to per-image fresh state, and the decoder session
    /// tracks it.
    #[test]
    fn session_reuse_is_byte_identical_across_random_batches(
        imgs in proptest::collection::vec(arb_any_depth_image(), 1..5),
        cfg in arb_config(),
    ) {
        let mut enc = EncoderSession::new(&cfg);
        let mut dec = DecoderSession::new();
        for img in &imgs {
            let mut out = Vec::new();
            enc.encode(img.view(), &mut out).expect("Vec sink");
            prop_assert_eq!(&out, &compress(img.view(), &cfg));
            prop_assert_eq!(&dec.decode(&mut &out[..]).expect("own container"), img);
        }
    }
}

#[test]
fn all_paths_agree_on_edge_shapes() {
    let cfg = CodecConfig::default();
    for depth in [1u8, 8, 16] {
        let max = if depth == 16 {
            u32::from(u16::MAX)
        } else {
            (1u32 << depth) - 1
        };
        for (w, h) in [(1, 1), (1, 9), (9, 1), (2, 2), (31, 3), (3, 31)] {
            let img = Image::from_fn16(w, h, depth, |x, y| {
                ((x as u32 * 97 + y as u32 * 31) % (max + 1)) as u16
            });
            assert_all_paths_agree(&img, &cfg);
        }
    }
}

#[test]
fn tiled_band_workers_run_the_same_engine() {
    // Each band of a tiled container is a standard stream; its payload
    // must equal encode_raw on the band view — i.e. the band workers
    // drive the same engine as every other path.
    use cbic::core::tiles::{compress_tiled, split_bands, Parallelism};
    let cfg = CodecConfig::default();
    let img = Image::from_fn16(40, 33, 12, |x, y| ((x * 101 + y * 13) % 4096) as u16);
    let tiles = 3;
    let container = compress_tiled(img.view(), &cfg, tiles, Parallelism::Sequential);
    let bands = split_bands(img.view(), tiles);
    let mut pos = 8; // CBTI magic + count
    for band in bands {
        let len_bytes: [u8; 4] = container[pos..pos + 4].try_into().unwrap();
        let len = u32::from_le_bytes(len_bytes) as usize;
        pos += 4;
        let frame = &container[pos..pos + len];
        pos += len;
        let (raw, _) = encode_raw(band, &cfg);
        assert_eq!(
            &frame[frame.len() - raw.len()..],
            &raw[..],
            "band payload diverged from the engine reference"
        );
    }
    assert_eq!(pos, container.len());
}
