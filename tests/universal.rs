//! End-to-end test of the Fig. 1 universal system: mixed content through
//! the dispatcher, with the front ends cross-checked against direct use.

use cbic::image::corpus::CorpusImage;
use cbic::universal::data::{DataModel, Order};
use cbic::universal::dispatch::{Chunk, ChunkReport, UniversalCodec};
use cbic::universal::video::{self, synthetic_sequence, VideoConfig};

#[test]
fn converged_channel_roundtrip() {
    // The paper's motivating scenario: visual and general data on one
    // channel, the compressor reconfiguring per chunk.
    let chunks = vec![
        Chunk::Data(b"packet log entry; ".repeat(300)),
        Chunk::Image(CorpusImage::Barb.generate(96, 96)),
        Chunk::Video(synthetic_sequence(64, 64, 5, 2, 1)),
        Chunk::Data((0u32..2000).flat_map(|i| i.to_le_bytes()).collect()),
        Chunk::Image(CorpusImage::Mandrill.generate(64, 64)),
    ];
    let codec = UniversalCodec::default();
    let (bytes, reports) = codec.encode_with_report(&chunks);
    assert_eq!(reports.len(), chunks.len());
    assert_eq!(codec.decode(&bytes).unwrap(), chunks);
}

#[test]
fn dispatcher_image_path_equals_direct_codec() {
    // Routing an image through the universal container must cost exactly
    // the image codec's own container (plus the fixed chunk header).
    let img = CorpusImage::Lena.generate(96, 96);
    let codec = UniversalCodec::default();
    let (_, reports) = codec.encode_with_report(&[Chunk::Image(img.clone())]);
    let direct = codec
        .image_codec
        .encode_vec(img.view(), &cbic::EncodeOptions::default())
        .unwrap();
    match &reports[0] {
        ChunkReport::Image(bits) => assert_eq!(*bits, direct.len() as u64 * 8),
        other => panic!("expected image report, got {other:?}"),
    }
}

#[test]
fn dispatcher_accepts_any_registered_image_codec() {
    // The decoder routes image chunks by container magic, so streams from
    // differently configured encoders — even mixed codecs — all decode.
    let img = CorpusImage::Goldhill.generate(48, 48);
    for boxed in cbic::all_codecs() {
        // The registry entry *is* the multiplexer's front-end handle now —
        // one Codec trait serves both.
        let front_end: Box<dyn cbic::Codec> = boxed;
        let encoder = UniversalCodec {
            image_codec: front_end.into(),
            ..UniversalCodec::default()
        };
        let name = encoder.image_codec.name();
        let bytes = encoder.encode(&[Chunk::Image(img.clone())]);
        let decoded = UniversalCodec::default().decode(&bytes).unwrap();
        assert_eq!(decoded, vec![Chunk::Image(img.clone())], "{name}");
    }
}

#[test]
fn video_front_end_beats_intra_coding_on_motion() {
    let frames = synthetic_sequence(96, 96, 6, 2, 1);
    let cfg = VideoConfig::default();
    let (_, stats) = video::encode_frames(&frames, &cfg);
    // All-intra cost of the same frames.
    let intra: u64 = frames
        .iter()
        .map(|f| cbic::core::encode_raw(f.view(), &cfg.codec).1.payload_bits)
        .sum();
    assert!(
        stats.payload_bits * 2 < intra,
        "inter {} bits should be well under half of all-intra {} bits",
        stats.payload_bits,
        intra
    );
}

#[test]
fn data_model_orders_trade_memory_for_ratio() {
    let text = std::fs::read("Cargo.toml").unwrap_or_else(|_| b"fallback content ".repeat(500));
    let text = text.repeat(3);
    let o0 = DataModel::new(Order::Zero).encode(&text).1.bits_per_byte();
    let o1 = DataModel::new(Order::One).encode(&text).1.bits_per_byte();
    assert!(
        o1 < o0,
        "order-1 ({o1:.3}) must beat order-0 ({o0:.3}) on TOML"
    );
    assert!(o1 < 8.0, "real text must compress");
}

#[test]
fn image_and_data_models_suit_their_own_content() {
    // "Fast adaptation to the nature of the data": the image front end
    // must beat the byte model on images.
    let img = CorpusImage::Zelda.generate(128, 128);
    let image_bits = cbic::core::encode_raw(img.view(), &Default::default())
        .1
        .payload_bits;
    let raw_bytes: Vec<u8> = img.samples().iter().map(|&s| s as u8).collect();
    let data_bits = DataModel::new(Order::One).encode(&raw_bytes).1.payload_bits;
    assert!(
        image_bits < data_bits,
        "image model {image_bits} vs byte model {data_bits} on an image"
    );
}
