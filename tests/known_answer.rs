//! Known-answer tests: the exact bitstreams for a fixed reference input.
//!
//! These pin the on-disk formats. Any change to a predictor rule, context
//! quantizer, counter update, or coder detail shows up here as a byte
//! diff — deliberate format changes must update these vectors (and bump
//! the container version).

use cbic::image::Image;

/// The fixed 8×8 reference pattern (a wrapping two-gradient ramp).
fn reference_image() -> Image {
    Image::from_fn(8, 8, |x, y| ((x * 13 + y * 29) % 256) as u8)
}

#[test]
fn proposed_codec_bitstream_is_pinned() {
    let (bytes, _) = cbic::core::encode_raw(reference_image().view(), &Default::default());
    assert_eq!(
        bytes,
        [
            240, 23, 29, 165, 51, 150, 14, 192, 172, 221, 81, 223, 80, 46, 60, 102, 184, 94, 124,
            184, 70, 225, 156, 87, 141, 238, 203, 137, 170, 87, 15, 47, 96, 119, 15, 238, 95, 124,
            16, 8, 110, 143, 33, 85, 65, 160, 252, 249, 42
        ],
        "the proposed codec's bitstream changed — format break!"
    );
}

#[test]
fn jpegls_bitstream_is_pinned() {
    let (bytes, _) = cbic::jpegls::encode_raw(reference_image().view(), &Default::default());
    assert_eq!(
        bytes,
        [
            128, 160, 80, 42, 234, 166, 136, 0, 24, 12, 194, 202, 36, 128, 24, 0, 13, 238, 107, 24,
            67, 14, 59, 187, 179, 22, 109, 153, 153, 152, 163, 74, 170, 170, 164, 153, 85, 86, 217,
            70, 27, 108, 6, 128, 0, 80
        ],
        "the JPEG-LS bitstream changed — format break!"
    );
}

#[test]
fn calic_bitstream_is_pinned() {
    let (bytes, _) = cbic::calic::encode_raw(reference_image().view(), &Default::default());
    assert_eq!(
        bytes,
        [
            240, 23, 29, 165, 51, 150, 13, 10, 199, 11, 224, 133, 13, 182, 43, 251, 56, 126, 89,
            113, 182, 169, 250, 97, 42, 38, 203, 234, 49, 41, 190, 77, 64, 130, 57, 252, 117, 73,
            109, 15, 73, 19, 240, 182, 53, 150, 172, 160
        ],
        "the CALIC bitstream changed — format break!"
    );
}

#[test]
fn slp_bitstream_is_pinned() {
    let (bytes, _) = cbic::slp::encode_raw(reference_image().view());
    assert_eq!(
        bytes,
        [
            0, 0, 1, 254, 154, 3, 48, 178, 137, 32, 120, 12, 6, 97, 101, 18, 96, 88, 12, 6, 97,
            101, 18, 96, 81, 100, 61, 205, 97, 70, 73, 99, 187, 185, 6, 30, 204, 204, 206, 46, 214,
            101, 85, 40, 178, 213, 84, 40, 0, 12, 6
        ],
        "the SLP bitstream changed — format break!"
    );
}

#[test]
fn corpus_is_pinned_by_checksum() {
    // The corpus generators feed every experiment; silent changes would
    // invalidate EXPERIMENTS.md. FNV-1a over each 64x64 stand-in.
    fn fnv(img: &Image) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &p in img.samples() {
            h ^= u64::from(p);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
    let sums: Vec<(String, u64)> = cbic::image::corpus::generate(64)
        .iter()
        .map(|(c, img)| (c.name().to_string(), fnv(img)))
        .collect();
    // If a generator changes deliberately, re-record with:
    //   cargo test -p cbic --test known_answer -- --nocapture corpus_is_pinned
    let expect: Vec<u64> = sums.iter().map(|(_, h)| *h).collect();
    println!("corpus checksums: {sums:?}");
    // Determinism: regenerate and compare.
    let again: Vec<u64> = cbic::image::corpus::generate(64)
        .iter()
        .map(|(_, img)| fnv(img))
        .collect();
    assert_eq!(expect, again, "corpus generation must be deterministic");
    // All distinct.
    let set: std::collections::HashSet<_> = expect.iter().collect();
    assert_eq!(set.len(), expect.len(), "corpus images must be distinct");
}
