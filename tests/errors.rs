//! The error-hierarchy contract: every legacy error converts into
//! [`CbicError`] structurally, every decoder failure on corrupted or
//! truncated input is a structured variant (never a panic, never a bare
//! string), and I/O error kinds survive the conversions.

use cbic::core::CodecError;
use cbic::image::corpus::CorpusImage;
use cbic::image::{Image, ImageError, RegistryError};
use cbic::universal::dispatch::{Chunk, UniversalCodec};
use cbic::universal::UniversalError;
use cbic::{CbicError, Codec, DecodeOptions, EncodeOptions};
use proptest::prelude::*;
use std::io;

// ---------------------------------------------------------------------------
// Exhaustive From conversions: one assertion per source variant.
// ---------------------------------------------------------------------------

/// `(source error, predicate over the converted CbicError)` pairs.
type ConversionCases<E> = Vec<(E, fn(&CbicError) -> bool)>;

#[test]
fn codec_error_conversions_cover_every_variant() {
    let cases: ConversionCases<CodecError> = vec![
        (CodecError::BadMagic, |e| {
            matches!(e, CbicError::BadMagic { found: None })
        }),
        (CodecError::UnsupportedVersion(7), |e| {
            matches!(e, CbicError::UnsupportedVersion(7))
        }),
        (CodecError::UnsupportedCodec(3), |e| {
            matches!(e, CbicError::UnsupportedCodec(3))
        }),
        (CodecError::Truncated, |e| matches!(e, CbicError::Truncated)),
        (
            CodecError::InvalidHeader("bad field".into()),
            |e| matches!(e, CbicError::InvalidContainer(m) if m == "bad field"),
        ),
        (
            CodecError::Io(io::ErrorKind::BrokenPipe, "gone".into()),
            |e| matches!(e, CbicError::Io(inner) if inner.kind() == io::ErrorKind::BrokenPipe),
        ),
        // Io(UnexpectedEof) normalizes to the structured Truncated variant.
        (
            CodecError::Io(io::ErrorKind::UnexpectedEof, "cut".into()),
            |e| matches!(e, CbicError::Truncated),
        ),
    ];
    for (src, check) in cases {
        let msg = format!("{src:?}");
        let converted = CbicError::from(src);
        assert!(check(&converted), "{msg} became {converted:?}");
    }
}

#[test]
fn image_error_conversions_cover_every_variant() {
    let cases: ConversionCases<ImageError> = vec![
        (
            ImageError::DimensionMismatch {
                width: 2,
                height: 2,
                len: 5,
            },
            |e| {
                matches!(
                    e,
                    CbicError::Image(ImageError::DimensionMismatch { len: 5, .. })
                )
            },
        ),
        (ImageError::EmptyImage, |e| {
            matches!(e, CbicError::Image(ImageError::EmptyImage))
        }),
        (ImageError::PgmParse("no magic".into()), |e| {
            matches!(e, CbicError::Image(ImageError::PgmParse(_)))
        }),
        (
            ImageError::Codec("mangled".into()),
            |e| matches!(e, CbicError::InvalidContainer(m) if m == "mangled"),
        ),
        (ImageError::Io("offline".into()), |e| {
            matches!(e, CbicError::Io(_))
        }),
    ];
    for (src, check) in cases {
        let msg = format!("{src:?}");
        let converted = CbicError::from(src);
        assert!(check(&converted), "{msg} became {converted:?}");
    }
}

#[test]
fn registry_and_universal_error_conversions_cover_every_variant() {
    let dup = CbicError::from(RegistryError::DuplicateName("x".into()));
    assert!(matches!(
        dup,
        CbicError::Registry(RegistryError::DuplicateName(_))
    ));
    let clash = CbicError::from(RegistryError::MagicCollision {
        magic: *b"AAAA",
        holder: "a".into(),
        rejected: "b".into(),
    });
    assert!(matches!(
        clash,
        CbicError::Registry(RegistryError::MagicCollision { .. })
    ));

    let cases: ConversionCases<UniversalError> = vec![
        (UniversalError::BadMagic, |e| {
            matches!(e, CbicError::BadMagic { found: None })
        }),
        (UniversalError::Truncated, |e| {
            matches!(e, CbicError::Truncated)
        }),
        (
            UniversalError::InvalidStream("tag 9".into()),
            |e| matches!(e, CbicError::InvalidContainer(m) if m == "tag 9"),
        ),
        (UniversalError::Io("reset".into()), |e| {
            matches!(e, CbicError::Io(_))
        }),
    ];
    for (src, check) in cases {
        let msg = format!("{src:?}");
        let converted = CbicError::from(src);
        assert!(check(&converted), "{msg} became {converted:?}");
    }
}

// ---------------------------------------------------------------------------
// The ErrorKind-preservation regression (the old ImageError::Io(String)
// path used to flatten everything to a message).
// ---------------------------------------------------------------------------

#[test]
fn unexpected_eof_survives_a_truncated_decode() {
    let img = CorpusImage::Goldhill.generate(48, 48);
    let enc = EncodeOptions::default();
    let dec = DecodeOptions::default();
    // A cut inside the container header: every codec must report a
    // truncation whose io kind is recoverable as UnexpectedEof.
    for codec in cbic::all_codecs() {
        let bytes = codec.encode_vec(img.view(), &enc).unwrap();
        let err = codec
            .decode_vec(&bytes[..10], &dec)
            .expect_err("truncated header must error");
        assert_eq!(
            err.io_kind(),
            Some(io::ErrorKind::UnexpectedEof),
            "{}: {err:?}",
            codec.name()
        );
        // ...and converting onward into std::io keeps it too.
        assert_eq!(
            io::Error::from(err).kind(),
            io::ErrorKind::UnexpectedEof,
            "{}",
            codec.name()
        );
    }

    // A cut mid-payload: the paper's codec (and its tiled variant) track
    // decoder padding, so even a deep truncation surfaces as Truncated
    // with the kind intact — not garbage pixels, not a bare string.
    let registry = cbic::default_registry();
    for name in ["proposed", "tiled"] {
        let codec = registry.expect_name(name).unwrap();
        let bytes = codec.encode_vec(img.view(), &enc).unwrap();
        let err = codec
            .decode_vec(&bytes[..bytes.len() / 2], &dec)
            .expect_err("mid-payload truncation must error");
        assert_eq!(
            err.io_kind(),
            Some(io::ErrorKind::UnexpectedEof),
            "{name}: {err:?}"
        );
    }
}

#[test]
fn transport_error_kinds_survive_decode() {
    /// Yields `prefix`, then fails with the given kind.
    struct FailAfter(Vec<u8>, usize, io::ErrorKind);
    impl io::Read for FailAfter {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.1 >= self.0.len() {
                return Err(io::Error::new(self.2, "transport failure"));
            }
            let n = buf.len().min(self.0.len() - self.1).min(16);
            buf[..n].copy_from_slice(&self.0[self.1..self.1 + n]);
            self.1 += n;
            Ok(n)
        }
    }

    let img = CorpusImage::Lena.generate(64, 64);
    let codec = cbic::core::Proposed::default();
    let bytes = codec
        .encode_vec(img.view(), &EncodeOptions::default())
        .unwrap();
    for kind in [io::ErrorKind::ConnectionReset, io::ErrorKind::TimedOut] {
        let mut source = FailAfter(bytes[..bytes.len() / 2].to_vec(), 0, kind);
        let err = codec
            .decode(&mut source, &DecodeOptions::default())
            .expect_err("failing transport must error");
        assert_eq!(err.io_kind(), Some(kind), "{err:?}");
    }
}

#[test]
fn encode_sink_failures_preserve_kind_for_every_codec() {
    struct Failing(io::ErrorKind);
    impl io::Write for Failing {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::Error::new(self.0, "sink failure"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
    let img = CorpusImage::Zelda.generate(24, 24);
    for codec in cbic::all_codecs() {
        let err = codec
            .encode(
                img.view(),
                &EncodeOptions::default(),
                &mut Failing(io::ErrorKind::StorageFull),
            )
            .expect_err("failing sink must error");
        assert_eq!(
            err.io_kind(),
            Some(io::ErrorKind::StorageFull),
            "{}: {err:?}",
            codec.name()
        );
    }
}

// ---------------------------------------------------------------------------
// Property: corrupted/truncated input produces structured errors, never a
// panic. (Catching lossless decodes of corrupt input is not the point —
// single bit flips in an arithmetic payload can decode to garbage pixels —
// but *errors* must be structured variants.)
// ---------------------------------------------------------------------------

/// Every variant the decoders may legally produce for malformed input.
fn assert_structured(err: &CbicError, context: &str) {
    match err {
        CbicError::BadMagic { .. }
        | CbicError::UnsupportedVersion(_)
        | CbicError::UnsupportedCodec(_)
        | CbicError::Truncated
        | CbicError::InvalidContainer(_)
        | CbicError::Image(_)
        | CbicError::Io(_) => {}
        other => panic!("{context}: unexpected error class {other:?}"),
    }
}

proptest! {
    /// Truncation at any byte boundary: every registry codec either
    /// errors with a structured variant or (for prefix-free cut points)
    /// returns an image — never panics, never a stringly error.
    #[test]
    fn truncated_containers_yield_structured_errors(
        cut_permille in 0usize..1000,
        class in 0usize..3,
    ) {
        let img = [CorpusImage::Lena, CorpusImage::Barb, CorpusImage::Mandrill][class]
            .generate(16, 16);
        let enc = EncodeOptions::default();
        let dec = DecodeOptions::default();
        for codec in cbic::all_codecs() {
            let bytes = codec.encode_vec(img.view(), &enc).unwrap();
            let cut = cut_permille * bytes.len() / 1000;
            if let Err(e) = codec.decode_vec(&bytes[..cut], &dec) {
                assert_structured(&e, codec.name());
            }
        }
    }

    /// Flipping any single byte past the framing fields (magic and
    /// dimension corruption has dedicated deterministic tests — and
    /// corrupted dimensions legally decode as huge garbage images, which
    /// is too slow to sweep here): decoders must produce structured
    /// errors or garbage pixels, never panic.
    #[test]
    fn corrupted_containers_yield_structured_errors(
        pos_permille in 0usize..1000,
        xor in 1u8..=255,
    ) {
        let img = CorpusImage::Zelda.generate(16, 16);
        let enc = EncodeOptions::default();
        let dec = DecodeOptions::default();
        let registry = cbic::default_registry();
        for codec in registry.codecs() {
            let mut bytes = codec.encode_vec(img.view(), &enc).unwrap();
            let pos = (16 + pos_permille * (bytes.len() - 16) / 1000).min(bytes.len() - 1);
            bytes[pos] ^= xor;
            if let Err(e) = registry.decode_auto(&bytes, &dec) {
                assert_structured(&e, codec.name());
            }
        }
    }

    /// Pseudo-random garbage through the auto-detecting entry points.
    #[test]
    fn random_garbage_yields_structured_errors(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let registry = cbic::default_registry();
        let dec = DecodeOptions::default();
        if let Err(e) = registry.decode_auto(&bytes, &dec) {
            assert_structured(&e, "decode_auto");
        }
        let mut source: &[u8] = &bytes;
        if let Err(e) = registry.decode_stream(&mut source, &dec) {
            assert_structured(&e, "decode_stream");
        }
        // The universal container decoder has its own framing; its errors
        // convert into the same hierarchy.
        if let Err(e) = UniversalCodec::default().decode(&bytes) {
            assert_structured(&CbicError::from(e), "universal");
        }
    }
}

#[test]
fn v5_model_header_corruption_yields_structured_errors() {
    // Container v5 carries two new header bytes — the model byte
    // (banks_log2 at offset 25) and the flat/tiled layout flag (offset
    // 26). Forging either outside its legal range must be rejected as a
    // structured header error, and truncating the stream at every v5
    // header boundary must surface as Truncated — never a panic, never a
    // garbage image that silently used the wrong context model.
    use cbic::core::bigctx::DEFAULT_BANKS_LOG2;
    use cbic::core::{compress, decompress, CodecConfig, ModelMode};
    let img = CorpusImage::Lena.generate(16, 16);
    let cfg = CodecConfig {
        model: ModelMode::WideHash {
            banks_log2: DEFAULT_BANKS_LOG2,
        },
        ..CodecConfig::default()
    };
    let bytes = compress(img.view(), &cfg);
    assert_eq!(bytes[4], 5, "wide streams ride container v5");

    // Forged model byte: every value outside BANKS_LOG2_RANGE (4..=16).
    for forged in [0u8, 1, 3, 17, 64, 255] {
        let mut c = bytes.clone();
        c[25] = forged;
        let err = decompress(&c).expect_err("forged model byte must be rejected");
        assert!(
            matches!(&err, CodecError::InvalidHeader(m) if m.contains("banks_log2")),
            "banks_log2={forged} gave {err:?}"
        );
    }

    // Forged layout flag: anything past {flat, tiled}.
    for forged in [2u8, 7, 255] {
        let mut c = bytes.clone();
        c[26] = forged;
        let err = decompress(&c).expect_err("forged layout flag must be rejected");
        assert!(
            matches!(&err, CodecError::InvalidHeader(m) if m.contains("layout")),
            "layout={forged} gave {err:?}"
        );
    }

    // Truncation at each v5 header boundary: the fixed prefix, the
    // depth/lanes bytes, the model byte, the layout flag, and one byte
    // into the payload.
    for cut in [22usize, 23, 24, 25, 26, 27] {
        let err = decompress(&bytes[..cut]).expect_err("truncated v5 header must error");
        assert_structured(&CbicError::from(err), &format!("v5 truncation at {cut}"));
    }
}

#[test]
fn universal_decode_errors_convert_structurally() {
    let codec = UniversalCodec::default();
    let bytes = codec.encode(&[
        Chunk::Data(b"payload".repeat(40)),
        Chunk::Image(Image::from_fn(16, 16, |x, y| (x * y) as u8)),
    ]);
    for cut in [0, 3, 8, 20, bytes.len() - 1] {
        let err = codec.decode(&bytes[..cut]).expect_err("truncated");
        assert_structured(&CbicError::from(err), "universal truncation");
    }
}
