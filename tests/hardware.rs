//! Integration of the hardware model with the real codec: the numbers in
//! Table 2 must be consistent with what the software actually does.

use cbic::core::bigctx::{BANKS_LOG2_RANGE, DEFAULT_BANKS_LOG2};
use cbic::core::{encode_raw, CodecConfig, ModelMode, PixelEngine};
use cbic::hw::divlut::DivLut;
use cbic::hw::memory::{ContextBankLayout, EstimatorMemory, ModelingMemory};
use cbic::hw::pipeline::{PipelineConfig, PixelTrace};
use cbic::hw::resources::{table2, PAPER_TABLE2};
use cbic::image::corpus::CorpusImage;

#[test]
fn codec_decision_rate_matches_pipeline_assumption() {
    // The pipeline model assumes 9 binary decisions per pixel; the encoder
    // must deliver exactly that (1 escape decision + 8 tree levels).
    let img = CorpusImage::Goldhill.generate(128, 128);
    let (_, stats) = encode_raw(img.view(), &CodecConfig::default());
    assert!((stats.decisions_per_pixel() - 9.0).abs() < 1e-9);
}

#[test]
fn measured_trace_reproduces_the_papers_throughput() {
    let img = CorpusImage::Lena.generate(128, 128);
    let (_, stats) = encode_raw(img.view(), &CodecConfig::default());
    let trace = PixelTrace::uniform(
        img.width(),
        img.height(),
        stats.decisions_per_pixel().round() as u32,
    );
    let overlapped = PipelineConfig {
        overlap_escape: true,
        ..PipelineConfig::default()
    };
    let report = overlapped.simulate(&trace);
    // 123 MHz / 8 decisions * 8 bpp = the paper's 123 Mbit/s.
    assert!(
        (report.mbits_per_sec - 123.0).abs() < 1.5,
        "got {} Mbit/s",
        report.mbits_per_sec
    );
}

#[test]
fn memory_budgets_match_the_paper() {
    let modeling = ModelingMemory::default();
    assert_eq!(modeling.total_bytes(), 3776); // 3.69 KB ~ the paper's "3.7"
    let estimator = EstimatorMemory::default();
    let kb = estimator.total_kbytes();
    assert!((3.8..4.1).contains(&kb), "estimator {kb} KB");
}

#[test]
fn context_bank_layout_accounts_exactly_what_the_engine_allocates() {
    // The memory model is only a budget if it matches reality: for both
    // context-model modes, `ContextBankLayout::host_soa` over the
    // engine's bank count must equal — byte for byte — what the SoA
    // context store actually allocates.
    let classic = PixelEngine::new(64, 8, &CodecConfig::default());
    assert_eq!(classic.context_banks(), 512);
    assert_eq!(
        ContextBankLayout::host_soa(classic.context_banks()).total_bytes(),
        classic.context_bytes()
    );

    for banks_log2 in BANKS_LOG2_RANGE {
        let cfg = CodecConfig {
            model: ModelMode::WideHash { banks_log2 },
            ..CodecConfig::default()
        };
        let wide = PixelEngine::new(64, 8, &cfg);
        assert_eq!(wide.context_banks(), 1usize << banks_log2);
        assert_eq!(
            ContextBankLayout::host_soa(wide.context_banks()).total_bytes(),
            wide.context_bytes(),
            "accounted vs allocated bytes diverged at banks_log2={banks_log2}"
        );
    }

    // The headline budget: the wire-default wide store costs exactly 2×
    // the classic store in paper bit-widths, half the 4× ceiling.
    let classic_paper = ContextBankLayout::default().total_bytes();
    let wide_paper = ContextBankLayout::with_contexts(1 << DEFAULT_BANKS_LOG2).total_bytes();
    assert_eq!(wide_paper, 2 * classic_paper);
    assert!(wide_paper <= 4 * classic_paper);
}

#[test]
fn division_lut_footprint_matches_the_codec() {
    // The LUT the codec actually uses is the 1 KB ROM Table 2 accounts for.
    let lut = DivLut::new();
    assert_eq!(lut.table_bytes(), ModelingMemory::default().div_lut_bytes);
}

#[test]
fn resource_model_preserves_module_ordering() {
    let t = table2();
    let slices: Vec<u64> = t.iter().map(|(_, e)| e.slices).collect();
    let paper: Vec<u64> = PAPER_TABLE2.iter().map(|p| p.1).collect();
    // Same ordering as the paper: coder > modeling > estimator.
    assert!(slices[2] > slices[0] && slices[0] > slices[1]);
    assert!(paper[2] > paper[0] && paper[0] > paper[1]);
}

#[test]
fn estimator_memory_follows_fig4_sweep() {
    // Fig. 4's x-axis is also a memory knob: the estimator SRAM grows
    // linearly with the counter width.
    let sizes: Vec<usize> = [10, 12, 14, 16]
        .iter()
        .map(|&bits| {
            EstimatorMemory {
                counter_bits: bits,
                ..EstimatorMemory::default()
            }
            .total_bytes()
        })
        .collect();
    assert!(sizes.windows(2).all(|w| w[0] < w[1]));
    // 14 bits is the paper's 4 KB point.
    assert_eq!(sizes[2], EstimatorMemory::default().total_bytes());
}

#[test]
fn multi_core_scaling_claim() {
    // "The low complexity means that a multi-core solution could be used
    // to scale up the performance" — N independent cores on N image tiles
    // scale throughput linearly in this model.
    let cfg = PipelineConfig::default();
    let single = cfg.simulate(&PixelTrace::uniform(512, 512, 9));
    let quarter = cfg.simulate(&PixelTrace::uniform(512, 128, 9));
    let four_core = 4.0 * 512.0 * 128.0 / (quarter.cycles as f64 / cfg.clock_mhz / 1e6) / 1e6;
    let one_core = single.mpixels_per_sec;
    assert!(
        four_core > one_core * 3.5,
        "4 tiles: {four_core:.1} vs 1 core {one_core:.1} Mpixel/s"
    );
}
