//! Property-based robustness tests for the PGM parsers: arbitrary and
//! adversarial inputs — deep maxvals, comments, truncated payloads,
//! mutated headers — must produce structured [`ImageError`]s (convertible
//! to [`CbicError`]), never panics, and well-formed streams must
//! round-trip at every depth.

use crate::{pgm, CbicError, Image, ImageError};
use proptest::prelude::*;

/// Arbitrary images at arbitrary 1–16-bit depths, samples masked to fit.
fn arb_any_depth_image() -> impl Strategy<Value = Image> {
    (1usize..20, 1usize..20, 1u8..=16).prop_flat_map(|(w, h, depth)| {
        proptest::collection::vec(any::<u16>(), w * h).prop_map(move |data| {
            let max = crate::image::max_val_for(depth);
            let data = data
                .into_iter()
                .map(|v| v % (u32::from(max) as u16).max(1))
                .collect();
            Image::from_samples(w, h, depth, data).expect("masked to depth")
        })
    })
}

/// A syntactically valid-ish PGM header with arbitrary field values and
/// optional comments, followed by an arbitrary (often wrong-sized) body.
fn arb_pgm_stream() -> impl Strategy<Value = Vec<u8>> {
    (
        0usize..40,
        0usize..40,
        0usize..70_000,
        any::<bool>(),
        proptest::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(w, h, maxval, comment, body)| {
            let mut s = Vec::new();
            s.extend_from_slice(b"P5");
            if comment {
                s.extend_from_slice(b" # fuzz comment\n");
            }
            s.extend_from_slice(format!("\n{w} {h}\n{maxval}\n").as_bytes());
            s.extend_from_slice(&body);
            s
        })
}

proptest! {
    /// Well-formed PGM streams round-trip losslessly at every depth, in
    /// both the buffered and the streaming parser.
    #[test]
    fn roundtrip_any_depth(img in arb_any_depth_image()) {
        let bytes = pgm::encode(&img);
        let back = pgm::decode(&bytes).expect("own encoding parses");
        // PGM maxval only records the *depth class* the samples fit in;
        // the pixels must survive exactly.
        prop_assert_eq!(back.dimensions(), img.dimensions());
        prop_assert_eq!(back.samples(), img.samples());

        let mut reader = &bytes[..];
        let header = pgm::read_header(&mut reader).expect("own header parses");
        prop_assert_eq!((header.width, header.height), img.dimensions());
        let mut row = vec![0u16; header.width];
        for y in 0..header.height {
            pgm::read_row(&mut reader, &header, &mut row).expect("own rows parse");
            prop_assert_eq!(&row[..], back.row(y));
        }
    }

    /// Fuzzed headers (arbitrary dims, maxval 0..70000, comments) over
    /// arbitrary bodies never panic: they parse or fail structurally, and
    /// the failure converts into the unified error type.
    #[test]
    fn fuzzed_streams_never_panic(stream in arb_pgm_stream()) {
        match pgm::decode(&stream) {
            Ok(img) => {
                prop_assert!(img.width() > 0 && img.height() > 0);
                prop_assert!((1..=16).contains(&img.bit_depth()));
            }
            Err(e) => {
                let unified = CbicError::from(e);
                prop_assert!(!unified.to_string().is_empty());
            }
        }
        let mut reader = &stream[..];
        let _ = pgm::read_header(&mut reader); // must not panic either
    }

    /// Truncating a valid deep stream anywhere yields a structured error,
    /// never a panic and never a silently short image.
    #[test]
    fn truncation_is_structured(img in arb_any_depth_image(), frac in 0u8..100) {
        let bytes = pgm::encode(&img);
        let cut = (bytes.len() * usize::from(frac)) / 100;
        if cut < bytes.len() {
            match pgm::decode(&bytes[..cut]) {
                Ok(short) => prop_assert_eq!(
                    (short.dimensions(), short.samples()),
                    (img.dimensions(), img.samples()),
                    "a truncated stream may only parse if nothing was lost"
                ),
                Err(e) => prop_assert!(
                    matches!(e, ImageError::PgmParse(_)),
                    "unexpected error class: {e:?}"
                ),
            }
        }
    }

    /// Mutating any single header byte of a valid 16-bit stream never
    /// panics; it errors or decodes to *some* structurally valid image.
    #[test]
    fn mutated_deep_headers_never_panic(
        seed in any::<u64>(),
        pos in 0usize..14,
        val in any::<u8>(),
    ) {
        let img = Image::from_fn16(6, 5, 16, |x, y| {
            (seed as u16).wrapping_mul((x * 31 + y * 7 + 1) as u16)
        });
        let mut bytes = pgm::encode(&img);
        let pos = pos.min(bytes.len() - 1);
        bytes[pos] = val;
        match pgm::decode(&bytes) {
            Ok(out) => prop_assert!((1..=16).contains(&out.bit_depth())),
            Err(ImageError::PgmParse(msg)) => prop_assert!(!msg.is_empty()),
            Err(other) => prop_assert!(
                matches!(other, ImageError::DimensionMismatch { .. }),
                "unexpected error class: {other:?}"
            ),
        }
    }
}
