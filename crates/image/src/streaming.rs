//! The streaming extension of [`ImageCodec`].
//!
//! [`StreamingCodec`] adds `io::Read`/`io::Write` entry points to the codec
//! interface. The default methods fall back to the whole-buffer
//! [`ImageCodec`] contract — every codec in the registry works through a
//! pipe out of the box — while codecs with a genuinely incremental pipeline
//! (the paper's codec, whose hardware model keeps three line buffers)
//! override them to run in bounded memory.

use crate::{Image, ImageCodec, ImageError};
use std::io::{Read, Write};

/// An [`ImageCodec`] that can also move containers through
/// `std::io` streams.
///
/// # Contract
///
/// The bytes written by [`compress_to`](Self::compress_to) must equal
/// [`ImageCodec::compress`]'s return value exactly, and
/// [`decompress_from`](Self::decompress_from) must accept exactly the
/// containers [`ImageCodec::decompress`] accepts — streaming is a transport
/// choice, never a format change. The differential test suite holds the
/// workspace codecs to this.
///
/// # Examples
///
/// ```
/// use cbic_image::{Image, ImageCodec, ImageError, StreamingCodec};
///
/// struct Stored;
/// impl ImageCodec for Stored {
///     fn name(&self) -> &'static str { "stored" }
///     fn compress(&self, img: &Image) -> Vec<u8> {
///         let mut out = (img.width() as u32).to_le_bytes().to_vec();
///         out.extend_from_slice(&(img.height() as u32).to_le_bytes());
///         out.extend_from_slice(img.pixels());
///         out
///     }
///     fn decompress(&self, bytes: &[u8]) -> Result<Image, ImageError> {
///         let w = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
///         let h = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
///         Image::from_vec(w, h, bytes[8..].to_vec())
///     }
/// }
/// impl StreamingCodec for Stored {} // whole-buffer fallback
///
/// let img = Image::from_fn(4, 4, |x, y| (x + y) as u8);
/// let mut sink = Vec::new();
/// Stored.compress_to(&img, &mut sink)?;
/// assert_eq!(sink, Stored.compress(&img));
/// assert_eq!(Stored.decompress_from(&mut &sink[..])?, img);
/// # Ok::<(), ImageError>(())
/// ```
pub trait StreamingCodec: ImageCodec {
    /// Compresses `img` into `out`.
    ///
    /// The default buffers the whole container via [`ImageCodec::compress`]
    /// and writes it out; streaming-capable codecs override this to emit
    /// bytes incrementally.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::Io`] on write failures (plus any
    /// codec-specific error from an override).
    fn compress_to(&self, img: &Image, out: &mut dyn Write) -> Result<(), ImageError> {
        out.write_all(&self.compress(img))?;
        Ok(())
    }

    /// Reads one container from `input` and decompresses it.
    ///
    /// The default slurps `input` to end-of-stream and delegates to
    /// [`ImageCodec::decompress`]; streaming-capable codecs override this
    /// to decode as bytes arrive. Note the default consumes the reader to
    /// EOF, so it suits one-container streams (files, pipes), not
    /// multiplexed ones.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::Io`] on read failures and the codec's own
    /// error for malformed containers.
    fn decompress_from(&self, input: &mut dyn Read) -> Result<Image, ImageError> {
        let mut bytes = Vec::new();
        input.read_to_end(&mut bytes)?;
        self.decompress(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Stored;

    impl ImageCodec for Stored {
        fn name(&self) -> &'static str {
            "stored"
        }
        fn compress(&self, img: &Image) -> Vec<u8> {
            let mut out = (img.width() as u32).to_le_bytes().to_vec();
            out.extend_from_slice(&(img.height() as u32).to_le_bytes());
            out.extend_from_slice(img.pixels());
            out
        }
        fn decompress(&self, bytes: &[u8]) -> Result<Image, ImageError> {
            if bytes.len() < 8 {
                return Err(ImageError::Codec("truncated".into()));
            }
            let w = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
            let h = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
            Image::from_vec(w, h, bytes[8..].to_vec())
        }
    }

    impl StreamingCodec for Stored {}

    #[test]
    fn default_fallback_matches_buffered_api() {
        let img = Image::from_fn(5, 3, |x, y| (x * y) as u8);
        let mut sink = Vec::new();
        Stored.compress_to(&img, &mut sink).unwrap();
        assert_eq!(sink, Stored.compress(&img));
        assert_eq!(Stored.decompress_from(&mut &sink[..]).unwrap(), img);
    }

    #[test]
    fn default_fallback_surfaces_io_errors() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let img = Image::from_fn(2, 2, |_, _| 7);
        assert!(matches!(
            Stored.compress_to(&img, &mut Failing),
            Err(ImageError::Io(_))
        ));
    }

    #[test]
    fn trait_objects_stream() {
        let codec: &dyn StreamingCodec = &Stored;
        let img = Image::from_fn(3, 3, |x, _| x as u8);
        let mut sink = Vec::new();
        codec.compress_to(&img, &mut sink).unwrap();
        assert_eq!(codec.decompress_from(&mut &sink[..]).unwrap(), img);
    }
}
