//! Deterministic procedural field primitives used by the synthetic corpus.
//!
//! Everything here is a pure function of `(seed, x, y)` — no stored state —
//! so corpus images are bit-identical across runs, platforms, and rustc
//! versions. The primitives are the usual procedural-texture toolkit:
//! hash-lattice value noise, fractal Brownian motion (fBm), oriented
//! sinusoidal stripes, and soft-edged disks.
//!
//! # Examples
//!
//! ```
//! use cbic_image::synth;
//!
//! let a = synth::fbm(1, 10.0, 20.0, 32.0, 4, 0.5);
//! let b = synth::fbm(1, 10.0, 20.0, 32.0, 4, 0.5);
//! assert_eq!(a, b, "noise is deterministic");
//! assert!((-1.0..=1.0).contains(&a));
//! ```

/// SplitMix64-style avalanche of a lattice point into `[0, 1)`.
///
/// Used as the random-value lattice underlying [`value_noise`].
#[inline]
pub fn lattice(seed: u64, ix: i64, iy: i64) -> f64 {
    let mut h = seed
        ^ (ix as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (iy as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Quintic smoothstep (C² continuous), `t` in `[0, 1]`.
#[inline]
pub fn smoothstep(t: f64) -> f64 {
    t * t * t * (t * (t * 6.0 - 15.0) + 10.0)
}

/// Smoothly interpolated value noise in `[-1, 1]` with lattice spacing
/// `scale` pixels.
///
/// # Panics
///
/// Panics if `scale` is not strictly positive.
#[inline]
pub fn value_noise(seed: u64, x: f64, y: f64, scale: f64) -> f64 {
    assert!(scale > 0.0, "noise scale must be positive");
    let gx = x / scale;
    let gy = y / scale;
    let ix = gx.floor() as i64;
    let iy = gy.floor() as i64;
    let fx = smoothstep(gx - gx.floor());
    let fy = smoothstep(gy - gy.floor());
    let v00 = lattice(seed, ix, iy);
    let v10 = lattice(seed, ix + 1, iy);
    let v01 = lattice(seed, ix, iy + 1);
    let v11 = lattice(seed, ix + 1, iy + 1);
    let top = v00 + (v10 - v00) * fx;
    let bot = v01 + (v11 - v01) * fx;
    (top + (bot - top) * fy) * 2.0 - 1.0
}

/// Fractal Brownian motion: `octaves` layers of [`value_noise`], each octave
/// at half the scale and `persistence` times the amplitude of the previous.
/// Output is normalized back to roughly `[-1, 1]`.
///
/// # Panics
///
/// Panics if `octaves` is zero or `base_scale` is not positive.
pub fn fbm(seed: u64, x: f64, y: f64, base_scale: f64, octaves: u32, persistence: f64) -> f64 {
    assert!(octaves > 0, "fbm needs at least one octave");
    let mut amp = 1.0;
    let mut scale = base_scale;
    let mut sum = 0.0;
    let mut norm = 0.0;
    for o in 0..octaves {
        sum += amp * value_noise(seed.wrapping_add(u64::from(o) * 0x9E37), x, y, scale);
        norm += amp;
        amp *= persistence;
        scale = (scale * 0.5).max(1.0);
    }
    sum / norm
}

/// Oriented sinusoidal stripes in `[-1, 1]`: frequency `freq` cycles/pixel
/// along direction `angle` (radians), with an arbitrary `phase`.
#[inline]
pub fn stripes(x: f64, y: f64, angle: f64, freq: f64, phase: f64) -> f64 {
    let u = x * angle.cos() + y * angle.sin();
    (u * freq * std::f64::consts::TAU + phase).sin()
}

/// Soft-edged disk: 1 inside radius `r`, 0 outside `r + soft`, smooth ramp
/// between. `soft == 0` yields a hard edge.
#[inline]
pub fn soft_disk(x: f64, y: f64, cx: f64, cy: f64, r: f64, soft: f64) -> f64 {
    let d = ((x - cx).powi(2) + (y - cy).powi(2)).sqrt();
    if d <= r {
        1.0
    } else if soft > 0.0 && d < r + soft {
        1.0 - smoothstep((d - r) / soft)
    } else {
        0.0
    }
}

/// Soft-edged axis-aligned rectangle with the same edge semantics as
/// [`soft_disk`].
#[inline]
pub fn soft_rect(x: f64, y: f64, x0: f64, y0: f64, x1: f64, y1: f64, soft: f64) -> f64 {
    let dx = (x0 - x).max(x - x1).max(0.0);
    let dy = (y0 - y).max(y - y1).max(0.0);
    let d = (dx * dx + dy * dy).sqrt();
    if d == 0.0 {
        1.0
    } else if soft > 0.0 && d < soft {
        1.0 - smoothstep(d / soft)
    } else {
        0.0
    }
}

/// Pseudo-Gaussian sample in roughly `[-3, 3]` (sum of four uniforms,
/// Irwin–Hall), as a pure function of the lattice hash. Used for sensor
/// noise in the corpus.
#[inline]
pub fn gauss(seed: u64, ix: i64, iy: i64) -> f64 {
    let a = lattice(seed ^ 0x1111, ix, iy);
    let b = lattice(seed ^ 0x2222, ix, iy);
    let c = lattice(seed ^ 0x3333, ix, iy);
    let d = lattice(seed ^ 0x4444, ix, iy);
    ((a + b + c + d) - 2.0) * (12.0f64 / 4.0).sqrt()
}

/// Clamps a real-valued field sample to the 8-bit pixel range.
#[inline]
pub fn quantize(v: f64) -> u8 {
    v.round().clamp(0.0, 255.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_is_deterministic_and_uniformish() {
        let mut sum = 0.0;
        for i in 0..1000 {
            let v = lattice(7, i, -i * 3);
            assert!((0.0..1.0).contains(&v));
            assert_eq!(v, lattice(7, i, -i * 3));
            sum += v;
        }
        let mean = sum / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn different_seeds_decorrelate() {
        let same: usize = (0..500)
            .filter(|&i| (lattice(1, i, 0) - lattice(2, i, 0)).abs() < 1e-3)
            .count();
        assert!(same < 10);
    }

    #[test]
    fn smoothstep_endpoints() {
        assert_eq!(smoothstep(0.0), 0.0);
        assert_eq!(smoothstep(1.0), 1.0);
        assert!((smoothstep(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn value_noise_is_continuous() {
        // Adjacent samples differ by much less than the full range.
        let mut max_step = 0.0f64;
        for i in 0..2000 {
            let x = i as f64 * 0.25;
            let d = (value_noise(3, x + 0.25, 7.0, 16.0) - value_noise(3, x, 7.0, 16.0)).abs();
            max_step = max_step.max(d);
        }
        assert!(max_step < 0.2, "max step {max_step}");
    }

    #[test]
    fn value_noise_range() {
        for i in 0..500 {
            let v = value_noise(9, i as f64 * 1.7, i as f64 * 0.3, 8.0);
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn fbm_range_and_determinism() {
        for i in 0..200 {
            let v = fbm(5, i as f64, 100.0 - i as f64, 64.0, 5, 0.55);
            assert!((-1.0..=1.0).contains(&v), "fbm out of range: {v}");
            assert_eq!(v, fbm(5, i as f64, 100.0 - i as f64, 64.0, 5, 0.55));
        }
    }

    #[test]
    fn stripes_oscillate() {
        let a = stripes(0.0, 0.0, 0.0, 0.25, 0.0);
        let b = stripes(1.0, 0.0, 0.0, 0.25, 0.0); // quarter period later
        assert!((a - 0.0).abs() < 1e-12);
        assert!((b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disk_profile() {
        assert_eq!(soft_disk(0.0, 0.0, 0.0, 0.0, 5.0, 2.0), 1.0);
        assert_eq!(soft_disk(10.0, 0.0, 0.0, 0.0, 5.0, 2.0), 0.0);
        let edge = soft_disk(6.0, 0.0, 0.0, 0.0, 5.0, 2.0);
        assert!(edge > 0.0 && edge < 1.0);
    }

    #[test]
    fn rect_contains_interior() {
        assert_eq!(soft_rect(3.0, 3.0, 2.0, 2.0, 5.0, 5.0, 1.0), 1.0);
        assert_eq!(soft_rect(10.0, 10.0, 2.0, 2.0, 5.0, 5.0, 1.0), 0.0);
    }

    #[test]
    fn gauss_moments() {
        let n = 10_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for i in 0..n {
            let g = gauss(11, i, i * 7 + 1);
            sum += g;
            sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn quantize_clamps() {
        assert_eq!(quantize(-5.0), 0);
        assert_eq!(quantize(300.0), 255);
        assert_eq!(quantize(127.4), 127);
        assert_eq!(quantize(127.6), 128);
    }
}
