//! A registry of [`ImageCodec`] implementations with name lookup and
//! magic-byte auto-detection.
//!
//! Tools that work over *every* codec — the CLI, the Table 1 benchmark
//! harness, the universal multiplexer's image front end — are written once
//! against this registry instead of hard-coding one `match` arm per codec.
//! Adding a codec to the workspace then means implementing [`ImageCodec`]
//! and registering it in one place (`cbic_universal::codecs::all_codecs`),
//! not editing every front end.

use crate::{Image, ImageCodec, ImageError};

/// An ordered collection of codecs, addressable by name or container magic.
///
/// # Examples
///
/// ```
/// use cbic_image::registry::CodecRegistry;
/// use cbic_image::{Image, ImageCodec, ImageError};
///
/// struct Stored;
/// impl ImageCodec for Stored {
///     fn name(&self) -> &'static str { "stored" }
///     fn magic(&self) -> Option<[u8; 4]> { Some(*b"STOR") }
///     fn compress(&self, img: &Image) -> Vec<u8> {
///         let mut out = b"STOR".to_vec();
///         out.extend_from_slice(&(img.width() as u32).to_le_bytes());
///         out.extend_from_slice(&(img.height() as u32).to_le_bytes());
///         out.extend_from_slice(img.pixels());
///         out
///     }
///     fn decompress(&self, bytes: &[u8]) -> Result<Image, ImageError> {
///         let dims = bytes.get(4..12).ok_or(ImageError::Io("truncated".into()))?;
///         let w = u32::from_le_bytes(dims[0..4].try_into().unwrap()) as usize;
///         let h = u32::from_le_bytes(dims[4..8].try_into().unwrap()) as usize;
///         Image::from_vec(w, h, bytes[12..].to_vec())
///     }
/// }
///
/// let mut registry = CodecRegistry::new();
/// registry.register(Box::new(Stored));
/// let img = Image::from_fn(8, 8, |x, y| (x ^ y) as u8);
/// let bytes = registry.by_name("stored").unwrap().compress(&img);
/// assert_eq!(registry.detect(&bytes).unwrap().name(), "stored");
/// assert_eq!(registry.decompress_auto(&bytes)?, img);
/// # Ok::<(), ImageError>(())
/// ```
#[derive(Default)]
pub struct CodecRegistry {
    entries: Vec<Box<dyn ImageCodec>>,
}

impl CodecRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a codec. Later registrations win neither name nor magic
    /// lookups — the first match is returned — so register the canonical
    /// codec for a magic first.
    pub fn register(&mut self, codec: Box<dyn ImageCodec>) {
        self.entries.push(codec);
    }

    /// All registered codecs, in registration order.
    pub fn codecs(&self) -> impl Iterator<Item = &dyn ImageCodec> {
        self.entries.iter().map(AsRef::as_ref)
    }

    /// Number of registered codecs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry holds no codecs.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The registered codec names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.codecs().map(ImageCodec::name).collect()
    }

    /// Looks a codec up by its [`ImageCodec::name`].
    pub fn by_name(&self, name: &str) -> Option<&dyn ImageCodec> {
        self.codecs().find(|c| c.name() == name)
    }

    /// Identifies which codec produced `bytes` from its container magic.
    pub fn detect(&self, bytes: &[u8]) -> Option<&dyn ImageCodec> {
        let magic: [u8; 4] = bytes.get(..4)?.try_into().ok()?;
        self.codecs().find(|c| c.magic() == Some(magic))
    }

    /// Auto-detects the producing codec and decompresses.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::Codec`] when no registered codec claims the
    /// container's magic, or the detected codec's error when decoding
    /// fails.
    pub fn decompress_auto(&self, bytes: &[u8]) -> Result<Image, ImageError> {
        match self.detect(bytes) {
            Some(codec) => codec.decompress(bytes),
            None => Err(ImageError::Codec(format!(
                "unrecognized container magic {:?} (registered: {})",
                bytes.get(..4).unwrap_or_default(),
                self.names().join(", ")
            ))),
        }
    }
}

impl std::fmt::Debug for CodecRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CodecRegistry")
            .field("codecs", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake(&'static str, [u8; 4]);

    impl ImageCodec for Fake {
        fn name(&self) -> &'static str {
            self.0
        }
        fn magic(&self) -> Option<[u8; 4]> {
            Some(self.1)
        }
        fn compress(&self, _img: &Image) -> Vec<u8> {
            self.1.to_vec()
        }
        fn decompress(&self, _bytes: &[u8]) -> Result<Image, ImageError> {
            Ok(Image::from_fn(1, 1, |_, _| 0))
        }
    }

    fn sample() -> CodecRegistry {
        let mut r = CodecRegistry::new();
        r.register(Box::new(Fake("aaaa", *b"AAAA")));
        r.register(Box::new(Fake("bbbb", *b"BBBB")));
        r
    }

    #[test]
    fn name_lookup_and_listing() {
        let r = sample();
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.names(), vec!["aaaa", "bbbb"]);
        assert_eq!(r.by_name("bbbb").unwrap().name(), "bbbb");
        assert!(r.by_name("cccc").is_none());
    }

    #[test]
    fn detection_by_magic() {
        let r = sample();
        assert_eq!(r.detect(b"BBBBxyz").unwrap().name(), "bbbb");
        assert!(r.detect(b"ZZZZ").is_none());
        assert!(r.detect(b"AB").is_none());
        assert!(r.detect(b"").is_none());
    }

    #[test]
    fn auto_decompress_reports_unknown_magic() {
        let r = sample();
        let err = r.decompress_auto(b"ZZZZ....").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("aaaa") && msg.contains("bbbb"), "{msg}");
    }
}
