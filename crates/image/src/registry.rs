//! A registry of [`Codec`] implementations with name lookup and magic-byte
//! auto-detection.
//!
//! Tools that work over *every* codec — the CLI, the Table 1 benchmark
//! harness, the universal multiplexer's image front end — are written once
//! against this registry instead of hard-coding one `match` arm per codec.
//! Adding a codec to the workspace then means implementing [`Codec`] and
//! registering it in one place (`cbic_universal::codecs::all_codecs`), not
//! editing every front end.

use crate::{CbicError, Codec, DecodeOptions, Image};
use std::fmt;
use std::io::Read;

/// Errors returned by [`CodecRegistry::try_register`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RegistryError {
    /// A codec with this name is already registered.
    DuplicateName(String),
    /// Another registered codec already claims this container magic, so
    /// auto-detection could never reach the new codec.
    MagicCollision {
        /// The contested 4-byte magic.
        magic: [u8; 4],
        /// Codec that holds the magic.
        holder: String,
        /// Codec whose registration was rejected.
        rejected: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateName(name) => {
                write!(f, "codec name {name:?} is already registered")
            }
            Self::MagicCollision {
                magic,
                holder,
                rejected,
            } => write!(
                f,
                "magic {:?} of codec {rejected:?} collides with registered codec {holder:?}",
                String::from_utf8_lossy(magic)
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

/// An ordered collection of codecs, addressable by name or container magic.
///
/// Registration rejects name duplicates and magic collisions up front
/// (every magic is exactly the 4 bytes [`detect`](Self::detect) reads, so
/// two codecs sharing one would make auto-detection silently pick
/// whichever registered first).
///
/// # Examples
///
/// ```
/// use cbic_image::registry::CodecRegistry;
/// use cbic_image::{
///     CbicError, Codec, DecodeOptions, EncodeOptions, EncodeStats, Image,
///     ImageView,
/// };
/// use std::io::{Read, Write};
///
/// struct Stored;
/// impl Codec for Stored {
///     fn name(&self) -> &'static str { "stored" }
///     fn magic(&self) -> Option<[u8; 4]> { Some(*b"STOR") }
///     fn encode(
///         &self,
///         img: ImageView<'_>,
///         _opts: &EncodeOptions,
///         sink: &mut dyn Write,
///     ) -> Result<EncodeStats, CbicError> {
///         sink.write_all(b"STOR")?;
///         sink.write_all(&(img.width() as u32).to_le_bytes())?;
///         sink.write_all(&(img.height() as u32).to_le_bytes())?;
///         for row in img.rows() {
///             // Row-slice iteration: works for strided views too.
///             let bytes: Vec<u8> = row.iter().map(|&s| s as u8).collect();
///             sink.write_all(&bytes)?;
///         }
///         Ok(EncodeStats::new(
///             img.pixel_count() as u64,
///             12 + img.pixel_count() as u64,
///             None,
///         ))
///     }
///     fn decode(
///         &self,
///         source: &mut dyn Read,
///         _opts: &DecodeOptions,
///     ) -> Result<Image, CbicError> {
///         let mut head = [0u8; 12];
///         source.read_exact(&mut head)?;
///         if &head[..4] != b"STOR" {
///             return Err(CbicError::bad_magic(&head));
///         }
///         let w = u32::from_le_bytes(head[4..8].try_into().unwrap()) as usize;
///         let h = u32::from_le_bytes(head[8..12].try_into().unwrap()) as usize;
///         let mut pixels = vec![0u8; w.saturating_mul(h)];
///         source.read_exact(&mut pixels)?;
///         Image::from_vec(w, h, pixels).map_err(CbicError::from)
///     }
/// }
///
/// let mut registry = CodecRegistry::new();
/// registry.register(Box::new(Stored));
/// let img = Image::from_fn(8, 8, |x, y| (x ^ y) as u8);
/// let opts = EncodeOptions::default();
/// let bytes = registry
///     .by_name("stored")
///     .unwrap()
///     .encode_vec(img.view(), &opts)?;
/// assert_eq!(registry.detect(&bytes).unwrap().name(), "stored");
/// assert_eq!(registry.decode_auto(&bytes, &DecodeOptions::default())?, img);
/// # Ok::<(), CbicError>(())
/// ```
#[derive(Default)]
pub struct CodecRegistry {
    entries: Vec<Box<dyn Codec>>,
}

impl CodecRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a codec, rejecting registrations that would make
    /// [`by_name`](Self::by_name) or [`detect`](Self::detect) ambiguous.
    ///
    /// # Errors
    ///
    /// [`RegistryError::DuplicateName`] when a codec with the same name is
    /// already present; [`RegistryError::MagicCollision`] when the codec's
    /// container magic is already claimed.
    pub fn try_register(&mut self, codec: Box<dyn Codec>) -> Result<(), RegistryError> {
        if self.by_name(codec.name()).is_some() {
            return Err(RegistryError::DuplicateName(codec.name().into()));
        }
        if let Some(magic) = codec.magic() {
            if let Some(holder) = self.codecs().find(|c| c.magic() == Some(magic)) {
                return Err(RegistryError::MagicCollision {
                    magic,
                    holder: holder.name().into(),
                    rejected: codec.name().into(),
                });
            }
        }
        self.entries.push(codec);
        Ok(())
    }

    /// Appends a codec.
    ///
    /// # Panics
    ///
    /// Panics on the collisions [`try_register`](Self::try_register)
    /// rejects — duplicate registration is a programming error in the
    /// registry assembly, not a runtime condition.
    pub fn register(&mut self, codec: Box<dyn Codec>) {
        if let Err(e) = self.try_register(codec) {
            panic!("invalid codec registration: {e}");
        }
    }

    /// All registered codecs, in registration order.
    pub fn codecs(&self) -> impl Iterator<Item = &dyn Codec> {
        self.entries.iter().map(AsRef::as_ref)
    }

    /// Number of registered codecs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry holds no codecs.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The registered codec names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.codecs().map(Codec::name).collect()
    }

    /// Looks a codec up by its [`Codec::name`].
    pub fn by_name(&self, name: &str) -> Option<&dyn Codec> {
        self.codecs().find(|c| c.name() == name)
    }

    /// [`by_name`](Self::by_name) with a structured error for service
    /// code paths.
    ///
    /// # Errors
    ///
    /// [`CbicError::UnknownCodec`] when no codec answers to `name`.
    pub fn expect_name(&self, name: &str) -> Result<&dyn Codec, CbicError> {
        self.by_name(name)
            .ok_or_else(|| CbicError::UnknownCodec(name.into()))
    }

    /// Looks a codec up by its exact 4-byte container magic — the routing
    /// primitive for wire protocols that carry the magic instead of a
    /// codec name (e.g. `cbic-server` requests).
    pub fn by_magic(&self, magic: [u8; 4]) -> Option<&dyn Codec> {
        self.codecs().find(|c| c.magic() == Some(magic))
    }

    /// Identifies which codec produced `bytes` from its container magic.
    pub fn detect(&self, bytes: &[u8]) -> Option<&dyn Codec> {
        let magic: [u8; 4] = bytes.get(..4)?.try_into().ok()?;
        self.by_magic(magic)
    }

    /// Auto-detects the producing codec and decodes the buffered
    /// container.
    ///
    /// # Errors
    ///
    /// [`CbicError::BadMagic`] when no registered codec claims the
    /// container's magic, or the detected codec's error when decoding
    /// fails.
    pub fn decode_auto(&self, bytes: &[u8], opts: &DecodeOptions) -> Result<Image, CbicError> {
        match self.detect(bytes) {
            Some(codec) => codec.decode_vec(bytes, opts),
            None => Err(CbicError::bad_magic(bytes)),
        }
    }

    /// Streaming [`decode_auto`](Self::decode_auto): reads the 4-byte
    /// magic off `input`, routes to the owning codec, and lets it consume
    /// the rest of the stream through [`Codec::decode`].
    ///
    /// # Errors
    ///
    /// [`CbicError::Truncated`]/[`CbicError::Io`] when the magic cannot be
    /// read, [`CbicError::BadMagic`] for an unclaimed magic, and the
    /// codec's own error otherwise.
    pub fn decode_stream(
        &self,
        input: &mut dyn Read,
        opts: &DecodeOptions,
    ) -> Result<Image, CbicError> {
        let mut magic = [0u8; 4];
        input.read_exact(&mut magic)?;
        let codec = self
            .detect(&magic)
            .ok_or(CbicError::BadMagic { found: Some(magic) })?;
        let mut chained = (&magic[..]).chain(input);
        codec.decode(&mut chained, opts)
    }
}

impl std::fmt::Debug for CodecRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CodecRegistry")
            .field("codecs", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EncodeOptions, EncodeStats, ImageView};
    use std::io::Write;

    struct Fake(&'static str, [u8; 4]);

    impl Codec for Fake {
        fn name(&self) -> &'static str {
            self.0
        }
        fn magic(&self) -> Option<[u8; 4]> {
            Some(self.1)
        }
        fn encode(
            &self,
            _img: ImageView<'_>,
            _opts: &EncodeOptions,
            sink: &mut dyn Write,
        ) -> Result<EncodeStats, CbicError> {
            sink.write_all(&self.1)?;
            Ok(EncodeStats::new(1, 4, None))
        }
        fn decode(
            &self,
            _source: &mut dyn Read,
            _opts: &DecodeOptions,
        ) -> Result<Image, CbicError> {
            Ok(Image::from_fn(1, 1, |_, _| 0))
        }
    }

    fn sample() -> CodecRegistry {
        let mut r = CodecRegistry::new();
        r.register(Box::new(Fake("aaaa", *b"AAAA")));
        r.register(Box::new(Fake("bbbb", *b"BBBB")));
        r
    }

    #[test]
    fn name_lookup_and_listing() {
        let r = sample();
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.names(), vec!["aaaa", "bbbb"]);
        assert_eq!(r.by_name("bbbb").unwrap().name(), "bbbb");
        assert!(r.by_name("cccc").is_none());
        assert!(matches!(
            r.expect_name("cccc"),
            Err(CbicError::UnknownCodec(name)) if name == "cccc"
        ));
    }

    #[test]
    fn detection_by_magic() {
        let r = sample();
        assert_eq!(r.by_magic(*b"AAAA").unwrap().name(), "aaaa");
        assert!(r.by_magic(*b"ZZZZ").is_none());
        assert_eq!(r.detect(b"BBBBxyz").unwrap().name(), "bbbb");
        assert!(r.detect(b"ZZZZ").is_none());
        assert!(r.detect(b"AB").is_none());
        assert!(r.detect(b"").is_none());
    }

    #[test]
    fn auto_decode_reports_unknown_magic() {
        let r = sample();
        let err = r
            .decode_auto(b"ZZZZ....", &DecodeOptions::default())
            .unwrap_err();
        assert!(
            matches!(err, CbicError::BadMagic { found: Some(m) } if &m == b"ZZZZ"),
            "{err:?}"
        );
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut r = sample();
        let err = r
            .try_register(Box::new(Fake("aaaa", *b"CCCC")))
            .unwrap_err();
        assert_eq!(err, RegistryError::DuplicateName("aaaa".into()));
        assert_eq!(r.len(), 2, "rejected codec must not be kept");
    }

    #[test]
    fn rejects_magic_collisions() {
        let mut r = sample();
        let err = r
            .try_register(Box::new(Fake("cccc", *b"AAAA")))
            .unwrap_err();
        assert_eq!(
            err,
            RegistryError::MagicCollision {
                magic: *b"AAAA",
                holder: "aaaa".into(),
                rejected: "cccc".into(),
            }
        );
        assert!(err.to_string().contains("AAAA"), "{err}");
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid codec registration")]
    fn register_panics_on_collision() {
        let mut r = sample();
        r.register(Box::new(Fake("dddd", *b"BBBB")));
    }

    #[test]
    fn magicless_codecs_always_register() {
        struct NoMagic;
        impl Codec for NoMagic {
            fn name(&self) -> &'static str {
                "nomagic"
            }
            fn encode(
                &self,
                _img: ImageView<'_>,
                _opts: &EncodeOptions,
                _sink: &mut dyn Write,
            ) -> Result<EncodeStats, CbicError> {
                Ok(EncodeStats::default())
            }
            fn decode(
                &self,
                _source: &mut dyn Read,
                _opts: &DecodeOptions,
            ) -> Result<Image, CbicError> {
                Ok(Image::from_fn(1, 1, |_, _| 0))
            }
        }
        let mut r = sample();
        r.try_register(Box::new(NoMagic)).unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn stream_decode_routes_by_magic() {
        let r = sample();
        let opts = DecodeOptions::default();
        let mut input = &b"AAAAtail"[..];
        assert_eq!(
            r.decode_stream(&mut input, &opts).unwrap(),
            Image::from_fn(1, 1, |_, _| 0)
        );
        let mut unknown = &b"ZZZZ...."[..];
        assert!(matches!(
            r.decode_stream(&mut unknown, &opts),
            Err(CbicError::BadMagic { .. })
        ));
        let mut short = &b"AB"[..];
        assert!(matches!(
            r.decode_stream(&mut short, &opts),
            Err(CbicError::Truncated)
        ));
    }
}
