//! The common interface over the workspace's lossless image codecs.

use crate::{Image, ImageError};

/// A lossless grayscale image codec with a self-describing container.
///
/// All four Table 1 codecs (`cbic-core`'s proposed scheme, CALIC, JPEG-LS,
/// and SLP) implement this trait, so tools like the benchmark harness, the
/// CLI, and archive applications can be written once against
/// `&dyn ImageCodec`.
///
/// # Contract
///
/// For every image `img`, `decompress(&compress(img))` must equal `img`
/// exactly (near-lossless codecs implement the trait only in their
/// lossless configuration).
///
/// # Examples
///
/// ```
/// use cbic_image::{Image, ImageCodec, ImageError};
///
/// /// A trivial stored-only "codec" demonstrating the contract.
/// struct Stored;
///
/// impl ImageCodec for Stored {
///     fn name(&self) -> &'static str {
///         "stored"
///     }
///     fn compress(&self, img: &Image) -> Vec<u8> {
///         let mut out = (img.width() as u32).to_le_bytes().to_vec();
///         out.extend_from_slice(&(img.height() as u32).to_le_bytes());
///         out.extend_from_slice(img.pixels());
///         out
///     }
///     fn decompress(&self, bytes: &[u8]) -> Result<Image, ImageError> {
///         if bytes.len() < 8 {
///             return Err(ImageError::Io("truncated".into()));
///         }
///         let w = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
///         let h = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
///         Image::from_vec(w, h, bytes[8..].to_vec())
///     }
/// }
///
/// let img = Image::from_fn(4, 4, |x, y| (x + y) as u8);
/// let codec: &dyn ImageCodec = &Stored;
/// assert_eq!(codec.decompress(&codec.compress(&img))?, img);
/// assert_eq!(codec.bits_per_pixel(&img), 12.0); // 8 header bytes on 16 px
/// # Ok::<(), ImageError>(())
/// ```
pub trait ImageCodec: Send + Sync {
    /// Short identifier (Table 1 column name).
    fn name(&self) -> &'static str;

    /// The 4-byte container magic, when the codec's output is
    /// self-describing. Codecs that return `Some` participate in
    /// magic-byte auto-detection through
    /// [`CodecRegistry::detect`](crate::registry::CodecRegistry::detect).
    fn magic(&self) -> Option<[u8; 4]> {
        None
    }

    /// Compresses an image into a self-describing byte container.
    fn compress(&self, img: &Image) -> Vec<u8>;

    /// Decompresses a container produced by [`Self::compress`].
    ///
    /// # Errors
    ///
    /// Returns [`ImageError`] when the container is malformed.
    fn decompress(&self, bytes: &[u8]) -> Result<Image, ImageError>;

    /// Convenience: compressed size in bits per pixel for `img`.
    fn bits_per_pixel(&self, img: &Image) -> f64 {
        self.compress(img).len() as f64 * 8.0 / img.pixel_count() as f64
    }

    /// Bits per pixel of the entropy-coded payload alone, excluding
    /// container framing — the quantity the paper's Table 1 reports.
    /// Codecs with cheap raw-encode paths override this; the default
    /// falls back to the full container size.
    fn payload_bits_per_pixel(&self, img: &Image) -> f64 {
        self.bits_per_pixel(img)
    }
}
