//! The unified interface over the workspace's lossless image codecs.
//!
//! One trait, [`Codec`], covers what used to be three surfaces: the
//! buffered `ImageCodec`, the `StreamingCodec` extension, and the free
//! tiled entry points. The *sink/source* methods ([`Codec::encode`],
//! [`Codec::decode`]) are primary; the buffered `Vec<u8>` methods are thin
//! conveniences layered on top, and size queries run through a
//! [`CountingSink`] so they never materialize the container.
//!
//! Encoding consumes a borrowed [`ImageView`], not an owned `Image`:
//! sub-image windows (tile bands, crops) are coded zero-copy, and an owned
//! [`Image`] lends its view with [`Image::view`]. Sample depth travels on
//! the view (`bit_depth`, 8–16 bits), so deep imagery flows through the
//! same trait.

use crate::{CbicError, DecodeOptions, EncodeOptions, Image, ImageView};
use std::io::{self, Read, Write};

/// A [`Write`] sink that counts bytes instead of (or in addition to)
/// storing them.
///
/// `CountingSink::new()` counts into the void — the backing of the
/// [`Codec::measure`] path, which answers "how many bits would this image
/// cost?" without allocating the container. `CountingSink::wrap(w)` counts
/// while forwarding to a real writer, which is how codec implementations
/// report [`EncodeStats::container_bytes`] exactly.
///
/// # Examples
///
/// ```
/// use cbic_image::CountingSink;
/// use std::io::Write;
///
/// let mut sink = CountingSink::new();
/// sink.write_all(b"12345").unwrap();
/// assert_eq!(sink.bytes_written(), 5);
///
/// let mut tee = CountingSink::wrap(Vec::new());
/// tee.write_all(b"abc").unwrap();
/// assert_eq!(tee.bytes_written(), 3);
/// assert_eq!(tee.into_inner(), b"abc");
/// ```
#[derive(Debug)]
pub struct CountingSink<W = io::Sink> {
    inner: W,
    bytes: u64,
}

impl CountingSink {
    /// A sink that discards the bytes and keeps only the count.
    pub fn new() -> Self {
        Self {
            inner: io::sink(),
            bytes: 0,
        }
    }
}

impl Default for CountingSink {
    fn default() -> Self {
        Self::new()
    }
}

impl<W: Write> CountingSink<W> {
    /// Counts bytes while forwarding them to `inner`.
    pub fn wrap(inner: W) -> CountingSink<W> {
        CountingSink { inner, bytes: 0 }
    }

    /// Bytes successfully written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Consumes the sink, returning the wrapped writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for CountingSink<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// What one [`Codec::encode`] call produced.
///
/// `container_bytes` is always exact (every codec counts what it writes);
/// `payload_bits` is the entropy-coded payload alone, excluding container
/// framing — the quantity the paper's Table 1 reports — filled by codecs
/// that track it and `None` otherwise.
///
/// The struct is `#[non_exhaustive]`; construct it with
/// [`EncodeStats::new`].
///
/// # Examples
///
/// ```
/// use cbic_image::EncodeStats;
///
/// let stats = EncodeStats::new(256, 64, Some(480));
/// assert_eq!(stats.bits_per_pixel(), 2.0);
/// assert_eq!(stats.payload_bits_per_pixel(), 1.875);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct EncodeStats {
    /// Pixels coded.
    pub pixels: u64,
    /// Total container bytes written (header + payload).
    pub container_bytes: u64,
    /// Exact entropy-coded payload bits, when the codec tracks them.
    pub payload_bits: Option<u64>,
}

impl EncodeStats {
    /// Assembles the stats of one encode call.
    pub fn new(pixels: u64, container_bytes: u64, payload_bits: Option<u64>) -> Self {
        Self {
            pixels,
            container_bytes,
            payload_bits,
        }
    }

    /// Whole-container bit rate in bits per pixel.
    pub fn bits_per_pixel(&self) -> f64 {
        if self.pixels == 0 {
            0.0
        } else {
            self.container_bytes as f64 * 8.0 / self.pixels as f64
        }
    }

    /// Bit rate of the entropy-coded payload alone (Table 1's unit),
    /// falling back to the full container when the codec does not track
    /// payload bits separately.
    pub fn payload_bits_per_pixel(&self) -> f64 {
        if self.pixels == 0 {
            return 0.0;
        }
        match self.payload_bits {
            Some(bits) => bits as f64 / self.pixels as f64,
            None => self.bits_per_pixel(),
        }
    }
}

/// A lossless grayscale image codec with a self-describing container:
/// the single surface every codec in the workspace implements.
///
/// The required methods are *session-friendly streams*: [`encode`] reads
/// pixels from a zero-copy [`ImageView`] and writes the container into any
/// [`Write`]; [`decode`] reads one container from any [`Read`], so pipes,
/// sockets, and files all work without intermediate buffers. The provided
/// methods derive the buffered and measuring conveniences from them.
///
/// [`encode`]: Self::encode
/// [`decode`]: Self::decode
///
/// # Contract
///
/// For every view `img` and options `opts`, decoding the bytes written by
/// `encode(img, opts, sink)` must reproduce `img`'s pixels (and bit depth)
/// exactly, under *any* decode options — options select schedules and
/// transports, never bits. The bits may not depend on the view's stride:
/// a strided window encodes identically to its contiguous copy.
/// Near-lossless codecs implement the trait only in their lossless
/// configuration.
///
/// # Examples
///
/// ```
/// use cbic_image::{
///     CbicError, Codec, DecodeOptions, EncodeOptions, EncodeStats, Image,
///     ImageView,
/// };
/// use std::io::{Read, Write};
///
/// /// A trivial stored-only "codec" demonstrating the contract
/// /// (8-bit only, for brevity).
/// struct Stored;
///
/// impl Codec for Stored {
///     fn name(&self) -> &'static str {
///         "stored"
///     }
///     fn encode(
///         &self,
///         img: ImageView<'_>,
///         _opts: &EncodeOptions,
///         sink: &mut dyn Write,
///     ) -> Result<EncodeStats, CbicError> {
///         sink.write_all(&(img.width() as u32).to_le_bytes())?;
///         sink.write_all(&(img.height() as u32).to_le_bytes())?;
///         for row in img.rows() {
///             let bytes: Vec<u8> = row.iter().map(|&s| s as u8).collect();
///             sink.write_all(&bytes)?; // row-slice iteration, stride-blind
///         }
///         let bytes = 8 + img.pixel_count() as u64;
///         Ok(EncodeStats::new(img.pixel_count() as u64, bytes, None))
///     }
///     fn decode(
///         &self,
///         source: &mut dyn Read,
///         _opts: &DecodeOptions,
///     ) -> Result<Image, CbicError> {
///         let mut dims = [0u8; 8];
///         source.read_exact(&mut dims)?; // EOF becomes CbicError::Truncated
///         let w = u32::from_le_bytes(dims[0..4].try_into().unwrap()) as usize;
///         let h = u32::from_le_bytes(dims[4..8].try_into().unwrap()) as usize;
///         let mut pixels = vec![0u8; w.saturating_mul(h)];
///         source.read_exact(&mut pixels)?;
///         Image::from_vec(w, h, pixels).map_err(CbicError::from)
///     }
/// }
///
/// let img = Image::from_fn(4, 4, |x, y| (x + y) as u8);
/// let codec: &dyn Codec = &Stored;
/// let opts = EncodeOptions::default();
/// let bytes = codec.encode_vec(img.view(), &opts)?;
/// assert_eq!(codec.decode_vec(&bytes, &DecodeOptions::default())?, img);
/// // Size queries never materialize the container:
/// assert_eq!(codec.bits_per_pixel(img.view(), &opts)?, 12.0); // 8 header bytes on 16 px
/// // A zero-copy band encodes without touching the rest of the image:
/// let band = img.view().row_range(1, 2);
/// let band_bytes = codec.encode_vec(band, &opts)?;
/// assert_eq!(
///     codec.decode_vec(&band_bytes, &DecodeOptions::default())?,
///     band.to_image()
/// );
/// # Ok::<(), CbicError>(())
/// ```
pub trait Codec: Send + Sync {
    /// Short identifier (Table 1 column name).
    fn name(&self) -> &'static str;

    /// The 4-byte container magic, when the codec's output is
    /// self-describing. Codecs that return `Some` participate in
    /// magic-byte auto-detection through
    /// [`CodecRegistry::detect`](crate::registry::CodecRegistry::detect).
    fn magic(&self) -> Option<[u8; 4]> {
        None
    }

    /// The sample bit depths this codec encodes, as an inclusive
    /// `(min, max)` range. The workspace codecs all answer `(1, 16)`;
    /// front ends can consult this before routing deep imagery.
    fn bit_depths(&self) -> (u8, u8) {
        (1, 16)
    }

    /// The context-model modes this codec honors on
    /// [`EncodeOptions::model`](crate::EncodeOptions): `"classic"` for
    /// every codec, plus `"wide"` for codecs that implement the enlarged
    /// hash-banked model ([`ModelMode::WideHash`](crate::ModelMode)).
    /// Front ends consult this before forwarding a non-classic request —
    /// a codec absent from the list would silently ignore the option.
    fn model_modes(&self) -> &'static [&'static str] {
        &["classic"]
    }

    /// Encodes the pixels of `img` into a self-describing container
    /// written to `sink`, returning what it cost.
    ///
    /// # Errors
    ///
    /// [`CbicError::Io`] when the sink fails (kind preserved), and
    /// codec-specific structured errors otherwise.
    fn encode(
        &self,
        img: ImageView<'_>,
        opts: &EncodeOptions,
        sink: &mut dyn Write,
    ) -> Result<EncodeStats, CbicError>;

    /// Reads one container from `source` and decodes it.
    ///
    /// Implementations consume exactly one container where the framing
    /// allows it; codecs whose container has no length information may
    /// consume the source to end-of-stream (suiting one-container streams:
    /// files and pipes, not multiplexed transports).
    ///
    /// # Errors
    ///
    /// [`CbicError::Truncated`] when the stream ends early,
    /// [`CbicError::Io`] on transport failures (kind preserved), and the
    /// structured container errors otherwise.
    fn decode(&self, source: &mut dyn Read, opts: &DecodeOptions) -> Result<Image, CbicError>;

    /// Buffered convenience over [`encode`](Self::encode): the container
    /// as a `Vec<u8>`.
    ///
    /// # Errors
    ///
    /// As [`encode`](Self::encode) (a `Vec` sink itself cannot fail).
    fn encode_vec(&self, img: ImageView<'_>, opts: &EncodeOptions) -> Result<Vec<u8>, CbicError> {
        let mut out = Vec::new();
        self.encode(img, opts, &mut out)?;
        Ok(out)
    }

    /// Buffered convenience over [`decode`](Self::decode).
    ///
    /// # Errors
    ///
    /// As [`decode`](Self::decode).
    fn decode_vec(&self, bytes: &[u8], opts: &DecodeOptions) -> Result<Image, CbicError> {
        let mut source = bytes;
        self.decode(&mut source, opts)
    }

    /// Encodes into a [`CountingSink`], returning the stats without ever
    /// materializing the container.
    ///
    /// # Errors
    ///
    /// As [`encode`](Self::encode).
    fn measure(&self, img: ImageView<'_>, opts: &EncodeOptions) -> Result<EncodeStats, CbicError> {
        let mut sink = CountingSink::new();
        self.encode(img, opts, &mut sink)
    }

    /// Compressed container size in bits per pixel, measured through a
    /// [`CountingSink`] (one encode pass, no container buffer).
    ///
    /// # Errors
    ///
    /// As [`encode`](Self::encode).
    fn bits_per_pixel(&self, img: ImageView<'_>, opts: &EncodeOptions) -> Result<f64, CbicError> {
        Ok(self.measure(img, opts)?.bits_per_pixel())
    }

    /// Bits per pixel of the entropy-coded payload alone (the paper's
    /// Table 1 quantity), from the same single counting pass as
    /// [`bits_per_pixel`](Self::bits_per_pixel).
    ///
    /// # Errors
    ///
    /// As [`encode`](Self::encode).
    fn payload_bits_per_pixel(
        &self,
        img: ImageView<'_>,
        opts: &EncodeOptions,
    ) -> Result<f64, CbicError> {
        Ok(self.measure(img, opts)?.payload_bits_per_pixel())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Stored;

    impl Codec for Stored {
        fn name(&self) -> &'static str {
            "stored"
        }
        fn encode(
            &self,
            img: ImageView<'_>,
            _opts: &EncodeOptions,
            sink: &mut dyn Write,
        ) -> Result<EncodeStats, CbicError> {
            sink.write_all(&(img.width() as u32).to_le_bytes())?;
            sink.write_all(&(img.height() as u32).to_le_bytes())?;
            for row in img.rows() {
                let bytes: Vec<u8> = row.iter().map(|&s| s as u8).collect();
                sink.write_all(&bytes)?;
            }
            Ok(EncodeStats::new(
                img.pixel_count() as u64,
                8 + img.pixel_count() as u64,
                None,
            ))
        }
        fn decode(&self, source: &mut dyn Read, _opts: &DecodeOptions) -> Result<Image, CbicError> {
            let mut dims = [0u8; 8];
            source.read_exact(&mut dims)?;
            let w = u32::from_le_bytes(dims[0..4].try_into().unwrap()) as usize;
            let h = u32::from_le_bytes(dims[4..8].try_into().unwrap()) as usize;
            let mut pixels = vec![0u8; w.saturating_mul(h)];
            source.read_exact(&mut pixels)?;
            Image::from_vec(w, h, pixels).map_err(CbicError::from)
        }
    }

    #[test]
    fn buffered_conveniences_match_streams() {
        let img = Image::from_fn(5, 3, |x, y| (x * y) as u8);
        let opts = EncodeOptions::default();
        let buffered = Stored.encode_vec(img.view(), &opts).unwrap();
        let mut streamed = Vec::new();
        let stats = Stored.encode(img.view(), &opts, &mut streamed).unwrap();
        assert_eq!(buffered, streamed);
        assert_eq!(stats.container_bytes, buffered.len() as u64);
        assert_eq!(
            Stored
                .decode_vec(&buffered, &DecodeOptions::default())
                .unwrap(),
            img
        );
    }

    #[test]
    fn strided_views_encode_like_their_copies() {
        let img = Image::from_fn(9, 7, |x, y| (x * 13 + y * 29) as u8);
        let opts = EncodeOptions::default();
        let window = img.view().crop(2, 1, 5, 4);
        assert!(!window.is_contiguous());
        let from_view = Stored.encode_vec(window, &opts).unwrap();
        let from_copy = Stored.encode_vec(window.to_image().view(), &opts).unwrap();
        assert_eq!(from_view, from_copy, "bits must not depend on the stride");
    }

    #[test]
    fn measure_never_materializes_but_counts_exactly() {
        let img = Image::from_fn(8, 8, |x, _| x as u8);
        let opts = EncodeOptions::default();
        let stats = Stored.measure(img.view(), &opts).unwrap();
        assert_eq!(stats.container_bytes, 8 + 64);
        assert_eq!(
            Stored.bits_per_pixel(img.view(), &opts).unwrap(),
            72.0 * 8.0 / 64.0
        );
        assert_eq!(
            Stored.payload_bits_per_pixel(img.view(), &opts).unwrap(),
            Stored.bits_per_pixel(img.view(), &opts).unwrap(),
            "no payload_bits tracked -> falls back to container size"
        );
    }

    #[test]
    fn truncated_decode_surfaces_structured_error() {
        let img = Image::from_fn(4, 4, |_, _| 9);
        let bytes = Stored
            .encode_vec(img.view(), &EncodeOptions::default())
            .unwrap();
        let err = Stored
            .decode_vec(&bytes[..bytes.len() - 3], &DecodeOptions::default())
            .unwrap_err();
        assert!(matches!(err, CbicError::Truncated));
        assert_eq!(err.io_kind(), Some(io::ErrorKind::UnexpectedEof));
    }

    #[test]
    fn failing_sink_preserves_error_kind() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::StorageFull, "full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let img = Image::from_fn(2, 2, |_, _| 7);
        let err = Stored
            .encode(img.view(), &EncodeOptions::default(), &mut Failing)
            .unwrap_err();
        assert_eq!(err.io_kind(), Some(io::ErrorKind::StorageFull));
    }

    #[test]
    fn trait_objects_stream() {
        let codec: &dyn Codec = &Stored;
        let img = Image::from_fn(3, 3, |x, _| x as u8);
        let mut sink = Vec::new();
        codec
            .encode(img.view(), &EncodeOptions::default(), &mut sink)
            .unwrap();
        let mut source: &[u8] = &sink;
        assert_eq!(
            codec
                .decode(&mut source, &DecodeOptions::default())
                .unwrap(),
            img
        );
    }

    #[test]
    fn default_bit_depth_range_is_full() {
        assert_eq!(Stored.bit_depths(), (1, 16));
    }

    #[test]
    fn default_model_modes_are_classic_only() {
        assert_eq!(Stored.model_modes(), &["classic"]);
    }

    #[test]
    fn counting_sink_tracks_partial_writes() {
        struct Trickle(Vec<u8>);
        impl Write for Trickle {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                let n = buf.len().min(3);
                self.0.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = CountingSink::wrap(Trickle(Vec::new()));
        sink.write_all(b"0123456789").unwrap();
        assert_eq!(sink.bytes_written(), 10);
        assert_eq!(sink.into_inner().0, b"0123456789");
    }
}
