//! The workspace-wide error hierarchy.
//!
//! Every fallible operation on the unified [`Codec`](crate::Codec) surface
//! returns [`CbicError`], so a service front end can hold one `match` for
//! every codec in the registry instead of juggling four per-crate enums.
//! The legacy enums ([`ImageError`], [`RegistryError`], `cbic-core`'s
//! `CodecError`, `cbic-universal`'s `UniversalError`) all convert into it
//! via `From`.

use crate::{ImageError, RegistryError};
use std::fmt;
use std::io;

/// The unified error type of the codec workspace.
///
/// Variants are structured — a caller can match on [`Truncated`]
/// (`CbicError::Truncated`) without parsing strings — and the [`Io`]
/// (`CbicError::Io`) variant carries the full [`std::io::Error`], so the
/// underlying [`io::ErrorKind`] is never lost. The enum is
/// `#[non_exhaustive]`: new failure classes may appear without a breaking
/// change, so always keep a `_` arm.
///
/// Mid-stream end-of-file is normalized: [`From<io::Error>`] maps
/// [`io::ErrorKind::UnexpectedEof`] to [`CbicError::Truncated`], and
/// [`CbicError::io_kind`] maps it back, so the kind survives the round
/// trip either way.
///
/// [`Truncated`]: Self::Truncated
/// [`Io`]: Self::Io
///
/// # Examples
///
/// ```
/// use cbic_image::CbicError;
/// use std::io;
///
/// let e = CbicError::from(io::Error::new(io::ErrorKind::UnexpectedEof, "cut"));
/// assert!(matches!(e, CbicError::Truncated));
/// assert_eq!(e.io_kind(), Some(io::ErrorKind::UnexpectedEof));
///
/// let e = CbicError::from(io::Error::new(io::ErrorKind::PermissionDenied, "ro"));
/// assert_eq!(e.io_kind(), Some(io::ErrorKind::PermissionDenied));
/// ```
#[derive(Debug)]
#[non_exhaustive]
pub enum CbicError {
    /// The stream does not start with a recognized container magic.
    BadMagic {
        /// The magic bytes actually found, when enough were readable.
        found: Option<[u8; 4]>,
    },
    /// The container declares a version this build does not support.
    UnsupportedVersion(u8),
    /// The container declares a codec identifier this build does not know.
    UnsupportedCodec(u8),
    /// The stream ended before its declared content did (short header, or
    /// a payload cut off mid-image).
    Truncated,
    /// A header or framing field holds a value no encoder produces.
    InvalidContainer(String),
    /// No registered codec answers to this name.
    UnknownCodec(String),
    /// Image construction or PGM parsing failed.
    Image(ImageError),
    /// Codec registration failed (duplicate name or magic collision).
    Registry(RegistryError),
    /// An underlying transport failure, with its [`io::ErrorKind`]
    /// preserved. End-of-file is normalized to [`Self::Truncated`] instead.
    Io(io::Error),
}

impl CbicError {
    /// Builds [`CbicError::BadMagic`] from the first bytes of a stream.
    pub fn bad_magic(bytes: &[u8]) -> Self {
        Self::BadMagic {
            found: bytes.get(..4).map(|b| b.try_into().expect("sized")),
        }
    }

    /// The underlying [`io::ErrorKind`], when this error corresponds to
    /// one: the preserved kind for [`Self::Io`], and
    /// [`io::ErrorKind::UnexpectedEof`] for [`Self::Truncated`] (a
    /// truncated decode *is* an unexpected end-of-file, whichever layer
    /// detected it).
    pub fn io_kind(&self) -> Option<io::ErrorKind> {
        match self {
            Self::Io(e) => Some(e.kind()),
            Self::Truncated => Some(io::ErrorKind::UnexpectedEof),
            _ => None,
        }
    }
}

impl fmt::Display for CbicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic { found: Some(m) } => {
                write!(
                    f,
                    "unrecognized container magic {:?}",
                    String::from_utf8_lossy(m)
                )
            }
            Self::BadMagic { found: None } => write!(f, "missing container magic"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported container version {v}"),
            Self::UnsupportedCodec(c) => write!(f, "unsupported codec id {c}"),
            Self::Truncated => write!(f, "truncated container"),
            Self::InvalidContainer(msg) => write!(f, "invalid container: {msg}"),
            Self::UnknownCodec(name) => write!(f, "unknown codec {name:?}"),
            Self::Image(e) => write!(f, "image error: {e}"),
            Self::Registry(e) => write!(f, "registry error: {e}"),
            Self::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for CbicError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Image(e) => Some(e),
            Self::Registry(e) => Some(e),
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CbicError {
    /// Preserves the error kind; [`io::ErrorKind::UnexpectedEof`] is
    /// normalized to [`CbicError::Truncated`] (recoverable through
    /// [`CbicError::io_kind`]).
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            Self::Truncated
        } else {
            Self::Io(e)
        }
    }
}

impl From<ImageError> for CbicError {
    fn from(e: ImageError) -> Self {
        match e {
            ImageError::Codec(msg) => Self::InvalidContainer(msg),
            ImageError::Io(msg) => Self::Io(io::Error::other(msg)),
            other => Self::Image(other),
        }
    }
}

impl From<RegistryError> for CbicError {
    fn from(e: RegistryError) -> Self {
        Self::Registry(e)
    }
}

impl From<CbicError> for io::Error {
    /// Embeds the error in `std::io` plumbing without losing the kind:
    /// [`CbicError::Io`] unwraps, [`CbicError::Truncated`] maps to
    /// [`io::ErrorKind::UnexpectedEof`], everything else becomes
    /// [`io::ErrorKind::InvalidData`] with the error as source.
    fn from(e: CbicError) -> Self {
        match e {
            CbicError::Io(inner) => inner,
            CbicError::Truncated => io::Error::new(io::ErrorKind::UnexpectedEof, e.to_string()),
            other => io::Error::new(io::ErrorKind::InvalidData, other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eof_normalizes_to_truncated_and_back() {
        let e = CbicError::from(io::Error::new(io::ErrorKind::UnexpectedEof, "cut"));
        assert!(matches!(e, CbicError::Truncated));
        assert_eq!(e.io_kind(), Some(io::ErrorKind::UnexpectedEof));
        let back = io::Error::from(e);
        assert_eq!(back.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn io_kind_is_preserved() {
        for kind in [
            io::ErrorKind::PermissionDenied,
            io::ErrorKind::BrokenPipe,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::WriteZero,
        ] {
            let e = CbicError::from(io::Error::new(kind, "transport"));
            assert_eq!(e.io_kind(), Some(kind), "{kind:?}");
            assert_eq!(io::Error::from(e).kind(), kind, "{kind:?}");
        }
    }

    #[test]
    fn image_error_conversion_is_structured() {
        let e = CbicError::from(ImageError::EmptyImage);
        assert!(matches!(e, CbicError::Image(ImageError::EmptyImage)));
        let e = CbicError::from(ImageError::Codec("bad field".into()));
        assert!(matches!(e, CbicError::InvalidContainer(_)));
        let e = CbicError::from(ImageError::Io("disk on fire".into()));
        assert!(matches!(e, CbicError::Io(_)));
    }

    #[test]
    fn registry_error_conversion_keeps_source() {
        use std::error::Error as _;
        let e = CbicError::from(RegistryError::DuplicateName("proposed".into()));
        assert!(matches!(e, CbicError::Registry(_)));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("proposed"));
    }

    #[test]
    fn bad_magic_captures_found_bytes() {
        let e = CbicError::bad_magic(b"WXYZrest");
        assert!(matches!(e, CbicError::BadMagic { found: Some(m) } if &m == b"WXYZ"));
        assert!(CbicError::bad_magic(b"ab").io_kind().is_none());
        assert!(matches!(
            CbicError::bad_magic(b"ab"),
            CbicError::BadMagic { found: None }
        ));
    }

    #[test]
    fn display_messages_are_informative() {
        assert!(CbicError::bad_magic(b"WXYZ").to_string().contains("WXYZ"));
        assert!(CbicError::UnsupportedVersion(9).to_string().contains('9'));
        assert!(CbicError::UnknownCodec("zstd".into())
            .to_string()
            .contains("zstd"));
        assert!(CbicError::Truncated.to_string().contains("truncated"));
    }
}
