//! Grayscale image container, PGM I/O, statistics, and the synthetic
//! evaluation corpus used to reproduce the paper's experiments.
//!
//! The paper evaluates on seven classic 512×512 8-bit grayscale test images
//! (*barb, boat, goldhill, lena, mandrill, peppers, zelda*). Those images
//! are not redistributable, so this crate provides [`corpus`] — a set of
//! deterministic synthetic generators, one per original, each tuned to the
//! qualitative character of its namesake (smooth portrait, oriented fabric
//! texture, high-frequency fur, …). See `DESIGN.md` §6 for the substitution
//! rationale. [`pgm`] I/O is provided so the real images can be used when
//! available.
//!
//! # Examples
//!
//! ```
//! use cbic_image::{corpus::CorpusImage, Image};
//!
//! let img: Image = CorpusImage::Lena.generate(64, 64);
//! assert_eq!(img.dimensions(), (64, 64));
//! let entropy = img.entropy();
//! assert!(entropy > 0.0 && entropy <= 8.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec_trait;
pub mod corpus;
mod error;
pub mod framing;
mod image;
mod options;
pub mod pgm;
pub mod registry;
pub mod synth;
mod view;

#[cfg(test)]
mod proptests;

pub use codec_trait::{Codec, CountingSink, EncodeStats};
pub use error::CbicError;
pub use image::{max_val_for, Image, ImageError};
pub use options::{DecodeOptions, EncodeOptions, ModelMode, Parallelism, Rect, BANKS_LOG2_RANGE};
pub use registry::{CodecRegistry, RegistryError};
pub use view::{ImageView, ImageViewMut};
