//! Typed options for the unified [`Codec`](crate::Codec) surface.
//!
//! The knobs that used to be scattered across free functions and codec
//! struct fields — worker-thread counts, tiling geometry — travel in
//! [`EncodeOptions`] / [`DecodeOptions`] instead, so every codec is called
//! the same way and new knobs can be added without breaking signatures
//! (both structs are `#[non_exhaustive]`; build them with the `with_*`
//! methods).

/// How many worker threads a codec with a parallel path may use.
///
/// The choice never changes the produced bytes — only the wall-clock time.
/// Codecs without a parallel path ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One job after another on the calling thread (the reference path).
    #[default]
    Sequential,
    /// Up to this many worker threads via [`std::thread::scope`]. `0` and
    /// `1` degrade to [`Parallelism::Sequential`].
    Threads(usize),
    /// One worker per available hardware thread
    /// ([`std::thread::available_parallelism`]).
    Auto,
}

impl Parallelism {
    /// CLI helper: maps a `--threads N` value (`0`/`1` meaning "don't
    /// spawn") onto the matching variant.
    pub fn from_threads(n: usize) -> Self {
        if n <= 1 {
            Self::Sequential
        } else {
            Self::Threads(n)
        }
    }

    /// Number of workers to spawn for `jobs` independent jobs.
    pub fn workers(self, jobs: usize) -> usize {
        let cap = match self {
            Self::Sequential => 1,
            Self::Threads(n) => n.max(1),
            Self::Auto => std::thread::available_parallelism().map_or(1, usize::from),
        };
        cap.min(jobs.max(1))
    }
}

/// Which context-modeling path a model-aware codec drives.
///
/// The paper's codec forms its compound context from a 7-pixel causal
/// window ([`ModelMode::Classic`], the default — byte-identical to every
/// pre-existing container). [`ModelMode::WideHash`] switches the same
/// engine to an enlarged 13-sample neighborhood whose quantized feature
/// vector is hashed into `2^banks_log2` bounded SoA context banks
/// (container v5). The mode changes the *bits*, so it travels in the
/// container header and both sides must agree; codecs without a model
/// knob ignore it.
///
/// # Examples
///
/// ```
/// use cbic_image::ModelMode;
///
/// assert_eq!(ModelMode::default(), ModelMode::Classic);
/// assert_eq!(ModelMode::WideHash { banks_log2: 11 }.banks_log2(), Some(11));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ModelMode {
    /// The paper's 7-pixel window forming 512 compound contexts.
    #[default]
    Classic,
    /// Enlarged hashed context modeling: a 13-sample causal window hashed
    /// into `2^banks_log2` context banks (`banks_log2` in `4..=16`).
    WideHash {
        /// Base-2 logarithm of the bank count (`4..=16`; 11 ≈ 4× the
        /// classic context-store budget at the paper's bit widths).
        banks_log2: u8,
    },
}

/// The valid `banks_log2` range for [`ModelMode::WideHash`].
pub const BANKS_LOG2_RANGE: std::ops::RangeInclusive<u8> = 4..=16;

impl ModelMode {
    /// `true` for the classic (pre-v5, byte-identical) model.
    pub fn is_classic(self) -> bool {
        matches!(self, Self::Classic)
    }

    /// The bank-count exponent of a [`ModelMode::WideHash`] mode.
    pub fn banks_log2(self) -> Option<u8> {
        match self {
            Self::Classic => None,
            Self::WideHash { banks_log2 } => Some(banks_log2),
        }
    }

    /// `Ok` when the mode's parameters are in range (a `WideHash` bank
    /// exponent outside [`BANKS_LOG2_RANGE`] is rejected with a message).
    pub fn validate(self) -> Result<(), String> {
        match self {
            Self::Classic => Ok(()),
            Self::WideHash { banks_log2 } if BANKS_LOG2_RANGE.contains(&banks_log2) => Ok(()),
            Self::WideHash { banks_log2 } => Err(format!(
                "banks_log2 {banks_log2} outside {}..={}",
                BANKS_LOG2_RANGE.start(),
                BANKS_LOG2_RANGE.end()
            )),
        }
    }
}

impl std::fmt::Display for ModelMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Classic => write!(f, "classic"),
            Self::WideHash { banks_log2 } => write!(f, "wide:{banks_log2}"),
        }
    }
}

/// A rectangular region of an image, in pixels.
///
/// Used by [`DecodeOptions::with_roi`] to request a random-access crop
/// decode: codecs with a seekable tile index (container v4 of the
/// proposed codec) decode only the tiles covering the rectangle, while
/// other codecs decode the full image and crop. Either way the returned
/// image is exactly `w`×`h` with its origin at `(x, y)` of the source.
///
/// # Examples
///
/// ```
/// use cbic_image::Rect;
///
/// let r = Rect::new(10, 20, 30, 40);
/// assert_eq!((r.x, r.y, r.w, r.h), (10, 20, 30, 40));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Left edge, in pixels from the image's left edge.
    pub x: u32,
    /// Top edge, in pixels from the image's top edge.
    pub y: u32,
    /// Width in pixels.
    pub w: u32,
    /// Height in pixels.
    pub h: u32,
}

impl Rect {
    /// A rectangle of `w`×`h` pixels whose top-left corner is `(x, y)`.
    pub fn new(x: u32, y: u32, w: u32, h: u32) -> Self {
        Self { x, y, w, h }
    }
}

/// Typed knobs for [`Codec::encode`](crate::Codec::encode).
///
/// The codec-specific model configuration (e.g. `cbic-core`'s
/// `CodecConfig`) stays on the codec value itself; these options carry the
/// orchestration knobs every codec understands the same way.
///
/// # Examples
///
/// ```
/// use cbic_image::{EncodeOptions, Parallelism};
///
/// let opts = EncodeOptions::new()
///     .with_parallelism(Parallelism::Threads(4))
///     .with_tiles(4);
/// assert_eq!(opts.parallelism, Parallelism::Threads(4));
/// assert_eq!(opts.tiles, Some(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct EncodeOptions {
    /// Worker threads for codecs with a parallel encode path (the tiled
    /// codec runs one band per worker).
    pub parallelism: Parallelism,
    /// Horizontal band count for tiling codecs; `None` uses the codec's
    /// default geometry. Ignored by untiled codecs.
    pub tiles: Option<usize>,
    /// Interleaved coder lanes for codecs with a lane-parallel entropy
    /// stage (`1` = the classic single-coder stream). Codecs without lane
    /// support ignore it; lane-aware codecs validate the count themselves.
    pub lanes: usize,
    /// 2D tile size `(tile_w, tile_h)` for codecs with a seekable tile
    /// grid (container v4 of the proposed codec). `None` keeps the flat
    /// single-stream container. Codecs without a grid path ignore it;
    /// grid-aware codecs validate the geometry themselves.
    pub tile: Option<(u32, u32)>,
    /// Context-modeling mode for model-aware codecs (the proposed codec
    /// and its tiled variant). [`ModelMode::Classic`] (the default) keeps
    /// every container byte-identical to the pre-v5 formats;
    /// [`ModelMode::WideHash`] emits a v5 container. Other codecs ignore
    /// it; model-aware codecs validate the parameters themselves.
    pub model: ModelMode,
}

impl Default for EncodeOptions {
    /// [`Parallelism::Auto`], default tiling geometry, one coder lane,
    /// no 2D tile grid.
    fn default() -> Self {
        Self {
            parallelism: Parallelism::Auto,
            tiles: None,
            lanes: 1,
            tile: None,
            model: ModelMode::Classic,
        }
    }
}

impl EncodeOptions {
    /// The default options ([`Parallelism::Auto`], codec-default tiling).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread policy.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Overrides the band count of tiling codecs.
    pub fn with_tiles(mut self, tiles: usize) -> Self {
        self.tiles = Some(tiles);
        self
    }

    /// Sets the interleaved coder lane count of lane-aware codecs.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// Requests a 2D tile grid of `tile_w`×`tile_h`-pixel tiles from
    /// grid-aware codecs (container v4 of the proposed codec).
    pub fn with_tile(mut self, tile_w: u32, tile_h: u32) -> Self {
        self.tile = Some((tile_w, tile_h));
        self
    }

    /// Selects the context-modeling mode of model-aware codecs (the
    /// proposed codec's classic vs enlarged hashed contexts).
    pub fn with_model(mut self, model: ModelMode) -> Self {
        self.model = model;
        self
    }
}

/// Typed knobs for [`Codec::decode`](crate::Codec::decode).
///
/// # Examples
///
/// ```
/// use cbic_image::{DecodeOptions, Parallelism};
///
/// let opts = DecodeOptions::new().with_parallelism(Parallelism::Sequential);
/// assert_eq!(opts.parallelism, Parallelism::Sequential);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct DecodeOptions {
    /// Worker threads for codecs with a parallel decode path.
    pub parallelism: Parallelism,
    /// Region of interest: decode only this rectangle of the image. This
    /// is the one option that changes the *returned pixels* (a `w`×`h`
    /// crop instead of the full image), never the interpretation of the
    /// container bytes. Codecs with a seekable tile index touch only the
    /// covering tiles; others decode fully and crop. `None` (the default)
    /// decodes the whole image.
    pub roi: Option<Rect>,
}

impl Default for DecodeOptions {
    /// [`Parallelism::Auto`], full-image decode.
    fn default() -> Self {
        Self {
            parallelism: Parallelism::Auto,
            roi: None,
        }
    }
}

impl DecodeOptions {
    /// The default options ([`Parallelism::Auto`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread policy.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Requests a region-of-interest decode: only `roi` is returned.
    pub fn with_roi(mut self, roi: Rect) -> Self {
        self.roi = Some(roi);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_threads_degrades_small_counts() {
        assert_eq!(Parallelism::from_threads(0), Parallelism::Sequential);
        assert_eq!(Parallelism::from_threads(1), Parallelism::Sequential);
        assert_eq!(Parallelism::from_threads(8), Parallelism::Threads(8));
    }

    #[test]
    fn workers_bounded_by_jobs() {
        assert_eq!(Parallelism::Sequential.workers(10), 1);
        assert_eq!(Parallelism::Threads(4).workers(10), 4);
        assert_eq!(Parallelism::Threads(4).workers(2), 2);
        assert_eq!(Parallelism::Threads(0).workers(5), 1);
        assert!(Parallelism::Auto.workers(64) >= 1);
        assert_eq!(Parallelism::Auto.workers(0), 1);
    }

    #[test]
    fn builders_set_fields() {
        let e = EncodeOptions::new().with_tiles(7).with_lanes(4);
        assert_eq!(e.tiles, Some(7));
        assert_eq!(e.lanes, 4);
        assert_eq!(EncodeOptions::default().tiles, None);
        assert_eq!(EncodeOptions::default().lanes, 1);
        assert_eq!(EncodeOptions::default().tile, None);
        assert_eq!(
            EncodeOptions::new().with_tile(256, 128).tile,
            Some((256, 128))
        );
        let d = DecodeOptions::new().with_parallelism(Parallelism::Threads(2));
        assert_eq!(d.parallelism, Parallelism::Threads(2));
        assert_eq!(d.roi, None);
        let r = DecodeOptions::new().with_roi(Rect::new(1, 2, 3, 4));
        assert_eq!(r.roi, Some(Rect::new(1, 2, 3, 4)));
        assert_eq!(EncodeOptions::default().model, ModelMode::Classic);
        let m = EncodeOptions::new().with_model(ModelMode::WideHash { banks_log2: 11 });
        assert_eq!(m.model.banks_log2(), Some(11));
    }

    #[test]
    fn model_mode_validation_and_display() {
        assert!(ModelMode::Classic.validate().is_ok());
        assert!(ModelMode::WideHash { banks_log2: 4 }.validate().is_ok());
        assert!(ModelMode::WideHash { banks_log2: 16 }.validate().is_ok());
        assert!(ModelMode::WideHash { banks_log2: 3 }.validate().is_err());
        assert!(ModelMode::WideHash { banks_log2: 17 }.validate().is_err());
        assert_eq!(ModelMode::Classic.to_string(), "classic");
        assert_eq!(
            ModelMode::WideHash { banks_log2: 11 }.to_string(),
            "wide:11"
        );
        assert!(ModelMode::Classic.is_classic());
        assert!(!ModelMode::WideHash { banks_log2: 11 }.is_classic());
    }
}
