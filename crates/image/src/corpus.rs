//! The synthetic evaluation corpus.
//!
//! The paper's Table 1 evaluates on seven classic 512×512 grayscale test
//! images. They cannot be redistributed, so each corpus entry here is a
//! *deterministic synthetic stand-in* built from the [`synth`](crate::synth)
//! primitives and tuned to the qualitative character of its namesake:
//!
//! | name | character | expected difficulty |
//! |----------|------------------------------------------|---------------------|
//! | zelda | very smooth portrait | easiest |
//! | lena | smooth portrait, soft edges | easy |
//! | boat | smooth sky + sharp rigging lines | easy-mid |
//! | peppers | large smooth blobs, strong contours | mid |
//! | goldhill | mid-frequency village texture | hard-mid |
//! | barb | oriented high-frequency fabric stripes | hard |
//! | mandrill | dense fur texture, high noise | hardest |
//!
//! The difficulty *ordering* (and the codec ordering measured on it) is the
//! reproduction target for Table 1; absolute bit rates differ from the
//! paper because the pixels differ. All generators are pure functions of
//! the pixel coordinates, so the corpus is bit-identical everywhere.

use crate::synth::{fbm, gauss, quantize, soft_disk, soft_rect, stripes, value_noise};
use crate::Image;

/// Identifies one of the seven Table 1 test images.
///
/// # Examples
///
/// ```
/// use cbic_image::corpus::CorpusImage;
///
/// let img = CorpusImage::Mandrill.generate(128, 128);
/// let smooth = CorpusImage::Zelda.generate(128, 128);
/// assert!(img.gradient_entropy() > smooth.gradient_entropy());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CorpusImage {
    /// Oriented fabric stripes over a cluttered scene.
    Barb,
    /// Smooth sky, hull texture, and thin dark rigging lines.
    Boat,
    /// Mid-frequency village texture with small house-like blocks.
    Goldhill,
    /// Smooth portrait with soft edges.
    Lena,
    /// Dense high-frequency fur; the classic worst case.
    Mandrill,
    /// Large smooth vegetable blobs with strong contours.
    Peppers,
    /// The smoothest portrait in the set.
    Zelda,
}

impl CorpusImage {
    /// All seven images in the paper's Table 1 row order.
    pub const ALL: [CorpusImage; 7] = [
        CorpusImage::Barb,
        CorpusImage::Boat,
        CorpusImage::Goldhill,
        CorpusImage::Lena,
        CorpusImage::Mandrill,
        CorpusImage::Peppers,
        CorpusImage::Zelda,
    ];

    /// Lower-case name as printed in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            CorpusImage::Barb => "barb",
            CorpusImage::Boat => "boat",
            CorpusImage::Goldhill => "goldhill",
            CorpusImage::Lena => "lena",
            CorpusImage::Mandrill => "mandrill",
            CorpusImage::Peppers => "peppers",
            CorpusImage::Zelda => "zelda",
        }
    }

    /// Deterministic per-image seed for the procedural fields.
    fn seed(self) -> u64 {
        match self {
            CorpusImage::Barb => 0xBA5B,
            CorpusImage::Boat => 0xB0A7,
            CorpusImage::Goldhill => 0x601D,
            CorpusImage::Lena => 0x1E4A,
            CorpusImage::Mandrill => 0x3A4D,
            CorpusImage::Peppers => 0x9E99,
            CorpusImage::Zelda => 0x2E1D,
        }
    }

    /// Generates the synthetic stand-in at the given size (the paper uses
    /// 512×512; smaller sizes are handy in tests).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn generate(self, width: usize, height: usize) -> Image {
        let seed = self.seed();
        let w = width as f64;
        let h = height as f64;
        Image::from_fn(width, height, |xi, yi| {
            let x = xi as f64;
            let y = yi as f64;
            // Normalized coordinates for size-independent feature placement.
            let u = x / w;
            let v = y / h;
            let val = match self {
                CorpusImage::Zelda => zelda(seed, x, y, u, v),
                CorpusImage::Lena => lena(seed, x, y, u, v, w),
                CorpusImage::Boat => boat(seed, x, y, u, v, w, h),
                CorpusImage::Peppers => peppers(seed, x, y, u, v, w),
                CorpusImage::Goldhill => goldhill(seed, x, y, u, v, w, h),
                CorpusImage::Barb => barb(seed, x, y, u, v, w),
                CorpusImage::Mandrill => mandrill(seed, x, y, u, v, w),
            };
            quantize(val + NOISE_SIGMA[self as usize] * gauss(seed, xi as i64, yi as i64))
        })
    }
}

/// Per-image sensor-noise sigma, indexed by the enum discriminant
/// (Barb, Boat, Goldhill, Lena, Mandrill, Peppers, Zelda).
const NOISE_SIGMA: [f64; 7] = [3.7, 3.4, 4.6, 3.4, 7.6, 4.1, 2.9];

fn zelda(seed: u64, x: f64, y: f64, u: f64, v: f64) -> f64 {
    let base = 118.0 + 52.0 * fbm(seed, x, y, 150.0, 3, 0.5);
    let face = 26.0 * soft_disk(u, v, 0.52, 0.42, 0.16, 0.10);
    let shoulder = -18.0 * soft_disk(u, v, 0.45, 0.95, 0.30, 0.18);
    let mid = 6.0 * fbm(seed + 9, x, y, 18.0, 3, 0.5);
    base + face + shoulder + mid
}

fn lena(seed: u64, x: f64, y: f64, u: f64, v: f64, w: f64) -> f64 {
    let base = 120.0 + 58.0 * fbm(seed, x, y, 130.0, 3, 0.5);
    // Hat brim: a broad soft diagonal band.
    let band = 24.0 * soft_disk(u, v, 0.30, 0.25, 0.22, 0.08);
    let face = 18.0 * soft_disk(u, v, 0.58, 0.52, 0.14, 0.06);
    // Feather texture on the hat region.
    let feather_mask = soft_disk(u, v, 0.32, 0.22, 0.26, 0.10);
    let feather = 11.0 * feather_mask * value_noise(seed + 3, x, y, w / 64.0);
    let mid = 8.0 * fbm(seed + 5, x, y, 16.0, 3, 0.5);
    base + band + face + feather + mid
}

fn boat(seed: u64, x: f64, y: f64, u: f64, v: f64, w: f64, h: f64) -> f64 {
    // Sky: bright, very smooth vertical gradient.
    let sky = 190.0 - 60.0 * v;
    // Water/dock: darker with mid-frequency chop.
    let ground = 95.0 + 22.0 * fbm(seed, x, y, 24.0, 4, 0.55);
    let horizon = crate::synth::smoothstep(((v - 0.55) / 0.06).clamp(0.0, 1.0));
    let mut val = sky * (1.0 - horizon) + ground * horizon;
    // Hull: dark soft rectangle.
    val -= 55.0 * soft_rect(u, v, 0.18, 0.60, 0.72, 0.82, 0.02);
    // Masts: thin near-vertical dark lines (sharp edges for run/edge modes).
    for (i, &mx) in [0.30f64, 0.46, 0.60].iter().enumerate() {
        let lean = (i as f64 - 1.0) * 0.02;
        let d = ((u - mx) + lean * (v - 0.6)).abs() * w;
        if v < 0.62 && d < 2.5 {
            val -= 70.0 * (1.0 - d / 2.5);
        }
    }
    // Rigging: a few thin diagonals.
    for k in 0..4 {
        let c = 0.22 + 0.14 * f64::from(k);
        let d = ((u + v * 0.35) - c).abs() * (w + h) * 0.5;
        if v < 0.60 && d < 1.2 {
            val -= 35.0 * (1.0 - d / 1.2);
        }
    }
    val + 7.0 * fbm(seed + 2, x, y, 12.0, 3, 0.5)
}

fn peppers(seed: u64, x: f64, y: f64, u: f64, v: f64, w: f64) -> f64 {
    let mut val = 70.0 + 25.0 * fbm(seed, x, y, 90.0, 3, 0.5);
    // Overlapping smooth vegetable blobs at staggered gray levels.
    const BLOBS: [(f64, f64, f64, f64); 9] = [
        (0.25, 0.30, 0.19, 95.0),
        (0.62, 0.22, 0.16, 60.0),
        (0.80, 0.55, 0.17, 85.0),
        (0.42, 0.58, 0.21, 45.0),
        (0.15, 0.72, 0.15, 75.0),
        (0.60, 0.80, 0.18, 100.0),
        (0.88, 0.15, 0.10, 55.0),
        (0.35, 0.88, 0.12, 65.0),
        (0.75, 0.38, 0.09, 40.0),
    ];
    for &(cx, cy, r, level) in &BLOBS {
        let m = soft_disk(u, v, cx, cy, r, 0.015);
        // Blobs occlude what is beneath them rather than summing.
        val = val * (1.0 - m) + (level + 18.0 * value_noise(seed + 7, x, y, w / 6.0)) * m;
        // Specular highlight.
        let hl = soft_disk(u, v, cx - r * 0.3, cy - r * 0.35, r * 0.18, 0.02);
        val += 45.0 * hl * m;
    }
    val + 5.0 * fbm(seed + 4, x, y, 14.0, 3, 0.5)
}

fn goldhill(seed: u64, x: f64, y: f64, u: f64, v: f64, w: f64, h: f64) -> f64 {
    let mut val = 105.0 + 40.0 * fbm(seed, x, y, 110.0, 3, 0.5);
    // Rolling field texture.
    val += 16.0 * fbm(seed + 1, x, y, 20.0, 4, 0.55);
    // A loose grid of house-like blocks in the lower half.
    for gy in 0..5 {
        for gx in 0..7 {
            let jx = 0.12 * value_noise(seed + 11, f64::from(gx) * 31.0, f64::from(gy) * 17.0, 1.0);
            let jy = 0.05 * value_noise(seed + 13, f64::from(gx) * 13.0, f64::from(gy) * 29.0, 1.0);
            let cx = 0.06 + f64::from(gx) * 0.14 + jx;
            let cy = 0.52 + f64::from(gy) * 0.11 + jy;
            let bw = 0.045;
            let bh = 0.035;
            let tone = 40.0 * value_noise(seed + 17, f64::from(gx) * 7.0, f64::from(gy) * 5.0, 1.0);
            let m = soft_rect(u, v, cx - bw, cy - bh, cx + bw, cy + bh, 0.004);
            val = val * (1.0 - m) + (95.0 + tone) * m;
            // Roof line: brighter strip on top of each block.
            let roof = soft_rect(u, v, cx - bw, cy - bh, cx + bw, cy - bh + 0.012, 0.003);
            val += 25.0 * roof;
        }
    }
    val + 9.0 * fbm(seed + 3, x, y, 5.0, 2, 0.6) + 0.0 * (w + h)
}

fn barb(seed: u64, x: f64, y: f64, u: f64, v: f64, w: f64) -> f64 {
    let mut val = 115.0 + 45.0 * fbm(seed, x, y, 120.0, 3, 0.5);
    // Patches of oriented fabric stripes (the scarf/trousers/tablecloth in
    // the original), warped slightly by low-frequency noise so they alias
    // like real cloth.
    const PATCHES: [(f64, f64, f64, f64, f64); 5] = [
        // (cx, cy, r, angle, cycles-per-pixel) — absolute frequency so the
        // fabric looks the same at every image size.
        (0.30, 0.75, 0.24, 0.90, 0.107),
        (0.75, 0.65, 0.20, -0.60, 0.125),
        (0.20, 0.28, 0.16, 0.35, 0.094),
        (0.62, 0.20, 0.15, 1.25, 0.113),
        (0.88, 0.88, 0.14, -1.10, 0.098),
    ];
    for &(cx, cy, r, angle, freq) in &PATCHES {
        let m = soft_disk(u, v, cx, cy, r, 0.05);
        if m > 0.0 {
            let warp = 2.5 * value_noise(seed + 21, x, y, w / 10.0);
            let s = stripes(x + warp, y, angle, freq, 0.0);
            val += 27.0 * m * s;
        }
    }
    val + 8.0 * fbm(seed + 2, x, y, 12.0, 3, 0.55)
}

fn mandrill(seed: u64, x: f64, y: f64, u: f64, v: f64, _w: f64) -> f64 {
    let base = 110.0 + 30.0 * fbm(seed, x, y, 100.0, 3, 0.5);
    // Dense fur: strong energy at the finest scales.
    let fur_fine = 30.0 * fbm(seed + 1, x, y, 2.0, 2, 0.7);
    let fur_mid = 18.0 * fbm(seed + 2, x, y, 6.0, 3, 0.6);
    // Bright muzzle flanks.
    let muzzle =
        35.0 * (soft_disk(u, v, 0.38, 0.55, 0.13, 0.06) + soft_disk(u, v, 0.66, 0.55, 0.13, 0.06));
    // Directional whiskers.
    let whiskers = 10.0 * stripes(x, y, 0.25, 0.027, 1.0) * soft_disk(u, v, 0.52, 0.75, 0.22, 0.08);
    base + fur_fine + fur_mid + muzzle + whiskers
}

/// Generates the full seven-image corpus at `size`×`size` (Table 1 uses
/// 512), in the paper's row order.
///
/// # Examples
///
/// ```
/// let corpus = cbic_image::corpus::generate(64);
/// assert_eq!(corpus.len(), 7);
/// assert_eq!(corpus[0].0, cbic_image::corpus::CorpusImage::Barb);
/// ```
pub fn generate(size: usize) -> Vec<(CorpusImage, Image)> {
    CorpusImage::ALL
        .iter()
        .map(|&c| (c, c.generate(size, size)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_table1() {
        let names: Vec<_> = CorpusImage::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            ["barb", "boat", "goldhill", "lena", "mandrill", "peppers", "zelda"]
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CorpusImage::Lena.generate(64, 64);
        let b = CorpusImage::Lena.generate(64, 64);
        assert_eq!(a, b);
    }

    #[test]
    fn images_are_distinct() {
        let imgs = generate(32);
        for i in 0..imgs.len() {
            for j in i + 1..imgs.len() {
                assert_ne!(imgs[i].1, imgs[j].1, "{:?} == {:?}", imgs[i].0, imgs[j].0);
            }
        }
    }

    #[test]
    fn mandrill_is_hardest_zelda_easiest() {
        let imgs = generate(128);
        let ge: Vec<(CorpusImage, f64)> = imgs
            .iter()
            .map(|(c, i)| (*c, i.gradient_entropy()))
            .collect();
        let mandrill = ge
            .iter()
            .find(|(c, _)| *c == CorpusImage::Mandrill)
            .unwrap()
            .1;
        let zelda = ge.iter().find(|(c, _)| *c == CorpusImage::Zelda).unwrap().1;
        for (c, g) in &ge {
            if *c != CorpusImage::Mandrill {
                assert!(
                    *g < mandrill,
                    "{c:?} ({g}) not easier than mandrill ({mandrill})"
                );
            }
            if *c != CorpusImage::Zelda {
                assert!(*g > zelda, "{c:?} ({g}) not harder than zelda ({zelda})");
            }
        }
    }

    #[test]
    fn pixel_values_span_a_wide_range() {
        for (c, img) in generate(64) {
            let min = *img.samples().iter().min().unwrap();
            let max = *img.samples().iter().max().unwrap();
            assert!(max - min > 60, "{c:?} spans only {min}..{max}");
        }
    }

    #[test]
    fn non_square_generation_works() {
        let img = CorpusImage::Boat.generate(48, 96);
        assert_eq!(img.dimensions(), (48, 96));
    }

    #[test]
    fn entropy_in_sane_band() {
        for (c, img) in generate(128) {
            let e = img.entropy();
            assert!((4.0..8.0).contains(&e), "{c:?} entropy {e}");
        }
    }
}
