//! The 8-bit grayscale image container.

use std::fmt;

/// Errors produced by image construction and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ImageError {
    /// Pixel buffer length does not equal `width * height`.
    DimensionMismatch {
        /// Declared width.
        width: usize,
        /// Declared height.
        height: usize,
        /// Actual buffer length.
        len: usize,
    },
    /// Width or height is zero.
    EmptyImage,
    /// A PGM stream could not be parsed.
    PgmParse(String),
    /// A compressed container could not be parsed (used by `ImageCodec`
    /// implementations to surface their codec-specific errors).
    Codec(String),
    /// Underlying I/O failure (message form, to keep the error `Clone`).
    Io(String),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimensionMismatch { width, height, len } => write!(
                f,
                "pixel buffer of {len} bytes does not match {width}x{height} image"
            ),
            Self::EmptyImage => write!(f, "image dimensions must be nonzero"),
            Self::PgmParse(msg) => write!(f, "invalid PGM stream: {msg}"),
            Self::Codec(msg) => write!(f, "invalid compressed container: {msg}"),
            Self::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for ImageError {}

impl From<std::io::Error> for ImageError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

/// An 8-bit grayscale image in row-major order.
///
/// This is the pixel container every codec in the workspace consumes and
/// produces. Pixels are `u8` (the paper's n = 8 bits per pixel).
///
/// # Examples
///
/// ```
/// use cbic_image::Image;
///
/// let img = Image::from_fn(4, 2, |x, y| (x * 10 + y) as u8);
/// assert_eq!(img.get(3, 1), 31);
/// assert_eq!(img.pixels().len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Image {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Image {
    /// Creates a black (all-zero) image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        Self {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Wraps an existing row-major pixel buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::DimensionMismatch`] if `data.len()` is not
    /// `width * height`, or [`ImageError::EmptyImage`] for zero dimensions.
    pub fn from_vec(width: usize, height: usize, data: Vec<u8>) -> Result<Self, ImageError> {
        if width == 0 || height == 0 {
            return Err(ImageError::EmptyImage);
        }
        if data.len() != width * height {
            return Err(ImageError::DimensionMismatch {
                width,
                height,
                len: data.len(),
            });
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// Builds an image by evaluating `f(x, y)` for every pixel.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> u8) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Self {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// `(width, height)` pair.
    #[inline]
    pub fn dimensions(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Total number of pixels.
    #[inline]
    pub fn pixel_count(&self) -> usize {
        self.data.len()
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: u8) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x] = value;
    }

    /// Row `y` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of bounds.
    #[inline]
    pub fn row(&self, y: usize) -> &[u8] {
        assert!(y < self.height, "row out of bounds");
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// The whole pixel buffer, row-major.
    #[inline]
    pub fn pixels(&self) -> &[u8] {
        &self.data
    }

    /// Consumes the image, returning the pixel buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }

    /// Order-0 (histogram) entropy in bits per pixel.
    ///
    /// An upper bound on what a memoryless coder could achieve; context
    /// modeling exists precisely to beat this.
    pub fn entropy(&self) -> f64 {
        let mut hist = [0u64; 256];
        for &p in &self.data {
            hist[usize::from(p)] += 1;
        }
        let n = self.data.len() as f64;
        hist.iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.log2()
            })
            .sum()
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f64 {
        self.data.iter().map(|&p| f64::from(p)).sum::<f64>() / self.data.len() as f64
    }

    /// Entropy (bits/pixel) of the horizontal first differences — a quick
    /// proxy for how predictable the image is.
    pub fn gradient_entropy(&self) -> f64 {
        let mut hist = [0u64; 256];
        let mut n = 0u64;
        for y in 0..self.height {
            let row = self.row(y);
            for x in 1..self.width {
                hist[usize::from(row[x].wrapping_sub(row[x - 1]))] += 1;
                n += 1;
            }
        }
        if n == 0 {
            return 0.0;
        }
        let n = n as f64;
        hist.iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.log2()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_black() {
        let img = Image::new(3, 2);
        assert_eq!(img.dimensions(), (3, 2));
        assert!(img.pixels().iter().all(|&p| p == 0));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Image::from_vec(2, 2, vec![0; 4]).is_ok());
        let err = Image::from_vec(2, 2, vec![0; 5]).unwrap_err();
        assert!(matches!(err, ImageError::DimensionMismatch { len: 5, .. }));
        assert_eq!(Image::from_vec(0, 2, vec![]), Err(ImageError::EmptyImage));
    }

    #[test]
    fn from_fn_row_major_order() {
        let img = Image::from_fn(3, 2, |x, y| (y * 3 + x) as u8);
        assert_eq!(img.pixels(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(img.row(1), &[3, 4, 5]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut img = Image::new(4, 4);
        img.set(2, 3, 99);
        assert_eq!(img.get(2, 3), 99);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let img = Image::new(2, 2);
        let _ = img.get(2, 0);
    }

    #[test]
    fn constant_image_has_zero_entropy() {
        let img = Image::from_fn(16, 16, |_, _| 42);
        assert_eq!(img.entropy(), 0.0);
        assert_eq!(img.mean(), 42.0);
        assert_eq!(img.gradient_entropy(), 0.0);
    }

    #[test]
    fn uniform_histogram_has_eight_bits() {
        let img = Image::from_fn(256, 256, |x, _| x as u8);
        assert!((img.entropy() - 8.0).abs() < 1e-9);
        // ...but it is perfectly predictable horizontally.
        assert!(img.gradient_entropy() < 0.1);
    }

    #[test]
    fn error_display_messages() {
        let e = ImageError::PgmParse("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        assert!(ImageError::EmptyImage.to_string().contains("nonzero"));
    }
}
