//! The grayscale image container: owned, contiguous `u16` samples at an
//! 8–16-bit depth, lending zero-copy [`ImageView`]s to the codecs.

use crate::view::{ImageView, ImageViewMut};
use std::fmt;

/// Errors produced by image construction and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ImageError {
    /// Pixel buffer length does not equal `width * height`.
    DimensionMismatch {
        /// Declared width.
        width: usize,
        /// Declared height.
        height: usize,
        /// Actual buffer length.
        len: usize,
    },
    /// Width or height is zero.
    EmptyImage,
    /// Bit depth outside the supported `1..=16` range.
    UnsupportedBitDepth(u8),
    /// A sample does not fit the declared bit depth.
    SampleOutOfRange {
        /// The offending sample value.
        value: u16,
        /// The largest value the bit depth allows.
        max_val: u16,
    },
    /// A view's geometry (stride, buffer length) is inconsistent.
    InvalidView(String),
    /// A PGM stream could not be parsed.
    PgmParse(String),
    /// A compressed container could not be parsed (used by codec
    /// implementations to surface their codec-specific errors).
    Codec(String),
    /// Underlying I/O failure (message form, to keep the error `Clone`).
    Io(String),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimensionMismatch { width, height, len } => write!(
                f,
                "pixel buffer of {len} samples does not match {width}x{height} image"
            ),
            Self::EmptyImage => write!(f, "image dimensions must be nonzero"),
            Self::UnsupportedBitDepth(d) => {
                write!(f, "bit depth {d} outside the supported 1..=16 range")
            }
            Self::SampleOutOfRange { value, max_val } => {
                write!(f, "sample {value} exceeds the bit-depth maximum {max_val}")
            }
            Self::InvalidView(msg) => write!(f, "invalid view geometry: {msg}"),
            Self::PgmParse(msg) => write!(f, "invalid PGM stream: {msg}"),
            Self::Codec(msg) => write!(f, "invalid compressed container: {msg}"),
            Self::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for ImageError {}

impl From<std::io::Error> for ImageError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

/// Largest sample value representable at `bit_depth` bits
/// (`2^bit_depth − 1`) — the one place the depth-16 edge case lives.
///
/// # Examples
///
/// ```
/// assert_eq!(cbic_image::max_val_for(8), 255);
/// assert_eq!(cbic_image::max_val_for(16), u16::MAX);
/// ```
#[inline]
pub fn max_val_for(bit_depth: u8) -> u16 {
    debug_assert!((1..=16).contains(&bit_depth));
    if bit_depth == 16 {
        u16::MAX
    } else {
        (1u16 << bit_depth) - 1
    }
}

/// A grayscale image in row-major order: `u16` samples at a declared
/// 8–16-bit depth (depths down to 1 are accepted for completeness).
///
/// This is the *owned* pixel container; every codec consumes the borrowed
/// [`ImageView`] it lends through [`Self::view`]. 8-bit images (the
/// paper's n = 8) remain the fast path and the default of every
/// constructor that does not name a depth.
///
/// # Examples
///
/// ```
/// use cbic_image::Image;
///
/// let img = Image::from_fn(4, 2, |x, y| (x * 10 + y) as u8);
/// assert_eq!(img.get(3, 1), 31);
/// assert_eq!(img.bit_depth(), 8);
/// assert_eq!(img.samples().len(), 8);
///
/// let deep = Image::from_fn16(4, 2, 12, |x, y| (x * 1000 + y) as u16);
/// assert_eq!(deep.max_val(), 4095);
/// assert_eq!(deep.view().row(1)[3], 3001);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Image {
    width: usize,
    height: usize,
    bit_depth: u8,
    data: Vec<u16>,
}

impl Image {
    /// Creates a black (all-zero) 8-bit image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        Self::with_depth(width, height, 8)
    }

    /// Creates a black (all-zero) image at the given bit depth.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the depth is outside `1..=16`.
    pub fn with_depth(width: usize, height: usize, bit_depth: u8) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        assert!(
            (1..=16).contains(&bit_depth),
            "bit depth {bit_depth} outside 1..=16"
        );
        Self {
            width,
            height,
            bit_depth,
            data: vec![0; width * height],
        }
    }

    /// Wraps an existing row-major 8-bit pixel buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::DimensionMismatch`] if `data.len()` is not
    /// `width * height`, or [`ImageError::EmptyImage`] for zero dimensions.
    pub fn from_vec(width: usize, height: usize, data: Vec<u8>) -> Result<Self, ImageError> {
        if width == 0 || height == 0 {
            return Err(ImageError::EmptyImage);
        }
        if data.len() != width * height {
            return Err(ImageError::DimensionMismatch {
                width,
                height,
                len: data.len(),
            });
        }
        Ok(Self {
            width,
            height,
            bit_depth: 8,
            data: data.into_iter().map(u16::from).collect(),
        })
    }

    /// Wraps an existing row-major `u16` sample buffer at the given depth.
    ///
    /// # Errors
    ///
    /// [`ImageError::DimensionMismatch`] / [`ImageError::EmptyImage`] as
    /// [`Self::from_vec`], [`ImageError::UnsupportedBitDepth`] outside
    /// `1..=16`, and [`ImageError::SampleOutOfRange`] when a sample does
    /// not fit the depth.
    pub fn from_samples(
        width: usize,
        height: usize,
        bit_depth: u8,
        data: Vec<u16>,
    ) -> Result<Self, ImageError> {
        if width == 0 || height == 0 {
            return Err(ImageError::EmptyImage);
        }
        if !(1..=16).contains(&bit_depth) {
            return Err(ImageError::UnsupportedBitDepth(bit_depth));
        }
        if data.len() != width * height {
            return Err(ImageError::DimensionMismatch {
                width,
                height,
                len: data.len(),
            });
        }
        let max_val = max_val_for(bit_depth);
        if let Some(&value) = data.iter().find(|&&v| v > max_val) {
            return Err(ImageError::SampleOutOfRange { value, max_val });
        }
        Ok(Self {
            width,
            height,
            bit_depth,
            data,
        })
    }

    /// Builds an 8-bit image by evaluating `f(x, y)` for every pixel.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> u8) -> Self {
        Self::from_fn16(width, height, 8, |x, y| u16::from(f(x, y)))
    }

    /// Builds an image at the given depth by evaluating `f(x, y)` for
    /// every pixel.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero, the depth is outside `1..=16`,
    /// or `f` produces a sample that does not fit the depth.
    pub fn from_fn16(
        width: usize,
        height: usize,
        bit_depth: u8,
        mut f: impl FnMut(usize, usize) -> u16,
    ) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        assert!(
            (1..=16).contains(&bit_depth),
            "bit depth {bit_depth} outside 1..=16"
        );
        let max_val = max_val_for(bit_depth);
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                let v = f(x, y);
                assert!(v <= max_val, "sample {v} exceeds {bit_depth}-bit maximum");
                data.push(v);
            }
        }
        Self {
            width,
            height,
            bit_depth,
            data,
        }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// `(width, height)` pair.
    #[inline]
    pub fn dimensions(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Sample bit depth (`1..=16`; 8 for classic grayscale).
    #[inline]
    pub fn bit_depth(&self) -> u8 {
        self.bit_depth
    }

    /// Largest representable sample value, `2^bit_depth − 1`.
    #[inline]
    pub fn max_val(&self) -> u16 {
        max_val_for(self.bit_depth)
    }

    /// Total number of pixels.
    #[inline]
    pub fn pixel_count(&self) -> usize {
        self.data.len()
    }

    /// Lends the whole image as a zero-copy read-only [`ImageView`].
    ///
    /// The owned buffer was range-validated at construction, so lending a
    /// view is O(1) — no per-sample re-scan.
    #[inline]
    pub fn view(&self) -> ImageView<'_> {
        ImageView::new_unchecked_samples(
            &self.data,
            self.width,
            self.height,
            self.width,
            self.bit_depth,
        )
        .expect("owned images always have valid view geometry")
    }

    /// Lends the whole image as a mutable [`ImageViewMut`].
    #[inline]
    pub fn view_mut(&mut self) -> ImageViewMut<'_> {
        ImageViewMut::new_unchecked_samples(
            &mut self.data,
            self.width,
            self.height,
            self.width,
            self.bit_depth,
        )
        .expect("owned images always have valid view geometry")
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u16 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds or the value exceeds
    /// the bit depth.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: u16) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        // A hard check, not a debug assert: `view()` skips the per-sample
        // range scan on the strength of this invariant, and an oversized
        // sample would silently wrap inside the codecs.
        assert!(
            value <= self.max_val(),
            "sample {value} exceeds {}-bit maximum",
            self.bit_depth
        );
        self.data[y * self.width + x] = value;
    }

    /// Row `y` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of bounds.
    #[inline]
    pub fn row(&self, y: usize) -> &[u16] {
        assert!(y < self.height, "row out of bounds");
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Row `y` as a mutable slice.
    ///
    /// This is the raw escape hatch past the range checks of
    /// [`set`](Self::set)/[`from_samples`](Self::from_samples): the caller
    /// must keep every written sample within [`max_val`](Self::max_val),
    /// or a later encode will silently wrap it modulo the sample range
    /// (the in-workspace decode paths only write already-valid values).
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [u16] {
        assert!(y < self.height, "row out of bounds");
        &mut self.data[y * self.width..(y + 1) * self.width]
    }

    /// The whole sample buffer, row-major.
    #[inline]
    pub fn samples(&self) -> &[u16] {
        &self.data
    }

    /// Consumes the image, returning the sample buffer.
    pub fn into_samples(self) -> Vec<u16> {
        self.data
    }

    /// Order-0 (histogram) entropy in bits per pixel.
    ///
    /// An upper bound on what a memoryless coder could achieve; context
    /// modeling exists precisely to beat this.
    pub fn entropy(&self) -> f64 {
        let mut hist = vec![0u64; usize::from(self.max_val()) + 1];
        for &p in &self.data {
            hist[usize::from(p)] += 1;
        }
        let n = self.data.len() as f64;
        hist.iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.log2()
            })
            .sum()
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f64 {
        self.data.iter().map(|&p| f64::from(p)).sum::<f64>() / self.data.len() as f64
    }

    /// Entropy (bits/pixel) of the horizontal first differences — a quick
    /// proxy for how predictable the image is.
    pub fn gradient_entropy(&self) -> f64 {
        let modulus = u32::from(self.max_val()) + 1;
        let mut hist = vec![0u64; modulus as usize];
        let mut n = 0u64;
        for y in 0..self.height {
            let row = self.row(y);
            for x in 1..self.width {
                let d = (u32::from(row[x]) + modulus - u32::from(row[x - 1])) % modulus;
                hist[d as usize] += 1;
                n += 1;
            }
        }
        if n == 0 {
            return 0.0;
        }
        let n = n as f64;
        hist.iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.log2()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_black() {
        let img = Image::new(3, 2);
        assert_eq!(img.dimensions(), (3, 2));
        assert_eq!(img.bit_depth(), 8);
        assert!(img.samples().iter().all(|&p| p == 0));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Image::from_vec(2, 2, vec![0; 4]).is_ok());
        let err = Image::from_vec(2, 2, vec![0; 5]).unwrap_err();
        assert!(matches!(err, ImageError::DimensionMismatch { len: 5, .. }));
        assert_eq!(Image::from_vec(0, 2, vec![]), Err(ImageError::EmptyImage));
    }

    #[test]
    fn from_samples_validates_depth_and_range() {
        assert!(Image::from_samples(2, 2, 12, vec![0, 4095, 17, 2000]).is_ok());
        assert_eq!(
            Image::from_samples(2, 2, 12, vec![0, 4096, 0, 0]),
            Err(ImageError::SampleOutOfRange {
                value: 4096,
                max_val: 4095
            })
        );
        assert_eq!(
            Image::from_samples(2, 2, 0, vec![0; 4]),
            Err(ImageError::UnsupportedBitDepth(0))
        );
        assert_eq!(
            Image::from_samples(2, 2, 17, vec![0; 4]),
            Err(ImageError::UnsupportedBitDepth(17))
        );
        assert!(Image::from_samples(2, 2, 16, vec![u16::MAX; 4]).is_ok());
    }

    #[test]
    fn from_fn_row_major_order() {
        let img = Image::from_fn(3, 2, |x, y| (y * 3 + x) as u8);
        assert_eq!(img.samples(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(img.row(1), &[3, 4, 5]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut img = Image::new(4, 4);
        img.set(2, 3, 99);
        assert_eq!(img.get(2, 3), 99);
    }

    #[test]
    fn sixteen_bit_images_hold_wide_samples() {
        let img = Image::from_fn16(4, 4, 16, |x, y| (x * 16000 + y) as u16);
        assert_eq!(img.max_val(), 65535);
        assert_eq!(img.get(3, 2), 48002);
        assert_eq!(img.view().max_val(), 65535);
    }

    #[test]
    #[should_panic(expected = "exceeds 10-bit maximum")]
    fn from_fn16_rejects_oversized_samples() {
        let _ = Image::from_fn16(2, 2, 10, |_, _| 1024);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let img = Image::new(2, 2);
        let _ = img.get(2, 0);
    }

    #[test]
    fn constant_image_has_zero_entropy() {
        let img = Image::from_fn(16, 16, |_, _| 42);
        assert_eq!(img.entropy(), 0.0);
        assert_eq!(img.mean(), 42.0);
        assert_eq!(img.gradient_entropy(), 0.0);
    }

    #[test]
    fn uniform_histogram_has_eight_bits() {
        let img = Image::from_fn(256, 256, |x, _| x as u8);
        assert!((img.entropy() - 8.0).abs() < 1e-9);
        // ...but it is perfectly predictable horizontally.
        assert!(img.gradient_entropy() < 0.1);
    }

    #[test]
    fn sixteen_bit_entropy_uses_full_histogram() {
        let img = Image::from_fn16(64, 64, 16, |x, y| (y * 64 + x) as u16 * 16);
        assert!((img.entropy() - 12.0).abs() < 1e-9, "{}", img.entropy());
        assert!(img.gradient_entropy() < 0.1);
    }

    #[test]
    fn error_display_messages() {
        let e = ImageError::PgmParse("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        assert!(ImageError::EmptyImage.to_string().contains("nonzero"));
        assert!(ImageError::UnsupportedBitDepth(3).to_string().contains('3'));
        let e = ImageError::SampleOutOfRange {
            value: 300,
            max_val: 255,
        };
        assert!(e.to_string().contains("300"));
    }
}
