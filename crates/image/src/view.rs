//! Borrowed, strided pixel views — the zero-copy core of the pixel API.
//!
//! [`ImageView`] and [`ImageViewMut`] describe a rectangular window over a
//! row-major `u16` sample buffer: a slice, a width, a height, a row
//! *stride* (samples between the starts of consecutive rows), and a bit
//! depth. Every codec in the workspace consumes [`ImageView`] — an owned
//! [`Image`](crate::Image) lends one with [`Image::view`](crate::Image::view) —
//! so sub-images (tile bands, crops, regions of interest) are coded
//! **without copying a single pixel**.
//!
//! # Examples
//!
//! ```
//! use cbic_image::Image;
//!
//! let img = Image::from_fn(8, 8, |x, y| (x * 8 + y) as u8);
//! let view = img.view();
//! // A zero-copy band of rows 2..5:
//! let band = view.row_range(2, 3);
//! assert_eq!(band.dimensions(), (8, 3));
//! assert_eq!(band.row(0), img.row(2));
//! // A strided interior crop:
//! let crop = view.crop(2, 1, 4, 6);
//! assert_eq!(crop.get(0, 0), img.get(2, 1));
//! assert_eq!(crop.stride(), 8); // rows still step by the parent width
//! ```

use crate::{Image, ImageError};

/// Validates the (width, height, stride, bit_depth, buffer length)
/// invariants shared by both view types.
fn check_geometry(
    len: usize,
    width: usize,
    height: usize,
    stride: usize,
    bit_depth: u8,
) -> Result<(), ImageError> {
    if width == 0 || height == 0 {
        return Err(ImageError::EmptyImage);
    }
    if !(1..=16).contains(&bit_depth) {
        return Err(ImageError::UnsupportedBitDepth(bit_depth));
    }
    if stride < width {
        return Err(ImageError::InvalidView(format!(
            "stride {stride} shorter than width {width}"
        )));
    }
    // The last row needs only `width` samples, not a full stride.
    let needed = (height - 1)
        .checked_mul(stride)
        .and_then(|n| n.checked_add(width));
    match needed {
        Some(n) if n <= len => Ok(()),
        _ => Err(ImageError::InvalidView(format!(
            "{width}x{height} view with stride {stride} needs more than the {len} samples provided"
        ))),
    }
}

/// Validates that every sample inside the window fits the bit depth (out-
/// of-window backing samples of a strided buffer are not the view's
/// business). Codecs rely on this: an oversized sample would silently wrap
/// modulo `2^depth` and break losslessness.
fn check_window_samples(
    data: &[u16],
    width: usize,
    height: usize,
    stride: usize,
    bit_depth: u8,
) -> Result<(), ImageError> {
    let max_val = crate::image::max_val_for(bit_depth);
    if max_val == u16::MAX {
        return Ok(());
    }
    for y in 0..height {
        let row = &data[y * stride..y * stride + width];
        if let Some(&value) = row.iter().find(|&&v| v > max_val) {
            return Err(ImageError::SampleOutOfRange { value, max_val });
        }
    }
    Ok(())
}

/// A borrowed, read-only, possibly strided window over `u16` samples.
///
/// Copyable and cheap: three `usize`s, a byte, and a slice. See the
/// module documentation for the geometry rules.
///
/// Equality is *pixel-wise*: two views are equal when their dimensions,
/// bit depth, and window contents match, regardless of stride or the
/// backing buffer around the window.
#[derive(Debug, Clone, Copy)]
pub struct ImageView<'a> {
    data: &'a [u16],
    width: usize,
    height: usize,
    stride: usize,
    bit_depth: u8,
}

impl PartialEq for ImageView<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.width == other.width
            && self.height == other.height
            && self.bit_depth == other.bit_depth
            && self.rows().eq(other.rows())
    }
}

impl Eq for ImageView<'_> {}

impl<'a> ImageView<'a> {
    /// Wraps a row-major sample buffer as a view.
    ///
    /// # Errors
    ///
    /// [`ImageError::EmptyImage`] for zero dimensions,
    /// [`ImageError::UnsupportedBitDepth`] outside `1..=16`,
    /// [`ImageError::InvalidView`] when `stride < width` or the buffer is
    /// too short for the geometry, and [`ImageError::SampleOutOfRange`]
    /// when a sample inside the window exceeds the depth (silent wrap-around
    /// would break losslessness downstream).
    pub fn new(
        data: &'a [u16],
        width: usize,
        height: usize,
        stride: usize,
        bit_depth: u8,
    ) -> Result<Self, ImageError> {
        check_geometry(data.len(), width, height, stride, bit_depth)?;
        check_window_samples(data, width, height, stride, bit_depth)?;
        Ok(Self {
            data,
            width,
            height,
            stride,
            bit_depth,
        })
    }

    /// [`Self::new`] without the per-sample range scan — for callers that
    /// already guarantee the samples fit the depth (an owned [`Image`]
    /// lending its buffer). Geometry is still validated.
    pub(crate) fn new_unchecked_samples(
        data: &'a [u16],
        width: usize,
        height: usize,
        stride: usize,
        bit_depth: u8,
    ) -> Result<Self, ImageError> {
        check_geometry(data.len(), width, height, stride, bit_depth)?;
        Ok(Self {
            data,
            width,
            height,
            stride,
            bit_depth,
        })
    }

    /// View width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// View height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// `(width, height)` pair.
    #[inline]
    pub fn dimensions(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Samples between the starts of consecutive rows.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Sample bit depth (`1..=16`).
    #[inline]
    pub fn bit_depth(&self) -> u8 {
        self.bit_depth
    }

    /// Largest representable sample value, `2^bit_depth − 1`.
    #[inline]
    pub fn max_val(&self) -> u16 {
        crate::image::max_val_for(self.bit_depth)
    }

    /// Total number of pixels in the window.
    #[inline]
    pub fn pixel_count(&self) -> usize {
        self.width * self.height
    }

    /// `true` when rows are adjacent (`stride == width`), i.e. the window
    /// is one contiguous run of samples.
    #[inline]
    pub fn is_contiguous(&self) -> bool {
        self.stride == self.width
    }

    /// Sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u16 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.stride + x]
    }

    /// Row `y` as a slice of exactly `width` samples.
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of bounds.
    #[inline]
    pub fn row(&self, y: usize) -> &'a [u16] {
        assert!(y < self.height, "row out of bounds");
        let start = y * self.stride;
        &self.data[start..start + self.width]
    }

    /// Iterates over the rows, top to bottom.
    pub fn rows(&self) -> impl Iterator<Item = &'a [u16]> + '_ {
        (0..self.height).map(|y| self.row(y))
    }

    /// A zero-copy view of rows `y0 .. y0 + rows` at full width — the tile
    /// band primitive.
    ///
    /// # Panics
    ///
    /// Panics if the range leaves the view or `rows` is zero.
    #[inline]
    pub fn row_range(&self, y0: usize, rows: usize) -> ImageView<'a> {
        assert!(
            rows >= 1 && y0 < self.height && rows <= self.height - y0,
            "row range {y0}..{} outside 0..{}",
            y0 + rows,
            self.height
        );
        ImageView {
            data: &self.data[y0 * self.stride..],
            width: self.width,
            height: rows,
            stride: self.stride,
            bit_depth: self.bit_depth,
        }
    }

    /// A zero-copy rectangular crop. The result keeps the parent stride,
    /// so interior crops are genuinely strided views.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle leaves the view or has a zero side.
    pub fn crop(&self, x0: usize, y0: usize, width: usize, height: usize) -> ImageView<'a> {
        assert!(width >= 1 && height >= 1, "crop dimensions must be nonzero");
        assert!(
            x0 < self.width
                && y0 < self.height
                && width <= self.width - x0
                && height <= self.height - y0,
            "crop {width}x{height}+{x0}+{y0} outside {}x{}",
            self.width,
            self.height
        );
        ImageView {
            data: &self.data[y0 * self.stride + x0..],
            width,
            height,
            stride: self.stride,
            bit_depth: self.bit_depth,
        }
    }

    /// Materializes the window as an owned [`Image`] (row-wise
    /// `copy_from_slice`, the only place a view copies pixels).
    pub fn to_image(&self) -> Image {
        let mut data = vec![0u16; self.width * self.height];
        for (dst, src) in data.chunks_exact_mut(self.width).zip(self.rows()) {
            dst.copy_from_slice(src);
        }
        Image::from_samples(self.width, self.height, self.bit_depth, data)
            .expect("view geometry is validated")
    }
}

impl<'a> From<&'a Image> for ImageView<'a> {
    fn from(img: &'a Image) -> Self {
        img.view()
    }
}

/// A borrowed, mutable, possibly strided window over `u16` samples — the
/// decode-side dual of [`ImageView`]: band decoders write their rows
/// straight into disjoint sub-windows of one preallocated image.
#[derive(Debug)]
pub struct ImageViewMut<'a> {
    data: &'a mut [u16],
    width: usize,
    height: usize,
    stride: usize,
    bit_depth: u8,
}

impl<'a> ImageViewMut<'a> {
    /// Wraps a mutable row-major sample buffer as a view.
    ///
    /// # Errors
    ///
    /// As [`ImageView::new`], including
    /// [`ImageError::SampleOutOfRange`] when a window sample exceeds the
    /// bit depth.
    pub fn new(
        data: &'a mut [u16],
        width: usize,
        height: usize,
        stride: usize,
        bit_depth: u8,
    ) -> Result<Self, ImageError> {
        check_geometry(data.len(), width, height, stride, bit_depth)?;
        check_window_samples(data, width, height, stride, bit_depth)?;
        Ok(Self {
            data,
            width,
            height,
            stride,
            bit_depth,
        })
    }

    /// [`Self::new`] without the per-sample range scan (see
    /// [`ImageView::new_unchecked_samples`]).
    pub(crate) fn new_unchecked_samples(
        data: &'a mut [u16],
        width: usize,
        height: usize,
        stride: usize,
        bit_depth: u8,
    ) -> Result<Self, ImageError> {
        check_geometry(data.len(), width, height, stride, bit_depth)?;
        Ok(Self {
            data,
            width,
            height,
            stride,
            bit_depth,
        })
    }

    /// View width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// View height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// `(width, height)` pair.
    #[inline]
    pub fn dimensions(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Samples between the starts of consecutive rows.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Sample bit depth (`1..=16`).
    #[inline]
    pub fn bit_depth(&self) -> u8 {
        self.bit_depth
    }

    /// Largest representable sample value, `2^bit_depth − 1`.
    #[inline]
    pub fn max_val(&self) -> u16 {
        crate::image::max_val_for(self.bit_depth)
    }

    /// Reborrows as a read-only view.
    #[inline]
    pub fn as_view(&self) -> ImageView<'_> {
        ImageView {
            data: self.data,
            width: self.width,
            height: self.height,
            stride: self.stride,
            bit_depth: self.bit_depth,
        }
    }

    /// Sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u16 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.stride + x]
    }

    /// Sets the sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds or the value exceeds
    /// the bit depth (oversized samples would silently wrap inside the
    /// codecs).
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: u16) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        assert!(
            value <= self.max_val(),
            "sample {value} exceeds {}-bit maximum",
            self.bit_depth
        );
        self.data[y * self.stride + x] = value;
    }

    /// Row `y` as a mutable slice of exactly `width` samples.
    ///
    /// This is the raw escape hatch past [`set`](Self::set)'s range
    /// check: the caller must keep every written sample within
    /// [`max_val`](Self::max_val), or a later encode will silently wrap
    /// it modulo the sample range (the in-workspace decode paths only
    /// write already-valid values).
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [u16] {
        assert!(y < self.height, "row out of bounds");
        let start = y * self.stride;
        &mut self.data[start..start + self.width]
    }

    /// The causal split at row `y`: the two rows above it (read-only,
    /// `None` where the image boundary cuts them off) plus row `y` itself
    /// mutably — exactly the state a raster-order decoder needs while
    /// reconstructing row `y` in place.
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of bounds.
    #[inline]
    pub fn causal_rows_mut(&mut self, y: usize) -> (Option<&[u16]>, Option<&[u16]>, &mut [u16]) {
        assert!(y < self.height, "row out of bounds");
        let (above, at) = self.data.split_at_mut(y * self.stride);
        let cur = &mut at[..self.width];
        let row_above = |d: usize| {
            let start = (y - d) * self.stride;
            &above[start..start + self.width]
        };
        let n1 = (y >= 1).then(|| row_above(1));
        let n2 = (y >= 2).then(|| row_above(2));
        (n2, n1, cur)
    }

    /// Splits the view into consecutive full-width horizontal bands of the
    /// given heights, consuming it. The bands borrow disjoint regions, so
    /// they can be handed to worker threads.
    ///
    /// # Panics
    ///
    /// Panics if the heights do not sum to the view height or any height
    /// is zero.
    pub fn split_rows(self, heights: &[usize]) -> Vec<ImageViewMut<'a>> {
        assert_eq!(
            heights.iter().sum::<usize>(),
            self.height,
            "band heights must cover the view exactly"
        );
        let mut out = Vec::with_capacity(heights.len());
        let mut rest = self.data;
        let (width, stride, bit_depth) = (self.width, self.stride, self.bit_depth);
        for (i, &h) in heights.iter().enumerate() {
            assert!(h >= 1, "band heights must be nonzero");
            let last = i + 1 == heights.len();
            let band_data = if last {
                std::mem::take(&mut rest)
            } else {
                let (band, tail) = std::mem::take(&mut rest).split_at_mut(h * stride);
                rest = tail;
                band
            };
            out.push(ImageViewMut {
                data: band_data,
                width,
                height: h,
                stride,
                bit_depth,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img() -> Image {
        Image::from_fn(6, 5, |x, y| (y * 6 + x) as u8)
    }

    #[test]
    fn full_view_matches_image() {
        let img = img();
        let v = img.view();
        assert_eq!(v.dimensions(), (6, 5));
        assert!(v.is_contiguous());
        assert_eq!(v.bit_depth(), 8);
        assert_eq!(v.max_val(), 255);
        for y in 0..5 {
            assert_eq!(v.row(y), img.row(y));
            for x in 0..6 {
                assert_eq!(v.get(x, y), img.get(x, y));
            }
        }
    }

    #[test]
    fn row_range_is_zero_copy_and_correct() {
        let img = img();
        let band = img.view().row_range(1, 3);
        assert_eq!(band.dimensions(), (6, 3));
        assert_eq!(band.row(0), img.row(1));
        assert_eq!(band.row(2), img.row(3));
        assert_eq!(band.to_image().row(1), img.row(2));
    }

    #[test]
    fn crop_is_strided() {
        let img = img();
        let crop = img.view().crop(2, 1, 3, 2);
        assert!(!crop.is_contiguous());
        assert_eq!(crop.stride(), 6);
        assert_eq!(crop.get(0, 0), img.get(2, 1));
        assert_eq!(crop.row(1), &img.row(2)[2..5]);
        let owned = crop.to_image();
        assert_eq!(owned.dimensions(), (3, 2));
        assert_eq!(owned.get(2, 1), img.get(4, 2));
    }

    #[test]
    fn geometry_validation() {
        let data = vec![0u16; 10];
        assert!(ImageView::new(&data, 5, 2, 5, 8).is_ok());
        assert!(ImageView::new(&data, 3, 3, 4, 8).is_err(), "too short");
        assert!(matches!(
            ImageView::new(&data, 5, 2, 4, 8),
            Err(ImageError::InvalidView(_))
        ));
        assert!(matches!(
            ImageView::new(&data, 0, 2, 5, 8),
            Err(ImageError::EmptyImage)
        ));
        assert!(matches!(
            ImageView::new(&data, 5, 2, 5, 17),
            Err(ImageError::UnsupportedBitDepth(17))
        ));
        // Last row only needs `width` samples, not a full stride.
        let nine = vec![0u16; 9];
        assert!(ImageView::new(&nine, 4, 2, 5, 8).is_ok());
    }

    #[test]
    fn constructors_reject_out_of_depth_samples() {
        let data = vec![0u16, 1023, 1024, 0];
        assert!(matches!(
            ImageView::new(&data, 2, 2, 2, 10),
            Err(ImageError::SampleOutOfRange {
                value: 1024,
                max_val: 1023
            })
        ));
        // Out-of-window backing samples of a strided buffer don't count.
        let data = vec![5u16, 9000, 6, 9000];
        assert!(ImageView::new(&data, 1, 2, 2, 10).is_ok());
        let mut data = vec![0u16, 4096];
        assert!(matches!(
            ImageViewMut::new(&mut data, 2, 1, 2, 12),
            Err(ImageError::SampleOutOfRange { .. })
        ));
        // 16-bit windows accept everything.
        let all = vec![u16::MAX; 4];
        assert!(ImageView::new(&all, 2, 2, 2, 16).is_ok());
    }

    #[test]
    fn equality_is_pixel_wise_not_representational() {
        let img = img();
        let band = img.view().row_range(1, 3);
        let copy = band.to_image();
        // Different stride (6 vs 6? row_range keeps stride 6; compare a
        // crop) and different backing buffers: still equal when the
        // pixels are.
        assert_eq!(band, copy.view());
        let crop = img.view().crop(1, 1, 4, 3);
        let crop_copy = crop.to_image();
        assert!(!crop.is_contiguous() && crop_copy.view().is_contiguous());
        assert_eq!(crop, crop_copy.view());
        // ...and unequal when a pixel differs.
        let mut other = crop.to_image();
        other.set(0, 0, 99);
        assert_ne!(crop, other.view());
    }

    #[test]
    fn mut_view_writes_through() {
        let mut img = Image::new(4, 3);
        {
            let mut v = img.view_mut();
            v.set(1, 2, 99);
            v.row_mut(0).copy_from_slice(&[1, 2, 3, 4]);
        }
        assert_eq!(img.get(1, 2), 99);
        assert_eq!(img.row(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn causal_rows_split() {
        let mut img = img();
        let mut v = img.view_mut();
        let (n2, n1, cur) = v.causal_rows_mut(0);
        assert!(n2.is_none() && n1.is_none());
        assert_eq!(cur.len(), 6);
        let (n2, n1, _) = v.causal_rows_mut(1);
        assert!(n2.is_none());
        assert_eq!(n1.unwrap()[0], 0);
        let (n2, n1, cur) = v.causal_rows_mut(3);
        assert_eq!(n2.unwrap()[0], 6);
        assert_eq!(n1.unwrap()[0], 12);
        cur[5] = 1000;
        assert_eq!(v.get(5, 3), 1000);
    }

    #[test]
    fn split_rows_covers_disjointly() {
        let mut img = img();
        let reference = img.clone();
        let bands = img.view_mut().split_rows(&[2, 2, 1]);
        assert_eq!(bands.len(), 3);
        assert_eq!(bands[0].dimensions(), (6, 2));
        assert_eq!(bands[2].dimensions(), (6, 1));
        assert_eq!(bands[1].as_view().row(0), reference.row(2));
        assert_eq!(bands[2].as_view().row(0), reference.row(4));
    }

    #[test]
    #[should_panic(expected = "cover the view exactly")]
    fn split_rows_rejects_wrong_total() {
        let mut img = img();
        let _ = img.view_mut().split_rows(&[2, 2]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn row_range_out_of_bounds_panics() {
        let img = img();
        let _ = img.view().row_range(3, 3);
    }
}
