//! Shared dimensioned-container framing for the baseline codecs.
//!
//! The CALIC, JPEG-LS, and SLP crates each own an independent container
//! format, but all three frame it the same way: a 4-byte magic, the
//! image dimensions, and (since the bit-depth redesign) an optional
//! deep-sample header extension. This module defines that scheme once —
//! the sentinel value, the write/parse logic, and the size accounting —
//! so a validation fix cannot silently drift between the crates:
//!
//! ```text
//! 8-bit (legacy, byte-identical to the historical format):
//!     magic(4) width(u32 LE) height(u32 LE) ...
//! deeper:
//!     magic(4) 0xFFFFFFFF bit_depth(1) width(u32 LE) height(u32 LE) ...
//! ```
//!
//! The `0xFFFFFFFF` sentinel can never be a legal legacy width (widths
//! are bounded by the shared 2^28-pixel cap), so old streams keep
//! decoding unchanged.

use std::io::Write;

/// Sentinel "width" introducing the extended (deep-sample) header.
const DEEP_SENTINEL: u32 = u32::MAX;

/// The shared pixel ceiling: 2^28, matching the core container's cap.
const MAX_PIXELS: usize = 1 << 28;

/// Structured outcome of [`parse_dims_header`]; callers map the variants
/// onto their per-crate error enums.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FramingError {
    /// The stream does not start with the expected magic.
    BadMagic,
    /// The stream ended inside the header.
    Truncated,
    /// A header field holds a value no encoder produces.
    Invalid(String),
}

/// Writes the magic, the optional deep-sample extension, and the
/// dimensions. The caller appends any codec-specific fields (e.g.
/// JPEG-LS's NEAR byte) and the payload.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_dims_header(
    out: &mut dyn Write,
    magic: &[u8; 4],
    width: usize,
    height: usize,
    bit_depth: u8,
) -> std::io::Result<()> {
    out.write_all(magic)?;
    if bit_depth != 8 {
        out.write_all(&DEEP_SENTINEL.to_le_bytes())?;
        out.write_all(&[bit_depth])?;
    }
    out.write_all(&(width as u32).to_le_bytes())?;
    out.write_all(&(height as u32).to_le_bytes())?;
    Ok(())
}

/// Bytes [`write_dims_header`] emits: 12 for the legacy 8-bit layout, 17
/// with the deep extension.
pub fn dims_header_len(bit_depth: u8) -> u64 {
    if bit_depth == 8 {
        12
    } else {
        17
    }
}

/// Parses a header written by [`write_dims_header`], returning
/// `(width, height, bit_depth, rest)` where `rest` starts at the first
/// byte after the dimensions.
///
/// # Errors
///
/// [`FramingError::BadMagic`] on a foreign magic,
/// [`FramingError::Truncated`] when the header is cut short, and
/// [`FramingError::Invalid`] for zero dimensions, images beyond the
/// 2^28-pixel cap, or a malformed depth extension.
pub fn parse_dims_header<'a>(
    bytes: &'a [u8],
    magic: &[u8; 4],
) -> Result<(usize, usize, u8, &'a [u8]), FramingError> {
    if bytes.len() < 12 {
        return Err(FramingError::Truncated);
    }
    if &bytes[..4] != magic {
        return Err(FramingError::BadMagic);
    }
    let first = u32::from_le_bytes(bytes[4..8].try_into().expect("sized"));
    let (bit_depth, dims_at) = if first == DEEP_SENTINEL {
        if bytes.len() < 17 {
            return Err(FramingError::Truncated);
        }
        let depth = bytes[8];
        if !(1..=16).contains(&depth) || depth == 8 {
            return Err(FramingError::Invalid(format!(
                "bit depth {depth} invalid for an extended header"
            )));
        }
        (depth, 9usize)
    } else {
        (8u8, 4usize)
    };
    let width = u32::from_le_bytes(bytes[dims_at..dims_at + 4].try_into().expect("sized")) as usize;
    let height =
        u32::from_le_bytes(bytes[dims_at + 4..dims_at + 8].try_into().expect("sized")) as usize;
    if width == 0 || height == 0 {
        return Err(FramingError::Invalid("zero dimension".into()));
    }
    if width.saturating_mul(height) > MAX_PIXELS {
        return Err(FramingError::Invalid("image too large".into()));
    }
    Ok((width, height, bit_depth, &bytes[dims_at + 8..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 4] = b"TEST";

    fn roundtrip(width: usize, height: usize, depth: u8) -> Vec<u8> {
        let mut out = Vec::new();
        write_dims_header(&mut out, MAGIC, width, height, depth).unwrap();
        assert_eq!(out.len() as u64, dims_header_len(depth));
        out
    }

    #[test]
    fn legacy_layout_is_twelve_bytes() {
        let hdr = roundtrip(640, 480, 8);
        assert_eq!(hdr.len(), 12);
        let (w, h, d, rest) = parse_dims_header(&hdr, MAGIC).unwrap();
        assert_eq!((w, h, d), (640, 480, 8));
        assert!(rest.is_empty());
    }

    #[test]
    fn deep_layout_carries_the_depth() {
        let mut hdr = roundtrip(33, 21, 12);
        hdr.extend_from_slice(b"payload");
        let (w, h, d, rest) = parse_dims_header(&hdr, MAGIC).unwrap();
        assert_eq!((w, h, d), (33, 21, 12));
        assert_eq!(rest, b"payload");
    }

    #[test]
    fn rejects_malformed_headers() {
        assert_eq!(
            parse_dims_header(b"TE", MAGIC),
            Err(FramingError::Truncated)
        );
        assert_eq!(
            parse_dims_header(b"XXXX00000000", MAGIC),
            Err(FramingError::BadMagic)
        );
        // Sentinel with a truncated extension.
        let mut short = Vec::new();
        short.extend_from_slice(MAGIC);
        short.extend_from_slice(&u32::MAX.to_le_bytes());
        short.extend_from_slice(&[12, 0, 0]);
        assert_eq!(
            parse_dims_header(&short, MAGIC),
            Err(FramingError::Truncated)
        );
        // Sentinel claiming depth 8 (must use the legacy layout) or 0.
        for depth in [0u8, 8, 17] {
            let mut bad = Vec::new();
            write_dims_header(&mut bad, MAGIC, 4, 4, 10).unwrap();
            bad[8] = depth;
            assert!(
                matches!(
                    parse_dims_header(&bad, MAGIC),
                    Err(FramingError::Invalid(_))
                ),
                "depth {depth}"
            );
        }
        // Zero dims and the pixel cap.
        let zero = roundtrip(4, 4, 8);
        let mut zero_w = zero.clone();
        zero_w[4..8].fill(0);
        assert!(matches!(
            parse_dims_header(&zero_w, MAGIC),
            Err(FramingError::Invalid(_))
        ));
        let mut huge = zero;
        huge[4..8].copy_from_slice(&(1u32 << 20).to_le_bytes());
        huge[8..12].copy_from_slice(&(1u32 << 20).to_le_bytes());
        assert!(matches!(
            parse_dims_header(&huge, MAGIC),
            Err(FramingError::Invalid(_))
        ));
    }
}
