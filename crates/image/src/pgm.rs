//! Binary PGM (P5) reading and writing.
//!
//! The corpus in this workspace is synthetic, but users with the original
//! USC-SIPI images can feed them to every codec through this module.
//!
//! # Examples
//!
//! ```
//! use cbic_image::{pgm, Image};
//!
//! let img = Image::from_fn(8, 8, |x, y| (x ^ y) as u8);
//! let bytes = pgm::encode(&img);
//! let back = pgm::decode(&bytes)?;
//! assert_eq!(img, back);
//! # Ok::<(), cbic_image::ImageError>(())
//! ```

use crate::{Image, ImageError};
use std::io::{Read, Write};
use std::path::Path;

/// Serializes an image as a binary PGM (magic `P5`, maxval 255).
pub fn encode(img: &Image) -> Vec<u8> {
    let mut out = Vec::with_capacity(img.pixel_count() + 32);
    out.extend_from_slice(format!("P5\n{} {}\n255\n", img.width(), img.height()).as_bytes());
    out.extend_from_slice(img.pixels());
    out
}

/// Parses a binary PGM stream (maxval must be ≤ 255; `#` comments allowed).
///
/// # Errors
///
/// Returns [`ImageError::PgmParse`] on malformed headers or truncated pixel
/// data.
pub fn decode(bytes: &[u8]) -> Result<Image, ImageError> {
    let mut pos = 0usize;

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() {
            match bytes[*pos] {
                b' ' | b'\t' | b'\r' | b'\n' => *pos += 1,
                b'#' => {
                    while *pos < bytes.len() && bytes[*pos] != b'\n' {
                        *pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn read_token<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a [u8], ImageError> {
        skip_ws(bytes, pos);
        let start = *pos;
        while *pos < bytes.len() && !bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
        if start == *pos {
            return Err(ImageError::PgmParse("unexpected end of header".into()));
        }
        Ok(&bytes[start..*pos])
    }

    fn read_number(bytes: &[u8], pos: &mut usize) -> Result<usize, ImageError> {
        let tok = read_token(bytes, pos)?;
        std::str::from_utf8(tok)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ImageError::PgmParse("malformed number in header".into()))
    }

    let magic = read_token(bytes, &mut pos)?;
    if magic != b"P5" {
        return Err(ImageError::PgmParse(format!(
            "bad magic {:?}, expected P5",
            String::from_utf8_lossy(magic)
        )));
    }
    let width = read_number(bytes, &mut pos)?;
    let height = read_number(bytes, &mut pos)?;
    let maxval = read_number(bytes, &mut pos)?;
    if maxval == 0 || maxval > 255 {
        return Err(ImageError::PgmParse(format!(
            "unsupported maxval {maxval} (need 1..=255)"
        )));
    }
    // Exactly one whitespace byte separates the header from pixel data.
    if pos >= bytes.len() || !bytes[pos].is_ascii_whitespace() {
        return Err(ImageError::PgmParse("missing header terminator".into()));
    }
    pos += 1;

    let need = width
        .checked_mul(height)
        .ok_or_else(|| ImageError::PgmParse("dimensions overflow".into()))?;
    let data = bytes
        .get(pos..pos + need)
        .ok_or_else(|| ImageError::PgmParse("truncated pixel data".into()))?;
    Image::from_vec(width, height, data.to_vec())
}

/// Reads a binary PGM header from a stream, leaving the reader positioned
/// at the first pixel byte. Returns `(width, height)`.
///
/// Bytes are pulled one at a time so nothing past the header is consumed
/// (wrap raw streams in a `BufReader` and keep reading pixel rows from it).
/// This is the entry point of the CLI's bounded-memory pipe mode: header
/// first, then rows streamed straight into the codec.
///
/// # Errors
///
/// Returns [`ImageError::Io`] on read failures and [`ImageError::PgmParse`]
/// on malformed headers (bad magic, maxval outside `1..=255`, …).
pub fn read_header<R: Read>(input: &mut R) -> Result<(usize, usize), ImageError> {
    let mut byte = [0u8; 1];
    // Pull the next header byte; EOF inside a header is always malformed.
    let mut next = |input: &mut R| -> Result<u8, ImageError> {
        match input.read(&mut byte)? {
            0 => Err(ImageError::PgmParse("unexpected end of header".into())),
            _ => Ok(byte[0]),
        }
    };
    // Reads one whitespace/comment-delimited token, returning it plus the
    // delimiter byte that ended it.
    let mut token = |input: &mut R| -> Result<(Vec<u8>, u8), ImageError> {
        let mut tok = Vec::new();
        loop {
            let b = next(input)?;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    if !tok.is_empty() {
                        return Ok((tok, b));
                    }
                }
                // `#` starts a comment only between tokens, exactly like
                // the buffered parser's whitespace skip.
                b'#' if tok.is_empty() => loop {
                    if next(input)? == b'\n' {
                        break;
                    }
                },
                _ => tok.push(b),
            }
        }
    };
    let number = |tok: &[u8]| -> Result<usize, ImageError> {
        std::str::from_utf8(tok)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ImageError::PgmParse("malformed number in header".into()))
    };

    let (magic, _) = token(input)?;
    if magic != b"P5" {
        return Err(ImageError::PgmParse(format!(
            "bad magic {:?}, expected P5",
            String::from_utf8_lossy(&magic)
        )));
    }
    let width = number(&token(input)?.0)?;
    let height = number(&token(input)?.0)?;
    let (maxval_tok, _) = token(input)?;
    let maxval = number(&maxval_tok)?;
    if maxval == 0 || maxval > 255 {
        return Err(ImageError::PgmParse(format!(
            "unsupported maxval {maxval} (need 1..=255)"
        )));
    }
    if width == 0 || height == 0 {
        return Err(ImageError::PgmParse("zero dimension".into()));
    }
    // The single whitespace byte terminating the maxval token is the
    // header terminator; pixel data starts at the very next byte.
    Ok((width, height))
}

/// Writes a binary PGM header (magic `P5`, maxval 255) to a stream; pixel
/// rows follow it directly.
///
/// # Errors
///
/// Returns [`ImageError::Io`] on write failures.
pub fn write_header<W: Write>(out: &mut W, width: usize, height: usize) -> Result<(), ImageError> {
    out.write_all(format!("P5\n{width} {height}\n255\n").as_bytes())?;
    Ok(())
}

/// Reads a PGM image from a file.
///
/// # Errors
///
/// Returns [`ImageError::Io`] on filesystem errors and
/// [`ImageError::PgmParse`] on malformed content.
pub fn read_file(path: impl AsRef<Path>) -> Result<Image, ImageError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    decode(&bytes)
}

/// Writes an image to a file as binary PGM.
///
/// # Errors
///
/// Returns [`ImageError::Io`] on filesystem errors.
pub fn write_file(path: impl AsRef<Path>, img: &Image) -> Result<(), ImageError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&encode(img))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let img = Image::from_fn(13, 7, |x, y| (x * 19 + y * 3) as u8);
        assert_eq!(decode(&encode(&img)).unwrap(), img);
    }

    #[test]
    fn header_with_comments() {
        let bytes = b"P5 # a comment\n# another\n 2 2\n255\n\x01\x02\x03\x04";
        let img = decode(bytes).unwrap();
        assert_eq!(img.pixels(), &[1, 2, 3, 4]);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(
            decode(b"P6\n1 1\n255\n\x00"),
            Err(ImageError::PgmParse(_))
        ));
    }

    #[test]
    fn rejects_truncated_data() {
        assert!(matches!(
            decode(b"P5\n4 4\n255\n\x00\x01"),
            Err(ImageError::PgmParse(_))
        ));
    }

    #[test]
    fn rejects_sixteen_bit_maxval() {
        assert!(matches!(
            decode(b"P5\n1 1\n65535\n\x00\x00"),
            Err(ImageError::PgmParse(_))
        ));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(decode(b"").is_err());
    }

    #[test]
    fn streaming_header_matches_buffered_parser() {
        let img = Image::from_fn(13, 7, |x, y| (x * 19 + y * 3) as u8);
        let bytes = encode(&img);
        let mut reader = &bytes[..];
        assert_eq!(read_header(&mut reader).unwrap(), (13, 7));
        // The reader is now positioned exactly at the pixel data.
        assert_eq!(reader, img.pixels());
    }

    #[test]
    fn streaming_header_with_comments() {
        let bytes = b"P5 # a comment\n# another\n 2 3\n255\nxxxxxx";
        let mut reader = &bytes[..];
        assert_eq!(read_header(&mut reader).unwrap(), (2, 3));
        assert_eq!(reader, b"xxxxxx");
    }

    #[test]
    fn streaming_header_rejects_malformed_input() {
        for bad in [
            &b"P6\n1 1\n255\n\x00"[..],
            b"P5\n0 4\n255\n",
            b"P5\n2 2\n65535\n",
            b"P5\n2 2",
            b"",
        ] {
            let mut reader = bad;
            assert!(read_header(&mut reader).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn streaming_header_writer_matches_encode() {
        let img = Image::from_fn(5, 4, |x, y| (x + y) as u8);
        let mut out = Vec::new();
        write_header(&mut out, 5, 4).unwrap();
        out.extend_from_slice(img.pixels());
        assert_eq!(out, encode(&img));
    }

    #[test]
    fn file_roundtrip() {
        let img = Image::from_fn(9, 5, |x, y| (x + y) as u8);
        let dir = std::env::temp_dir().join("cbic_pgm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pgm");
        write_file(&path, &img).unwrap();
        assert_eq!(read_file(&path).unwrap(), img);
        std::fs::remove_file(&path).ok();
    }
}
