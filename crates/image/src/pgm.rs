//! Binary PGM (P5) reading and writing, at 8 and 16 bits per sample.
//!
//! The corpus in this workspace is synthetic, but users with real images —
//! including 16-bit medical or astronomy data — can feed them to every
//! codec through this module. Sample encoding follows the Netpbm
//! convention: one byte per sample for `maxval ≤ 255`, two **big-endian**
//! bytes per sample for `256 ≤ maxval ≤ 65535`.
//!
//! # Examples
//!
//! ```
//! use cbic_image::{pgm, Image};
//!
//! let img = Image::from_fn(8, 8, |x, y| (x ^ y) as u8);
//! let back = pgm::decode(&pgm::encode(&img))?;
//! assert_eq!(img, back);
//!
//! let deep = Image::from_fn16(8, 8, 12, |x, y| ((x * 512) ^ y) as u16);
//! let back = pgm::decode(&pgm::encode(&deep))?;
//! assert_eq!(deep, back);
//! # Ok::<(), cbic_image::ImageError>(())
//! ```

use crate::{Image, ImageError};
use std::io::{Read, Write};
use std::path::Path;

/// A parsed PGM header: dimensions plus the declared maximum sample value.
///
/// `maxval` decides both the wire format (one byte per sample up to 255,
/// two big-endian bytes above) and the [`bit_depth`](Self::bit_depth) of
/// the decoded [`Image`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PgmHeader {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Declared maximum sample value (`1..=65535`).
    pub maxval: u16,
}

impl PgmHeader {
    /// Bytes per sample on the wire: 1 up to maxval 255, 2 above.
    #[inline]
    pub fn bytes_per_sample(&self) -> usize {
        if self.maxval > 255 {
            2
        } else {
            1
        }
    }

    /// The smallest bit depth that holds `maxval`
    /// (e.g. 255 → 8, 1023 → 10, 65535 → 16).
    #[inline]
    pub fn bit_depth(&self) -> u8 {
        (16 - self.maxval.leading_zeros()) as u8
    }
}

/// The maxval an image of a given bit depth is written with.
#[inline]
fn maxval_for_depth(bit_depth: u8) -> u16 {
    crate::image::max_val_for(bit_depth)
}

/// Serializes an image as a binary PGM (magic `P5`; maxval and sample
/// width follow the image's bit depth).
pub fn encode(img: &Image) -> Vec<u8> {
    let maxval = maxval_for_depth(img.bit_depth());
    let bytes_per_sample = if maxval > 255 { 2 } else { 1 };
    let mut out = Vec::with_capacity(img.pixel_count() * bytes_per_sample + 32);
    out.extend_from_slice(format!("P5\n{} {}\n{maxval}\n", img.width(), img.height()).as_bytes());
    append_samples(&mut out, img.samples(), bytes_per_sample);
    out
}

/// Appends samples in the wire encoding implied by `bytes_per_sample`.
fn append_samples(out: &mut Vec<u8>, samples: &[u16], bytes_per_sample: usize) {
    if bytes_per_sample == 1 {
        out.extend(samples.iter().map(|&s| s as u8));
    } else {
        for &s in samples {
            out.extend_from_slice(&s.to_be_bytes());
        }
    }
}

/// Converts one raster row to its wire bytes (used by the CLI's streaming
/// writer).
pub fn row_bytes(row: &[u16], maxval: u16) -> Vec<u8> {
    let mut out = Vec::with_capacity(row.len() * if maxval > 255 { 2 } else { 1 });
    append_samples(&mut out, row, if maxval > 255 { 2 } else { 1 });
    out
}

/// Parses a binary PGM stream (maxval `1..=65535`; `#` comments allowed;
/// two big-endian bytes per sample above maxval 255).
///
/// # Errors
///
/// Returns [`ImageError::PgmParse`] on malformed headers, truncated pixel
/// data, or samples above the declared maxval.
pub fn decode(bytes: &[u8]) -> Result<Image, ImageError> {
    let mut pos = 0usize;

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() {
            match bytes[*pos] {
                b' ' | b'\t' | b'\r' | b'\n' => *pos += 1,
                b'#' => {
                    while *pos < bytes.len() && bytes[*pos] != b'\n' {
                        *pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn read_token<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a [u8], ImageError> {
        skip_ws(bytes, pos);
        let start = *pos;
        while *pos < bytes.len() && !bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
        if start == *pos {
            return Err(ImageError::PgmParse("unexpected end of header".into()));
        }
        Ok(&bytes[start..*pos])
    }

    fn read_number(bytes: &[u8], pos: &mut usize) -> Result<usize, ImageError> {
        let tok = read_token(bytes, pos)?;
        std::str::from_utf8(tok)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ImageError::PgmParse("malformed number in header".into()))
    }

    let magic = read_token(bytes, &mut pos)?;
    if magic != b"P5" {
        return Err(ImageError::PgmParse(format!(
            "bad magic {:?}, expected P5",
            String::from_utf8_lossy(magic)
        )));
    }
    let width = read_number(bytes, &mut pos)?;
    let height = read_number(bytes, &mut pos)?;
    let maxval = read_number(bytes, &mut pos)?;
    let header = validate_header(width, height, maxval)?;
    // Exactly one whitespace byte separates the header from pixel data.
    if pos >= bytes.len() || !bytes[pos].is_ascii_whitespace() {
        return Err(ImageError::PgmParse("missing header terminator".into()));
    }
    pos += 1;

    let pixels = width
        .checked_mul(height)
        .ok_or_else(|| ImageError::PgmParse("dimensions overflow".into()))?;
    let need = pixels
        .checked_mul(header.bytes_per_sample())
        .ok_or_else(|| ImageError::PgmParse("dimensions overflow".into()))?;
    let data = bytes
        .get(pos..pos + need)
        .ok_or_else(|| ImageError::PgmParse("truncated pixel data".into()))?;
    let samples: Vec<u16> = if header.bytes_per_sample() == 1 {
        data.iter().map(|&b| u16::from(b)).collect()
    } else {
        data.chunks_exact(2)
            .map(|c| u16::from_be_bytes([c[0], c[1]]))
            .collect()
    };
    if let Some(&bad) = samples.iter().find(|&&s| s > header.maxval) {
        return Err(ImageError::PgmParse(format!(
            "sample {bad} exceeds declared maxval {}",
            header.maxval
        )));
    }
    Image::from_samples(width, height, header.bit_depth(), samples)
}

/// Shared header-field validation of the buffered and streaming parsers.
fn validate_header(width: usize, height: usize, maxval: usize) -> Result<PgmHeader, ImageError> {
    if maxval == 0 || maxval > 65535 {
        return Err(ImageError::PgmParse(format!(
            "unsupported maxval {maxval} (need 1..=65535)"
        )));
    }
    if width == 0 || height == 0 {
        return Err(ImageError::PgmParse("zero dimension".into()));
    }
    Ok(PgmHeader {
        width,
        height,
        maxval: maxval as u16,
    })
}

/// Reads a binary PGM header from a stream, leaving the reader positioned
/// at the first pixel byte.
///
/// Bytes are pulled one at a time so nothing past the header is consumed
/// (wrap raw streams in a `BufReader` and keep reading pixel rows from it).
/// This is the entry point of the CLI's bounded-memory pipe mode: header
/// first, then rows streamed straight into the codec.
///
/// # Errors
///
/// Returns [`ImageError::Io`] on read failures and [`ImageError::PgmParse`]
/// on malformed headers (bad magic, maxval outside `1..=65535`, …).
pub fn read_header<R: Read>(input: &mut R) -> Result<PgmHeader, ImageError> {
    let mut byte = [0u8; 1];
    // Pull the next header byte; EOF inside a header is always malformed.
    let mut next = |input: &mut R| -> Result<u8, ImageError> {
        match input.read(&mut byte)? {
            0 => Err(ImageError::PgmParse("unexpected end of header".into())),
            _ => Ok(byte[0]),
        }
    };
    // Reads one whitespace/comment-delimited token, returning it plus the
    // delimiter byte that ended it.
    let mut token = |input: &mut R| -> Result<(Vec<u8>, u8), ImageError> {
        let mut tok = Vec::new();
        loop {
            let b = next(input)?;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    if !tok.is_empty() {
                        return Ok((tok, b));
                    }
                }
                // `#` starts a comment only between tokens, exactly like
                // the buffered parser's whitespace skip.
                b'#' if tok.is_empty() => loop {
                    if next(input)? == b'\n' {
                        break;
                    }
                },
                _ => tok.push(b),
            }
        }
    };
    let number = |tok: &[u8]| -> Result<usize, ImageError> {
        std::str::from_utf8(tok)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ImageError::PgmParse("malformed number in header".into()))
    };

    let (magic, _) = token(input)?;
    if magic != b"P5" {
        return Err(ImageError::PgmParse(format!(
            "bad magic {:?}, expected P5",
            String::from_utf8_lossy(&magic)
        )));
    }
    let width = number(&token(input)?.0)?;
    let height = number(&token(input)?.0)?;
    let maxval = number(&token(input)?.0)?;
    // The single whitespace byte terminating the maxval token is the
    // header terminator; pixel data starts at the very next byte.
    validate_header(width, height, maxval)
}

/// Reads one raster row of `header.width` samples in the wire encoding
/// `header.maxval` implies, rejecting samples above maxval.
///
/// # Errors
///
/// [`ImageError::Io`] on read failures (including EOF mid-row) and
/// [`ImageError::PgmParse`] for out-of-range samples.
pub fn read_row<R: Read>(
    input: &mut R,
    header: &PgmHeader,
    row: &mut [u16],
) -> Result<(), ImageError> {
    assert_eq!(row.len(), header.width, "row buffer length mismatch");
    // A fixed stack buffer keeps this allocation-free on the streaming
    // hot path (one call per raster row), whatever the row width.
    let mut buf = [0u8; 4096];
    if header.bytes_per_sample() == 1 {
        let mut done = 0usize;
        while done < row.len() {
            let n = (row.len() - done).min(buf.len());
            input.read_exact(&mut buf[..n])?;
            for (dst, &src) in row[done..done + n].iter_mut().zip(&buf[..n]) {
                *dst = u16::from(src);
            }
            done += n;
        }
    } else {
        let mut done = 0usize;
        while done < row.len() {
            let n = (row.len() - done).min(buf.len() / 2);
            input.read_exact(&mut buf[..n * 2])?;
            for (dst, src) in row[done..done + n]
                .iter_mut()
                .zip(buf[..n * 2].chunks_exact(2))
            {
                *dst = u16::from_be_bytes([src[0], src[1]]);
            }
            done += n;
        }
    }
    if let Some(&bad) = row.iter().find(|&&s| s > header.maxval) {
        return Err(ImageError::PgmParse(format!(
            "sample {bad} exceeds declared maxval {}",
            header.maxval
        )));
    }
    Ok(())
}

/// Writes a binary PGM header (magic `P5`) to a stream; pixel rows follow
/// it directly in the encoding `maxval` implies.
///
/// # Errors
///
/// Returns [`ImageError::Io`] on write failures.
pub fn write_header<W: Write>(
    out: &mut W,
    width: usize,
    height: usize,
    maxval: u16,
) -> Result<(), ImageError> {
    out.write_all(format!("P5\n{width} {height}\n{maxval}\n").as_bytes())?;
    Ok(())
}

/// Reads a PGM image from a file.
///
/// # Errors
///
/// Returns [`ImageError::Io`] on filesystem errors and
/// [`ImageError::PgmParse`] on malformed content.
pub fn read_file(path: impl AsRef<Path>) -> Result<Image, ImageError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    decode(&bytes)
}

/// Writes an image to a file as binary PGM.
///
/// # Errors
///
/// Returns [`ImageError::Io`] on filesystem errors.
pub fn write_file(path: impl AsRef<Path>, img: &Image) -> Result<(), ImageError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&encode(img))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let img = Image::from_fn(13, 7, |x, y| (x * 19 + y * 3) as u8);
        assert_eq!(decode(&encode(&img)).unwrap(), img);
    }

    #[test]
    fn sixteen_bit_roundtrip_is_big_endian() {
        let img = Image::from_fn16(5, 3, 16, |x, y| (x * 9000 + y * 257) as u16);
        let bytes = encode(&img);
        assert!(bytes.starts_with(b"P5\n5 3\n65535\n"));
        let body = &bytes[bytes.len() - 30..];
        assert_eq!(
            u16::from_be_bytes([body[0], body[1]]),
            img.get(0, 0),
            "first sample must be big-endian"
        );
        assert_eq!(decode(&bytes).unwrap(), img);
    }

    #[test]
    fn ten_bit_maxval_maps_to_ten_bit_depth() {
        let img = Image::from_fn16(4, 4, 10, |x, y| (x * 250 + y) as u16);
        let bytes = encode(&img);
        assert!(bytes.starts_with(b"P5\n4 4\n1023\n"));
        let back = decode(&bytes).unwrap();
        assert_eq!(back.bit_depth(), 10);
        assert_eq!(back, img);
    }

    #[test]
    fn header_with_comments() {
        let bytes = b"P5 # a comment\n# another\n 2 2\n255\n\x01\x02\x03\x04";
        let img = decode(bytes).unwrap();
        assert_eq!(img.samples(), &[1, 2, 3, 4]);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(
            decode(b"P6\n1 1\n255\n\x00"),
            Err(ImageError::PgmParse(_))
        ));
    }

    #[test]
    fn rejects_truncated_data() {
        assert!(matches!(
            decode(b"P5\n4 4\n255\n\x00\x01"),
            Err(ImageError::PgmParse(_))
        ));
        // 16-bit data needs two bytes per sample; one byte short errors.
        assert!(matches!(
            decode(b"P5\n1 2\n65535\n\x00\x01\x02"),
            Err(ImageError::PgmParse(_))
        ));
    }

    #[test]
    fn accepts_sixteen_bit_maxval_and_rejects_beyond() {
        let img = decode(b"P5\n1 1\n65535\n\x12\x34").unwrap();
        assert_eq!(img.get(0, 0), 0x1234);
        assert_eq!(img.bit_depth(), 16);
        assert!(matches!(
            decode(b"P5\n1 1\n65536\n\x00\x00"),
            Err(ImageError::PgmParse(_))
        ));
        assert!(matches!(
            decode(b"P5\n1 1\n0\n\x00"),
            Err(ImageError::PgmParse(_))
        ));
    }

    #[test]
    fn rejects_samples_above_maxval() {
        // maxval 300 -> 9-bit depth, two bytes per sample; 0x0200 = 512 > 300.
        assert!(matches!(
            decode(b"P5\n1 1\n300\n\x02\x00"),
            Err(ImageError::PgmParse(_))
        ));
        // 8-bit: maxval 100, sample 200.
        assert!(matches!(
            decode(b"P5\n1 1\n100\n\xC8"),
            Err(ImageError::PgmParse(_))
        ));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(decode(b"").is_err());
    }

    #[test]
    fn streaming_header_matches_buffered_parser() {
        let img = Image::from_fn(13, 7, |x, y| (x * 19 + y * 3) as u8);
        let bytes = encode(&img);
        let mut reader = &bytes[..];
        let header = read_header(&mut reader).unwrap();
        assert_eq!((header.width, header.height, header.maxval), (13, 7, 255));
        assert_eq!(header.bit_depth(), 8);
        // The reader is now positioned exactly at the pixel data.
        let mut row = vec![0u16; 13];
        read_row(&mut reader, &header, &mut row).unwrap();
        assert_eq!(&row, img.row(0));
    }

    #[test]
    fn streaming_sixteen_bit_rows() {
        let img = Image::from_fn16(6, 2, 12, |x, y| (x * 600 + y) as u16);
        let bytes = encode(&img);
        let mut reader = &bytes[..];
        let header = read_header(&mut reader).unwrap();
        assert_eq!(header.maxval, 4095);
        assert_eq!(header.bytes_per_sample(), 2);
        let mut row = vec![0u16; 6];
        for y in 0..2 {
            read_row(&mut reader, &header, &mut row).unwrap();
            assert_eq!(&row, img.row(y), "row {y}");
        }
    }

    #[test]
    fn streaming_header_with_comments() {
        let bytes = b"P5 # a comment\n# another\n 2 3\n255\nxxxxxx";
        let mut reader = &bytes[..];
        let header = read_header(&mut reader).unwrap();
        assert_eq!((header.width, header.height), (2, 3));
        assert_eq!(reader, b"xxxxxx");
    }

    #[test]
    fn streaming_header_rejects_malformed_input() {
        for bad in [
            &b"P6\n1 1\n255\n\x00"[..],
            b"P5\n0 4\n255\n",
            b"P5\n2 2\n65536\n",
            b"P5\n2 2",
            b"",
        ] {
            let mut reader = bad;
            assert!(read_header(&mut reader).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn streaming_header_writer_matches_encode() {
        let img = Image::from_fn(5, 4, |x, y| (x + y) as u8);
        let mut out = Vec::new();
        write_header(&mut out, 5, 4, 255).unwrap();
        out.extend_from_slice(&row_bytes(img.samples(), 255));
        assert_eq!(out, encode(&img));
    }

    #[test]
    fn file_roundtrip() {
        let img = Image::from_fn16(9, 5, 11, |x, y| (x * 200 + y) as u16);
        let dir = std::env::temp_dir().join("cbic_pgm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t16.pgm");
        write_file(&path, &img).unwrap();
        assert_eq!(read_file(&path).unwrap(), img);
        std::fs::remove_file(&path).ok();
    }
}
