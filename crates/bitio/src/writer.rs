use crate::BitSink;

/// An MSB-first bit sink backed by a growable byte buffer.
///
/// Bits are packed into bytes starting from the most significant bit, which
/// matches the serialization order of the hardware shift registers the paper
/// targets: the first bit written becomes bit 7 of the first byte.
///
/// Internally the writer accumulates up to 64 bits in one register and
/// flushes eight output bytes at a time, so multi-bit appends
/// ([`Self::write_bits`], the arithmetic coder's bulk renormalization) cost
/// one shift-or instead of a bit loop. The emitted bytes are identical to a
/// bit-at-a-time writer; only the flush granularity differs (observable via
/// [`Self::flushed_bytes`] alone).
///
/// The writer counts every bit pushed into it, so codecs can report exact
/// code lengths (in bits) even before the final partial byte is flushed.
///
/// # Examples
///
/// ```
/// use cbic_bitio::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// assert_eq!(w.bits_written(), 3);
/// // The partial byte is zero-padded on flush: 0b1010_0000.
/// assert_eq!(w.into_bytes(), vec![0xA0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits accumulated in `acc`, always in `0..64`.
    nacc: u32,
    /// Pending bits, right-aligned in the low `nacc` bits (bits at or above
    /// `nacc` are always zero).
    acc: u64,
    bits_written: u64,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with space reserved for `bytes` output bytes.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            bytes: Vec::with_capacity(bytes),
            nacc: 0,
            acc: 0,
            bits_written: 0,
        }
    }

    /// Appends a single bit (`true` = 1).
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.acc = (self.acc << 1) | u64::from(bit);
        self.nacc += 1;
        self.bits_written += 1;
        if self.nacc == 64 {
            self.bytes.extend_from_slice(&self.acc.to_be_bytes());
            self.acc = 0;
            self.nacc = 0;
        }
    }

    /// Appends the low `count` bits of `value`, most significant bit first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`, or if `value` has bits set above `count`
    /// (that would silently lose data).
    #[inline(always)]
    pub fn write_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        if count < 64 {
            assert!(
                value >> count == 0,
                "value {value:#x} does not fit in {count} bits"
            );
        }
        self.bits_written += u64::from(count);
        if count < 64 - self.nacc {
            self.acc = (self.acc << count) | value;
            self.nacc += count;
        } else {
            self.write_bits_spill(value, count);
        }
    }

    /// Cold tail of [`Self::write_bits`]: the append crosses a 64-bit
    /// accumulator boundary, so top the accumulator off to exactly 64 bits,
    /// flush it, and restart it with the spill (possibly zero bits). Kept
    /// out of line so the fast path stays small enough to inline into the
    /// arithmetic encoder's per-decision loop (this runs about once per 64
    /// emitted bits).
    #[cold]
    fn write_bits_spill(&mut self, value: u64, count: u32) {
        let space = 64 - self.nacc;
        let spill = count - space;
        let filled = if space == 64 {
            value
        } else {
            (self.acc << space) | (value >> spill)
        };
        self.bytes.extend_from_slice(&filled.to_be_bytes());
        self.nacc = spill;
        self.acc = if spill == 0 {
            0
        } else {
            value & ((1u64 << spill) - 1)
        };
    }

    /// Appends `count` copies of `bit`. Used by unary (Golomb) coders.
    #[inline]
    pub fn write_run(&mut self, bit: bool, count: u64) {
        let pattern = if bit { u64::MAX } else { 0 };
        let mut rem = count;
        while rem >= 64 {
            self.write_bits(pattern, 64);
            rem -= 64;
        }
        if rem > 0 {
            self.write_bits(pattern >> (64 - rem), rem as u32);
        }
    }

    /// Total number of bits written so far (not counting flush padding).
    #[inline]
    pub fn bits_written(&self) -> u64 {
        self.bits_written
    }

    /// Number of whole bytes the output will occupy once flushed.
    pub fn byte_len(&self) -> usize {
        self.bytes.len() + (self.nacc as usize).div_ceil(8)
    }

    /// Returns `true` if no bits have been written.
    pub fn is_empty(&self) -> bool {
        self.bits_written == 0
    }

    /// Pads the current partial byte with zero bits up to a byte boundary.
    ///
    /// Does nothing when already aligned. The padding bits are *not* counted
    /// by [`Self::bits_written`].
    pub fn align_to_byte(&mut self) {
        let tail = self.nacc % 8;
        if tail > 0 {
            self.acc <<= 8 - tail;
            self.nacc += 8 - tail;
        }
        while self.nacc > 0 {
            self.nacc -= 8;
            self.bytes.push((self.acc >> self.nacc) as u8);
        }
        self.acc = 0;
    }

    /// Flushes the partial byte (zero-padded) and returns the output buffer.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.align_to_byte();
        self.bytes
    }

    /// Borrows the bytes already flushed out of the accumulator.
    ///
    /// Unlike [`Self::into_bytes`], bits still in the accumulator (up to 63
    /// of them, i.e. up to 7 whole bytes plus a partial one) are not
    /// included since they have not been flushed yet.
    pub fn flushed_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl BitSink for BitWriter {
    #[inline]
    fn write_bit(&mut self, bit: bool) {
        BitWriter::write_bit(self, bit);
    }

    #[inline]
    fn bits_written(&self) -> u64 {
        BitWriter::bits_written(self)
    }

    #[inline(always)]
    fn write_bits(&mut self, value: u64, count: u32) {
        BitWriter::write_bits(self, value, count);
    }

    #[inline]
    fn write_run(&mut self, bit: bool, count: u64) {
        BitWriter::write_run(self, bit, count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_writer_produces_no_bytes() {
        let w = BitWriter::new();
        assert!(w.is_empty());
        assert_eq!(w.bits_written(), 0);
        assert_eq!(w.byte_len(), 0);
        assert_eq!(w.into_bytes(), Vec::<u8>::new());
    }

    #[test]
    fn single_bit_is_msb_aligned() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        assert_eq!(w.into_bytes(), vec![0b1000_0000]);
    }

    #[test]
    fn eight_bits_form_one_byte() {
        let mut w = BitWriter::new();
        for bit in [true, false, true, false, true, false, true, false] {
            w.write_bit(bit);
        }
        assert_eq!(w.byte_len(), 1);
        assert_eq!(w.into_bytes(), vec![0b1010_1010]);
    }

    #[test]
    fn write_bits_matches_bit_by_bit() {
        let mut a = BitWriter::new();
        let mut b = BitWriter::new();
        a.write_bits(0b110_0101_0111, 11);
        for bit in [
            true, true, false, false, true, false, true, false, true, true, true,
        ] {
            b.write_bit(bit);
        }
        assert_eq!(a.into_bytes(), b.into_bytes());
    }

    /// Mixed-width appends must agree with the reference bit-at-a-time
    /// sequence across every accumulator offset (the u64 accumulator has
    /// fill/spill corners at multiples of 64).
    #[test]
    fn write_bits_differential_across_offsets() {
        let mut fast = BitWriter::new();
        let mut slow = BitWriter::new();
        for i in 0..2000u64 {
            let count = (i % 65) as u32;
            let value = if count == 64 {
                i.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            } else {
                i.wrapping_mul(0x9e37_79b9_7f4a_7c15) & ((1u64 << count) - 1)
            };
            fast.write_bits(value, count);
            for k in (0..count).rev() {
                slow.write_bit((value >> k) & 1 == 1);
            }
        }
        assert_eq!(fast.bits_written(), slow.bits_written());
        assert_eq!(fast.into_bytes(), slow.into_bytes());
    }

    #[test]
    fn write_bits_zero_count_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(0, 0);
        assert_eq!(w.bits_written(), 0);
    }

    #[test]
    fn write_full_64_bits() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        assert_eq!(w.bits_written(), 64);
        assert_eq!(w.into_bytes(), vec![0xFF; 8]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn write_bits_rejects_oversized_value() {
        let mut w = BitWriter::new();
        w.write_bits(0b100, 2);
    }

    #[test]
    fn write_run_counts_bits() {
        let mut w = BitWriter::new();
        w.write_run(true, 10);
        assert_eq!(w.bits_written(), 10);
        assert_eq!(w.into_bytes(), vec![0xFF, 0b1100_0000]);
    }

    #[test]
    fn long_runs_cross_accumulator_flushes() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.write_run(false, 130);
        w.write_bit(true);
        assert_eq!(w.bits_written(), 132);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 17);
        assert_eq!(bytes[0], 0b1000_0000);
        assert!(bytes[1..16].iter().all(|&b| b == 0));
        // Bit 131 (0-based) is the final 1: byte 16, bit position 3.
        assert_eq!(bytes[16], 0b0001_0000);
    }

    #[test]
    fn align_pads_with_zeros_and_keeps_count() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        w.align_to_byte();
        assert_eq!(w.bits_written(), 2, "padding is not counted");
        w.write_bit(true);
        assert_eq!(w.into_bytes(), vec![0b1100_0000, 0b1000_0000]);
    }

    #[test]
    fn align_when_already_aligned_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(0xAB, 8);
        w.align_to_byte();
        w.align_to_byte();
        assert_eq!(w.into_bytes(), vec![0xAB]);
    }

    #[test]
    fn align_flushes_whole_buffered_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(0xDEAD, 16);
        w.write_bits(0b101, 3);
        w.align_to_byte();
        assert_eq!(w.flushed_bytes(), &[0xDE, 0xAD, 0b1010_0000]);
        assert_eq!(w.bits_written(), 19);
    }

    #[test]
    fn flushed_bytes_excludes_accumulator() {
        let mut w = BitWriter::new();
        w.write_bits(0xAB, 8);
        w.write_bits(0b1, 1);
        // Nine bits all still fit the 64-bit accumulator.
        assert_eq!(w.flushed_bytes(), &[] as &[u8]);
        assert_eq!(w.byte_len(), 2);
        // Crossing 64 accumulated bits flushes the first eight bytes.
        w.write_bits(u64::MAX >> 9, 55);
        w.write_bit(false);
        assert_eq!(w.flushed_bytes().len(), 8);
        assert_eq!(w.flushed_bytes()[0], 0xAB);
        assert_eq!(w.byte_len(), 9);
    }
}
