use crate::BitSink;

/// An MSB-first bit sink backed by a growable byte buffer.
///
/// Bits are packed into bytes starting from the most significant bit, which
/// matches the serialization order of the hardware shift registers the paper
/// targets: the first bit written becomes bit 7 of the first byte.
///
/// The writer counts every bit pushed into it, so codecs can report exact
/// code lengths (in bits) even before the final partial byte is flushed.
///
/// # Examples
///
/// ```
/// use cbic_bitio::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// assert_eq!(w.bits_written(), 3);
/// // The partial byte is zero-padded on flush: 0b1010_0000.
/// assert_eq!(w.into_bytes(), vec![0xA0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits accumulated in `acc`, always in `0..8`.
    nacc: u32,
    /// Pending bits, left-aligned within the low `nacc` bits.
    acc: u8,
    bits_written: u64,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with space reserved for `bytes` output bytes.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            bytes: Vec::with_capacity(bytes),
            nacc: 0,
            acc: 0,
            bits_written: 0,
        }
    }

    /// Appends a single bit (`true` = 1).
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.acc = (self.acc << 1) | u8::from(bit);
        self.nacc += 1;
        self.bits_written += 1;
        if self.nacc == 8 {
            self.bytes.push(self.acc);
            self.acc = 0;
            self.nacc = 0;
        }
    }

    /// Appends the low `count` bits of `value`, most significant bit first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`, or if `value` has bits set above `count`
    /// (that would silently lose data).
    #[inline]
    pub fn write_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        if count < 64 {
            assert!(
                value >> count == 0,
                "value {value:#x} does not fit in {count} bits"
            );
        }
        for i in (0..count).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Appends `count` copies of `bit`. Used by unary (Golomb) coders.
    #[inline]
    pub fn write_run(&mut self, bit: bool, count: u64) {
        for _ in 0..count {
            self.write_bit(bit);
        }
    }

    /// Total number of bits written so far (not counting flush padding).
    #[inline]
    pub fn bits_written(&self) -> u64 {
        self.bits_written
    }

    /// Number of whole bytes the output will occupy once flushed.
    pub fn byte_len(&self) -> usize {
        self.bytes.len() + usize::from(self.nacc > 0)
    }

    /// Returns `true` if no bits have been written.
    pub fn is_empty(&self) -> bool {
        self.bits_written == 0
    }

    /// Pads the current partial byte with zero bits up to a byte boundary.
    ///
    /// Does nothing when already aligned. The padding bits are *not* counted
    /// by [`Self::bits_written`].
    pub fn align_to_byte(&mut self) {
        if self.nacc > 0 {
            let pad = 8 - self.nacc;
            self.acc <<= pad;
            self.bytes.push(self.acc);
            self.acc = 0;
            self.nacc = 0;
        }
    }

    /// Flushes the partial byte (zero-padded) and returns the output buffer.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.align_to_byte();
        self.bytes
    }

    /// Borrows the fully flushed bytes written so far.
    ///
    /// Unlike [`Self::into_bytes`], the trailing partial byte (if any) is not
    /// included since it has not been padded yet.
    pub fn flushed_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl BitSink for BitWriter {
    #[inline]
    fn write_bit(&mut self, bit: bool) {
        BitWriter::write_bit(self, bit);
    }

    #[inline]
    fn bits_written(&self) -> u64 {
        BitWriter::bits_written(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_writer_produces_no_bytes() {
        let w = BitWriter::new();
        assert!(w.is_empty());
        assert_eq!(w.bits_written(), 0);
        assert_eq!(w.byte_len(), 0);
        assert_eq!(w.into_bytes(), Vec::<u8>::new());
    }

    #[test]
    fn single_bit_is_msb_aligned() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        assert_eq!(w.into_bytes(), vec![0b1000_0000]);
    }

    #[test]
    fn eight_bits_form_one_byte() {
        let mut w = BitWriter::new();
        for bit in [true, false, true, false, true, false, true, false] {
            w.write_bit(bit);
        }
        assert_eq!(w.byte_len(), 1);
        assert_eq!(w.into_bytes(), vec![0b1010_1010]);
    }

    #[test]
    fn write_bits_matches_bit_by_bit() {
        let mut a = BitWriter::new();
        let mut b = BitWriter::new();
        a.write_bits(0b110_0101_0111, 11);
        for bit in [
            true, true, false, false, true, false, true, false, true, true, true,
        ] {
            b.write_bit(bit);
        }
        assert_eq!(a.into_bytes(), b.into_bytes());
    }

    #[test]
    fn write_bits_zero_count_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(0, 0);
        assert_eq!(w.bits_written(), 0);
    }

    #[test]
    fn write_full_64_bits() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        assert_eq!(w.bits_written(), 64);
        assert_eq!(w.into_bytes(), vec![0xFF; 8]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn write_bits_rejects_oversized_value() {
        let mut w = BitWriter::new();
        w.write_bits(0b100, 2);
    }

    #[test]
    fn write_run_counts_bits() {
        let mut w = BitWriter::new();
        w.write_run(true, 10);
        assert_eq!(w.bits_written(), 10);
        assert_eq!(w.into_bytes(), vec![0xFF, 0b1100_0000]);
    }

    #[test]
    fn align_pads_with_zeros_and_keeps_count() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        w.align_to_byte();
        assert_eq!(w.bits_written(), 2, "padding is not counted");
        w.write_bit(true);
        assert_eq!(w.into_bytes(), vec![0b1100_0000, 0b1000_0000]);
    }

    #[test]
    fn align_when_already_aligned_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(0xAB, 8);
        w.align_to_byte();
        w.align_to_byte();
        assert_eq!(w.into_bytes(), vec![0xAB]);
    }

    #[test]
    fn flushed_bytes_excludes_partial_byte() {
        let mut w = BitWriter::new();
        w.write_bits(0xAB, 8);
        w.write_bits(0b1, 1);
        assert_eq!(w.flushed_bytes(), &[0xAB]);
        assert_eq!(w.byte_len(), 2);
    }
}
