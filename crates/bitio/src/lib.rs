//! Bit-level I/O primitives shared by every codec in the `cbic` workspace.
//!
//! The compression pipelines in this workspace (arithmetic coding in
//! `cbic-arith`, Golomb-Rice coding in `cbic-rice`, and the JPEG-LS
//! baseline) all produce and consume individual bits. This crate provides
//! the two building blocks they share:
//!
//! * [`BitWriter`] — an MSB-first bit sink backed by a `Vec<u8>`, which also
//!   counts the exact number of bits written (used for bit-rate accounting
//!   in the experiment harness).
//! * [`BitReader`] — the matching MSB-first bit source. Reads past the end
//!   of the buffer yield zero bits, which is the convention arithmetic
//!   decoders rely on when the final code word was truncated at a byte
//!   boundary. The strict [`BitReader::try_read_bit`] variant reports
//!   exhaustion instead.
//! * [`BitSink`] / [`BitSource`] — the traits the coders are generic over,
//!   implemented by the buffered pair above and by the bounded-memory
//!   [`StreamBitWriter`] / [`StreamBitReader`] adapters that move bits
//!   incrementally through `std::io::Write` / `std::io::Read`.
//!
//! # Examples
//!
//! ```
//! use cbic_bitio::{BitReader, BitWriter};
//!
//! let mut w = BitWriter::new();
//! w.write_bit(true);
//! w.write_bits(0b1011, 4);
//! assert_eq!(w.bits_written(), 5);
//! let bytes = w.into_bytes();
//!
//! let mut r = BitReader::new(&bytes);
//! assert!(r.read_bit());
//! assert_eq!(r.read_bits(4), 0b1011);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod reader;
mod stream;
mod traits;
mod writer;

pub use reader::BitReader;
pub use stream::{StreamBitReader, StreamBitWriter};
pub use traits::{BitSink, BitSource};
pub use writer::BitWriter;

#[cfg(test)]
mod proptests;
