//! Property-based tests: whatever a `BitWriter` produces, a `BitReader`
//! must read back verbatim, regardless of how the bit stream is chunked —
//! and the streaming adapters must be bit-for-bit interchangeable with
//! the buffered pair.

use proptest::prelude::*;

use crate::{BitReader, BitSink, BitSource, BitWriter, StreamBitReader, StreamBitWriter};

proptest! {
    /// Round-trip of an arbitrary bit sequence written bit by bit.
    #[test]
    fn roundtrip_single_bits(bits in proptest::collection::vec(any::<bool>(), 0..2048)) {
        let mut w = BitWriter::new();
        for &b in &bits {
            w.write_bit(b);
        }
        prop_assert_eq!(w.bits_written(), bits.len() as u64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &bits {
            prop_assert_eq!(r.read_bit(), b);
        }
        // Padding (if any) must read as zero.
        while !r.is_exhausted() {
            prop_assert!(!r.read_bit());
        }
    }

    /// Round-trip of arbitrary (value, width) chunks through write_bits/read_bits.
    #[test]
    fn roundtrip_chunks(chunks in proptest::collection::vec((any::<u64>(), 0u32..=64), 0..256)) {
        let chunks: Vec<(u64, u32)> = chunks
            .into_iter()
            .map(|(v, n)| (if n == 64 { v } else { v & ((1u64 << n) - 1) }, n))
            .collect();
        let mut w = BitWriter::new();
        for &(v, n) in &chunks {
            w.write_bits(v, n);
        }
        let total: u64 = chunks.iter().map(|&(_, n)| u64::from(n)).sum();
        prop_assert_eq!(w.bits_written(), total);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &chunks {
            prop_assert_eq!(r.read_bits(n), v);
        }
    }

    /// Unary write/read round-trip interleaved with fixed-width fields.
    #[test]
    fn roundtrip_unary(values in proptest::collection::vec(0u64..200, 0..128)) {
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_run(false, v);
            w.write_bit(true);
            w.write_bits(v & 0x7, 3);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            prop_assert_eq!(r.read_unary(), Some(v));
            prop_assert_eq!(r.read_bits(3), v & 0x7);
        }
    }

    /// byte_len is always ceil(bits/8).
    #[test]
    fn byte_len_matches_bits(nbits in 0u64..1000) {
        let mut w = BitWriter::new();
        for i in 0..nbits {
            w.write_bit(i % 3 == 0);
        }
        prop_assert_eq!(w.byte_len() as u64, nbits.div_ceil(8));
    }

    /// Strict reads see exactly the number of written bits, then None.
    #[test]
    fn strict_reader_sees_padded_length(nbits in 0u64..256) {
        let mut w = BitWriter::new();
        for _ in 0..nbits {
            w.write_bit(true);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut seen = 0u64;
        while r.try_read_bit().is_some() {
            seen += 1;
        }
        prop_assert_eq!(seen, nbits.div_ceil(8) * 8);
    }

    /// The streaming writer produces the exact bytes the buffered writer
    /// does for an arbitrary chunk sequence, and the streaming reader
    /// reads them back identically to the buffered reader.
    #[test]
    fn streaming_adapters_match_buffered(chunks in proptest::collection::vec((any::<u64>(), 0u32..=64), 0..256)) {
        let chunks: Vec<(u64, u32)> = chunks
            .into_iter()
            .map(|(v, n)| (if n == 64 { v } else { v & ((1u64 << n) - 1) }, n))
            .collect();
        let mut buffered = BitWriter::new();
        let mut streamed = StreamBitWriter::new(Vec::new());
        for &(v, n) in &chunks {
            BitWriter::write_bits(&mut buffered, v, n);
            streamed.write_bits(v, n);
        }
        prop_assert_eq!(BitWriter::bits_written(&buffered), BitSink::bits_written(&streamed));
        let expected = buffered.into_bytes();
        let bytes = streamed.finish().expect("Vec sink");
        prop_assert_eq!(&bytes, &expected);

        let mut br = BitReader::new(&bytes);
        let mut sr = StreamBitReader::new(&bytes[..]);
        for &(v, n) in &chunks {
            prop_assert_eq!(BitReader::read_bits(&mut br, n), v);
            prop_assert_eq!(sr.read_bits(n), v);
        }
        // Both pad identically past the end.
        for _ in 0..16 {
            prop_assert_eq!(BitReader::read_bit(&mut br), sr.read_bit());
        }
        prop_assert_eq!(BitReader::padding_bits(&br), sr.padding_bits());
    }
}
