//! The abstract bit-sink/bit-source interfaces every coder codes against.
//!
//! [`BitWriter`](crate::BitWriter) / [`BitReader`](crate::BitReader) buffer
//! whole streams in memory; [`StreamBitWriter`](crate::StreamBitWriter) /
//! [`StreamBitReader`](crate::StreamBitReader) move bits incrementally
//! through `std::io`. These traits let the arithmetic coder (and everything
//! above it) be written once over either backing, which is what makes the
//! bounded-memory streaming pipeline byte-identical to the buffered one.

/// An MSB-first sink of individual bits.
///
/// The first bit written becomes bit 7 of the first output byte, matching
/// the serialization order of the hardware shift registers the paper
/// targets.
pub trait BitSink {
    /// Appends a single bit (`true` = 1).
    fn write_bit(&mut self, bit: bool);

    /// Total number of bits written so far (not counting flush padding).
    fn bits_written(&self) -> u64;

    /// Appends the low `count` bits of `value`, most significant bit first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`, or if `value` has bits set above `count`
    /// (that would silently lose data).
    #[inline]
    fn write_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        if count < 64 {
            assert!(
                value >> count == 0,
                "value {value:#x} does not fit in {count} bits"
            );
        }
        for i in (0..count).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Appends `count` copies of `bit`. Used by unary (Golomb) coders.
    #[inline]
    fn write_run(&mut self, bit: bool, count: u64) {
        for _ in 0..count {
            self.write_bit(bit);
        }
    }
}

/// An MSB-first source of individual bits.
///
/// Two read flavours are required, mirroring [`BitReader`](crate::BitReader):
/// padded reads yield `0` bits once the real input is exhausted (the
/// convention arithmetic decoders rely on when the final code word was
/// truncated at a byte boundary), while the `try_` variants report
/// exhaustion.
pub trait BitSource {
    /// Reads one bit, or `None` if the input is exhausted.
    fn try_read_bit(&mut self) -> Option<bool>;

    /// Reads one bit, yielding `false` once the input is exhausted.
    /// Padding bits are counted by both [`Self::bits_read`] and
    /// [`Self::padding_bits`].
    fn read_bit(&mut self) -> bool;

    /// Total bits consumed so far, including zero-padding reads.
    fn bits_read(&self) -> u64;

    /// Number of zero-padding bits served past the end of the real input.
    ///
    /// A decoder that consumed a well-formed stream reads at most a few
    /// dozen padding bits (its register preload); a large count is the
    /// signature of a truncated stream.
    fn padding_bits(&self) -> u64;

    /// Reads `count` bits MSB-first, zero-padding past the end of input.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    #[inline]
    fn read_bits(&mut self, count: u32) -> u64 {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        let mut v = 0u64;
        for _ in 0..count {
            v = (v << 1) | u64::from(self.read_bit());
        }
        v
    }

    /// Reads `count` bits MSB-first, or `None` if fewer than `count` remain.
    ///
    /// On `None` the source position is unspecified (the stream is treated
    /// as corrupt).
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    fn try_read_bits(&mut self, count: u32) -> Option<u64> {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        let mut v = 0u64;
        for _ in 0..count {
            v = (v << 1) | u64::from(self.try_read_bit()?);
        }
        Some(v)
    }

    /// Reads bits until a `true` bit is consumed, returning the number of
    /// `false` bits skipped. Used to decode unary (Golomb quotient) codes.
    ///
    /// Returns `None` if the input ends before a `true` bit is found.
    fn read_unary(&mut self) -> Option<u64> {
        let mut zeros = 0u64;
        loop {
            match self.try_read_bit()? {
                true => return Some(zeros),
                false => zeros += 1,
            }
        }
    }
}
