use crate::BitSource;

/// An MSB-first bit source over a byte slice.
///
/// Mirrors [`BitWriter`](crate::BitWriter): the first bit returned is bit 7
/// of the first byte. Two read flavours are provided:
///
/// * [`read_bit`](Self::read_bit) / [`read_bits`](Self::read_bits) — padded
///   reads that return `0` bits once the buffer is exhausted. Arithmetic
///   decoders depend on this: the encoder's final code word may be truncated
///   at a byte boundary and the missing low bits are, by construction, zero.
/// * [`try_read_bit`](Self::try_read_bit) / [`try_read_bits`](Self::try_read_bits)
///   — strict reads that return `None` past the end, for formats where
///   over-reading indicates corruption.
///
/// Internally the reader refills a 64-bit cache eight input bytes at a time,
/// so multi-bit reads (the arithmetic decoder's bulk renormalization, the
/// Golomb remainder fetch) cost one shift-mask instead of a bit loop.
///
/// # Examples
///
/// ```
/// use cbic_bitio::BitReader;
///
/// let mut r = BitReader::new(&[0b1011_0000]);
/// assert_eq!(r.read_bits(4), 0b1011);
/// assert_eq!(r.bits_read(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Index of the next byte to load into the cache.
    pos: usize,
    /// Valid bits remaining in `acc`, in `0..=64`.
    nacc: u32,
    /// Bit cache: the next bit to serve is bit `nacc - 1`; bits at or above
    /// `nacc` are stale (already served).
    acc: u64,
    bits_read: u64,
    padding: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            pos: 0,
            nacc: 0,
            acc: 0,
            bits_read: 0,
            padding: 0,
        }
    }

    /// Reloads the cache from the input. Only called with `nacc == 0`;
    /// leaves `nacc == 0` at end of input.
    #[inline]
    fn refill(&mut self) {
        let rest = &self.bytes[self.pos..];
        if let Some(chunk) = rest.first_chunk::<8>() {
            self.acc = u64::from_be_bytes(*chunk);
            self.nacc = 64;
            self.pos += 8;
        } else {
            let mut acc = 0u64;
            for &b in rest {
                acc = (acc << 8) | u64::from(b);
            }
            self.acc = acc;
            self.nacc = rest.len() as u32 * 8;
            self.pos = self.bytes.len();
        }
    }

    /// Reads one bit, yielding `false` once the input is exhausted.
    /// Padding bits are counted by [`Self::bits_read`].
    #[inline]
    pub fn read_bit(&mut self) -> bool {
        match self.try_read_bit() {
            Some(b) => b,
            None => {
                self.bits_read += 1;
                self.padding += 1;
                false
            }
        }
    }

    /// Reads one bit, or `None` if the input is exhausted.
    #[inline]
    pub fn try_read_bit(&mut self) -> Option<bool> {
        if self.nacc == 0 {
            self.refill();
            if self.nacc == 0 {
                return None;
            }
        }
        self.nacc -= 1;
        self.bits_read += 1;
        Some((self.acc >> self.nacc) & 1 == 1)
    }

    /// Reads `count` bits MSB-first, zero-padding past the end of input.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    #[inline(always)]
    pub fn read_bits(&mut self, count: u32) -> u64 {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        if count <= self.nacc {
            // Fast path: the whole read is cached. Branch-free in `count`:
            // the arithmetic decoder calls this with a patternless count
            // (including 0 about half the time), so a `count == 0`
            // early-out would be an unpredictable branch. The mask zeroes
            // the result when count == 0 even though the shift amount
            // wraps, and the `== 64` term widens it for full-width reads.
            self.nacc -= count;
            self.bits_read += u64::from(count);
            let m = mask0(count) | 0u64.wrapping_sub(u64::from(count == 64));
            return self.acc.wrapping_shr(self.nacc) & m;
        }
        self.read_bits_spanning(count)
    }

    /// Cold tail of [`read_bits`](Self::read_bits): the read spans the
    /// cached word. Kept out of line so the fast path stays small enough
    /// to inline into the arithmetic decoder's per-decision loop (the
    /// refill machinery below is an order of magnitude more code than the
    /// fast path, and runs about once per 64 decoded bits).
    #[cold]
    fn read_bits_spanning(&mut self, count: u32) -> u64 {
        // Drain the cache, refill, and take the remainder (padding with
        // zeros if the input runs out).
        let have = self.nacc;
        let mut v = if have > 0 {
            self.nacc = 0;
            self.bits_read += u64::from(have);
            self.acc & mask(have)
        } else {
            0
        };
        let mut rem = count - have;
        self.refill();
        if rem > self.nacc {
            // Input exhausted mid-read: serve what is left, pad the rest.
            let tail = self.nacc;
            if tail > 0 {
                v = (v << tail) | (self.acc & mask(tail));
                self.nacc = 0;
                self.bits_read += u64::from(tail);
            }
            let pad = rem - tail;
            self.bits_read += u64::from(pad);
            self.padding += u64::from(pad);
            return if pad == 64 { 0 } else { v << pad };
        }
        self.nacc -= rem;
        self.bits_read += u64::from(rem);
        if rem == 64 {
            // Only reachable when the cache was empty and fully refilled.
            self.acc
        } else {
            v = (v << rem) | ((self.acc >> self.nacc) & mask(rem));
            let _ = &mut rem;
            v
        }
    }

    /// Reads `count` bits MSB-first, or `None` if fewer than `count` remain.
    ///
    /// On `None` the reader position is unspecified (the stream is treated
    /// as corrupt).
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn try_read_bits(&mut self, count: u32) -> Option<u64> {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        if u64::from(count) > self.bits_remaining() {
            return None;
        }
        Some(self.read_bits(count))
    }

    /// Reads bits until a `true` bit is consumed, returning the number of
    /// `false` bits skipped. Used to decode unary (Golomb quotient) codes.
    ///
    /// Returns `None` if the input ends before a `true` bit is found.
    pub fn read_unary(&mut self) -> Option<u64> {
        let mut zeros = 0u64;
        loop {
            if self.nacc == 0 {
                self.refill();
                if self.nacc == 0 {
                    return None;
                }
            }
            // Left-align the unread bits so their leading zeros are the
            // run's continuation.
            let window = self.acc << (64 - self.nacc);
            let lz = window.leading_zeros();
            if lz >= self.nacc {
                // The whole cache is zeros: absorb it and keep scanning.
                zeros += u64::from(self.nacc);
                self.bits_read += u64::from(self.nacc);
                self.nacc = 0;
                continue;
            }
            zeros += u64::from(lz);
            self.nacc -= lz + 1;
            self.bits_read += u64::from(lz + 1);
            return Some(zeros);
        }
    }

    /// Skips forward to the next byte boundary (no-op when aligned).
    pub fn align_to_byte(&mut self) {
        self.nacc -= self.nacc % 8;
    }

    /// Total bits consumed so far, including zero-padding reads.
    #[inline]
    pub fn bits_read(&self) -> u64 {
        self.bits_read
    }

    /// Number of zero-padding bits served past the end of the input.
    #[inline]
    pub fn padding_bits(&self) -> u64 {
        self.padding
    }

    /// `true` once all real input bits have been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.nacc == 0 && self.pos == self.bytes.len()
    }

    /// Remaining number of real (non-padding) bits.
    pub fn bits_remaining(&self) -> u64 {
        (self.bytes.len() - self.pos) as u64 * 8 + u64::from(self.nacc)
    }
}

/// Low-bits mask for `count` in `1..=64`.
#[inline]
fn mask(count: u32) -> u64 {
    u64::MAX >> (64 - count)
}

/// Low-bits mask for `count` in `0..=63`, without branching on zero
/// (`count == 64` wraps to 0; callers handle it separately).
#[inline]
fn mask0(count: u32) -> u64 {
    (1u64.wrapping_shl(count)).wrapping_sub(1)
}

impl BitSource for BitReader<'_> {
    #[inline]
    fn try_read_bit(&mut self) -> Option<bool> {
        BitReader::try_read_bit(self)
    }

    #[inline]
    fn read_bit(&mut self) -> bool {
        BitReader::read_bit(self)
    }

    #[inline]
    fn bits_read(&self) -> u64 {
        BitReader::bits_read(self)
    }

    #[inline]
    fn padding_bits(&self) -> u64 {
        BitReader::padding_bits(self)
    }

    #[inline]
    fn read_bits(&mut self, count: u32) -> u64 {
        BitReader::read_bits(self, count)
    }

    #[inline]
    fn try_read_bits(&mut self, count: u32) -> Option<u64> {
        BitReader::try_read_bits(self, count)
    }

    #[inline]
    fn read_unary(&mut self) -> Option<u64> {
        BitReader::read_unary(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_msb_first() {
        let mut r = BitReader::new(&[0b1010_0000]);
        assert!(r.read_bit());
        assert!(!r.read_bit());
        assert!(r.read_bit());
        assert!(!r.read_bit());
    }

    #[test]
    fn read_bits_assembles_value() {
        let mut r = BitReader::new(&[0xDE, 0xAD]);
        assert_eq!(r.read_bits(16), 0xDEAD);
    }

    #[test]
    fn padded_reads_return_zero_after_end() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8), 0xFF);
        assert_eq!(r.read_bits(8), 0);
        assert!(!r.read_bit());
        assert_eq!(r.bits_read(), 17);
    }

    #[test]
    fn read_bits_straddling_the_end_pads_low_zeros() {
        // 12 real bits, a 16-bit read: the low 4 bits must be padding.
        let mut r = BitReader::new(&[0xAB, 0xC0]);
        r.read_bits(4);
        assert_eq!(r.read_bits(16), 0xBC00);
        assert_eq!(r.padding_bits(), 4);
        assert_eq!(r.bits_read(), 20);
    }

    /// Every split of a long stream into chunked reads must agree with the
    /// bit-at-a-time reference (the u64 cache has corners at multiples of
    /// 64 and at the end of input).
    #[test]
    fn read_bits_differential_across_chunkings() {
        let bytes: Vec<u8> = (0..97u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let mut reference = Vec::new();
        {
            let mut r = BitReader::new(&bytes);
            for _ in 0..bytes.len() * 8 + 70 {
                reference.push(r.read_bit());
            }
        }
        for seed in 0..5u64 {
            let mut r = BitReader::new(&bytes);
            let mut at = 0usize;
            let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            while at < reference.len() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let count = ((state >> 59) as u32 + 1).min((reference.len() - at) as u32);
                let got = r.read_bits(count);
                for k in 0..count {
                    let bit = (got >> (count - 1 - k)) & 1 == 1;
                    assert_eq!(bit, reference[at + k as usize], "seed {seed} bit {at}");
                }
                at += count as usize;
            }
            assert_eq!(r.bits_read(), reference.len() as u64);
        }
    }

    #[test]
    fn strict_reads_stop_at_end() {
        let mut r = BitReader::new(&[0b1000_0000]);
        assert_eq!(r.try_read_bits(8), Some(0b1000_0000));
        assert_eq!(r.try_read_bit(), None);
        assert_eq!(r.try_read_bits(1), None);
    }

    #[test]
    fn unary_counts_zeros() {
        // 0b0001_0000: three zeros then a one.
        let mut r = BitReader::new(&[0b0001_0000]);
        assert_eq!(r.read_unary(), Some(3));
    }

    #[test]
    fn unary_spanning_many_zero_bytes() {
        let mut bytes = vec![0u8; 20];
        bytes[19] = 0b0000_0100;
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_unary(), Some(19 * 8 + 5));
        assert_eq!(r.read_bits(2), 0);
        assert_eq!(r.padding_bits(), 0);
    }

    #[test]
    fn unary_none_when_no_terminator() {
        let mut r = BitReader::new(&[0x00]);
        assert_eq!(r.read_unary(), None);
    }

    #[test]
    fn align_skips_partial_byte() {
        let mut r = BitReader::new(&[0xFF, 0x01]);
        r.read_bits(3);
        r.align_to_byte();
        assert_eq!(r.read_bits(8), 0x01);
    }

    #[test]
    fn align_with_deep_cache_only_drops_the_partial_byte() {
        let bytes: Vec<u8> = (1..=10u8).collect();
        let mut r = BitReader::new(&bytes);
        r.read_bits(5); // cache holds 59 bits now
        r.align_to_byte();
        assert_eq!(r.read_bits(8), 2, "must resume at byte 1");
    }

    #[test]
    fn exhaustion_and_remaining() {
        let mut r = BitReader::new(&[0xAA]);
        assert_eq!(r.bits_remaining(), 8);
        assert!(!r.is_exhausted());
        r.read_bits(8);
        assert!(r.is_exhausted());
        assert_eq!(r.bits_remaining(), 0);
    }

    #[test]
    fn empty_input_is_exhausted_immediately() {
        let mut r = BitReader::new(&[]);
        assert!(r.is_exhausted());
        assert_eq!(r.try_read_bit(), None);
        assert!(!r.read_bit());
    }
}
