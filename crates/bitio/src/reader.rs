use crate::BitSource;

/// An MSB-first bit source over a byte slice.
///
/// Mirrors [`BitWriter`](crate::BitWriter): the first bit returned is bit 7
/// of the first byte. Two read flavours are provided:
///
/// * [`read_bit`](Self::read_bit) / [`read_bits`](Self::read_bits) — padded
///   reads that return `0` bits once the buffer is exhausted. Arithmetic
///   decoders depend on this: the encoder's final code word may be truncated
///   at a byte boundary and the missing low bits are, by construction, zero.
/// * [`try_read_bit`](Self::try_read_bit) / [`try_read_bits`](Self::try_read_bits)
///   — strict reads that return `None` past the end, for formats where
///   over-reading indicates corruption.
///
/// # Examples
///
/// ```
/// use cbic_bitio::BitReader;
///
/// let mut r = BitReader::new(&[0b1011_0000]);
/// assert_eq!(r.read_bits(4), 0b1011);
/// assert_eq!(r.bits_read(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Index of the next byte to load.
    pos: usize,
    /// Bits remaining in `acc`.
    nacc: u32,
    /// Remaining bits of the current byte, left-aligned at bit `nacc - 1`.
    acc: u8,
    bits_read: u64,
    padding: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            pos: 0,
            nacc: 0,
            acc: 0,
            bits_read: 0,
            padding: 0,
        }
    }

    /// Reads one bit, yielding `false` once the input is exhausted.
    /// Padding bits are counted by [`Self::bits_read`].
    #[inline]
    pub fn read_bit(&mut self) -> bool {
        match self.try_read_bit() {
            Some(b) => b,
            None => {
                self.bits_read += 1;
                self.padding += 1;
                false
            }
        }
    }

    /// Reads one bit, or `None` if the input is exhausted.
    #[inline]
    pub fn try_read_bit(&mut self) -> Option<bool> {
        if self.nacc == 0 {
            if self.pos == self.bytes.len() {
                return None;
            }
            self.acc = self.bytes[self.pos];
            self.pos += 1;
            self.nacc = 8;
        }
        self.nacc -= 1;
        self.bits_read += 1;
        Some((self.acc >> self.nacc) & 1 == 1)
    }

    /// Reads `count` bits MSB-first, zero-padding past the end of input.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    #[inline]
    pub fn read_bits(&mut self, count: u32) -> u64 {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        let mut v = 0u64;
        for _ in 0..count {
            v = (v << 1) | u64::from(self.read_bit());
        }
        v
    }

    /// Reads `count` bits MSB-first, or `None` if fewer than `count` remain.
    ///
    /// On `None` the reader position is unspecified (the stream is treated
    /// as corrupt).
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn try_read_bits(&mut self, count: u32) -> Option<u64> {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        let mut v = 0u64;
        for _ in 0..count {
            v = (v << 1) | u64::from(self.try_read_bit()?);
        }
        Some(v)
    }

    /// Reads bits until a `true` bit is consumed, returning the number of
    /// `false` bits skipped. Used to decode unary (Golomb quotient) codes.
    ///
    /// Returns `None` if the input ends before a `true` bit is found.
    pub fn read_unary(&mut self) -> Option<u64> {
        let mut zeros = 0u64;
        loop {
            match self.try_read_bit()? {
                true => return Some(zeros),
                false => zeros += 1,
            }
        }
    }

    /// Skips forward to the next byte boundary (no-op when aligned).
    pub fn align_to_byte(&mut self) {
        self.nacc = 0;
    }

    /// Total bits consumed so far, including zero-padding reads.
    #[inline]
    pub fn bits_read(&self) -> u64 {
        self.bits_read
    }

    /// Number of zero-padding bits served past the end of the input.
    #[inline]
    pub fn padding_bits(&self) -> u64 {
        self.padding
    }

    /// `true` once all real input bits have been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.nacc == 0 && self.pos == self.bytes.len()
    }

    /// Remaining number of real (non-padding) bits.
    pub fn bits_remaining(&self) -> u64 {
        (self.bytes.len() - self.pos) as u64 * 8 + u64::from(self.nacc)
    }
}

impl BitSource for BitReader<'_> {
    #[inline]
    fn try_read_bit(&mut self) -> Option<bool> {
        BitReader::try_read_bit(self)
    }

    #[inline]
    fn read_bit(&mut self) -> bool {
        BitReader::read_bit(self)
    }

    #[inline]
    fn bits_read(&self) -> u64 {
        BitReader::bits_read(self)
    }

    #[inline]
    fn padding_bits(&self) -> u64 {
        BitReader::padding_bits(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_msb_first() {
        let mut r = BitReader::new(&[0b1010_0000]);
        assert!(r.read_bit());
        assert!(!r.read_bit());
        assert!(r.read_bit());
        assert!(!r.read_bit());
    }

    #[test]
    fn read_bits_assembles_value() {
        let mut r = BitReader::new(&[0xDE, 0xAD]);
        assert_eq!(r.read_bits(16), 0xDEAD);
    }

    #[test]
    fn padded_reads_return_zero_after_end() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8), 0xFF);
        assert_eq!(r.read_bits(8), 0);
        assert!(!r.read_bit());
        assert_eq!(r.bits_read(), 17);
    }

    #[test]
    fn strict_reads_stop_at_end() {
        let mut r = BitReader::new(&[0b1000_0000]);
        assert_eq!(r.try_read_bits(8), Some(0b1000_0000));
        assert_eq!(r.try_read_bit(), None);
        assert_eq!(r.try_read_bits(1), None);
    }

    #[test]
    fn unary_counts_zeros() {
        // 0b0001_0000: three zeros then a one.
        let mut r = BitReader::new(&[0b0001_0000]);
        assert_eq!(r.read_unary(), Some(3));
    }

    #[test]
    fn unary_none_when_no_terminator() {
        let mut r = BitReader::new(&[0x00]);
        assert_eq!(r.read_unary(), None);
    }

    #[test]
    fn align_skips_partial_byte() {
        let mut r = BitReader::new(&[0xFF, 0x01]);
        r.read_bits(3);
        r.align_to_byte();
        assert_eq!(r.read_bits(8), 0x01);
    }

    #[test]
    fn exhaustion_and_remaining() {
        let mut r = BitReader::new(&[0xAA]);
        assert_eq!(r.bits_remaining(), 8);
        assert!(!r.is_exhausted());
        r.read_bits(8);
        assert!(r.is_exhausted());
        assert_eq!(r.bits_remaining(), 0);
    }

    #[test]
    fn empty_input_is_exhausted_immediately() {
        let mut r = BitReader::new(&[]);
        assert!(r.is_exhausted());
        assert_eq!(r.try_read_bit(), None);
        assert!(!r.read_bit());
    }
}
