//! Bounded-memory bit I/O over `std::io::Write` / `std::io::Read`.
//!
//! [`BitWriter`](crate::BitWriter) and [`BitReader`](crate::BitReader)
//! materialize the whole stream in memory. The adapters here keep only a
//! small fixed buffer and move bytes through the wrapped `io` object as
//! they fill or drain, so a codec built on them runs in O(1) memory no
//! matter how long the bit stream gets — the software shape of the paper's
//! one-pixel-per-cycle hardware output bus.
//!
//! Like their buffered counterparts, both adapters stage bits in a 64-bit
//! register so multi-bit transfers (the arithmetic coder's bulk
//! renormalization) cost one shift-or instead of a bit loop.
//!
//! # Error handling
//!
//! Bit-level writes cannot return `io::Result` without poisoning every
//! coder signature above them, so [`StreamBitWriter`] latches the first
//! I/O error, discards subsequent output, and surfaces the error from
//! [`StreamBitWriter::finish`] (or eagerly via
//! [`StreamBitWriter::take_error`]). [`StreamBitReader`] likewise treats an
//! I/O error as end-of-input and reports it through
//! [`StreamBitReader::io_error`].

use crate::{BitSink, BitSource};
use std::io::{self, Read, Write};

/// Bytes held before handing them to the wrapped writer / after pulling
/// them from the wrapped reader. One page: small enough to be "bounded",
/// large enough to amortize `write`/`read` calls.
const CHUNK: usize = 4096;

/// Low-bits mask for `count` in `1..=64`.
#[inline]
fn mask(count: u32) -> u64 {
    u64::MAX >> (64 - count)
}

/// An MSB-first bit sink that streams its bytes into an [`io::Write`].
///
/// Produces byte-for-byte the stream [`BitWriter`](crate::BitWriter) would
/// buffer, including the zero-padded final partial byte emitted by
/// [`Self::finish`].
///
/// # Examples
///
/// ```
/// use cbic_bitio::{BitSink, StreamBitWriter};
///
/// let mut w = StreamBitWriter::new(Vec::new());
/// w.write_bits(0b101, 3);
/// assert_eq!(w.bits_written(), 3);
/// assert_eq!(w.finish().unwrap(), vec![0xA0]);
/// ```
#[derive(Debug)]
pub struct StreamBitWriter<W: Write> {
    inner: W,
    buf: Vec<u8>,
    /// Bits accumulated in `acc`, always in `0..64`.
    nacc: u32,
    /// Pending bits, right-aligned in the low `nacc` bits (bits at or above
    /// `nacc` are always zero).
    acc: u64,
    bits_written: u64,
    error: Option<io::Error>,
    /// Set with `error` and never cleared: once any byte was dropped the
    /// stream has a gap, so the writer refuses to produce "success" even
    /// after the error itself was [taken](Self::take_error).
    poisoned: bool,
}

impl<W: Write> StreamBitWriter<W> {
    /// Wraps `inner` in a fresh bit sink.
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            buf: Vec::with_capacity(CHUNK),
            nacc: 0,
            acc: 0,
            bits_written: 0,
            error: None,
            poisoned: false,
        }
    }

    fn push_byte(&mut self, byte: u8) {
        if self.poisoned {
            return;
        }
        self.buf.push(byte);
        if self.buf.len() >= CHUNK {
            self.flush_buf();
        }
    }

    /// Moves a full 64-bit accumulator into the byte buffer.
    #[inline]
    fn push_acc(&mut self, acc: u64) {
        if self.poisoned {
            return;
        }
        self.buf.extend_from_slice(&acc.to_be_bytes());
        if self.buf.len() >= CHUNK {
            self.flush_buf();
        }
    }

    /// Cold tail of [`BitSink::write_bits`]: the append crosses a 64-bit
    /// accumulator boundary, so top the accumulator off to exactly 64 bits,
    /// flush it, and restart it with the spill (possibly zero bits). Kept
    /// out of line so the fast path stays small enough to inline into the
    /// arithmetic encoder's per-decision loop.
    #[cold]
    fn write_bits_spill(&mut self, value: u64, count: u32) {
        let space = 64 - self.nacc;
        let spill = count - space;
        let filled = if space == 64 {
            value
        } else {
            (self.acc << space) | (value >> spill)
        };
        self.nacc = spill;
        self.acc = if spill == 0 { 0 } else { value & mask(spill) };
        self.push_acc(filled);
    }

    fn flush_buf(&mut self) {
        if !self.poisoned {
            if let Err(e) = self.inner.write_all(&self.buf) {
                self.error = Some(e);
                self.poisoned = true;
            }
        }
        self.buf.clear();
    }

    /// Returns (and clears) the first I/O error hit so far, letting row- or
    /// chunk-level callers fail fast instead of discovering the error at
    /// [`Self::finish`].
    ///
    /// Taking the error does **not** un-poison the writer: bytes were
    /// already dropped, so later writes stay discarded and
    /// [`Self::finish`] keeps failing.
    pub fn take_error(&mut self) -> io::Result<()> {
        match self.error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Pads the current partial byte with zero bits up to a byte boundary.
    ///
    /// Does nothing when already aligned. The padding bits are *not*
    /// counted by [`BitSink::bits_written`].
    pub fn align_to_byte(&mut self) {
        let tail = self.nacc % 8;
        if tail > 0 {
            self.acc <<= 8 - tail;
            self.nacc += 8 - tail;
        }
        while self.nacc > 0 {
            self.nacc -= 8;
            let byte = (self.acc >> self.nacc) as u8;
            self.push_byte(byte);
        }
        self.acc = 0;
    }

    /// Flushes the partial byte (zero-padded), drains the internal buffer,
    /// flushes the wrapped writer, and returns it.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered at any point of the stream's
    /// life (bits written after the error were discarded). A writer whose
    /// error was already [taken](Self::take_error) still fails — the
    /// output has a gap and must not be reported as complete.
    pub fn finish(mut self) -> io::Result<W> {
        self.align_to_byte();
        self.flush_buf();
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        if self.poisoned {
            return Err(io::Error::other(
                "bit stream incomplete: an earlier write error dropped bytes",
            ));
        }
        self.inner.flush()?;
        Ok(self.inner)
    }
}

impl<W: Write> BitSink for StreamBitWriter<W> {
    #[inline]
    fn write_bit(&mut self, bit: bool) {
        self.acc = (self.acc << 1) | u64::from(bit);
        self.nacc += 1;
        self.bits_written += 1;
        if self.nacc == 64 {
            let acc = self.acc;
            self.acc = 0;
            self.nacc = 0;
            self.push_acc(acc);
        }
    }

    #[inline]
    fn bits_written(&self) -> u64 {
        self.bits_written
    }

    #[inline(always)]
    fn write_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        if count < 64 {
            assert!(
                value >> count == 0,
                "value {value:#x} does not fit in {count} bits"
            );
        }
        self.bits_written += u64::from(count);
        if count < 64 - self.nacc {
            self.acc = (self.acc << count) | value;
            self.nacc += count;
        } else {
            self.write_bits_spill(value, count);
        }
    }

    #[inline]
    fn write_run(&mut self, bit: bool, count: u64) {
        let pattern = if bit { u64::MAX } else { 0 };
        let mut rem = count;
        while rem >= 64 {
            self.write_bits(pattern, 64);
            rem -= 64;
        }
        if rem > 0 {
            self.write_bits(pattern >> (64 - rem), rem as u32);
        }
    }
}

/// An MSB-first bit source that pulls its bytes from an [`io::Read`].
///
/// Mirrors [`BitReader`](crate::BitReader): padded reads return `0` bits
/// once the underlying reader is exhausted, strict reads report
/// exhaustion. An I/O error is treated as end-of-input and kept for
/// inspection via [`Self::io_error`].
///
/// # Examples
///
/// ```
/// use cbic_bitio::{BitSource, StreamBitReader};
///
/// let mut r = StreamBitReader::new(&[0b1011_0000u8][..]);
/// assert_eq!(r.read_bits(4), 0b1011);
/// assert_eq!(r.bits_read(), 4);
/// assert_eq!(r.padding_bits(), 0);
/// ```
#[derive(Debug)]
pub struct StreamBitReader<R: Read> {
    inner: R,
    buf: Box<[u8; CHUNK]>,
    /// Valid prefix of `buf` is `pos..len`.
    pos: usize,
    len: usize,
    /// Valid bits remaining in `acc`, in `0..=64`.
    nacc: u32,
    /// Bit cache: the next bit to serve is bit `nacc - 1`; bits at or above
    /// `nacc` are stale.
    acc: u64,
    bits_read: u64,
    padding: u64,
    eof: bool,
    error: Option<io::Error>,
}

impl<R: Read> StreamBitReader<R> {
    /// Wraps `inner` in a fresh bit source.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            buf: Box::new([0; CHUNK]),
            pos: 0,
            len: 0,
            nacc: 0,
            acc: 0,
            bits_read: 0,
            padding: 0,
            eof: false,
            error: None,
        }
    }

    /// The first I/O error encountered, if any. After an error the source
    /// behaves as if the input had ended (padded reads return zeros).
    pub fn io_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Refills the byte buffer. Returns `false` at end of input.
    fn refill_buf(&mut self) -> bool {
        if self.eof {
            return false;
        }
        loop {
            match self.inner.read(&mut self.buf[..]) {
                Ok(0) => {
                    self.eof = true;
                    return false;
                }
                Ok(n) => {
                    self.pos = 0;
                    self.len = n;
                    return true;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.error = Some(e);
                    self.eof = true;
                    return false;
                }
            }
        }
    }

    /// Reloads the bit cache from the byte buffer, topping up to 64 bits
    /// from bytes already buffered. A blocking `read` on the wrapped reader
    /// is only issued while fewer than `need` bits are cached, so the
    /// adapter never stalls on bits the decoder has not demanded (the
    /// wrapped reader may be a pipe that stays open after the last byte).
    ///
    /// Returning with `nacc < need` therefore means true end of input.
    #[inline]
    fn refill_acc(&mut self, need: u32) {
        debug_assert!((1..=64).contains(&need));
        while self.nacc < 64 {
            if self.pos == self.len && (self.nacc >= need || !self.refill_buf()) {
                return;
            }
            let avail = &self.buf[self.pos..self.len];
            if self.nacc == 0 {
                if let Some(chunk) = avail.first_chunk::<8>() {
                    self.acc = u64::from_be_bytes(*chunk);
                    self.nacc = 64;
                    self.pos += 8;
                    return;
                }
            }
            // Near a buffer boundary: take whole bytes while they fit.
            let take = (((64 - self.nacc) / 8) as usize).min(avail.len());
            for _ in 0..take {
                self.acc = (self.acc << 8) | u64::from(self.buf[self.pos]);
                self.pos += 1;
                self.nacc += 8;
            }
        }
    }

    /// Cold tail of [`BitSource::read_bits`]: the read straddles the cached
    /// accumulator, so drain it, refill from the underlying reader, and take
    /// the remainder (padding with zeros if the input runs out). Kept out of
    /// line so the fast path stays small enough to inline into the
    /// arithmetic decoder's per-decision loop.
    #[cold]
    fn read_bits_spanning(&mut self, count: u32) -> u64 {
        let have = self.nacc;
        let mut v = if have > 0 {
            self.nacc = 0;
            self.bits_read += u64::from(have);
            self.acc & mask(have)
        } else {
            0
        };
        let rem = count - have;
        self.refill_acc(rem);
        if rem > self.nacc {
            let tail = self.nacc;
            if tail > 0 {
                v = (v << tail) | (self.acc & mask(tail));
                self.nacc = 0;
                self.bits_read += u64::from(tail);
            }
            let pad = rem - tail;
            self.bits_read += u64::from(pad);
            self.padding += u64::from(pad);
            return if pad == 64 { 0 } else { v << pad };
        }
        self.nacc -= rem;
        self.bits_read += u64::from(rem);
        if rem == 64 {
            self.acc
        } else {
            (v << rem) | ((self.acc >> self.nacc) & mask(rem))
        }
    }
}

impl<R: Read> BitSource for StreamBitReader<R> {
    #[inline]
    fn try_read_bit(&mut self) -> Option<bool> {
        if self.nacc == 0 {
            self.refill_acc(1);
            if self.nacc == 0 {
                return None;
            }
        }
        self.nacc -= 1;
        self.bits_read += 1;
        Some((self.acc >> self.nacc) & 1 == 1)
    }

    #[inline]
    fn read_bit(&mut self) -> bool {
        match self.try_read_bit() {
            Some(b) => b,
            None => {
                self.bits_read += 1;
                self.padding += 1;
                false
            }
        }
    }

    #[inline]
    fn bits_read(&self) -> u64 {
        self.bits_read
    }

    #[inline]
    fn padding_bits(&self) -> u64 {
        self.padding
    }

    #[inline(always)]
    fn read_bits(&mut self, count: u32) -> u64 {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        if count <= self.nacc {
            // Fast path: the whole read is cached. Branch-free in `count`
            // (the arithmetic decoder passes a patternless count, often 0,
            // so an early-out here would mispredict constantly): the mask
            // zeroes the result when count == 0 even though the shift
            // amount wraps, and the `== 64` term widens full-width reads.
            self.nacc -= count;
            self.bits_read += u64::from(count);
            let m = (1u64.wrapping_shl(count)).wrapping_sub(1)
                | 0u64.wrapping_sub(u64::from(count == 64));
            return self.acc.wrapping_shr(self.nacc) & m;
        }
        self.read_bits_spanning(count)
    }

    fn read_unary(&mut self) -> Option<u64> {
        let mut zeros = 0u64;
        loop {
            if self.nacc == 0 {
                self.refill_acc(1);
                if self.nacc == 0 {
                    return None;
                }
            }
            let window = self.acc << (64 - self.nacc);
            let lz = window.leading_zeros();
            if lz >= self.nacc {
                zeros += u64::from(self.nacc);
                self.bits_read += u64::from(self.nacc);
                self.nacc = 0;
                continue;
            }
            zeros += u64::from(lz);
            self.nacc -= lz + 1;
            self.bits_read += u64::from(lz + 1);
            return Some(zeros);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BitReader, BitWriter};

    #[test]
    fn stream_writer_matches_buffered_writer() {
        let mut buffered = BitWriter::new();
        let mut streamed = StreamBitWriter::new(Vec::new());
        for i in 0..1000u64 {
            let count = (i % 13) as u32 + 1;
            let value = i.wrapping_mul(0x9e37_79b9) & ((1 << count) - 1);
            BitWriter::write_bits(&mut buffered, value, count);
            streamed.write_bits(value, count);
        }
        assert_eq!(streamed.bits_written(), buffered.bits_written());
        assert_eq!(streamed.finish().unwrap(), buffered.into_bytes());
    }

    #[test]
    fn stream_writer_handles_full_width_appends() {
        let mut buffered = BitWriter::new();
        let mut streamed = StreamBitWriter::new(Vec::new());
        for i in 0..300u64 {
            let count = (i % 65) as u32;
            let value = if count == 64 {
                i.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            } else {
                i.wrapping_mul(0x9e37_79b9_7f4a_7c15) & ((1u64 << count) - 1)
            };
            BitWriter::write_bits(&mut buffered, value, count);
            streamed.write_bits(value, count);
            if i % 17 == 0 {
                BitWriter::write_run(&mut buffered, i % 2 == 0, i % 130);
                streamed.write_run(i % 2 == 0, i % 130);
            }
        }
        assert_eq!(streamed.bits_written(), buffered.bits_written());
        assert_eq!(streamed.finish().unwrap(), buffered.into_bytes());
    }

    #[test]
    fn stream_writer_aligns_like_buffered() {
        let mut buffered = BitWriter::new();
        let mut streamed = StreamBitWriter::new(Vec::new());
        for w in [&mut buffered as &mut dyn BitSink, &mut streamed] {
            w.write_bits(0b11, 2);
        }
        buffered.align_to_byte();
        streamed.align_to_byte();
        for w in [&mut buffered as &mut dyn BitSink, &mut streamed] {
            w.write_bit(true);
        }
        assert_eq!(streamed.finish().unwrap(), buffered.into_bytes());
    }

    #[test]
    fn stream_writer_crosses_chunk_boundary() {
        // More than CHUNK bytes forces at least one mid-stream flush.
        let n = (CHUNK + 100) * 8;
        let mut w = StreamBitWriter::new(Vec::new());
        for i in 0..n {
            w.write_bit(i % 3 == 0);
        }
        let out = w.finish().unwrap();
        assert_eq!(out.len(), CHUNK + 100);
        let mut r = BitReader::new(&out);
        for i in 0..n {
            assert_eq!(BitReader::read_bit(&mut r), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    fn stream_writer_latches_io_errors() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = StreamBitWriter::new(Failing);
        for _ in 0..(CHUNK + 1) * 8 {
            w.write_bit(true);
        }
        assert!(w.take_error().is_err());
        // Taking the error does not un-poison the writer: bytes were
        // dropped, so the stream can never be reported complete.
        w.write_bit(true);
        assert!(w.finish().is_err());
    }

    #[test]
    fn stream_reader_matches_buffered_reader() {
        let bytes: Vec<u8> = (0..=255u8).cycle().take(3 * CHUNK + 17).collect();
        let mut buffered = BitReader::new(&bytes);
        let mut streamed = StreamBitReader::new(&bytes[..]);
        for _ in 0..bytes.len() * 8 {
            assert_eq!(BitReader::read_bit(&mut buffered), streamed.read_bit());
        }
        // Both pad with zeros past the end.
        assert_eq!(streamed.try_read_bit(), None);
        assert!(!streamed.read_bit());
        assert_eq!(streamed.padding_bits(), 1);
    }

    #[test]
    fn stream_reader_chunked_reads_match_buffered() {
        let bytes: Vec<u8> = (0..(2 * CHUNK + 11) as u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 11) as u8)
            .collect();
        let mut buffered = BitReader::new(&bytes);
        let mut streamed = StreamBitReader::new(&bytes[..]);
        let mut state = 1u64;
        let mut left = bytes.len() as u64 * 8 + 100;
        while left > 0 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let count = ((state >> 59) as u32 + 1).min(left as u32);
            assert_eq!(
                streamed.read_bits(count),
                BitReader::read_bits(&mut buffered, count)
            );
            left -= u64::from(count);
        }
        assert_eq!(streamed.bits_read(), buffered.bits_read());
        assert_eq!(streamed.padding_bits(), buffered.padding_bits());
    }

    #[test]
    fn stream_reader_strict_and_unary() {
        let mut r = StreamBitReader::new(&[0b0001_0000u8][..]);
        assert_eq!(r.read_unary(), Some(3));
        assert_eq!(r.try_read_bits(4), Some(0));
        assert_eq!(r.try_read_bit(), None);
        assert_eq!(r.read_unary(), None);
    }

    #[test]
    fn stream_reader_unary_across_chunks() {
        let mut bytes = vec![0u8; CHUNK + 3];
        bytes[CHUNK + 2] = 0b0100_0000;
        let mut r = StreamBitReader::new(&bytes[..]);
        assert_eq!(r.read_unary(), Some((CHUNK as u64 + 2) * 8 + 1));
    }

    #[test]
    fn stream_reader_reports_io_error_as_eof() {
        struct Failing;
        impl Read for Failing {
            fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::other("broken pipe"))
            }
        }
        let mut r = StreamBitReader::new(Failing);
        assert_eq!(r.try_read_bit(), None);
        assert!(!r.read_bit());
        assert!(r.io_error().is_some());
        assert_eq!(r.padding_bits(), 1);
    }

    #[test]
    fn empty_reader_is_all_padding() {
        let mut r = StreamBitReader::new(&[][..]);
        assert_eq!(r.read_bits(16), 0);
        assert_eq!(r.bits_read(), 16);
        assert_eq!(r.padding_bits(), 16);
    }
}
