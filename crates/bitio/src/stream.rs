//! Bounded-memory bit I/O over `std::io::Write` / `std::io::Read`.
//!
//! [`BitWriter`](crate::BitWriter) and [`BitReader`](crate::BitReader)
//! materialize the whole stream in memory. The adapters here keep only a
//! small fixed buffer and move bytes through the wrapped `io` object as
//! they fill or drain, so a codec built on them runs in O(1) memory no
//! matter how long the bit stream gets — the software shape of the paper's
//! one-pixel-per-cycle hardware output bus.
//!
//! # Error handling
//!
//! Bit-level writes cannot return `io::Result` without poisoning every
//! coder signature above them, so [`StreamBitWriter`] latches the first
//! I/O error, discards subsequent output, and surfaces the error from
//! [`StreamBitWriter::finish`] (or eagerly via
//! [`StreamBitWriter::take_error`]). [`StreamBitReader`] likewise treats an
//! I/O error as end-of-input and reports it through
//! [`StreamBitReader::io_error`].

use crate::{BitSink, BitSource};
use std::io::{self, Read, Write};

/// Bytes held before handing them to the wrapped writer / after pulling
/// them from the wrapped reader. One page: small enough to be "bounded",
/// large enough to amortize `write`/`read` calls.
const CHUNK: usize = 4096;

/// An MSB-first bit sink that streams its bytes into an [`io::Write`].
///
/// Produces byte-for-byte the stream [`BitWriter`](crate::BitWriter) would
/// buffer, including the zero-padded final partial byte emitted by
/// [`Self::finish`].
///
/// # Examples
///
/// ```
/// use cbic_bitio::{BitSink, StreamBitWriter};
///
/// let mut w = StreamBitWriter::new(Vec::new());
/// w.write_bits(0b101, 3);
/// assert_eq!(w.bits_written(), 3);
/// assert_eq!(w.finish().unwrap(), vec![0xA0]);
/// ```
#[derive(Debug)]
pub struct StreamBitWriter<W: Write> {
    inner: W,
    buf: Vec<u8>,
    /// Bits accumulated in `acc`, always in `0..8`.
    nacc: u32,
    /// Pending bits, left-aligned within the low `nacc` bits.
    acc: u8,
    bits_written: u64,
    error: Option<io::Error>,
    /// Set with `error` and never cleared: once any byte was dropped the
    /// stream has a gap, so the writer refuses to produce "success" even
    /// after the error itself was [taken](Self::take_error).
    poisoned: bool,
}

impl<W: Write> StreamBitWriter<W> {
    /// Wraps `inner` in a fresh bit sink.
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            buf: Vec::with_capacity(CHUNK),
            nacc: 0,
            acc: 0,
            bits_written: 0,
            error: None,
            poisoned: false,
        }
    }

    fn push_byte(&mut self, byte: u8) {
        if self.poisoned {
            return;
        }
        self.buf.push(byte);
        if self.buf.len() >= CHUNK {
            self.flush_buf();
        }
    }

    fn flush_buf(&mut self) {
        if !self.poisoned {
            if let Err(e) = self.inner.write_all(&self.buf) {
                self.error = Some(e);
                self.poisoned = true;
            }
        }
        self.buf.clear();
    }

    /// Returns (and clears) the first I/O error hit so far, letting row- or
    /// chunk-level callers fail fast instead of discovering the error at
    /// [`Self::finish`].
    ///
    /// Taking the error does **not** un-poison the writer: bytes were
    /// already dropped, so later writes stay discarded and
    /// [`Self::finish`] keeps failing.
    pub fn take_error(&mut self) -> io::Result<()> {
        match self.error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Pads the current partial byte with zero bits up to a byte boundary.
    ///
    /// Does nothing when already aligned. The padding bits are *not*
    /// counted by [`BitSink::bits_written`].
    pub fn align_to_byte(&mut self) {
        if self.nacc > 0 {
            let pad = 8 - self.nacc;
            let byte = self.acc << pad;
            self.acc = 0;
            self.nacc = 0;
            self.push_byte(byte);
        }
    }

    /// Flushes the partial byte (zero-padded), drains the internal buffer,
    /// flushes the wrapped writer, and returns it.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered at any point of the stream's
    /// life (bits written after the error were discarded). A writer whose
    /// error was already [taken](Self::take_error) still fails — the
    /// output has a gap and must not be reported as complete.
    pub fn finish(mut self) -> io::Result<W> {
        self.align_to_byte();
        self.flush_buf();
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        if self.poisoned {
            return Err(io::Error::other(
                "bit stream incomplete: an earlier write error dropped bytes",
            ));
        }
        self.inner.flush()?;
        Ok(self.inner)
    }
}

impl<W: Write> BitSink for StreamBitWriter<W> {
    #[inline]
    fn write_bit(&mut self, bit: bool) {
        self.acc = (self.acc << 1) | u8::from(bit);
        self.nacc += 1;
        self.bits_written += 1;
        if self.nacc == 8 {
            let byte = self.acc;
            self.acc = 0;
            self.nacc = 0;
            self.push_byte(byte);
        }
    }

    #[inline]
    fn bits_written(&self) -> u64 {
        self.bits_written
    }
}

/// An MSB-first bit source that pulls its bytes from an [`io::Read`].
///
/// Mirrors [`BitReader`](crate::BitReader): padded reads return `0` bits
/// once the underlying reader is exhausted, strict reads report
/// exhaustion. An I/O error is treated as end-of-input and kept for
/// inspection via [`Self::io_error`].
///
/// # Examples
///
/// ```
/// use cbic_bitio::{BitSource, StreamBitReader};
///
/// let mut r = StreamBitReader::new(&[0b1011_0000u8][..]);
/// assert_eq!(r.read_bits(4), 0b1011);
/// assert_eq!(r.bits_read(), 4);
/// assert_eq!(r.padding_bits(), 0);
/// ```
#[derive(Debug)]
pub struct StreamBitReader<R: Read> {
    inner: R,
    buf: Box<[u8; CHUNK]>,
    /// Valid prefix of `buf` is `pos..len`.
    pos: usize,
    len: usize,
    /// Bits remaining in `acc`.
    nacc: u32,
    /// Remaining bits of the current byte, left-aligned at bit `nacc - 1`.
    acc: u8,
    bits_read: u64,
    padding: u64,
    eof: bool,
    error: Option<io::Error>,
}

impl<R: Read> StreamBitReader<R> {
    /// Wraps `inner` in a fresh bit source.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            buf: Box::new([0; CHUNK]),
            pos: 0,
            len: 0,
            nacc: 0,
            acc: 0,
            bits_read: 0,
            padding: 0,
            eof: false,
            error: None,
        }
    }

    /// The first I/O error encountered, if any. After an error the source
    /// behaves as if the input had ended (padded reads return zeros).
    pub fn io_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Refills the byte buffer. Returns `false` at end of input.
    fn refill(&mut self) -> bool {
        if self.eof {
            return false;
        }
        loop {
            match self.inner.read(&mut self.buf[..]) {
                Ok(0) => {
                    self.eof = true;
                    return false;
                }
                Ok(n) => {
                    self.pos = 0;
                    self.len = n;
                    return true;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.error = Some(e);
                    self.eof = true;
                    return false;
                }
            }
        }
    }
}

impl<R: Read> BitSource for StreamBitReader<R> {
    #[inline]
    fn try_read_bit(&mut self) -> Option<bool> {
        if self.nacc == 0 {
            if self.pos == self.len && !self.refill() {
                return None;
            }
            self.acc = self.buf[self.pos];
            self.pos += 1;
            self.nacc = 8;
        }
        self.nacc -= 1;
        self.bits_read += 1;
        Some((self.acc >> self.nacc) & 1 == 1)
    }

    #[inline]
    fn read_bit(&mut self) -> bool {
        match self.try_read_bit() {
            Some(b) => b,
            None => {
                self.bits_read += 1;
                self.padding += 1;
                false
            }
        }
    }

    #[inline]
    fn bits_read(&self) -> u64 {
        self.bits_read
    }

    #[inline]
    fn padding_bits(&self) -> u64 {
        self.padding
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BitReader, BitWriter};

    #[test]
    fn stream_writer_matches_buffered_writer() {
        let mut buffered = BitWriter::new();
        let mut streamed = StreamBitWriter::new(Vec::new());
        for i in 0..1000u64 {
            let count = (i % 13) as u32 + 1;
            let value = i.wrapping_mul(0x9e37_79b9) & ((1 << count) - 1);
            BitWriter::write_bits(&mut buffered, value, count);
            streamed.write_bits(value, count);
        }
        assert_eq!(streamed.bits_written(), buffered.bits_written());
        assert_eq!(streamed.finish().unwrap(), buffered.into_bytes());
    }

    #[test]
    fn stream_writer_aligns_like_buffered() {
        let mut buffered = BitWriter::new();
        let mut streamed = StreamBitWriter::new(Vec::new());
        for w in [&mut buffered as &mut dyn BitSink, &mut streamed] {
            w.write_bits(0b11, 2);
        }
        buffered.align_to_byte();
        streamed.align_to_byte();
        for w in [&mut buffered as &mut dyn BitSink, &mut streamed] {
            w.write_bit(true);
        }
        assert_eq!(streamed.finish().unwrap(), buffered.into_bytes());
    }

    #[test]
    fn stream_writer_crosses_chunk_boundary() {
        // More than CHUNK bytes forces at least one mid-stream flush.
        let n = (CHUNK + 100) * 8;
        let mut w = StreamBitWriter::new(Vec::new());
        for i in 0..n {
            w.write_bit(i % 3 == 0);
        }
        let out = w.finish().unwrap();
        assert_eq!(out.len(), CHUNK + 100);
        let mut r = BitReader::new(&out);
        for i in 0..n {
            assert_eq!(BitReader::read_bit(&mut r), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    fn stream_writer_latches_io_errors() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = StreamBitWriter::new(Failing);
        for _ in 0..(CHUNK + 1) * 8 {
            w.write_bit(true);
        }
        assert!(w.take_error().is_err());
        // Taking the error does not un-poison the writer: bytes were
        // dropped, so the stream can never be reported complete.
        w.write_bit(true);
        assert!(w.finish().is_err());
    }

    #[test]
    fn stream_reader_matches_buffered_reader() {
        let bytes: Vec<u8> = (0..=255u8).cycle().take(3 * CHUNK + 17).collect();
        let mut buffered = BitReader::new(&bytes);
        let mut streamed = StreamBitReader::new(&bytes[..]);
        for _ in 0..bytes.len() * 8 {
            assert_eq!(BitReader::read_bit(&mut buffered), streamed.read_bit());
        }
        // Both pad with zeros past the end.
        assert_eq!(streamed.try_read_bit(), None);
        assert!(!streamed.read_bit());
        assert_eq!(streamed.padding_bits(), 1);
    }

    #[test]
    fn stream_reader_strict_and_unary() {
        let mut r = StreamBitReader::new(&[0b0001_0000u8][..]);
        assert_eq!(r.read_unary(), Some(3));
        assert_eq!(r.try_read_bits(4), Some(0));
        assert_eq!(r.try_read_bit(), None);
        assert_eq!(r.read_unary(), None);
    }

    #[test]
    fn stream_reader_reports_io_error_as_eof() {
        struct Failing;
        impl Read for Failing {
            fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::other("broken pipe"))
            }
        }
        let mut r = StreamBitReader::new(Failing);
        assert_eq!(r.try_read_bit(), None);
        assert!(!r.read_bit());
        assert!(r.io_error().is_some());
        assert_eq!(r.padding_bits(), 1);
    }

    #[test]
    fn empty_reader_is_all_padding() {
        let mut r = StreamBitReader::new(&[][..]);
        assert_eq!(r.read_bits(16), 0);
        assert_eq!(r.bits_read(), 16);
        assert_eq!(r.padding_bits(), 16);
    }
}
