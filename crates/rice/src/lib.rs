//! Golomb-Rice coding substrate.
//!
//! The paper's Table 1 compares against two "low complexity compression
//! schemes using Golomb-Rice coder": JPEG-LS (LOCO-I) and SLP. Both
//! baselines in this workspace are built on this crate, which provides:
//!
//! * [`encode`]/[`decode`] — plain Golomb-Rice codes (unary quotient +
//!   `k`-bit remainder);
//! * [`encode_limited`]/[`decode_limited`] — the length-limited variant of
//!   JPEG-LS Annex A.5.3 (escape to a `qbpp`-bit raw value after `limit`
//!   unary bits);
//! * [`AdaptiveRice`] — LOCO-style parameter adaptation (`k` chosen from
//!   running totals `A`/`N` with periodic halving).
//!
//! # Examples
//!
//! ```
//! use cbic_bitio::{BitReader, BitWriter};
//! use cbic_rice::{decode, encode};
//!
//! let mut w = BitWriter::new();
//! encode(&mut w, 11, 2); // q=2, r=3 -> "001" + "11"
//! let bytes = w.into_bytes();
//! let mut r = BitReader::new(&bytes);
//! assert_eq!(decode(&mut r, 2), Some(11));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cbic_bitio::{BitReader, BitWriter};

/// Encodes `value` with Rice parameter `k`: the quotient `value >> k` in
/// unary (that many `0`s and a terminating `1`), then the low `k` bits.
///
/// # Panics
///
/// Panics if `k > 24` (parameters beyond 24 are never useful for 8-bit
/// residuals and indicate a bug).
pub fn encode(w: &mut BitWriter, value: u32, k: u32) {
    assert!(k <= 24, "rice parameter {k} out of range");
    let q = u64::from(value >> k);
    w.write_run(false, q);
    w.write_bit(true);
    w.write_bits(u64::from(value) & ((1u64 << k) - 1), k);
}

/// Decodes one plain Rice code word; `None` on truncated input.
///
/// # Panics
///
/// Panics if `k > 24`.
pub fn decode(r: &mut BitReader<'_>, k: u32) -> Option<u32> {
    assert!(k <= 24, "rice parameter {k} out of range");
    let q = r.read_unary()?;
    let rem = r.try_read_bits(k)?;
    Some(((q << k) | rem) as u32)
}

/// Number of bits a plain Rice code word would occupy.
pub fn code_len(value: u32, k: u32) -> u32 {
    (value >> k) + 1 + k
}

/// Encodes with the JPEG-LS length limit: if the quotient reaches
/// `limit - qbpp - 1`, that many `0`s, a `1`, and the value minus one in
/// `qbpp` raw bits are sent instead.
///
/// # Panics
///
/// Panics if the escape cannot represent `value` (i.e. `value == 0` cannot
/// escape, and `value - 1` must fit in `qbpp` bits) — callers guarantee
/// this by construction in JPEG-LS (`value < 2^qbpp`).
pub fn encode_limited(w: &mut BitWriter, value: u32, k: u32, limit: u32, qbpp: u32) {
    let q = value >> k;
    let maxq = limit - qbpp - 1;
    if q < maxq {
        encode(w, value, k);
    } else {
        assert!(value >= 1 && (value - 1) >> qbpp == 0, "escape overflow");
        w.write_run(false, u64::from(maxq));
        w.write_bit(true);
        w.write_bits(u64::from(value - 1), qbpp);
    }
}

/// Decodes one length-limited code word; `None` on truncated input.
pub fn decode_limited(r: &mut BitReader<'_>, k: u32, limit: u32, qbpp: u32) -> Option<u32> {
    let q = r.read_unary()?;
    let maxq = u64::from(limit - qbpp - 1);
    if q < maxq {
        let rem = r.try_read_bits(k)?;
        Some(((q << k) | rem) as u32)
    } else {
        Some(r.try_read_bits(qbpp)? as u32 + 1)
    }
}

/// LOCO-I-style adaptive Rice parameter state: `k` is the smallest integer
/// with `N << k >= A`, where `A` accumulates error magnitudes and `N`
/// observation counts, both halved every `reset` observations.
///
/// # Examples
///
/// ```
/// use cbic_rice::AdaptiveRice;
///
/// let mut ctx = AdaptiveRice::new(4, 64);
/// assert!(ctx.k() <= 3);
/// for _ in 0..32 {
///     ctx.update(40); // large errors push k upwards
/// }
/// assert!(ctx.k() >= 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveRice {
    a: u32,
    n: u32,
    reset: u32,
}

impl AdaptiveRice {
    /// Creates a context with initial magnitude estimate `a_init`
    /// (JPEG-LS uses `max(2, (range + 32) / 64)`), halving every `reset`
    /// samples (JPEG-LS uses 64).
    ///
    /// # Panics
    ///
    /// Panics if `reset < 2`.
    pub fn new(a_init: u32, reset: u32) -> Self {
        assert!(reset >= 2, "reset interval too small");
        Self {
            a: a_init.max(1),
            n: 1,
            reset,
        }
    }

    /// Current Rice parameter.
    #[inline]
    pub fn k(&self) -> u32 {
        let mut k = 0;
        while (self.n << k) < self.a && k < 24 {
            k += 1;
        }
        k
    }

    /// Current `(A, N)` totals.
    pub fn totals(&self) -> (u32, u32) {
        (self.a, self.n)
    }

    /// Accumulates one coded magnitude.
    #[inline]
    pub fn update(&mut self, magnitude: u32) {
        self.a += magnitude;
        if self.n == self.reset {
            self.a >>= 1;
            self.n >>= 1;
        }
        self.n += 1;
    }
}

/// Maps a signed residual to the non-negative Rice alphabet
/// (0, −1→1, 1→2, −2→3, … — same zig-zag as JPEG-LS `MErrval` without the
/// bias twist).
#[inline]
pub fn zigzag(v: i32) -> u32 {
    if v >= 0 {
        (v as u32) << 1
    } else {
        ((-v as u32) << 1) - 1
    }
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(u: u32) -> i32 {
    if u & 1 == 0 {
        (u >> 1) as i32
    } else {
        -(((u + 1) >> 1) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_rice_roundtrip() {
        for k in 0..=8 {
            let mut w = BitWriter::new();
            let values: Vec<u32> = (0..200).map(|i| (i * 7) % 300).collect();
            for &v in &values {
                encode(&mut w, v, k);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &v in &values {
                assert_eq!(decode(&mut r, k), Some(v), "k={k}");
            }
        }
    }

    #[test]
    fn code_len_matches_actual() {
        for (v, k) in [(0u32, 0u32), (5, 0), (11, 2), (255, 4), (1000, 3)] {
            let mut w = BitWriter::new();
            encode(&mut w, v, k);
            assert_eq!(w.bits_written(), u64::from(code_len(v, k)));
        }
    }

    #[test]
    fn limited_matches_plain_below_limit() {
        let (limit, qbpp) = (32, 8);
        for v in 0..200u32 {
            let k = 3;
            if (v >> k) < limit - qbpp - 1 {
                let mut a = BitWriter::new();
                let mut b = BitWriter::new();
                encode(&mut a, v, k);
                encode_limited(&mut b, v, k, limit, qbpp);
                assert_eq!(a.into_bytes(), b.into_bytes(), "v={v}");
            }
        }
    }

    #[test]
    fn limited_escape_roundtrip() {
        let (limit, qbpp) = (32u32, 8u32);
        // k=0 and a large value force the escape path.
        for v in [30u32, 100, 255] {
            let mut w = BitWriter::new();
            encode_limited(&mut w, v, 0, limit, qbpp);
            let bits = w.bits_written();
            assert!(bits <= u64::from(limit), "v={v} took {bits} bits");
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            assert_eq!(decode_limited(&mut r, 0, limit, qbpp), Some(v));
        }
    }

    #[test]
    fn limited_mixed_stream_roundtrip() {
        let (limit, qbpp) = (32u32, 8u32);
        let values: Vec<(u32, u32)> = (0..300u32).map(|i| ((i * 13) % 256, i % 5)).collect();
        let mut w = BitWriter::new();
        for &(v, k) in &values {
            encode_limited(&mut w, v, k, limit, qbpp);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, k) in &values {
            assert_eq!(decode_limited(&mut r, k, limit, qbpp), Some(v));
        }
    }

    #[test]
    fn decode_on_truncated_input_returns_none() {
        let mut r = BitReader::new(&[0x00]); // unary never terminates
        assert_eq!(decode(&mut r, 3), None);
    }

    #[test]
    fn adaptive_k_grows_with_magnitudes() {
        let mut ctx = AdaptiveRice::new(4, 64);
        let k0 = ctx.k();
        for _ in 0..64 {
            ctx.update(100);
        }
        assert!(ctx.k() > k0);
    }

    #[test]
    fn adaptive_k_shrinks_back() {
        let mut ctx = AdaptiveRice::new(4, 64);
        for _ in 0..64 {
            ctx.update(100);
        }
        let k_high = ctx.k();
        for _ in 0..512 {
            ctx.update(0);
        }
        assert!(ctx.k() < k_high, "k must decay with the reset halvings");
    }

    #[test]
    fn reset_keeps_totals_bounded() {
        let mut ctx = AdaptiveRice::new(4, 64);
        for _ in 0..10_000 {
            ctx.update(255);
        }
        let (a, n) = ctx.totals();
        assert!(n <= 64);
        assert!(a < 255 * 130);
    }

    #[test]
    fn zigzag_bijection() {
        for v in -300..=300 {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn optimal_k_beats_wrong_k_on_geometric_data() {
        // Data with mean ~16: k=4 should beat k=0 and k=8.
        let values: Vec<u32> = (0..500u32).map(|i| (i * 31 + 7) % 33).collect();
        let len = |k: u32| -> u64 {
            let mut w = BitWriter::new();
            for &v in &values {
                encode(&mut w, v, k);
            }
            w.bits_written()
        };
        assert!(len(4) < len(0));
        assert!(len(4) < len(8));
    }
}
