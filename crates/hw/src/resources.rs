//! Virtex-4-style FPGA resource estimation for the paper's Table 2.
//!
//! We cannot run Xilinx ISE, so Table 2 (device utilization of the three
//! modules) is substituted with an analytic model: each module is described
//! as an inventory of datapath primitives, and each primitive is mapped to
//! 4-input LUTs and flip-flops with the usual rules of thumb for that
//! architecture (ripple adder: one LUT per bit; 2:1 mux: one LUT per two
//! output bits; array multiplier: one LUT per partial-product bit; a slice
//! holds 2 LUTs + 2 FFs). Block-RAM bits are accounted separately, exactly
//! as ISE reports them outside the slice counts.
//!
//! Absolute counts from such a model are estimates (control logic,
//! synthesis optimization, and mapping effects are approximated by a single
//! `Control` entry per module) — the reproduction targets are the
//! **module ordering and ratios** of the paper: arithmetic coder ≫
//! modeling > probability estimator, with the coder dominated by its
//! interval multipliers. The [`compare_with_paper`] helper prints both side
//! by side.

/// One hardware datapath building block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Primitive {
    /// Ripple-carry adder/subtractor of the given width.
    Adder(u32),
    /// |a − b| unit (subtract + conditional negate).
    AbsDiff(u32),
    /// Magnitude comparator of the given width.
    Comparator(u32),
    /// `inputs`-to-1 multiplexer, `width` bits wide.
    Mux {
        /// Output width in bits.
        width: u32,
        /// Number of selectable inputs.
        inputs: u32,
    },
    /// Pipeline/state register of the given width.
    Register(u32),
    /// Barrel shifter: `stages` mux levels of `width` bits.
    BarrelShifter {
        /// Data width in bits.
        width: u32,
        /// Number of shift stages (log2 of max shift).
        stages: u32,
    },
    /// Array multiplier (`a` × `b` bits).
    Multiplier {
        /// First operand width.
        a: u32,
        /// Second operand width.
        b: u32,
    },
    /// Loadable counter of the given width.
    Counter(u32),
    /// Read-only memory, in bits (mapped to block RAM).
    Rom {
        /// Total ROM bits.
        bits: u64,
    },
    /// Read-write memory, in bits (mapped to block RAM).
    Ram {
        /// Total RAM bits.
        bits: u64,
    },
    /// Lump estimate for FSMs, stall/valid tracking, and glue.
    Control {
        /// Equivalent LUT4 count.
        luts: u32,
    },
}

impl Primitive {
    /// Estimated 4-input LUT usage.
    pub fn lut4(&self) -> u64 {
        match *self {
            Primitive::Adder(w) => u64::from(w),
            Primitive::AbsDiff(w) => 2 * u64::from(w),
            Primitive::Comparator(w) => u64::from(w.div_ceil(2)),
            Primitive::Mux { width, inputs } => {
                u64::from((width * inputs.saturating_sub(1)).div_ceil(2))
            }
            Primitive::Register(_) => 0,
            Primitive::BarrelShifter { width, stages } => u64::from((width * stages).div_ceil(2)),
            Primitive::Multiplier { a, b } => u64::from(a) * u64::from(b),
            Primitive::Counter(w) => u64::from(w),
            Primitive::Rom { .. } | Primitive::Ram { .. } => 4, // address glue
            Primitive::Control { luts } => u64::from(luts),
        }
    }

    /// Estimated flip-flop usage.
    pub fn ff(&self) -> u64 {
        match *self {
            Primitive::Register(w) | Primitive::Counter(w) => u64::from(w),
            Primitive::Multiplier { a, b } => u64::from(a + b), // output register
            Primitive::Control { luts } => u64::from(luts / 4),
            _ => 0,
        }
    }

    /// Block-RAM bits consumed.
    pub fn bram_bits(&self) -> u64 {
        match *self {
            Primitive::Rom { bits } | Primitive::Ram { bits } => bits,
            _ => 0,
        }
    }
}

/// Aggregate utilization estimate for one module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceEstimate {
    /// Occupied Virtex-4 slices (2 LUT4 + 2 FF each).
    pub slices: u64,
    /// Slice flip-flops.
    pub flip_flops: u64,
    /// 4-input LUTs.
    pub lut4: u64,
    /// Bonded I/O pins.
    pub iobs: u64,
    /// Global clock buffers.
    pub gclk: u64,
    /// Block-RAM bits (reported separately, as ISE does).
    pub bram_bits: u64,
}

/// A named datapath inventory.
#[derive(Debug, Clone, Default)]
pub struct Module {
    name: String,
    items: Vec<(String, Primitive, u32)>,
    iobs: u64,
}

impl Module {
    /// Creates an empty module inventory.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            items: Vec::new(),
            iobs: 0,
        }
    }

    /// Module name (Table 2 column).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds `count` copies of a primitive under a descriptive label.
    pub fn add(&mut self, label: impl Into<String>, prim: Primitive, count: u32) -> &mut Self {
        self.items.push((label.into(), prim, count));
        self
    }

    /// Declares the module's bonded I/O pin count (port widths).
    pub fn with_iobs(&mut self, iobs: u64) -> &mut Self {
        self.iobs = iobs;
        self
    }

    /// Iterates over the inventory entries.
    pub fn items(&self) -> impl Iterator<Item = &(String, Primitive, u32)> {
        self.items.iter()
    }

    /// Computes the utilization estimate.
    pub fn estimate(&self) -> ResourceEstimate {
        let mut lut4 = 0u64;
        let mut ff = 0u64;
        let mut bram = 0u64;
        for (_, p, n) in &self.items {
            lut4 += p.lut4() * u64::from(*n);
            ff += p.ff() * u64::from(*n);
            bram += p.bram_bits() * u64::from(*n);
        }
        // A Virtex-4 slice packs 2 LUTs and 2 FFs; LUT/FF pairs share
        // slices, so occupancy is driven by the larger of the two.
        let slices = lut4.max(ff).div_ceil(2) + lut4.min(ff) / 8;
        ResourceEstimate {
            slices,
            flip_flops: ff,
            lut4,
            iobs: self.iobs,
            gclk: 1,
            bram_bits: bram,
        }
    }
}

/// The paper's Table 2, verbatim, for side-by-side comparison:
/// (module, slices, flip-flops, LUT4s, IOBs, GCLKs).
pub const PAPER_TABLE2: [(&str, u64, u64, u64, u64, u64); 3] = [
    ("Modelling", 508, 224, 912, 31, 1),
    ("Probability Estimator", 297, 124, 561, 60, 1),
    ("Arithmetic Coder", 1123, 283, 2131, 53, 1),
];

/// Datapath inventory of the image-modeling module (Fig. 3): gradients,
/// GAP predictor, texture/coding contexts, error feedback with the LUT
/// divider, error mapping, and the two-line pipeline control.
pub fn modeling_module() -> Module {
    let mut m = Module::new("Modelling");
    m.add("gradient |a-b| units", Primitive::AbsDiff(8), 6)
        .add("dv/dh accumulation", Primitive::Adder(10), 4)
        .add("GAP blend adders", Primitive::Adder(9), 6)
        .add("GAP edge comparators", Primitive::Comparator(10), 4)
        .add(
            "GAP output select",
            Primitive::Mux {
                width: 9,
                inputs: 6,
            },
            1,
        )
        .add("texture comparators", Primitive::Comparator(8), 6)
        .add("QE quantizer thresholds", Primitive::Comparator(10), 7)
        .add("context sum update", Primitive::Adder(14), 2)
        .add("count increment", Primitive::Adder(5), 1)
        .add(
            "overflow-guard halving",
            Primitive::Mux {
                width: 19,
                inputs: 2,
            },
            1,
        )
        .add("dividend clamp", Primitive::Comparator(14), 2)
        .add(
            "division normalize/denormalize",
            Primitive::BarrelShifter {
                width: 16,
                stages: 4,
            },
            2,
        )
        .add("error feedback adder", Primitive::Adder(10), 1)
        .add("prediction clamp", Primitive::Comparator(9), 2)
        .add("error wrap/fold", Primitive::Adder(9), 2)
        .add(
            "fold select",
            Primitive::Mux {
                width: 8,
                inputs: 2,
            },
            1,
        )
        .add("line-buffer pointers", Primitive::Counter(10), 3)
        .add(
            "pointer rotation",
            Primitive::Mux {
                width: 10,
                inputs: 3,
            },
            3,
        )
        .add("pipeline registers", Primitive::Register(24), 9)
        .add(
            "line buffers (3 x 512 x 8)",
            Primitive::Ram { bits: 3 * 512 * 8 },
            1,
        )
        .add(
            "context store (512 x 19)",
            Primitive::Ram { bits: 512 * 19 },
            1,
        )
        .add("division ROM (1 KB)", Primitive::Rom { bits: 8192 }, 1)
        .add(
            "two-line sequencing & stall control",
            Primitive::Control { luts: 360 },
            1,
        )
        .with_iobs(31); // 8 pixel in + 9 error out + 3 QE + clk/rst/valid/ready...
    m
}

/// Datapath inventory of the probability-estimator module: tree descent
/// (counter fetch, visit subtraction), update path, rescale, and the
/// escape context.
pub fn probability_estimator_module() -> Module {
    let mut m = Module::new("Probability Estimator");
    m.add("node counter increment", Primitive::Adder(14), 1)
        .add("visits subtraction", Primitive::Adder(14), 1)
        .add("zero-branch detectors", Primitive::Comparator(14), 2)
        .add("cap comparator", Primitive::Comparator(14), 1)
        .add(
            "rescale halving",
            Primitive::Mux {
                width: 14,
                inputs: 2,
            },
            1,
        )
        .add("node address generator", Primitive::Counter(12), 1)
        .add("path shift register", Primitive::Register(9), 2)
        .add("escape context adders", Primitive::Adder(14), 2)
        .add("escape comparator", Primitive::Comparator(14), 1)
        .add(
            "tree select / bank mux",
            Primitive::Mux {
                width: 14,
                inputs: 9,
            },
            2,
        )
        .add("pipeline registers", Primitive::Register(16), 4)
        .add(
            "tree memory (9 x 255 x 14)",
            Primitive::Ram { bits: 9 * 255 * 14 },
            1,
        )
        .add("descent/update FSM", Primitive::Control { luts: 220 }, 1)
        .with_iobs(60); // symbol in, context in, (c0,total) out to coder...
    m
}

/// Datapath inventory of the binary arithmetic coder: interval split
/// multiplier, reciprocal unit for the division by `total`, renormalization
/// shifters, follow-bit counter, and output staging.
pub fn arithmetic_coder_module() -> Module {
    let mut m = Module::new("Arithmetic Coder");
    m.add(
        "interval split multiplier (range x c0)",
        Primitive::Multiplier { a: 17, b: 16 },
        1,
    )
    .add(
        "reciprocal multiplier (1/total)",
        Primitive::Multiplier { a: 16, b: 16 },
        1,
    )
    .add(
        "reciprocal ROM (64K x 16 folded)",
        Primitive::Rom { bits: 16 * 1024 },
        1,
    )
    .add("low/high/split adders", Primitive::Adder(32), 4)
    .add("interval comparators", Primitive::Comparator(32), 3)
    .add(
        "renormalization shifters",
        Primitive::BarrelShifter {
            width: 32,
            stages: 5,
        },
        2,
    )
    .add("follow-bit counter", Primitive::Counter(16), 1)
    .add("interval registers", Primitive::Register(32), 4)
    .add(
        "bit staging / byte packer",
        Primitive::Mux {
            width: 8,
            inputs: 8,
        },
        2,
    )
    .add("output FIFO control", Primitive::Control { luts: 180 }, 1)
    .add("renorm & carry FSM", Primitive::Control { luts: 320 }, 1)
    .with_iobs(53);
    m
}

/// All three Table 2 modules with their estimates, in paper order.
pub fn table2() -> Vec<(Module, ResourceEstimate)> {
    [
        modeling_module(),
        probability_estimator_module(),
        arithmetic_coder_module(),
    ]
    .into_iter()
    .map(|m| {
        let e = m.estimate();
        (m, e)
    })
    .collect()
}

/// Relative deviation of the model from the paper for each module's slice
/// and LUT counts: `(module, slice_ratio, lut_ratio)` where a ratio of 1.0
/// is a perfect match.
pub fn compare_with_paper() -> Vec<(String, f64, f64)> {
    table2()
        .into_iter()
        .zip(PAPER_TABLE2.iter())
        .map(|((m, e), &(_, slices, _, luts, _, _))| {
            (
                m.name().to_string(),
                e.slices as f64 / slices as f64,
                e.lut4 as f64 / luts as f64,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_costs_are_sane() {
        assert_eq!(Primitive::Adder(8).lut4(), 8);
        assert_eq!(Primitive::Register(16).ff(), 16);
        assert_eq!(Primitive::Register(16).lut4(), 0);
        assert_eq!(Primitive::Multiplier { a: 16, b: 16 }.lut4(), 256);
        assert_eq!(Primitive::Ram { bits: 100 }.bram_bits(), 100);
        assert_eq!(
            Primitive::Mux {
                width: 8,
                inputs: 2
            }
            .lut4(),
            4
        );
    }

    #[test]
    fn estimate_aggregates() {
        let mut m = Module::new("t");
        m.add("a", Primitive::Adder(8), 2)
            .add("r", Primitive::Register(8), 1);
        let e = m.estimate();
        assert_eq!(e.lut4, 16);
        assert_eq!(e.flip_flops, 8);
        assert!(e.slices >= 8);
        assert_eq!(e.gclk, 1);
    }

    #[test]
    fn module_ordering_matches_paper() {
        let t = table2();
        let (modeling, estimator, coder) = (t[0].1, t[1].1, t[2].1);
        assert!(
            coder.lut4 > modeling.lut4 && modeling.lut4 > estimator.lut4,
            "expected coder > modeling > estimator, got {} / {} / {}",
            coder.lut4,
            modeling.lut4,
            estimator.lut4
        );
        assert!(coder.slices > modeling.slices && modeling.slices > estimator.slices);
    }

    #[test]
    fn estimates_are_within_coarse_band_of_paper() {
        // The analytic model is expected to land within ~40% of ISE's
        // numbers for every module (DESIGN.md substitution 2).
        for (name, slice_ratio, lut_ratio) in compare_with_paper() {
            assert!(
                (0.6..=1.4).contains(&slice_ratio),
                "{name}: slice ratio {slice_ratio}"
            );
            assert!(
                (0.6..=1.4).contains(&lut_ratio),
                "{name}: LUT ratio {lut_ratio}"
            );
        }
    }

    #[test]
    fn memory_bits_match_memory_module() {
        let modeling = modeling_module().estimate();
        // Line buffers + context store + division ROM.
        assert_eq!(modeling.bram_bits, 3 * 512 * 8 + 512 * 19 + 8192);
        let estimator = probability_estimator_module().estimate();
        assert_eq!(estimator.bram_bits, 9 * 255 * 14);
    }

    #[test]
    fn iobs_match_paper_exactly() {
        for ((_, e), &(_, _, _, _, iobs, gclk)) in table2().iter().zip(PAPER_TABLE2.iter()) {
            assert_eq!(e.iobs, iobs);
            assert_eq!(e.gclk, gclk);
        }
    }
}
