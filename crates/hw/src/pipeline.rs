//! Cycle-level model of the paper's two-line pipelined architecture.
//!
//! Section III of the paper splits image modeling into two parallel
//! pipelines: *Line 1* (prediction error, error mapping, context update for
//! the **current** symbol) and *Line 2* (gradients, primary prediction,
//! texture/coding context, error feedback for the **next** symbol). Both
//! sustain one pixel per cycle; the serial bottleneck is the binary
//! arithmetic coder of Section IV, which retires **one binary decision per
//! clock** (escape decision + one decision per alphabet bit).
//!
//! This simulator advances cycle-by-cycle through a pixel trace and
//! reports total cycles, cycles/pixel, and the throughput at a given clock
//! (the paper's 123 MHz), so Table 2's "123 Mbits/sec" row can be
//! regenerated. Escapes do not change the decision count (1 escape
//! decision + 8 static decisions vs 1 + 8 path decisions), which is what
//! makes the hardware's throughput data-independent.
//!
//! # Examples
//!
//! ```
//! use cbic_hw::pipeline::{PipelineConfig, PixelTrace};
//!
//! let cfg = PipelineConfig::default();
//! let trace = PixelTrace::uniform(512, 512, 9);
//! let report = cfg.simulate(&trace);
//! assert!(report.cycles_per_pixel >= 9.0);
//! assert!(report.mbits_per_sec > 100.0);
//! ```

/// Static description of the pipelined implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Clock frequency in MHz (the paper achieves 123 on a Virtex-4).
    pub clock_mhz: f64,
    /// Register stages in the Line 2 (prediction/context) pipeline.
    pub line2_stages: u32,
    /// Register stages in the Line 1 (error/update) pipeline.
    pub line1_stages: u32,
    /// Latency of the LUT divider in cycles (1: one block-RAM read).
    pub division_latency: u32,
    /// Pipeline fill latency of the estimator + coder, in cycles.
    pub coder_fill: u32,
    /// Extra cycles per image row for the 3-pointer line-buffer rotation.
    pub row_overhead: u32,
    /// If `true`, the escape decision is resolved in parallel with the
    /// first path decision (8 decisions/pixel steady state instead of 9) —
    /// this variant matches the paper's 1 bit/cycle → 123 Mbit/s figure.
    pub overlap_escape: bool,
}

impl Default for PipelineConfig {
    /// The paper's operating point (123 MHz, conservative non-overlapped
    /// escape decision).
    fn default() -> Self {
        Self {
            clock_mhz: 123.0,
            line2_stages: 5,
            line1_stages: 4,
            division_latency: 1,
            coder_fill: 4,
            row_overhead: 1,
            overlap_escape: false,
        }
    }
}

/// A per-pixel workload trace: how many binary decisions the estimator
/// issued for each pixel (constant 9 for the 8-bit codec; kept per-pixel so
/// experimental variants can be simulated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PixelTrace {
    width: usize,
    height: usize,
    decisions: Vec<u32>,
}

impl PixelTrace {
    /// Builds a trace with the same decision count for every pixel.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn uniform(width: usize, height: usize, decisions_per_pixel: u32) -> Self {
        assert!(width > 0 && height > 0, "trace dimensions must be nonzero");
        Self {
            width,
            height,
            decisions: vec![decisions_per_pixel; width * height],
        }
    }

    /// Builds a trace from explicit per-pixel decision counts.
    ///
    /// # Panics
    ///
    /// Panics if `decisions.len() != width * height` or a dimension is zero.
    pub fn from_decisions(width: usize, height: usize, decisions: Vec<u32>) -> Self {
        assert!(width > 0 && height > 0, "trace dimensions must be nonzero");
        assert_eq!(decisions.len(), width * height, "trace length mismatch");
        Self {
            width,
            height,
            decisions,
        }
    }

    /// Number of pixels in the trace.
    pub fn pixels(&self) -> u64 {
        self.decisions.len() as u64
    }

    /// Total binary decisions in the trace.
    pub fn total_decisions(&self) -> u64 {
        self.decisions.iter().map(|&d| u64::from(d)).sum()
    }
}

/// Result of a pipeline simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineReport {
    /// Total clock cycles to process the trace.
    pub cycles: u64,
    /// Pixels processed.
    pub pixels: u64,
    /// Steady-state cycles per pixel.
    pub cycles_per_pixel: f64,
    /// Pixel throughput at the configured clock, in Mpixel/s.
    pub mpixels_per_sec: f64,
    /// Source throughput at the configured clock in Mbit/s (8 bpp source),
    /// the unit of the paper's "123 Mbits/sec".
    pub mbits_per_sec: f64,
    /// Fraction of pixels whose initiation interval was set by the coder
    /// rather than the modeling pipelines (1.0 for the paper's design).
    pub coder_bound_fraction: f64,
}

impl PipelineConfig {
    /// Pipeline fill latency in cycles (first pixel only).
    pub fn fill_latency(&self) -> u64 {
        u64::from(self.line2_stages + self.line1_stages + self.division_latency + self.coder_fill)
    }

    /// Runs the cycle-level simulation over `trace`.
    pub fn simulate(&self, trace: &PixelTrace) -> PipelineReport {
        let mut cycles = self.fill_latency();
        let mut coder_bound = 0u64;
        for &d in &trace.decisions {
            // The modeling lines retire one pixel per cycle; the coder
            // needs one cycle per decision. The slower engine sets the
            // initiation interval for this pixel.
            let coder_ii = u64::from(d.saturating_sub(u32::from(self.overlap_escape))).max(1);
            let modeling_ii = 1u64;
            if coder_ii >= modeling_ii {
                coder_bound += 1;
            }
            cycles += coder_ii.max(modeling_ii);
        }
        cycles += u64::from(self.row_overhead) * trace.height as u64;

        let pixels = trace.pixels();
        let cpp = cycles as f64 / pixels as f64;
        let mpix = self.clock_mhz / cpp;
        PipelineReport {
            cycles,
            pixels,
            cycles_per_pixel: cpp,
            mpixels_per_sec: mpix,
            mbits_per_sec: mpix * 8.0,
            coder_bound_fraction: coder_bound as f64 / pixels as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_is_decision_bound() {
        let cfg = PipelineConfig::default();
        let r = cfg.simulate(&PixelTrace::uniform(512, 512, 9));
        // 9 decisions/pixel + 1 cycle/row + fill.
        let expected = cfg.fill_latency() + 9 * 512 * 512 + 512;
        assert_eq!(r.cycles, expected);
        assert!((r.cycles_per_pixel - 9.0).abs() < 0.01);
        assert_eq!(r.coder_bound_fraction, 1.0);
    }

    #[test]
    fn paper_throughput_with_overlapped_escape() {
        // With the escape decision overlapped the coder does 8
        // decisions/pixel: 123 MHz / 8 cpp * 8 bpp = 123 Mbit/s — the
        // paper's headline throughput.
        let cfg = PipelineConfig {
            overlap_escape: true,
            ..PipelineConfig::default()
        };
        let r = cfg.simulate(&PixelTrace::uniform(512, 512, 9));
        assert!(
            (r.mbits_per_sec - 123.0).abs() < 1.0,
            "got {} Mbit/s",
            r.mbits_per_sec
        );
    }

    #[test]
    fn conservative_variant_is_slightly_slower() {
        let r = PipelineConfig::default().simulate(&PixelTrace::uniform(512, 512, 9));
        assert!(r.mbits_per_sec > 105.0 && r.mbits_per_sec < 123.0);
    }

    #[test]
    fn fill_latency_only_charged_once() {
        let cfg = PipelineConfig::default();
        let one = cfg.simulate(&PixelTrace::uniform(1, 1, 9));
        let two = cfg.simulate(&PixelTrace::uniform(1, 2, 9));
        assert_eq!(two.cycles - one.cycles, 9 + u64::from(cfg.row_overhead));
    }

    #[test]
    fn per_pixel_trace_is_respected() {
        let cfg = PipelineConfig {
            row_overhead: 0,
            ..PipelineConfig::default()
        };
        let t = PixelTrace::from_decisions(2, 2, vec![9, 9, 1, 3]);
        let r = cfg.simulate(&t);
        assert_eq!(r.cycles, cfg.fill_latency() + 9 + 9 + 1 + 3);
        assert_eq!(t.total_decisions(), 22);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn trace_length_is_validated() {
        let _ = PixelTrace::from_decisions(2, 2, vec![1, 2, 3]);
    }

    #[test]
    fn decision_zero_still_advances() {
        let cfg = PipelineConfig {
            row_overhead: 0,
            ..PipelineConfig::default()
        };
        let r = cfg.simulate(&PixelTrace::from_decisions(1, 1, vec![0]));
        assert_eq!(r.cycles, cfg.fill_latency() + 1);
    }
}
