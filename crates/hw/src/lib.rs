//! Hardware model of the paper's FPGA implementation.
//!
//! The paper's Section V results (Table 2, the 123 MHz clock, the 3.7 KB /
//! 4 KB memory budgets) come from Xilinx ISE synthesis for a Virtex-4 —
//! hardware we do not have. This crate substitutes an analytic model with
//! four parts (see `DESIGN.md` §6, substitution 2):
//!
//! * [`divlut`] — the paper's **1 KByte lookup-table divider** used by the
//!   error-feedback stage (`ē = sum / count` with the dividend bounded to
//!   10 bits). This is *functional*: the image codec in `cbic-core` calls
//!   it on its coding path, exactly as the RTL would.
//! * [`pipeline`] — a cycle-level simulator of the paper's two-line
//!   pipelined modeling architecture feeding a bit-serial arithmetic coder,
//!   used to derive throughput at the paper's 123 MHz.
//! * [`resources`] — a Virtex-4-style (4-input LUT, 2 LUT + 2 FF per slice)
//!   resource estimator over datapath inventories of the three modules in
//!   Table 2.
//! * [`memory`] — exact SRAM accounting for the modeling and probability
//!   estimator memories; reproduces the paper's 3.7 KB and 4 KB figures.
//!
//! # Examples
//!
//! ```
//! use cbic_hw::divlut::DivLut;
//!
//! let lut = DivLut::new();
//! // Approximate 500 / 23 (exact: 21).
//! let q = lut.div(500, 23);
//! assert!((q - 21i32).abs() <= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod divlut;
pub mod memory;
pub mod pipeline;
pub mod resources;

#[cfg(test)]
mod proptests;
