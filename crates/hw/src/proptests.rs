//! Property-based tests for the hardware model.

use proptest::prelude::*;

use crate::divlut::{exact_div, DivLut, MAX_DIVIDEND};
use crate::pipeline::{PipelineConfig, PixelTrace};

proptest! {
    /// LUT division error is bounded relative to exact division over the
    /// full hardware input domain.
    #[test]
    fn divlut_error_bounded(sum in -1023i32..=1023, count in 1u32..=31) {
        let lut = DivLut::new();
        let got = lut.div(sum, count);
        let exact = exact_div(sum, count);
        let bound = 1 + (exact.abs() as f64 * 0.09).ceil() as i32;
        prop_assert!((got - exact).abs() <= bound,
            "{sum}/{count}: lut {got} exact {exact}");
        // Sign is always preserved (or zero).
        prop_assert!(got == 0 || (got > 0) == (sum > 0));
        // Magnitude never exceeds the (bounded) dividend.
        prop_assert!(got.abs() <= MAX_DIVIDEND);
    }

    /// LUT division is monotone in the dividend for a fixed divisor —
    /// important so error feedback cannot invert orderings badly.
    #[test]
    fn divlut_monotone_in_dividend(count in 1u32..=31) {
        let lut = DivLut::new();
        let mut prev = lut.div(0, count);
        for a in 1..=1023 {
            let q = lut.div(a, count);
            prop_assert!(q >= prev, "a={a} count={count}: {q} < {prev}");
            prev = q;
        }
    }

    /// LUT division is antitone in the divisor for a fixed dividend.
    #[test]
    fn divlut_antitone_in_divisor(sum in 0i32..=1023) {
        let lut = DivLut::new();
        let mut prev = lut.div(sum, 1);
        for c in 2..=31 {
            let q = lut.div(sum, c);
            prop_assert!(q <= prev + 1, "sum={sum} c={c}: {q} > {prev}+1");
            prev = q;
        }
    }

    /// Pipeline cycle counts decompose exactly into fill + work + row
    /// overhead for arbitrary traces.
    #[test]
    fn pipeline_cycles_decompose(
        w in 1usize..64,
        h in 1usize..64,
        dpp in 1u32..16,
        row_overhead in 0u32..4,
    ) {
        let cfg = PipelineConfig { row_overhead, ..PipelineConfig::default() };
        let trace = PixelTrace::uniform(w, h, dpp);
        let r = cfg.simulate(&trace);
        let expected = cfg.fill_latency()
            + u64::from(dpp.max(1)) * (w * h) as u64
            + u64::from(row_overhead) * h as u64;
        prop_assert_eq!(r.cycles, expected);
    }

    /// Throughput scales linearly with clock frequency.
    #[test]
    fn pipeline_throughput_scales_with_clock(mhz in 10.0f64..500.0) {
        let base = PipelineConfig::default();
        let scaled = PipelineConfig { clock_mhz: mhz, ..base };
        let t = PixelTrace::uniform(64, 64, 9);
        let a = base.simulate(&t);
        let b = scaled.simulate(&t);
        let ratio = b.mbits_per_sec / a.mbits_per_sec;
        prop_assert!((ratio - mhz / base.clock_mhz).abs() < 1e-9);
    }
}
