//! SRAM accounting for the two on-chip memories of the paper.
//!
//! These functions compute the exact storage implied by the paper's data
//! layout, and reproduce its two headline numbers:
//!
//! * modeling memory = **3.7 KBytes** (3 image lines + 512 context records
//!   + the 1 KB division ROM), and
//! * probability-estimator memory = **4 KBytes** (9 trees × 255 nodes ×
//!   one 14-bit counter each).
//!
//! The second figure is what pins down the estimator design: storing one
//! counter per *node* (with the node total inherited from the parent) is
//! the only layout that fits 9 × 256-symbol trees in 4 KB — see
//! `cbic-arith`'s `TreeModel`.

/// Parameters of the image-modeling memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelingMemory {
    /// Image width in pixels (one line buffer entry per pixel).
    pub line_width: usize,
    /// Number of buffered lines (the paper rotates 3).
    pub lines: usize,
    /// Bits per pixel.
    pub pixel_bits: usize,
    /// Number of compound contexts (the paper's 512).
    pub contexts: usize,
    /// Bits per context error sum, including sign (13 + 1).
    pub sum_bits: usize,
    /// Bits per context occurrence count (5).
    pub count_bits: usize,
    /// Division lookup table bytes (1024).
    pub div_lut_bytes: usize,
}

impl Default for ModelingMemory {
    /// The paper's configuration: 512-wide lines, 3 line buffers, 512
    /// contexts with 14-bit sums and 5-bit counts, 1 KB divider ROM.
    fn default() -> Self {
        Self {
            line_width: 512,
            lines: 3,
            pixel_bits: 8,
            contexts: 512,
            sum_bits: 14,
            count_bits: 5,
            div_lut_bytes: 1024,
        }
    }
}

impl ModelingMemory {
    /// Line-buffer bytes (`lines × width × pixel_bits / 8`).
    pub fn line_buffer_bytes(&self) -> usize {
        (self.lines * self.line_width * self.pixel_bits).div_ceil(8)
    }

    /// Context-store bytes (`contexts × (sum_bits + count_bits) / 8`).
    pub fn context_store_bytes(&self) -> usize {
        (self.contexts * (self.sum_bits + self.count_bits)).div_ceil(8)
    }

    /// Total modeling memory in bytes.
    pub fn total_bytes(&self) -> usize {
        self.line_buffer_bytes() + self.context_store_bytes() + self.div_lut_bytes
    }

    /// Total in KBytes (for comparison with the paper's "3.7 KBytes").
    pub fn total_kbytes(&self) -> f64 {
        self.total_bytes() as f64 / 1024.0
    }
}

/// The structure-of-arrays bank layout of the compound-context store —
/// the concrete split of [`ModelingMemory::context_store_bytes`] into the
/// separate BRAMs a hardware implementation instantiates, and the layout
/// `cbic_core`'s context store (and therefore its `engine`) mirrors in
/// software: one sum bank, one count bank, and the divider-output
/// (feedback) bank.
///
/// The paper stores `(sum, count)` and reads the divider combinationally;
/// the software engine instead *caches* the divider output per context
/// (written on update, read on the per-pixel hot path), which is exactly
/// the register the hardware divider drives. This type accounts for that
/// third bank so the software layout and the RTL budget stay in sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextBankLayout {
    /// Number of compound contexts (rows in every bank).
    pub contexts: usize,
    /// Bits per sum-bank cell (13 + sign in the paper).
    pub sum_bits: usize,
    /// Bits per count-bank cell (5 in the paper).
    pub count_bits: usize,
    /// Bits per feedback-bank cell: the divider quotient, bounded by the
    /// 10-bit dividend saturation plus sign.
    pub feedback_bits: usize,
}

impl Default for ContextBankLayout {
    /// The paper's operating point: 512 contexts, 14-bit sums, 5-bit
    /// counts, 11-bit (sign + 10) feedback.
    fn default() -> Self {
        Self {
            contexts: 512,
            sum_bits: 14,
            count_bits: 5,
            feedback_bits: 11,
        }
    }
}

impl ContextBankLayout {
    /// Bytes of the sum bank.
    pub fn sum_bank_bytes(&self) -> usize {
        (self.contexts * self.sum_bits).div_ceil(8)
    }

    /// Bytes of the count bank.
    pub fn count_bank_bytes(&self) -> usize {
        (self.contexts * self.count_bits).div_ceil(8)
    }

    /// Bytes of the cached-feedback (divider output) bank.
    pub fn feedback_bank_bytes(&self) -> usize {
        (self.contexts * self.feedback_bits).div_ceil(8)
    }

    /// Total bytes across the three banks.
    pub fn total_bytes(&self) -> usize {
        self.sum_bank_bytes() + self.count_bank_bytes() + self.feedback_bank_bytes()
    }

    /// The paper's two-bank subset (sum + count) — must equal
    /// [`ModelingMemory::context_store_bytes`] for the matching
    /// configuration.
    pub fn paper_store_bytes(&self) -> usize {
        (self.contexts * (self.sum_bits + self.count_bits)).div_ceil(8)
    }

    /// The paper's bit widths over `contexts` rows — how the hash-banked
    /// wide-context model scales the RTL budget: same three banks, more
    /// rows. `with_contexts(512)` is exactly [`Default`].
    pub fn with_contexts(contexts: usize) -> Self {
        Self {
            contexts,
            ..Self::default()
        }
    }

    /// The **host** (software) realization of the same banks over
    /// `contexts` rows: the engine's structure-of-arrays context store
    /// holds each sum in an `i32`, each count in a `u8`, and each cached
    /// feedback in an `i16` — 32 + 8 + 16 bits per context, byte-aligned
    /// per bank. Its [`total_bytes`](Self::total_bytes) equals the bytes
    /// the store actually allocates (asserted by the cross-crate test in
    /// `cbic-core`), while the paper-width layouts bound the RTL budget.
    pub fn host_soa(contexts: usize) -> Self {
        Self {
            contexts,
            sum_bits: 32,
            count_bits: 8,
            feedback_bits: 16,
        }
    }
}

/// Parameters of the probability-estimator memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EstimatorMemory {
    /// Number of trees (8 dynamic + 1 static in the paper).
    pub trees: usize,
    /// Alphabet bits per tree (8 → 255 internal nodes).
    pub symbol_bits: usize,
    /// Frequency counter width (the paper chooses 14 in Fig. 4).
    pub counter_bits: usize,
}

impl Default for EstimatorMemory {
    /// The paper's configuration: 9 trees over an 8-bit alphabet with
    /// 14-bit counters.
    fn default() -> Self {
        Self {
            trees: 9,
            symbol_bits: 8,
            counter_bits: 14,
        }
    }
}

impl EstimatorMemory {
    /// Internal nodes per tree (`2^symbol_bits − 1`).
    pub fn nodes_per_tree(&self) -> usize {
        (1 << self.symbol_bits) - 1
    }

    /// Total estimator memory in bytes.
    pub fn total_bytes(&self) -> usize {
        (self.trees * self.nodes_per_tree() * self.counter_bits).div_ceil(8)
    }

    /// Total in KBytes (for comparison with the paper's "4 KBytes").
    pub fn total_kbytes(&self) -> f64 {
        self.total_bytes() as f64 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modeling_memory_matches_paper() {
        let m = ModelingMemory::default();
        assert_eq!(m.line_buffer_bytes(), 1536);
        assert_eq!(m.context_store_bytes(), 1216);
        assert_eq!(m.total_bytes(), 3776);
        // The paper reports "3.7KBytes".
        let kb = m.total_kbytes();
        assert!(
            (3.65..3.75).contains(&kb),
            "modeling memory {kb} KB != paper's 3.7 KB"
        );
    }

    #[test]
    fn estimator_memory_matches_paper() {
        let m = EstimatorMemory::default();
        assert_eq!(m.nodes_per_tree(), 255);
        // The paper reports "4KBytes".
        let kb = m.total_kbytes();
        assert!(
            (3.8..4.1).contains(&kb),
            "estimator memory {kb} KB != paper's 4 KB"
        );
    }

    #[test]
    fn storing_count_pairs_would_not_fit() {
        // Sanity check of the design argument: two counters per node
        // doubles the memory and misses the paper's figure.
        let double = EstimatorMemory {
            counter_bits: 28,
            ..EstimatorMemory::default()
        };
        assert!(double.total_kbytes() > 7.5);
    }

    #[test]
    fn bank_layout_agrees_with_modeling_memory() {
        let banks = ContextBankLayout::default();
        let m = ModelingMemory::default();
        // The paper's two banks are exactly the modeling-memory figure...
        assert_eq!(banks.paper_store_bytes(), m.context_store_bytes());
        // ...and the cached-feedback bank adds 704 bytes on top.
        assert_eq!(banks.feedback_bank_bytes(), 704);
        assert_eq!(
            banks.total_bytes(),
            banks.paper_store_bytes() + banks.feedback_bank_bytes()
        );
        // The feedback width must hold the divider's saturated quotient
        // (±1023): sign + 10 bits.
        assert!(banks.feedback_bits >= 11);
    }

    #[test]
    fn wide_bank_layouts_scale_rows_not_widths() {
        assert_eq!(
            ContextBankLayout::with_contexts(512),
            ContextBankLayout::default()
        );
        // The wide model's default operating point: 2048 hash banks at the
        // paper's 30 bits/context is exactly 4x the classic 1920-byte
        // budget — the memory ceiling the ablation harness reports against.
        let classic = ContextBankLayout::default().total_bytes();
        assert_eq!(classic, 1920);
        let wide = ContextBankLayout::with_contexts(2048).total_bytes();
        assert_eq!(wide, 4 * classic);
        // The host SoA realization widens each cell to its machine type.
        let host = ContextBankLayout::host_soa(512);
        assert_eq!(host.total_bytes(), 512 * (4 + 1 + 2));
    }

    #[test]
    fn wider_images_grow_line_buffers_only() {
        let m = ModelingMemory {
            line_width: 1024,
            ..ModelingMemory::default()
        };
        assert_eq!(m.line_buffer_bytes(), 3072);
        assert_eq!(m.context_store_bytes(), 1216);
    }

    #[test]
    fn fig4_sweep_memory_scales_with_counter_bits() {
        for (bits, expect_kb) in [(10, 2.8), (12, 3.4), (14, 4.0), (16, 4.5)] {
            let m = EstimatorMemory {
                counter_bits: bits,
                ..EstimatorMemory::default()
            };
            assert!(
                (m.total_kbytes() - expect_kb).abs() < 0.3,
                "{bits} bits -> {} KB",
                m.total_kbytes()
            );
        }
    }
}
