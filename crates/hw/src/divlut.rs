//! The paper's 1 KByte lookup-table divider.
//!
//! The error-feedback stage needs `ē = sum / count` per pixel, with the
//! dividend bounded to 10 bits (the paper: sums above 1023 occur < 0.001%
//! of the time and do not reflect context behaviour) and the 5-bit divisor
//! reduced to its most significant bits, "with the dividend being rescaled
//! accordingly to maintain the same result". The paper gives the table size
//! — 2 × 512 = 1024 bytes — but not the exact layout, so we reconstruct a
//! mantissa-normalized divider with exactly that footprint:
//!
//! * |sum| is normalized to a **7-bit mantissa** `am ∈ 64..128` with
//!   exponent `ea` (left/right shift only);
//! * count is normalized to a **4-bit mantissa** `cm ∈ 8..16` with
//!   exponent `ec` (counts ≤ 15 are exact; counts 16..31 lose at most the
//!   lowest bit);
//! * the ROM is indexed by `(am - 64, cm - 8)` — 6 + 3 = 9 bits, **512
//!   entries of 16 bits = 1 KByte** — and stores
//!   `floor(am · 2¹⁰ / cm)`;
//! * the quotient is recovered with one barrel shift:
//!   `q = rom[i] · 2^(ea − ec − 10)`.
//!
//! Worst-case relative error is bounded by the two mantissa truncations
//! (1/64 and 1/17) plus one unit of final truncation — property-tested in
//! this crate, and shown in ablation A2 to change the compressed bit rate
//! by well under 0.01 bpp.

/// Largest dividend magnitude the divider accepts (the paper's 10-bit bound).
pub const MAX_DIVIDEND: i32 = 1023;

/// Largest divisor the divider accepts (the paper's 5-bit count).
pub const MAX_DIVISOR: u32 = 31;

const ROM_SHIFT: u32 = 10;

/// The 512-entry × 16-bit division ROM plus its addressing logic.
///
/// # Examples
///
/// ```
/// use cbic_hw::divlut::DivLut;
///
/// let lut = DivLut::new();
/// assert_eq!(lut.div(100, 10), 10);
/// assert_eq!(lut.div(-100, 10), -10);
/// assert_eq!(lut.table_bytes(), 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivLut {
    rom: Vec<u16>,
}

impl Default for DivLut {
    fn default() -> Self {
        Self::new()
    }
}

impl DivLut {
    /// Builds the ROM (what synthesis would bake into block RAM).
    pub fn new() -> Self {
        let mut rom = Vec::with_capacity(512);
        for am in 64u32..128 {
            for cm in 8u32..16 {
                rom.push(((am << ROM_SHIFT) / cm) as u16);
            }
        }
        debug_assert_eq!(rom.len(), 512);
        Self { rom }
    }

    /// ROM footprint in bytes — the paper's "lookup table of 1KByte".
    pub fn table_bytes(&self) -> usize {
        self.rom.len() * 2
    }

    /// Raw ROM contents (for the resource estimator and tests).
    pub fn rom(&self) -> &[u16] {
        &self.rom
    }

    /// Approximates `sum / count` (truncated towards zero).
    ///
    /// Saturates the dividend at ±[`MAX_DIVIDEND`] first, exactly as the
    /// hardware bounds its 13-bit context sums to 10 bits before division.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or exceeds [`MAX_DIVISOR`].
    #[inline]
    pub fn div(&self, sum: i32, count: u32) -> i32 {
        assert!(
            (1..=MAX_DIVISOR).contains(&count),
            "divisor {count} outside 1..=31"
        );
        let neg = sum < 0;
        let a = sum.unsigned_abs().min(MAX_DIVIDEND as u32);
        if a == 0 {
            return 0;
        }
        // Normalize |sum| to am ∈ [64, 128) with exponent ea.
        let sa = 31 - a.leading_zeros() as i32; // MSB position, 0..=9
        let ea = sa - 6;
        let am = if ea >= 0 { a >> ea } else { a << -ea };
        debug_assert!((64..128).contains(&am));
        // Normalize count to cm ∈ [8, 16) with exponent ec.
        let sc = 31 - count.leading_zeros() as i32; // 0..=4
        let ec = sc - 3;
        let cm = if ec >= 0 { count >> ec } else { count << -ec };
        debug_assert!((8..16).contains(&cm));

        let m = u32::from(self.rom[((am - 64) << 3 | (cm - 8)) as usize]);
        let shift = ea - ec - ROM_SHIFT as i32;
        let q = if shift >= 0 {
            (m << shift) as i32
        } else {
            (m >> -shift) as i32
        };
        if neg {
            -q
        } else {
            q
        }
    }
}

/// Exact reference division, truncated towards zero, with the same 10-bit
/// dividend bound as [`DivLut::div`]. This is what a full hardware divider
/// would compute; ablation A2 compares the two inside the codec.
///
/// # Panics
///
/// Panics if `count` is zero or exceeds [`MAX_DIVISOR`].
#[inline]
pub fn exact_div(sum: i32, count: u32) -> i32 {
    assert!(
        (1..=MAX_DIVISOR).contains(&count),
        "divisor {count} outside 1..=31"
    );
    let neg = sum < 0;
    let a = sum.unsigned_abs().min(MAX_DIVIDEND as u32);
    let q = (a / count) as i32;
    if neg {
        -q
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rom_is_exactly_one_kbyte() {
        let lut = DivLut::new();
        assert_eq!(lut.table_bytes(), 1024);
        assert_eq!(lut.rom().len(), 512);
    }

    #[test]
    fn zero_dividend_is_zero() {
        let lut = DivLut::new();
        for c in 1..=MAX_DIVISOR {
            assert_eq!(lut.div(0, c), 0);
        }
    }

    #[test]
    fn small_inputs_are_exact() {
        // Dividends < 128 and divisors ≤ 15 are represented exactly; only
        // the final shift truncation can differ from floor division.
        let lut = DivLut::new();
        for a in 0..=127 {
            for c in 1..=15u32 {
                let got = lut.div(a, c);
                let exact = a / c as i32;
                assert!(
                    (got - exact).abs() <= 1,
                    "{a}/{c}: lut {got}, exact {exact}"
                );
            }
        }
    }

    #[test]
    fn sign_symmetry() {
        let lut = DivLut::new();
        for a in [1, 17, 100, 511, 1023] {
            for c in [1u32, 3, 7, 15, 31] {
                assert_eq!(lut.div(-a, c), -lut.div(a, c));
            }
        }
    }

    #[test]
    fn exhaustive_error_bound() {
        let lut = DivLut::new();
        let mut worst_abs = 0i32;
        for a in -1023i32..=1023 {
            for c in 1..=31u32 {
                let got = lut.div(a, c);
                let exact = exact_div(a, c);
                let err = (got - exact).abs();
                // Relative bound from the two mantissa truncations plus
                // final shift truncation.
                let bound = 1 + (exact.abs() as f64 * 0.09).ceil() as i32;
                assert!(
                    err <= bound,
                    "{a}/{c}: lut {got}, exact {exact}, err {err} > bound {bound}"
                );
                worst_abs = worst_abs.max(err);
            }
        }
        // The divider must be usefully tight overall.
        assert!(worst_abs <= 40, "worst absolute error {worst_abs}");
    }

    #[test]
    fn dividend_saturates_at_ten_bits() {
        let lut = DivLut::new();
        assert_eq!(lut.div(5000, 1), lut.div(1023, 1));
        assert_eq!(lut.div(-5000, 1), -lut.div(1023, 1));
        assert_eq!(exact_div(5000, 5), 1023 / 5);
    }

    #[test]
    #[should_panic(expected = "outside 1..=31")]
    fn zero_divisor_panics() {
        DivLut::new().div(10, 0);
    }

    #[test]
    #[should_panic(expected = "outside 1..=31")]
    fn oversized_divisor_panics() {
        DivLut::new().div(10, 32);
    }

    #[test]
    fn division_by_one_is_near_identity() {
        let lut = DivLut::new();
        for a in 0..=1023 {
            let got = lut.div(a, 1);
            assert!(
                (got - a).abs() <= i32::from(a > 127) * (a / 64 + 1),
                "{a} -> {got}"
            );
        }
    }
}
