//! JPEG-LS coding parameters (ITU-T T.87 Annex C defaults, parameterized
//! over the 1–16-bit sample depth).

use std::fmt;

/// Errors returned by the container API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum JpeglsError {
    /// Stream does not start with the `CBLS` magic.
    BadMagic,
    /// Stream shorter than a header.
    Truncated,
    /// A header field is invalid.
    InvalidHeader(String),
}

impl fmt::Display for JpeglsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "missing CBLS magic"),
            Self::Truncated => write!(f, "truncated stream"),
            Self::InvalidHeader(m) => write!(f, "invalid header: {m}"),
        }
    }
}

impl std::error::Error for JpeglsError {}

/// JPEG-LS parameters. The defaults are the T.87 Annex C values for 8-bit
/// samples: `T1=3, T2=7, T3=21, RESET=64, NEAR=0` (lossless). For other
/// depths, [`JpeglsConfig::for_depth`] derives the standard's scaled
/// default thresholds (C.2.4.1.1.1), so 12/16-bit medical imagery gets a
/// properly calibrated gradient quantizer.
///
/// # Examples
///
/// ```
/// use cbic_jpegls::JpeglsConfig;
///
/// let lossless = JpeglsConfig::default();
/// assert_eq!(lossless.near, 0);
/// assert_eq!(lossless.range(), 256);
/// assert_eq!(lossless.limit(), 32);
///
/// let deep = JpeglsConfig::for_depth(16, 0);
/// assert_eq!(deep.maxval(), 65535);
/// assert_eq!(deep.qbpp(), 16);
/// assert_eq!(deep.limit(), 64);
/// assert!(deep.t3 > deep.t2 && deep.t2 > deep.t1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JpeglsConfig {
    /// Near-lossless bound (0 = lossless).
    pub near: u8,
    /// Sample bit depth (`1..=16`; `MAXVAL = 2^bit_depth − 1`).
    pub bit_depth: u8,
    /// First gradient quantizer threshold.
    pub t1: i32,
    /// Second gradient quantizer threshold.
    pub t2: i32,
    /// Third gradient quantizer threshold.
    pub t3: i32,
    /// Context halving interval.
    pub reset: u32,
}

impl Default for JpeglsConfig {
    fn default() -> Self {
        Self {
            near: 0,
            bit_depth: 8,
            t1: 3,
            t2: 7,
            t3: 21,
            reset: 64,
        }
    }
}

impl JpeglsConfig {
    /// The default operating point for a sample depth: the T.87
    /// C.2.4.1.1.1 depth-scaled default thresholds with `RESET = 64`. At
    /// `bit_depth = 8, near = 0` this is exactly [`Self::default`].
    ///
    /// Deviation from T.87: the thresholds depend **only on the depth**,
    /// never on `NEAR` (whose dead zone the gradient quantizer applies
    /// separately). That makes the `(depth, NEAR)` pair a container
    /// records sufficient to reconstruct the whole configuration — 8-bit
    /// near-lossless streams stay compatible with every stream this crate
    /// has ever written — and `for_depth` total: no `NEAR` value can make
    /// the threshold ladder collapse.
    ///
    /// # Panics
    ///
    /// Panics if `bit_depth` is outside `1..=16`.
    pub fn for_depth(bit_depth: u8, near: u8) -> Self {
        assert!(
            (1..=16).contains(&bit_depth),
            "bit depth {bit_depth} outside 1..=16"
        );
        let maxval = i32::from(cbic_image::max_val_for(bit_depth));
        let (t1, t2, t3) = if maxval >= 128 {
            let factor = (maxval.min(4095) + 128) / 256;
            // T.87 writes FACTOR*(3-2); the (3-2) factor is 1.
            let t1 = (factor + 2).min(maxval);
            let t2 = (factor * (7 - 3) + 3).clamp(t1, maxval);
            let t3 = (factor * (21 - 4) + 4).clamp(t2, maxval);
            (t1, t2, t3)
        } else {
            // Low-depth branch: shrink the 8-bit defaults towards the
            // reduced intensity range, preserving ordering where the
            // range allows it (an empty quantizer bucket is harmless —
            // both sides derive the same ladder).
            let factor = 256 / (maxval + 1);
            let t1 = (3 / factor).max(2).min(maxval).max(1);
            let t2 = (7 / factor).max(3).clamp(t1, maxval);
            let t3 = (21 / factor).max(4).clamp(t2, maxval);
            (t1, t2, t3)
        };
        Self {
            near,
            bit_depth,
            t1,
            t2,
            t3,
            reset: 64,
        }
    }

    /// Maximum sample value, `2^bit_depth − 1`.
    pub fn maxval(&self) -> i32 {
        i32::from(cbic_image::max_val_for(self.bit_depth))
    }

    /// `RANGE = floor((MAXVAL + 2*NEAR) / (2*NEAR + 1)) + 1` (A.2.1).
    pub fn range(&self) -> i32 {
        (self.maxval() + 2 * i32::from(self.near)) / (2 * i32::from(self.near) + 1) + 1
    }

    /// `qbpp = ceil(log2(RANGE))`.
    pub fn qbpp(&self) -> u32 {
        let mut q = 1;
        while (1 << q) < self.range() {
            q += 1;
        }
        q
    }

    /// `bpp = max(2, ceil(log2(MAXVAL + 1)))` (A.2.1).
    pub fn bpp(&self) -> u32 {
        u32::from(self.bit_depth).max(2)
    }

    /// `LIMIT = 2 * (bpp + max(8, bpp))` — 32 for 8-bit samples, 64 for
    /// 16-bit ones.
    pub fn limit(&self) -> u32 {
        2 * (self.bpp() + self.bpp().max(8))
    }

    /// Initial value of the `A` accumulators:
    /// `max(2, (RANGE + 32) / 64)` (A.2.1).
    pub fn a_init(&self) -> u32 {
        ((self.range() + 32) / 64).max(2) as u32
    }
}

/// The T.87 run-length code order table `J` (A.2.1).
pub const J: [u32; 32] = [
    0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 9, 10, 11, 12, 13,
    14, 15,
];

/// Bias-correction clamp bounds (A.2.1).
pub const MIN_C: i32 = -128;
/// Upper bias-correction clamp bound.
pub const MAX_C: i32 = 127;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_derived_parameters() {
        let c = JpeglsConfig::default();
        assert_eq!(c.maxval(), 255);
        assert_eq!(c.range(), 256);
        assert_eq!(c.qbpp(), 8);
        assert_eq!(c.limit(), 32);
        assert_eq!(c.a_init(), 4);
    }

    #[test]
    fn for_depth_eight_is_the_default() {
        assert_eq!(JpeglsConfig::for_depth(8, 0), JpeglsConfig::default());
    }

    #[test]
    fn for_depth_scales_thresholds_with_the_range() {
        let c12 = JpeglsConfig::for_depth(12, 0);
        assert_eq!(c12.maxval(), 4095);
        // FACTOR = (4095 + 128) / 256 = 16.
        assert_eq!((c12.t1, c12.t2, c12.t3), (18, 67, 276));
        let c16 = JpeglsConfig::for_depth(16, 0);
        assert_eq!(c16.maxval(), 65535);
        // FACTOR saturates at (4095 + 128) / 256 = 16 per the standard.
        assert_eq!((c16.t1, c16.t2, c16.t3), (18, 67, 276));
        assert_eq!(c16.qbpp(), 16);
        assert_eq!(c16.limit(), 64);
    }

    #[test]
    fn for_depth_low_depths_stay_ordered() {
        for depth in 1..=7u8 {
            let c = JpeglsConfig::for_depth(depth, 0);
            assert!(c.t1 >= 1 && c.t1 <= c.t2 && c.t2 <= c.t3, "{c:?}");
            assert!(c.t3 <= c.maxval().max(4), "{c:?}");
        }
    }

    #[test]
    fn near_lossless_shrinks_range() {
        let c = JpeglsConfig {
            near: 2,
            ..JpeglsConfig::default()
        };
        assert_eq!(c.range(), (255 + 4) / 5 + 1);
        assert!(c.qbpp() <= 8);
    }

    #[test]
    fn thresholds_ignore_near_so_containers_self_describe() {
        // The (depth, NEAR) pair a container records must reconstruct the
        // configuration exactly: thresholds are depth-only.
        let c = JpeglsConfig::for_depth(8, 2);
        assert_eq!((c.t1, c.t2, c.t3), (3, 7, 21));
        assert_eq!(c.near, 2);
        assert_eq!(
            JpeglsConfig::for_depth(12, 5).t1,
            JpeglsConfig::for_depth(12, 0).t1
        );
    }

    #[test]
    fn for_depth_is_total_over_extreme_near_values() {
        // No (depth, NEAR) combination may panic: a hostile container can
        // carry any NEAR byte.
        for depth in 1..=16u8 {
            for near in [0u8, 1, 2, 127, 255] {
                let c = JpeglsConfig::for_depth(depth, near);
                assert!(c.t1 >= 1 && c.t1 <= c.t2 && c.t2 <= c.t3, "{c:?}");
            }
        }
    }

    #[test]
    fn j_table_matches_standard() {
        assert_eq!(J.len(), 32);
        assert_eq!(J[0], 0);
        assert_eq!(J[15], 3);
        assert_eq!(J[31], 15);
        // Non-decreasing.
        assert!(J.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn error_display() {
        assert!(JpeglsError::BadMagic.to_string().contains("magic"));
    }
}
