//! JPEG-LS coding parameters (ITU-T T.87 Annex C defaults for 8-bit data).

use std::fmt;

/// Errors returned by the container API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum JpeglsError {
    /// Stream does not start with the `CBLS` magic.
    BadMagic,
    /// Stream shorter than a header.
    Truncated,
    /// A header field is invalid.
    InvalidHeader(String),
}

impl fmt::Display for JpeglsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "missing CBLS magic"),
            Self::Truncated => write!(f, "truncated stream"),
            Self::InvalidHeader(m) => write!(f, "invalid header: {m}"),
        }
    }
}

impl std::error::Error for JpeglsError {}

/// JPEG-LS parameters. The defaults are the T.87 Annex C values for 8-bit
/// samples: `T1=3, T2=7, T3=21, RESET=64, NEAR=0` (lossless).
///
/// # Examples
///
/// ```
/// use cbic_jpegls::JpeglsConfig;
///
/// let lossless = JpeglsConfig::default();
/// assert_eq!(lossless.near, 0);
/// assert_eq!(lossless.range(), 256);
/// assert_eq!(lossless.limit(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JpeglsConfig {
    /// Near-lossless bound (0 = lossless).
    pub near: u8,
    /// First gradient quantizer threshold.
    pub t1: i32,
    /// Second gradient quantizer threshold.
    pub t2: i32,
    /// Third gradient quantizer threshold.
    pub t3: i32,
    /// Context halving interval.
    pub reset: u32,
}

impl Default for JpeglsConfig {
    fn default() -> Self {
        Self {
            near: 0,
            t1: 3,
            t2: 7,
            t3: 21,
            reset: 64,
        }
    }
}

/// Maximum sample value (8-bit data).
pub const MAXVAL: i32 = 255;

impl JpeglsConfig {
    /// `RANGE = floor((MAXVAL + 2*NEAR) / (2*NEAR + 1)) + 1` (A.2.1).
    pub fn range(&self) -> i32 {
        (MAXVAL + 2 * i32::from(self.near)) / (2 * i32::from(self.near) + 1) + 1
    }

    /// `qbpp = ceil(log2(RANGE))`.
    pub fn qbpp(&self) -> u32 {
        let mut q = 1;
        while (1 << q) < self.range() {
            q += 1;
        }
        q
    }

    /// `LIMIT = 2 * (bpp + max(8, bpp))` = 32 for 8-bit samples.
    pub fn limit(&self) -> u32 {
        32
    }

    /// Initial value of the `A` accumulators:
    /// `max(2, (RANGE + 32) / 64)` (A.2.1).
    pub fn a_init(&self) -> u32 {
        ((self.range() + 32) / 64).max(2) as u32
    }
}

/// The T.87 run-length code order table `J` (A.2.1).
pub const J: [u32; 32] = [
    0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 9, 10, 11, 12, 13,
    14, 15,
];

/// Bias-correction clamp bounds (A.2.1).
pub const MIN_C: i32 = -128;
/// Upper bias-correction clamp bound.
pub const MAX_C: i32 = 127;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_derived_parameters() {
        let c = JpeglsConfig::default();
        assert_eq!(c.range(), 256);
        assert_eq!(c.qbpp(), 8);
        assert_eq!(c.limit(), 32);
        assert_eq!(c.a_init(), 4);
    }

    #[test]
    fn near_lossless_shrinks_range() {
        let c = JpeglsConfig {
            near: 2,
            ..JpeglsConfig::default()
        };
        assert_eq!(c.range(), (255 + 4) / 5 + 1);
        assert!(c.qbpp() <= 8);
    }

    #[test]
    fn j_table_matches_standard() {
        assert_eq!(J.len(), 32);
        assert_eq!(J[0], 0);
        assert_eq!(J[15], 3);
        assert_eq!(J[31], 15);
        // Non-decreasing.
        assert!(J.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn error_display() {
        assert!(JpeglsError::BadMagic.to_string().contains("magic"));
    }
}
