//! The LOCO-I / JPEG-LS coding flow (ITU-T T.87 Annexes A.2–A.7).
//!
//! Encoder and decoder share every model rule (context quantization, MED
//! prediction, bias correction, run-length state machine); they differ only
//! in the direction of the Golomb-coded residual. Both sides operate on
//! *reconstructed* samples, which makes the near-lossless mode (`NEAR > 0`)
//! work with the identical code path — for `NEAR = 0` the reconstruction
//! equals the source and the codec is lossless.

use crate::params::{JpeglsConfig, J, MAX_C, MIN_C};
use cbic_bitio::{BitReader, BitWriter};
use cbic_image::{Image, ImageView};
use cbic_rice::{decode_limited, encode_limited};

/// Number of regular (gradient) contexts after sign folding.
const REGULAR_CONTEXTS: usize = 364;
/// Run-interruption contexts: `RItype` 0 and 1.
const RI0: usize = REGULAR_CONTEXTS;
const CONTEXTS: usize = REGULAR_CONTEXTS + 2;

/// Statistics accumulated while encoding one image.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EncodeStats {
    /// Pixels coded.
    pub pixels: u64,
    /// Payload bits produced.
    pub payload_bits: u64,
    /// Pixels absorbed by run mode.
    pub run_pixels: u64,
    /// Run segments terminated by an interruption sample.
    pub run_interruptions: u64,
}

impl EncodeStats {
    /// Compressed bit rate in bits per pixel.
    pub fn bits_per_pixel(&self) -> f64 {
        if self.pixels == 0 {
            0.0
        } else {
            self.payload_bits as f64 / self.pixels as f64
        }
    }
}

/// The adaptive state shared by encoder and decoder.
struct State {
    cfg: JpeglsConfig,
    maxval: i32,
    range: i32,
    qbpp: u32,
    limit: u32,
    near: i32,
    a: [u32; CONTEXTS],
    b: [i32; CONTEXTS],
    c: [i32; CONTEXTS],
    n: [u32; CONTEXTS],
    /// Negative-error counters of the two run-interruption contexts.
    nn: [u32; 2],
    run_index: usize,
}

impl State {
    fn new(cfg: &JpeglsConfig) -> Self {
        let a_init = cfg.a_init();
        Self {
            cfg: *cfg,
            maxval: cfg.maxval(),
            range: cfg.range(),
            qbpp: cfg.qbpp(),
            limit: cfg.limit(),
            near: i32::from(cfg.near),
            a: [a_init; CONTEXTS],
            b: [0; CONTEXTS],
            c: [0; CONTEXTS],
            n: [1; CONTEXTS],
            nn: [0; 2],
            run_index: 0,
        }
    }

    /// Gradient quantizer (A.3.3) with the NEAR dead zone.
    fn quantize_gradient(&self, g: i32) -> i32 {
        let c = &self.cfg;
        if g <= -c.t3 {
            -4
        } else if g <= -c.t2 {
            -3
        } else if g <= -c.t1 {
            -2
        } else if g < -self.near {
            -1
        } else if g <= self.near {
            0
        } else if g < c.t1 {
            1
        } else if g < c.t2 {
            2
        } else if g < c.t3 {
            3
        } else {
            4
        }
    }

    /// Dense context index + sign from the quantized gradient triple.
    /// `(0,0,0)` is run mode and never reaches here.
    fn context(&self, mut q1: i32, mut q2: i32, mut q3: i32) -> (usize, i32) {
        debug_assert!(!(q1 == 0 && q2 == 0 && q3 == 0));
        let sign = if q1 < 0 || (q1 == 0 && (q2 < 0 || (q2 == 0 && q3 < 0))) {
            q1 = -q1;
            q2 = -q2;
            q3 = -q3;
            -1
        } else {
            1
        };
        let idx = if q1 == 0 && q2 == 0 {
            (q3 - 1) as usize // 0..=3
        } else if q1 == 0 {
            4 + ((q2 - 1) * 9 + (q3 + 4)) as usize // 4..=39
        } else {
            40 + ((q1 - 1) * 81 + (q2 + 4) * 9 + (q3 + 4)) as usize // 40..=363
        };
        debug_assert!(idx < REGULAR_CONTEXTS);
        (idx, sign)
    }

    /// MED (median edge detector) prediction (A.4.2).
    fn med(a: i32, b: i32, c: i32) -> i32 {
        if c >= a.max(b) {
            a.min(b)
        } else if c <= a.min(b) {
            a.max(b)
        } else {
            a + b - c
        }
    }

    /// Golomb parameter for a regular context (A.5.1).
    fn golomb_k(&self, q: usize) -> u32 {
        let mut k = 0;
        while (self.n[q] << k) < self.a[q] && k < 24 {
            k += 1;
        }
        k
    }

    /// NEAR quantization of a raw error (A.4.4).
    fn quantize_error(&self, e: i32) -> i32 {
        if self.near == 0 {
            e
        } else if e > 0 {
            (self.near + e) / (2 * self.near + 1)
        } else {
            -((self.near - e) / (2 * self.near + 1))
        }
    }

    /// Modulo-RANGE reduction of a quantized error (A.4.5).
    fn mod_range(&self, mut e: i32) -> i32 {
        if e < 0 {
            e += self.range;
        }
        if e >= (self.range + 1) / 2 {
            e -= self.range;
        }
        e
    }

    /// Reconstruction shared by both sides (A.4.4 / F.2): prediction plus
    /// de-quantized error, fixed back into the sample range.
    fn reconstruct(&self, px: i32, sign: i32, errval: i32) -> i32 {
        let mut rx = px + sign * errval * (2 * self.near + 1);
        if rx < -self.near {
            rx += self.range * (2 * self.near + 1);
        } else if rx > self.maxval + self.near {
            rx -= self.range * (2 * self.near + 1);
        }
        rx.clamp(0, self.maxval)
    }

    /// A/B/N update + bias computation of a regular context (A.6).
    fn update_regular(&mut self, q: usize, errval: i32) {
        self.b[q] += errval * (2 * self.near + 1);
        self.a[q] += errval.unsigned_abs();
        if self.n[q] == self.cfg.reset {
            self.a[q] >>= 1;
            self.b[q] = if self.b[q] >= 0 {
                self.b[q] >> 1
            } else {
                -((1 - self.b[q]) >> 1)
            };
            self.n[q] >>= 1;
        }
        self.n[q] += 1;
        let n = self.n[q] as i32;
        if self.b[q] <= -n {
            self.b[q] += n;
            if self.c[q] > MIN_C {
                self.c[q] -= 1;
            }
            if self.b[q] <= -n {
                self.b[q] = -n + 1;
            }
        } else if self.b[q] > 0 {
            self.b[q] -= n;
            if self.c[q] < MAX_C {
                self.c[q] += 1;
            }
            if self.b[q] > 0 {
                self.b[q] = 0;
            }
        }
    }

    /// Golomb parameter of a run-interruption context (A.7.2.1).
    fn interruption_k(&self, ritype: usize) -> u32 {
        let q = RI0 + ritype;
        let temp = if ritype == 1 {
            self.a[q] + (self.n[q] >> 1)
        } else {
            self.a[q]
        };
        let mut k = 0;
        while (self.n[q] << k) < temp && k < 24 {
            k += 1;
        }
        k
    }

    /// The sign/`map` predicate of A.7.2.2 (`true` when a *positive* error
    /// takes `map = 1`); its negation governs negative errors.
    fn interruption_cond_pos(&self, ritype: usize, k: u32) -> bool {
        k == 0 && 2 * self.nn[ritype] < self.n[RI0 + ritype]
    }

    /// Statistics update of a run-interruption context (A.7.2.2).
    fn update_interruption(&mut self, ritype: usize, errval: i32, emerr: u32) {
        let q = RI0 + ritype;
        if errval < 0 {
            self.nn[ritype] += 1;
        }
        self.a[q] += (emerr + 1 - ritype as u32) >> 1;
        if self.n[q] == self.cfg.reset {
            self.a[q] >>= 1;
            self.n[q] >>= 1;
            self.nn[ritype] >>= 1;
        }
        self.n[q] += 1;
    }
}

/// Encodes the pixels of `img`, returning the raw payload and statistics.
///
/// The configuration's `bit_depth` must match the view's.
pub fn encode_raw(img: ImageView<'_>, cfg: &JpeglsConfig) -> (Vec<u8>, EncodeStats) {
    assert_eq!(
        cfg.bit_depth,
        img.bit_depth(),
        "configuration depth must match the image"
    );
    let (width, height) = img.dimensions();
    let mut st = State::new(cfg);
    let mut w = BitWriter::new();
    let mut stats = EncodeStats {
        pixels: (width * height) as u64,
        ..EncodeStats::default()
    };

    let mut prev = vec![0i32; width + 2];
    let mut cur = vec![0i32; width + 2];

    for y in 0..height {
        let src = img.row(y);
        cur[0] = prev[1];
        prev[width + 1] = prev[width];
        let mut x = 0usize;
        while x < width {
            let idx = x + 1;
            let ra = cur[idx - 1];
            let rb = prev[idx];
            let rc = prev[idx - 1];
            let rd = prev[idx + 1];
            let q1 = st.quantize_gradient(rd - rb);
            let q2 = st.quantize_gradient(rb - rc);
            let q3 = st.quantize_gradient(rc - ra);

            if q1 == 0 && q2 == 0 && q3 == 0 {
                // ---- Run mode (A.7) ----
                let runval = ra;
                let mut runcnt = 0usize;
                while x + runcnt < width && (i32::from(src[x + runcnt]) - runval).abs() <= st.near {
                    cur[x + runcnt + 1] = runval;
                    runcnt += 1;
                }
                stats.run_pixels += runcnt as u64;
                let eol = x + runcnt == width;
                let mut rc_rem = runcnt;
                while rc_rem >= (1usize << J[st.run_index]) {
                    w.write_bit(true);
                    rc_rem -= 1usize << J[st.run_index];
                    if st.run_index < 31 {
                        st.run_index += 1;
                    }
                }
                if eol {
                    if rc_rem > 0 {
                        w.write_bit(true);
                    }
                    x += runcnt;
                    continue;
                }
                w.write_bit(false);
                w.write_bits(rc_rem as u64, J[st.run_index]);
                x += runcnt;
                stats.run_interruptions += 1;

                // ---- Run interruption sample (A.7.2) ----
                let idx = x + 1;
                let ra = runval;
                let rb = prev[idx];
                let ritype = usize::from((ra - rb).abs() <= st.near);
                let px = if ritype == 1 { ra } else { rb };
                let mut errval = i32::from(src[x]) - px;
                let flip = ritype == 0 && ra > rb;
                if flip {
                    errval = -errval;
                }
                let sign = if flip { -1 } else { 1 };
                let errq = st.mod_range(st.quantize_error(errval));
                cur[idx] = st.reconstruct(px, sign, errq);
                let k = st.interruption_k(ritype);
                let cond_pos = st.interruption_cond_pos(ritype, k);
                let map = if errq == 0 {
                    false
                } else if errq > 0 {
                    cond_pos
                } else {
                    !cond_pos
                };
                let emerr = (2 * errq.unsigned_abs()) as i32 - ritype as i32 - i32::from(map);
                debug_assert!(emerr >= 0, "emerr {emerr}");
                encode_limited(
                    &mut w,
                    emerr as u32,
                    k,
                    st.limit - J[st.run_index] - 1,
                    st.qbpp,
                );
                st.update_interruption(ritype, errq, emerr as u32);
                if st.run_index > 0 {
                    st.run_index -= 1;
                }
                x += 1;
            } else {
                // ---- Regular mode (A.4–A.6) ----
                let (q, sign) = st.context(q1, q2, q3);
                let px = (State::med(ra, rb, rc) + sign * st.c[q]).clamp(0, st.maxval);
                let raw = (i32::from(src[x]) - px) * sign;
                let errq = st.quantize_error(raw);
                cur[idx] = st.reconstruct(px, sign, errq);
                let errval = st.mod_range(errq);
                let k = st.golomb_k(q);
                let merr = if st.near == 0 && k == 0 && 2 * st.b[q] <= -(st.n[q] as i32) {
                    if errval >= 0 {
                        2 * errval + 1
                    } else {
                        -2 * (errval + 1)
                    }
                } else if errval >= 0 {
                    2 * errval
                } else {
                    -2 * errval - 1
                };
                encode_limited(&mut w, merr as u32, k, st.limit, st.qbpp);
                st.update_regular(q, errval);
                x += 1;
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }

    stats.payload_bits = w.bits_written();
    (w.into_bytes(), stats)
}

/// Decodes a payload produced by [`encode_raw`] with matching dimensions
/// and configuration (the configuration's `bit_depth` fixes the output
/// depth).
pub fn decode_raw(bytes: &[u8], width: usize, height: usize, cfg: &JpeglsConfig) -> Image {
    let mut st = State::new(cfg);
    let mut r = BitReader::new(bytes);
    let mut out = Image::with_depth(width, height, cfg.bit_depth);

    let mut prev = vec![0i32; width + 2];
    let mut cur = vec![0i32; width + 2];

    for y in 0..height {
        cur[0] = prev[1];
        prev[width + 1] = prev[width];
        let mut x = 0usize;
        while x < width {
            let idx = x + 1;
            let ra = cur[idx - 1];
            let rb = prev[idx];
            let rc = prev[idx - 1];
            let rd = prev[idx + 1];
            let q1 = st.quantize_gradient(rd - rb);
            let q2 = st.quantize_gradient(rb - rc);
            let q3 = st.quantize_gradient(rc - ra);

            if q1 == 0 && q2 == 0 && q3 == 0 {
                // ---- Run mode ----
                let runval = ra;
                let mut run = 0usize;
                let mut eol = false;
                loop {
                    let remaining = width - x - run;
                    if remaining == 0 {
                        eol = true;
                        break;
                    }
                    if r.read_bit() {
                        let rg = 1usize << J[st.run_index];
                        if rg < remaining {
                            run += rg;
                            if st.run_index < 31 {
                                st.run_index += 1;
                            }
                        } else if rg == remaining {
                            run += rg;
                            if st.run_index < 31 {
                                st.run_index += 1;
                            }
                            eol = true;
                            break;
                        } else {
                            run += remaining;
                            eol = true;
                            break;
                        }
                    } else {
                        run += r.read_bits(J[st.run_index]) as usize;
                        break;
                    }
                }
                for i in 0..run {
                    cur[x + i + 1] = runval;
                    out.set(x + i, y, runval as u16);
                }
                x += run;
                if eol {
                    continue;
                }

                // ---- Run interruption sample ----
                let idx = x + 1;
                let ra = runval;
                let rb = prev[idx];
                let ritype = usize::from((ra - rb).abs() <= st.near);
                let px = if ritype == 1 { ra } else { rb };
                let flip = ritype == 0 && ra > rb;
                let sign = if flip { -1 } else { 1 };
                let k = st.interruption_k(ritype);
                let emerr =
                    decode_limited(&mut r, k, st.limit - J[st.run_index] - 1, st.qbpp).unwrap_or(0);
                // Invert the A.7.2.2 mapping: parity of emerr + RItype
                // recovers `map`, the predicate recovers the sign.
                let tmp = emerr as i32 + ritype as i32;
                let map = tmp & 1 == 1;
                let mag = (tmp + i32::from(map)) / 2;
                let cond_pos = st.interruption_cond_pos(ritype, k);
                let errq = if mag == 0 {
                    0
                } else if map == cond_pos {
                    mag
                } else {
                    -mag
                };
                let rx = st.reconstruct(px, sign, errq);
                cur[idx] = rx;
                out.set(x, y, rx as u16);
                st.update_interruption(ritype, errq, emerr);
                if st.run_index > 0 {
                    st.run_index -= 1;
                }
                x += 1;
            } else {
                // ---- Regular mode ----
                let (q, sign) = st.context(q1, q2, q3);
                let px = (State::med(ra, rb, rc) + sign * st.c[q]).clamp(0, st.maxval);
                let k = st.golomb_k(q);
                let merr = decode_limited(&mut r, k, st.limit, st.qbpp).unwrap_or(0) as i32;
                let errval = if st.near == 0 && k == 0 && 2 * st.b[q] <= -(st.n[q] as i32) {
                    if merr % 2 == 1 {
                        (merr - 1) / 2
                    } else {
                        -(merr / 2) - 1
                    }
                } else if merr % 2 == 0 {
                    merr / 2
                } else {
                    -((merr + 1) / 2)
                };
                let rx = st.reconstruct(px, sign, errval);
                cur[idx] = rx;
                out.set(x, y, rx as u16);
                st.update_regular(q, errval);
                x += 1;
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbic_image::corpus::CorpusImage;

    fn roundtrip(img: &Image, cfg: &JpeglsConfig) -> EncodeStats {
        let (bytes, stats) = encode_raw(img.view(), cfg);
        let back = decode_raw(&bytes, img.width(), img.height(), cfg);
        if cfg.near == 0 {
            assert_eq!(&back, img, "lossless roundtrip failed");
        } else {
            for (p, q) in img.samples().iter().zip(back.samples()) {
                assert!(
                    (i32::from(*p) - i32::from(*q)).abs() <= i32::from(cfg.near),
                    "near-lossless bound violated"
                );
            }
        }
        stats
    }

    #[test]
    fn roundtrip_corpus() {
        for (name, img) in cbic_image::corpus::generate(48) {
            let stats = roundtrip(&img, &JpeglsConfig::default());
            assert!(stats.payload_bits > 0, "{name:?}");
        }
    }

    #[test]
    fn roundtrip_tiny_shapes() {
        for (w, h) in [(1, 1), (1, 9), (9, 1), (3, 2), (16, 16)] {
            let img = Image::from_fn(w, h, |x, y| (x * 37 + y * 11) as u8);
            roundtrip(&img, &JpeglsConfig::default());
        }
    }

    #[test]
    fn roundtrip_deep_depths() {
        for depth in [10u8, 12, 16] {
            let cfg = JpeglsConfig::for_depth(depth, 0);
            let img = Image::from_fn16(24, 24, depth, |x, y| {
                ((x as u32 * 709 + y as u32 * 6151) % (1u32 << depth.min(15))) as u16
            });
            roundtrip(&img, &cfg);
        }
    }

    #[test]
    fn smooth_sixteen_bit_content_beats_raw_depth() {
        // T.87's A-accumulator init scales with RANGE (1024 at 16 bits),
        // so the Golomb parameter starts high and decays over the image —
        // small frames pay a warm-up cost but must still clearly beat the
        // 16 bpp raw rate on predictable content.
        let cfg = JpeglsConfig::for_depth(16, 0);
        let img = Image::from_fn16(96, 96, 16, |x, y| ((x + y) * 300) as u16);
        let stats = roundtrip(&img, &cfg);
        assert!(
            stats.bits_per_pixel() < 12.0,
            "smooth 16-bit ramp cost {} bpp",
            stats.bits_per_pixel()
        );
    }

    #[test]
    fn constant_image_uses_run_mode() {
        let img = Image::from_fn(128, 128, |_, _| 77);
        let stats = roundtrip(&img, &JpeglsConfig::default());
        assert!(stats.run_pixels as usize >= 16_000, "runs: {stats:?}");
        assert!(
            stats.bits_per_pixel() < 0.05,
            "constant image cost {} bpp",
            stats.bits_per_pixel()
        );
    }

    #[test]
    fn vertical_stripes_interrupt_runs() {
        // Flat runs of 8 then a step: run mode + interruption samples.
        let img = Image::from_fn(64, 64, |x, _| ((x / 8) * 32) as u8);
        let stats = roundtrip(&img, &JpeglsConfig::default());
        assert!(stats.run_interruptions > 0);
    }

    #[test]
    fn gradient_image_compresses() {
        let img = Image::from_fn(128, 128, |x, y| ((x + 2 * y) / 2 % 256) as u8);
        let stats = roundtrip(&img, &JpeglsConfig::default());
        assert!(
            stats.bits_per_pixel() < 1.5,
            "got {} bpp",
            stats.bits_per_pixel()
        );
    }

    #[test]
    fn noise_stays_bounded() {
        let img = Image::from_fn(64, 64, |x, y| {
            (cbic_image::synth::lattice(3, x as i64, y as i64) * 256.0) as u8
        });
        let stats = roundtrip(&img, &JpeglsConfig::default());
        assert!(
            stats.bits_per_pixel() < 9.5,
            "noise cost {} bpp",
            stats.bits_per_pixel()
        );
    }

    #[test]
    fn near_lossless_reduces_rate() {
        let img = CorpusImage::Goldhill.generate(96, 96);
        let lossless = roundtrip(&img, &JpeglsConfig::default());
        let near2 = roundtrip(
            &img,
            &JpeglsConfig {
                near: 2,
                ..JpeglsConfig::default()
            },
        );
        assert!(
            near2.bits_per_pixel() < lossless.bits_per_pixel() - 0.5,
            "near {} vs lossless {}",
            near2.bits_per_pixel(),
            lossless.bits_per_pixel()
        );
    }

    #[test]
    fn near_bound_is_respected_for_all_near_values() {
        let img = CorpusImage::Barb.generate(48, 48);
        for near in 1..=4u8 {
            roundtrip(
                &img,
                &JpeglsConfig {
                    near,
                    ..JpeglsConfig::default()
                },
            );
        }
    }

    #[test]
    fn context_mapping_is_dense_and_unique() {
        let st = State::new(&JpeglsConfig::default());
        let mut seen = vec![false; REGULAR_CONTEXTS];
        for q1 in -4i32..=4 {
            for q2 in -4i32..=4 {
                for q3 in -4i32..=4 {
                    if q1 == 0 && q2 == 0 && q3 == 0 {
                        continue;
                    }
                    let (idx, sign) = st.context(q1, q2, q3);
                    assert!(idx < REGULAR_CONTEXTS);
                    // Context of the negated triple maps to the same index
                    // with the opposite sign.
                    let (idx2, sign2) = st.context(-q1, -q2, -q3);
                    assert_eq!(idx, idx2);
                    assert_eq!(sign, -sign2);
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "all 364 contexts reachable");
    }

    #[test]
    fn med_is_the_loco_predictor() {
        assert_eq!(State::med(10, 20, 5), 20, "c below both: max");
        assert_eq!(State::med(10, 20, 25), 10, "c above both: min");
        assert_eq!(State::med(10, 20, 15), 15, "planar: a+b-c");
    }

    #[test]
    fn beats_order0_entropy_on_structured_content() {
        let img = CorpusImage::Lena.generate(96, 96);
        let stats = roundtrip(&img, &JpeglsConfig::default());
        assert!(
            stats.bits_per_pixel() < img.entropy(),
            "JPEG-LS {} bpp vs order-0 {} bpp",
            stats.bits_per_pixel(),
            img.entropy()
        );
    }
}
