//! JPEG-LS (LOCO-I) baseline codec.
//!
//! The paper's Table 1 compares its scheme against JPEG-LS, the ISO/ITU-T
//! T.87 standard built from HP's LOCO-I algorithm (Weinberger, Seroussi &
//! Sapiro, IEEE TIP 2000 — the paper's reference \[4\]). This crate is a
//! from-scratch implementation of the complete coding flow:
//!
//! * **MED/MAP prediction** over the `{a=W, b=N, c=NW, d=NE}` causal
//!   template;
//! * **365 regular contexts** from three quantized gradients with sign
//!   folding, each holding the `(A, B, C, N)` state of the standard;
//! * **bias cancellation** (the `C[q]` correction with `B`/`N` update);
//! * **length-limited Golomb-Rice coding** of the mapped residual
//!   (via `cbic-rice`);
//! * **run mode** (gradient-flat contexts) with the `J[32]` run-length
//!   table and the two run-interruption contexts;
//! * optional **near-lossless** operation (`NEAR > 0`), guaranteeing
//!   `|x − x̂| ≤ NEAR` per sample.
//!
//! The bitstream is this crate's own framing (not the T.87 marker syntax):
//! the reproduction needs the *algorithm*'s bit rate, not interchange with
//! other JPEG-LS files — see `DESIGN.md` §6.
//!
//! # Examples
//!
//! ```
//! use cbic_image::corpus::CorpusImage;
//! use cbic_jpegls::{compress, decompress, JpeglsConfig};
//!
//! let img = CorpusImage::Boat.generate(64, 64);
//! let bytes = compress(img.view(), &JpeglsConfig::default());
//! assert_eq!(decompress(&bytes)?, img);
//! # Ok::<(), cbic_jpegls::JpeglsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod params;

#[cfg(test)]
mod proptests;

pub use codec::{decode_raw, encode_raw, EncodeStats};
pub use params::{JpeglsConfig, JpeglsError};

use cbic_image::framing::{self, FramingError};
use cbic_image::{Image, ImageView};

const MAGIC: &[u8; 4] = b"CBLS";

impl From<FramingError> for JpeglsError {
    fn from(e: FramingError) -> Self {
        match e {
            FramingError::BadMagic => JpeglsError::BadMagic,
            FramingError::Truncated => JpeglsError::Truncated,
            FramingError::Invalid(msg) => JpeglsError::InvalidHeader(msg),
        }
    }
}

/// This crate's container framing — the shared dimensioned header of
/// [`cbic_image::framing`] (legacy 8-bit layout, deep-sentinel extension)
/// followed by this codec's NEAR byte and the payload — written once here
/// so [`compress`] and the [`cbic_image::Codec`] impl cannot drift apart.
fn write_container(
    img: ImageView<'_>,
    near: u8,
    payload: &[u8],
    out: &mut dyn std::io::Write,
) -> std::io::Result<()> {
    framing::write_dims_header(out, MAGIC, img.width(), img.height(), img.bit_depth())?;
    out.write_all(&[near])?;
    out.write_all(payload)
}

/// Bytes the container framing adds ahead of the payload.
fn container_overhead(bit_depth: u8) -> u64 {
    framing::dims_header_len(bit_depth) + 1
}

/// Parses this crate's container framing, returning
/// `(width, height, bit_depth, near, payload)`. Shared by [`decompress`]
/// and the CLI's `info` reporting.
pub fn parse_container(bytes: &[u8]) -> Result<(usize, usize, u8, u8, &[u8]), JpeglsError> {
    let (width, height, bit_depth, rest) = framing::parse_dims_header(bytes, MAGIC)?;
    let (&near, payload) = rest.split_first().ok_or(JpeglsError::Truncated)?;
    Ok((width, height, bit_depth, near, payload))
}

/// Compresses the pixels of a view into a self-describing container
/// (`CBLS` magic, width/height, NEAR, then the entropy-coded payload).
///
/// The container records only the depth and the NEAR bound; the decoder
/// rebuilds the configuration as [`JpeglsConfig::for_depth`] of that
/// pair (whose thresholds are depth-only, matching every stream this
/// crate has ever written). Encode with a `for_depth` configuration — as
/// [`Jpegls`] and the CLI do — for self-describing streams.
pub fn compress(img: ImageView<'_>, cfg: &JpeglsConfig) -> Vec<u8> {
    let (payload, _) = encode_raw(img, cfg);
    let mut out = Vec::with_capacity(payload.len() + 18);
    write_container(img, cfg.near, &payload, &mut out).expect("Vec writes cannot fail");
    out
}

/// Decompresses a container produced by [`compress`].
///
/// # Errors
///
/// Returns [`JpeglsError`] on malformed headers.
pub fn decompress(bytes: &[u8]) -> Result<Image, JpeglsError> {
    let (width, height, bit_depth, near, payload) = parse_container(bytes)?;
    // `for_depth` thresholds depend only on the depth, so this rebuilds
    // the encoder's configuration exactly — including for every 8-bit
    // near-lossless stream the pre-view-API crate ever wrote.
    Ok(decode_raw(
        payload,
        width,
        height,
        &JpeglsConfig::for_depth(bit_depth, near),
    ))
}

impl From<JpeglsError> for cbic_image::CbicError {
    fn from(e: JpeglsError) -> Self {
        use cbic_image::CbicError;
        match e {
            JpeglsError::BadMagic => CbicError::BadMagic { found: None },
            JpeglsError::Truncated => CbicError::Truncated,
            JpeglsError::InvalidHeader(msg) => CbicError::InvalidContainer(msg),
        }
    }
}

/// Lossless JPEG-LS on the unified [`cbic_image::Codec`] surface.
///
/// Only the lossless configuration implements the trait (the trait's
/// contract is exact reconstruction); use [`compress`]/[`decompress`]
/// directly for near-lossless operation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Jpegls;

impl cbic_image::Codec for Jpegls {
    fn name(&self) -> &'static str {
        "jpegls"
    }

    fn magic(&self) -> Option<[u8; 4]> {
        Some(*MAGIC)
    }

    fn encode(
        &self,
        img: ImageView<'_>,
        _opts: &cbic_image::EncodeOptions,
        sink: &mut dyn std::io::Write,
    ) -> Result<cbic_image::EncodeStats, cbic_image::CbicError> {
        let cfg = JpeglsConfig::for_depth(img.bit_depth(), 0);
        let (payload, stats) = encode_raw(img, &cfg);
        write_container(img, cfg.near, &payload, sink)?;
        Ok(cbic_image::EncodeStats::new(
            stats.pixels,
            container_overhead(img.bit_depth()) + payload.len() as u64,
            Some(stats.payload_bits),
        ))
    }

    fn decode(
        &self,
        source: &mut dyn std::io::Read,
        _opts: &cbic_image::DecodeOptions,
    ) -> Result<Image, cbic_image::CbicError> {
        let mut bytes = Vec::new();
        source.read_to_end(&mut bytes)?;
        decompress(&bytes).map_err(cbic_image::CbicError::from)
    }
}

#[cfg(test)]
mod container_tests {
    use super::*;
    use cbic_image::corpus::CorpusImage;

    #[test]
    fn container_roundtrip() {
        let img = CorpusImage::Peppers.generate(32, 32);
        let bytes = compress(img.view(), &JpeglsConfig::default());
        assert_eq!(decompress(&bytes).unwrap(), img);
    }

    #[test]
    fn container_rejects_garbage() {
        assert_eq!(decompress(b"nope"), Err(JpeglsError::Truncated));
        assert_eq!(decompress(b"XXXX0000000000000"), Err(JpeglsError::BadMagic));
    }

    #[test]
    fn legacy_default_threshold_near_streams_decode() {
        // Pre-view-API encoders (and direct compress calls with the Annex C
        // defaults) wrote near-lossless streams at thresholds (3,7,21);
        // decompress must rebuild exactly that configuration for 8-bit
        // containers or the context models diverge.
        let img = CorpusImage::Goldhill.generate(40, 40);
        let legacy_cfg = JpeglsConfig {
            near: 3,
            ..JpeglsConfig::default()
        };
        let bytes = compress(img.view(), &legacy_cfg);
        let out = decompress(&bytes).unwrap();
        for (p, q) in img.samples().iter().zip(out.samples()) {
            assert!(
                (i32::from(*p) - i32::from(*q)).abs() <= 3,
                "NEAR bound violated on a legacy-config stream"
            );
        }
    }

    #[test]
    fn near_travels_in_header() {
        let img = CorpusImage::Lena.generate(32, 32);
        // 8-bit near-lossless streams use the Annex C default thresholds
        // (the historical format decompress rebuilds).
        let cfg = JpeglsConfig {
            near: 2,
            ..JpeglsConfig::default()
        };
        let bytes = compress(img.view(), &cfg);
        let out = decompress(&bytes).unwrap();
        for (p, q) in img.samples().iter().zip(out.samples()) {
            assert!((i32::from(*p) - i32::from(*q)).abs() <= 2);
        }
    }
}
