//! JPEG-LS (LOCO-I) baseline codec.
//!
//! The paper's Table 1 compares its scheme against JPEG-LS, the ISO/ITU-T
//! T.87 standard built from HP's LOCO-I algorithm (Weinberger, Seroussi &
//! Sapiro, IEEE TIP 2000 — the paper's reference \[4\]). This crate is a
//! from-scratch implementation of the complete coding flow:
//!
//! * **MED/MAP prediction** over the `{a=W, b=N, c=NW, d=NE}` causal
//!   template;
//! * **365 regular contexts** from three quantized gradients with sign
//!   folding, each holding the `(A, B, C, N)` state of the standard;
//! * **bias cancellation** (the `C[q]` correction with `B`/`N` update);
//! * **length-limited Golomb-Rice coding** of the mapped residual
//!   (via `cbic-rice`);
//! * **run mode** (gradient-flat contexts) with the `J[32]` run-length
//!   table and the two run-interruption contexts;
//! * optional **near-lossless** operation (`NEAR > 0`), guaranteeing
//!   `|x − x̂| ≤ NEAR` per sample.
//!
//! The bitstream is this crate's own framing (not the T.87 marker syntax):
//! the reproduction needs the *algorithm*'s bit rate, not interchange with
//! other JPEG-LS files — see `DESIGN.md` §6.
//!
//! # Examples
//!
//! ```
//! use cbic_image::corpus::CorpusImage;
//! use cbic_jpegls::{compress, decompress, JpeglsConfig};
//!
//! let img = CorpusImage::Boat.generate(64, 64);
//! let bytes = compress(&img, &JpeglsConfig::default());
//! assert_eq!(decompress(&bytes)?, img);
//! # Ok::<(), cbic_jpegls::JpeglsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod params;

#[cfg(test)]
mod proptests;

pub use codec::{decode_raw, encode_raw, EncodeStats};
pub use params::{JpeglsConfig, JpeglsError};

use cbic_image::Image;

const MAGIC: &[u8; 4] = b"CBLS";

/// This crate's container framing (magic, dims LE, NEAR byte, payload),
/// defined once and shared by [`compress`] and the [`cbic_image::Codec`]
/// impl so the two cannot drift apart. (Each baseline crate owns its
/// own, independent container format.)
fn write_container(
    img: &Image,
    near: u8,
    payload: &[u8],
    out: &mut dyn std::io::Write,
) -> std::io::Result<()> {
    out.write_all(MAGIC)?;
    out.write_all(&(img.width() as u32).to_le_bytes())?;
    out.write_all(&(img.height() as u32).to_le_bytes())?;
    out.write_all(&[near])?;
    out.write_all(payload)
}

/// Compresses an image into a self-describing container
/// (`CBLS` magic, width/height, NEAR, then the entropy-coded payload).
pub fn compress(img: &Image, cfg: &JpeglsConfig) -> Vec<u8> {
    let (payload, _) = encode_raw(img, cfg);
    let mut out = Vec::with_capacity(payload.len() + 16);
    write_container(img, cfg.near, &payload, &mut out).expect("Vec writes cannot fail");
    out
}

/// Decompresses a container produced by [`compress`].
///
/// # Errors
///
/// Returns [`JpeglsError`] on malformed headers.
pub fn decompress(bytes: &[u8]) -> Result<Image, JpeglsError> {
    if bytes.len() < 13 {
        return Err(JpeglsError::Truncated);
    }
    if &bytes[..4] != MAGIC {
        return Err(JpeglsError::BadMagic);
    }
    let width = u32::from_le_bytes(bytes[4..8].try_into().expect("sized")) as usize;
    let height = u32::from_le_bytes(bytes[8..12].try_into().expect("sized")) as usize;
    if width == 0 || height == 0 {
        return Err(JpeglsError::InvalidHeader("zero dimension".into()));
    }
    if width.saturating_mul(height) > 1 << 28 {
        return Err(JpeglsError::InvalidHeader("image too large".into()));
    }
    let cfg = JpeglsConfig {
        near: bytes[12],
        ..JpeglsConfig::default()
    };
    Ok(decode_raw(&bytes[13..], width, height, &cfg))
}

impl From<JpeglsError> for cbic_image::CbicError {
    fn from(e: JpeglsError) -> Self {
        use cbic_image::CbicError;
        match e {
            JpeglsError::BadMagic => CbicError::BadMagic { found: None },
            JpeglsError::Truncated => CbicError::Truncated,
            JpeglsError::InvalidHeader(msg) => CbicError::InvalidContainer(msg),
        }
    }
}

/// Lossless JPEG-LS on the unified [`cbic_image::Codec`] surface.
///
/// Only the lossless configuration implements the trait (the trait's
/// contract is exact reconstruction); use [`compress`]/[`decompress`]
/// directly for near-lossless operation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Jpegls;

impl cbic_image::Codec for Jpegls {
    fn name(&self) -> &'static str {
        "jpegls"
    }

    fn magic(&self) -> Option<[u8; 4]> {
        Some(*MAGIC)
    }

    fn encode(
        &self,
        img: &Image,
        _opts: &cbic_image::EncodeOptions,
        sink: &mut dyn std::io::Write,
    ) -> Result<cbic_image::EncodeStats, cbic_image::CbicError> {
        let cfg = JpeglsConfig::default();
        let (payload, stats) = encode_raw(img, &cfg);
        write_container(img, cfg.near, &payload, sink)?;
        Ok(cbic_image::EncodeStats::new(
            stats.pixels,
            13 + payload.len() as u64,
            Some(stats.payload_bits),
        ))
    }

    fn decode(
        &self,
        source: &mut dyn std::io::Read,
        _opts: &cbic_image::DecodeOptions,
    ) -> Result<Image, cbic_image::CbicError> {
        let mut bytes = Vec::new();
        source.read_to_end(&mut bytes)?;
        decompress(&bytes).map_err(cbic_image::CbicError::from)
    }
}

#[cfg(test)]
mod container_tests {
    use super::*;
    use cbic_image::corpus::CorpusImage;

    #[test]
    fn container_roundtrip() {
        let img = CorpusImage::Peppers.generate(32, 32);
        let bytes = compress(&img, &JpeglsConfig::default());
        assert_eq!(decompress(&bytes).unwrap(), img);
    }

    #[test]
    fn container_rejects_garbage() {
        assert_eq!(decompress(b"nope"), Err(JpeglsError::Truncated));
        assert_eq!(decompress(b"XXXX0000000000000"), Err(JpeglsError::BadMagic));
    }

    #[test]
    fn near_travels_in_header() {
        let img = CorpusImage::Lena.generate(32, 32);
        let cfg = JpeglsConfig {
            near: 2,
            ..JpeglsConfig::default()
        };
        let bytes = compress(&img, &cfg);
        let out = decompress(&bytes).unwrap();
        for (p, q) in img.pixels().iter().zip(out.pixels()) {
            assert!((i32::from(*p) - i32::from(*q)).abs() <= 2);
        }
    }
}
