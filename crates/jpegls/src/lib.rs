//! JPEG-LS (LOCO-I) baseline codec.
//!
//! The paper's Table 1 compares its scheme against JPEG-LS, the ISO/ITU-T
//! T.87 standard built from HP's LOCO-I algorithm (Weinberger, Seroussi &
//! Sapiro, IEEE TIP 2000 — the paper's reference \[4\]). This crate is a
//! from-scratch implementation of the complete coding flow:
//!
//! * **MED/MAP prediction** over the `{a=W, b=N, c=NW, d=NE}` causal
//!   template;
//! * **365 regular contexts** from three quantized gradients with sign
//!   folding, each holding the `(A, B, C, N)` state of the standard;
//! * **bias cancellation** (the `C[q]` correction with `B`/`N` update);
//! * **length-limited Golomb-Rice coding** of the mapped residual
//!   (via `cbic-rice`);
//! * **run mode** (gradient-flat contexts) with the `J[32]` run-length
//!   table and the two run-interruption contexts;
//! * optional **near-lossless** operation (`NEAR > 0`), guaranteeing
//!   `|x − x̂| ≤ NEAR` per sample.
//!
//! The bitstream is this crate's own framing (not the T.87 marker syntax):
//! the reproduction needs the *algorithm*'s bit rate, not interchange with
//! other JPEG-LS files — see `DESIGN.md` §6.
//!
//! # Examples
//!
//! ```
//! use cbic_image::corpus::CorpusImage;
//! use cbic_jpegls::{compress, decompress, JpeglsConfig};
//!
//! let img = CorpusImage::Boat.generate(64, 64);
//! let bytes = compress(&img, &JpeglsConfig::default());
//! assert_eq!(decompress(&bytes)?, img);
//! # Ok::<(), cbic_jpegls::JpeglsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod params;

#[cfg(test)]
mod proptests;

pub use codec::{decode_raw, encode_raw, EncodeStats};
pub use params::{JpeglsConfig, JpeglsError};

use cbic_image::Image;

const MAGIC: &[u8; 4] = b"CBLS";

/// Compresses an image into a self-describing container
/// (`CBLS` magic, width/height, NEAR, then the entropy-coded payload).
pub fn compress(img: &Image, cfg: &JpeglsConfig) -> Vec<u8> {
    let (payload, _) = encode_raw(img, cfg);
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(img.width() as u32).to_le_bytes());
    out.extend_from_slice(&(img.height() as u32).to_le_bytes());
    out.push(cfg.near);
    out.extend_from_slice(&payload);
    out
}

/// Decompresses a container produced by [`compress`].
///
/// # Errors
///
/// Returns [`JpeglsError`] on malformed headers.
pub fn decompress(bytes: &[u8]) -> Result<Image, JpeglsError> {
    if bytes.len() < 13 {
        return Err(JpeglsError::Truncated);
    }
    if &bytes[..4] != MAGIC {
        return Err(JpeglsError::BadMagic);
    }
    let width = u32::from_le_bytes(bytes[4..8].try_into().expect("sized")) as usize;
    let height = u32::from_le_bytes(bytes[8..12].try_into().expect("sized")) as usize;
    if width == 0 || height == 0 {
        return Err(JpeglsError::InvalidHeader("zero dimension".into()));
    }
    if width.saturating_mul(height) > 1 << 28 {
        return Err(JpeglsError::InvalidHeader("image too large".into()));
    }
    let cfg = JpeglsConfig {
        near: bytes[12],
        ..JpeglsConfig::default()
    };
    Ok(decode_raw(&bytes[13..], width, height, &cfg))
}

/// Lossless JPEG-LS as an [`cbic_image::ImageCodec`] trait object.
///
/// Only the lossless configuration implements the trait (the trait's
/// contract is exact reconstruction); use [`compress`]/[`decompress`]
/// directly for near-lossless operation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Jpegls;

impl cbic_image::ImageCodec for Jpegls {
    fn name(&self) -> &'static str {
        "jpegls"
    }

    fn magic(&self) -> Option<[u8; 4]> {
        Some(*MAGIC)
    }

    fn compress(&self, img: &Image) -> Vec<u8> {
        compress(img, &JpeglsConfig::default())
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Image, cbic_image::ImageError> {
        decompress(bytes).map_err(|e| cbic_image::ImageError::Codec(e.to_string()))
    }

    fn payload_bits_per_pixel(&self, img: &Image) -> f64 {
        encode_raw(img, &JpeglsConfig::default()).1.bits_per_pixel()
    }
}

/// Whole-buffer streaming fallback: JPEG-LS containers move through pipes
/// via the default [`cbic_image::StreamingCodec`] methods.
impl cbic_image::StreamingCodec for Jpegls {}

#[cfg(test)]
mod container_tests {
    use super::*;
    use cbic_image::corpus::CorpusImage;

    #[test]
    fn container_roundtrip() {
        let img = CorpusImage::Peppers.generate(32, 32);
        let bytes = compress(&img, &JpeglsConfig::default());
        assert_eq!(decompress(&bytes).unwrap(), img);
    }

    #[test]
    fn container_rejects_garbage() {
        assert_eq!(decompress(b"nope"), Err(JpeglsError::Truncated));
        assert_eq!(decompress(b"XXXX0000000000000"), Err(JpeglsError::BadMagic));
    }

    #[test]
    fn near_travels_in_header() {
        let img = CorpusImage::Lena.generate(32, 32);
        let cfg = JpeglsConfig {
            near: 2,
            ..JpeglsConfig::default()
        };
        let bytes = compress(&img, &cfg);
        let out = decompress(&bytes).unwrap();
        for (p, q) in img.pixels().iter().zip(out.pixels()) {
            assert!((i32::from(*p) - i32::from(*q)).abs() <= 2);
        }
    }
}
