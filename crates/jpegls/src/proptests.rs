//! Property-based tests: JPEG-LS losslessness and the NEAR bound over
//! arbitrary images.

use proptest::prelude::*;

use crate::{decode_raw, encode_raw, JpeglsConfig};
use cbic_image::Image;

fn arb_image() -> impl Strategy<Value = Image> {
    (1usize..24, 1usize..24).prop_flat_map(|(w, h)| {
        proptest::collection::vec(any::<u8>(), w * h)
            .prop_map(move |data| Image::from_vec(w, h, data).expect("sized to match"))
    })
}

proptest! {
    /// NEAR = 0 round-trips arbitrary pixel content exactly.
    #[test]
    fn lossless_roundtrip(img in arb_image()) {
        let cfg = JpeglsConfig::default();
        let (bytes, stats) = encode_raw(img.view(), &cfg);
        prop_assert_eq!(stats.pixels as usize, img.pixel_count());
        let back = decode_raw(&bytes, img.width(), img.height(), &cfg);
        prop_assert_eq!(back, img);
    }

    /// NEAR > 0 honours the per-pixel error bound on arbitrary content.
    #[test]
    fn near_bound_holds(img in arb_image(), near in 1u8..=6) {
        let cfg = JpeglsConfig { near, ..JpeglsConfig::default() };
        let (bytes, _) = encode_raw(img.view(), &cfg);
        let back = decode_raw(&bytes, img.width(), img.height(), &cfg);
        for (p, q) in img.samples().iter().zip(back.samples()) {
            prop_assert!(
                (i32::from(*p) - i32::from(*q)).abs() <= i32::from(near),
                "pixel {p} decoded as {q} with NEAR {near}"
            );
        }
    }

    /// The length limit bounds worst-case expansion: never more than
    /// LIMIT bits per pixel plus run-mode framing.
    #[test]
    fn expansion_is_bounded(img in arb_image()) {
        let cfg = JpeglsConfig::default();
        let (bytes, _) = encode_raw(img.view(), &cfg);
        prop_assert!(bytes.len() * 8 <= img.pixel_count() * 33 + 64);
    }

    /// Raising NEAR never increases the coded size on the same image
    /// (monotone rate-distortion trade).
    #[test]
    fn near_is_monotone_in_rate(seed in 0u64..1000) {
        let img = Image::from_fn(32, 32, |x, y| {
            (128.0 + 60.0 * cbic_image::synth::fbm(seed, x as f64, y as f64, 8.0, 3, 0.5)) as u8
        });
        let mut prev: Option<usize> = None;
        for near in [0u8, 1, 2, 4] {
            let cfg = JpeglsConfig { near, ..JpeglsConfig::default() };
            let (bytes, _) = encode_raw(img.view(), &cfg);
            if let Some(p) = prev {
                // Allow a small tolerance: run-mode boundaries can shift.
                prop_assert!(bytes.len() <= p + p / 8,
                    "near {near}: {} bytes after {p}", bytes.len());
            }
            prev = Some(bytes.len());
        }
    }
}
