//! The universal lossless compression system of the paper's Fig. 1.
//!
//! The SOCC 2007 paper presents its image codec as one front end of a
//! *dynamically reconfigurable* universal compressor: uncompressed data is
//! time-multiplexed into one of three modeling front ends — **lossless data
//! modeling** (context modeling), **lossless image modeling** (context
//! modeling + predictive coding), or **lossless video modeling** (motion
//! estimation + predictive coding) — all driving the *same* probability
//! estimator and binary arithmetic coder.
//!
//! This crate completes that architecture:
//!
//! * [`data`] — an order-0/1/2 adaptive byte model over the shared
//!   tree-estimator back end (`cbic-arith`), standing in for the
//!   general-data core of the paper's reference \[7\];
//! * [`video`] — block motion estimation (full search) + lossless residual
//!   coding, where the motion-compensated residual is folded into an 8-bit
//!   image and fed through the *image* codec — exactly the reuse Fig. 1
//!   draws;
//! * [`dispatch`] — the time multiplexer: a typed container that selects
//!   the front end per chunk ("dynamic modeling reconfiguration") and
//!   reports which model compressed what.
//!
//! # Examples
//!
//! ```
//! use cbic_universal::dispatch::{Chunk, UniversalCodec};
//! use cbic_image::corpus::CorpusImage;
//!
//! let chunks = vec![
//!     Chunk::Data(b"hello hello hello hello".to_vec()),
//!     Chunk::Image(CorpusImage::Lena.generate(32, 32)),
//! ];
//! let codec = UniversalCodec::default();
//! let bytes = codec.encode(&chunks);
//! assert_eq!(codec.decode(&bytes)?, chunks);
//! # Ok::<(), cbic_universal::UniversalError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codecs;
pub mod data;
pub mod dispatch;
pub mod video;

use std::fmt;

/// Errors returned by the universal container.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum UniversalError {
    /// Stream does not start with the `CBUN` magic.
    BadMagic,
    /// Stream ended before the declared content.
    Truncated,
    /// Unknown chunk tag or malformed field.
    InvalidStream(String),
    /// Underlying I/O failure on a streaming source (message form, to keep
    /// the error `Clone`).
    Io(String),
}

impl fmt::Display for UniversalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "missing CBUN magic"),
            Self::Truncated => write!(f, "truncated stream"),
            Self::InvalidStream(m) => write!(f, "invalid stream: {m}"),
            Self::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for UniversalError {}

impl From<UniversalError> for cbic_image::CbicError {
    fn from(e: UniversalError) -> Self {
        use cbic_image::CbicError;
        match e {
            UniversalError::BadMagic => CbicError::BadMagic { found: None },
            UniversalError::Truncated => CbicError::Truncated,
            UniversalError::InvalidStream(msg) => CbicError::InvalidContainer(msg),
            UniversalError::Io(msg) => CbicError::Io(std::io::Error::other(msg)),
        }
    }
}
