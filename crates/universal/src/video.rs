//! Lossless video modeling: motion estimation + predictive coding.
//!
//! The "Lossless Video Modeling" front end of the paper's Fig. 1 consists
//! of a *Motion Estimator* followed by *Predictive Coding* feeding the
//! shared probability estimator / arithmetic coder. This module implements
//! exactly that shape:
//!
//! * frame 0 (and any frame where motion compensation fails) is coded
//!   **intra** with the image codec of `cbic-core`;
//! * other frames are coded **inter**: full-search block motion estimation
//!   against the previous (reconstructed = original, we are lossless)
//!   frame, Rice-coded motion vectors, and the motion-compensated residual
//!   wrapped/folded into an 8-bit image that is itself compressed by the
//!   image codec — the same context modeling + arithmetic coding back end,
//!   as Fig. 1 draws it.
//!
//! Everything is deterministic, so the decoder reproduces the encoder's
//! mode decisions from the bitstream alone.

use cbic_bitio::{BitReader, BitWriter};
use cbic_core::remap::{fold, unfold, wrap_error};
use cbic_core::CodecConfig;
use cbic_image::Image;
use cbic_rice::{decode as rice_decode, encode as rice_encode, unzigzag, zigzag};

use crate::UniversalError;

/// Motion-estimation strategy.
///
/// Motion vectors are transmitted, so the decoder never searches — the
/// strategy is purely an encoder speed/quality trade. [`Self::Full`] is
/// the exhaustive reference; [`Self::Diamond`] is the classic two-stage
/// diamond search (large-diamond descent, small-diamond refinement),
/// roughly an order of magnitude fewer SAD evaluations for a small loss
/// in match quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchKind {
    /// Exhaustive search over the full ±range window.
    #[default]
    Full,
    /// Two-stage diamond search (fast, slightly suboptimal).
    Diamond,
}

/// Video-model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VideoConfig {
    /// Motion block edge length in pixels.
    pub block: usize,
    /// Motion search range in pixels (±search in both axes).
    pub search: i32,
    /// Motion-estimation strategy (encoder-side only).
    pub search_kind: SearchKind,
    /// Switch to intra coding when the mean |residual| exceeds this.
    pub intra_threshold: f64,
    /// Image-codec configuration used for intra frames and residuals.
    pub codec: CodecConfig,
}

impl Default for VideoConfig {
    fn default() -> Self {
        Self {
            block: 16,
            search: 7,
            search_kind: SearchKind::Full,
            intra_threshold: 24.0,
            codec: CodecConfig::default(),
        }
    }
}

/// Statistics from one video encode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VideoStats {
    /// Frames coded.
    pub frames: u64,
    /// Frames coded intra (including frame 0).
    pub intra_frames: u64,
    /// Total pixels.
    pub pixels: u64,
    /// Total payload bits (modes + vectors + residuals).
    pub payload_bits: u64,
}

impl VideoStats {
    /// Compressed bit rate in bits per pixel across the sequence.
    pub fn bits_per_pixel(&self) -> f64 {
        if self.pixels == 0 {
            0.0
        } else {
            self.payload_bits as f64 / self.pixels as f64
        }
    }
}

/// Clamped pixel fetch used by motion compensation (out-of-frame reference
/// samples replicate the border, so every vector in the search range is
/// valid everywhere).
#[inline]
fn ref_pixel(frame: &Image, x: i64, y: i64) -> u8 {
    let cx = x.clamp(0, frame.width() as i64 - 1) as usize;
    let cy = y.clamp(0, frame.height() as i64 - 1) as usize;
    frame.get(cx, cy) as u8
}

/// SAD of one block under candidate displacement `(dx, dy)`, with early
/// exit once `bound` is exceeded.
#[allow(clippy::too_many_arguments)] // mirrors the datapath port list
fn block_sad(
    cur: &Image,
    prev: &Image,
    bx: usize,
    by: usize,
    bw: usize,
    bh: usize,
    dx: i32,
    dy: i32,
    bound: u64,
) -> u64 {
    let mut sad = 0u64;
    for y in 0..bh {
        for x in 0..bw {
            let c = i64::from(cur.get(bx + x, by + y));
            let p = i64::from(ref_pixel(
                prev,
                (bx + x) as i64 + i64::from(dx),
                (by + y) as i64 + i64::from(dy),
            ));
            sad += c.abs_diff(p);
            if sad >= bound {
                return sad;
            }
        }
    }
    sad
}

/// Motion estimation for the block with top-left corner `(bx, by)`;
/// returns the `(dx, dy)` minimizing SAD under the configured strategy
/// (ties broken deterministically).
fn motion_search(
    cur: &Image,
    prev: &Image,
    bx: usize,
    by: usize,
    block: usize,
    search: i32,
    kind: SearchKind,
) -> (i32, i32) {
    let w = cur.width();
    let h = cur.height();
    let bw = block.min(w - bx);
    let bh = block.min(h - by);
    match kind {
        SearchKind::Full => {
            let mut best = (0i32, 0i32);
            let mut best_sad = u64::MAX;
            for dy in -search..=search {
                for dx in -search..=search {
                    let sad = block_sad(cur, prev, bx, by, bw, bh, dx, dy, best_sad);
                    if sad < best_sad {
                        best_sad = sad;
                        best = (dx, dy);
                    }
                }
            }
            best
        }
        SearchKind::Diamond => {
            // Large diamond pattern around the current centre until the
            // centre wins, then one small-diamond refinement.
            const LARGE: [(i32, i32); 8] = [
                (0, -2),
                (1, -1),
                (2, 0),
                (1, 1),
                (0, 2),
                (-1, 1),
                (-2, 0),
                (-1, -1),
            ];
            const SMALL: [(i32, i32); 4] = [(0, -1), (1, 0), (0, 1), (-1, 0)];
            let clamp = |v: i32| v.clamp(-search, search);
            let mut centre = (0i32, 0i32);
            let mut best_sad = block_sad(cur, prev, bx, by, bw, bh, 0, 0, u64::MAX);
            loop {
                let mut improved = false;
                for &(ox, oy) in &LARGE {
                    let cand = (clamp(centre.0 + ox), clamp(centre.1 + oy));
                    if cand == centre {
                        continue;
                    }
                    let sad = block_sad(cur, prev, bx, by, bw, bh, cand.0, cand.1, best_sad);
                    if sad < best_sad {
                        best_sad = sad;
                        centre = cand;
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
            for &(ox, oy) in &SMALL {
                let cand = (clamp(centre.0 + ox), clamp(centre.1 + oy));
                let sad = block_sad(cur, prev, bx, by, bw, bh, cand.0, cand.1, best_sad);
                if sad < best_sad {
                    best_sad = sad;
                    centre = cand;
                }
            }
            centre
        }
    }
}

/// Builds the motion-compensated prediction of `cur` from `prev` given the
/// per-block vectors (row-major block order).
fn compensate(prev: &Image, vectors: &[(i32, i32)], block: usize) -> Image {
    let (w, h) = prev.dimensions();
    let blocks_x = w.div_ceil(block);
    Image::from_fn(w, h, |x, y| {
        let b = (y / block) * blocks_x + (x / block);
        let (dx, dy) = vectors[b];
        ref_pixel(prev, x as i64 + i64::from(dx), y as i64 + i64::from(dy))
    })
}

/// Encodes a frame sequence. All frames must share the same dimensions.
///
/// # Panics
///
/// Panics if `frames` is empty or dimensions differ.
pub fn encode_frames(frames: &[Image], cfg: &VideoConfig) -> (Vec<u8>, VideoStats) {
    assert!(!frames.is_empty(), "need at least one frame");
    assert!(
        frames.iter().all(|f| f.bit_depth() == 8),
        "the video front end codes 8-bit frames"
    );
    let (w, h) = frames[0].dimensions();
    assert!(
        frames.iter().all(|f| f.dimensions() == (w, h)),
        "all frames must share dimensions"
    );

    let mut out = Vec::new();
    let mut stats = VideoStats {
        frames: frames.len() as u64,
        pixels: (w * h * frames.len()) as u64,
        ..VideoStats::default()
    };

    for (i, frame) in frames.iter().enumerate() {
        let inter = if i == 0 {
            None
        } else {
            let prev = &frames[i - 1];
            let blocks_x = w.div_ceil(cfg.block);
            let blocks_y = h.div_ceil(cfg.block);
            let mut vectors = Vec::with_capacity(blocks_x * blocks_y);
            for by in 0..blocks_y {
                for bx in 0..blocks_x {
                    vectors.push(motion_search(
                        frame,
                        prev,
                        bx * cfg.block,
                        by * cfg.block,
                        cfg.block,
                        cfg.search,
                        cfg.search_kind,
                    ));
                }
            }
            let predicted = compensate(prev, &vectors, cfg.block);
            let mut abs_sum = 0u64;
            let residual = Image::from_fn(w, h, |x, y| {
                let e = wrap_error(
                    i32::from(frame.get(x, y)) - i32::from(predicted.get(x, y)),
                    128,
                );
                abs_sum += e.unsigned_abs() as u64;
                fold(e, 128) as u8
            });
            let mean_abs = abs_sum as f64 / (w * h) as f64;
            if mean_abs <= cfg.intra_threshold {
                Some((vectors, residual))
            } else {
                None // motion failed: fall back to intra
            }
        };

        match inter {
            None => {
                stats.intra_frames += 1;
                out.push(0u8); // mode: intra
                let (payload, st) = cbic_core::encode_raw(frame.view(), &cfg.codec);
                stats.payload_bits += st.payload_bits + 48; // + frame header bytes
                out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                out.push(0);
                out.extend_from_slice(&payload);
            }
            Some((vectors, residual)) => {
                out.push(1u8); // mode: inter
                let mut mv = BitWriter::new();
                for &(dx, dy) in &vectors {
                    rice_encode(&mut mv, zigzag(dx), 1);
                    rice_encode(&mut mv, zigzag(dy), 1);
                }
                let mv_bytes = mv.into_bytes();
                let (payload, st) = cbic_core::encode_raw(residual.view(), &cfg.codec);
                stats.payload_bits += st.payload_bits + mv_bytes.len() as u64 * 8 + 80;
                out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                out.push(1);
                out.extend_from_slice(&(mv_bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(&mv_bytes);
                out.extend_from_slice(&payload);
            }
        }
    }
    (out, stats)
}

/// Decodes a sequence produced by [`encode_frames`].
///
/// # Errors
///
/// Returns [`UniversalError`] on structural corruption.
pub fn decode_frames(
    bytes: &[u8],
    width: usize,
    height: usize,
    count: usize,
    cfg: &VideoConfig,
) -> Result<Vec<Image>, UniversalError> {
    let mut frames: Vec<Image> = Vec::with_capacity(count);
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], UniversalError> {
        let s = bytes.get(*pos..*pos + n).ok_or(UniversalError::Truncated)?;
        *pos += n;
        Ok(s)
    };

    for i in 0..count {
        let mode = take(&mut pos, 1)?[0];
        let payload_len =
            u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("sized")) as usize;
        let mode2 = take(&mut pos, 1)?[0];
        if mode != mode2 {
            return Err(UniversalError::InvalidStream("mode mismatch".into()));
        }
        match mode {
            0 => {
                let payload = take(&mut pos, payload_len)?;
                frames.push(cbic_core::decode_raw(payload, width, height, 8, &cfg.codec));
            }
            1 => {
                if i == 0 {
                    return Err(UniversalError::InvalidStream(
                        "first frame cannot be inter".into(),
                    ));
                }
                let mv_len =
                    u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("sized")) as usize;
                let mv_bytes = take(&mut pos, mv_len)?;
                let blocks_x = width.div_ceil(cfg.block);
                let blocks_y = height.div_ceil(cfg.block);
                let mut mv = BitReader::new(mv_bytes);
                let mut vectors = Vec::with_capacity(blocks_x * blocks_y);
                for _ in 0..blocks_x * blocks_y {
                    let dx = unzigzag(rice_decode(&mut mv, 1).ok_or(UniversalError::Truncated)?);
                    let dy = unzigzag(rice_decode(&mut mv, 1).ok_or(UniversalError::Truncated)?);
                    vectors.push((dx, dy));
                }
                let payload = take(&mut pos, payload_len)?;
                let residual = cbic_core::decode_raw(payload, width, height, 8, &cfg.codec);
                let predicted = compensate(&frames[i - 1], &vectors, cfg.block);
                frames.push(Image::from_fn(width, height, |x, y| {
                    let e = unfold(residual.get(x, y));
                    (i32::from(predicted.get(x, y)) + e).rem_euclid(256) as u8
                }));
            }
            t => {
                return Err(UniversalError::InvalidStream(format!(
                    "unknown frame mode {t}"
                )))
            }
        }
    }
    Ok(frames)
}

/// Generates a deterministic synthetic test sequence: a textured background
/// with a bright square sliding by `(vx, vy)` pixels per frame (the classic
/// motion-estimation smoke test).
pub fn synthetic_sequence(
    width: usize,
    height: usize,
    count: usize,
    vx: i32,
    vy: i32,
) -> Vec<Image> {
    (0..count)
        .map(|t| {
            let ox = (i32::try_from(t).expect("small") * vx).rem_euclid(width as i32) as usize;
            let oy = (i32::try_from(t).expect("small") * vy).rem_euclid(height as i32) as usize;
            Image::from_fn(width, height, |x, y| {
                let bg = 90.0 + 40.0 * cbic_image::synth::fbm(42, x as f64, y as f64, 24.0, 3, 0.5);
                let sx = (x + width - ox) % width;
                let sy = (y + height - oy) % height;
                let obj = if sx < width / 4 && sy < height / 4 {
                    90.0
                } else {
                    0.0
                };
                cbic_image::synth::quantize(bg + obj)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frames: &[Image], cfg: &VideoConfig) -> VideoStats {
        let (bytes, stats) = encode_frames(frames, cfg);
        let (w, h) = frames[0].dimensions();
        let back = decode_frames(&bytes, w, h, frames.len(), cfg).expect("valid stream");
        assert_eq!(back.len(), frames.len());
        for (a, b) in frames.iter().zip(&back) {
            assert_eq!(a, b, "lossless video roundtrip failed");
        }
        stats
    }

    #[test]
    fn single_frame_is_intra() {
        let frames = synthetic_sequence(48, 48, 1, 0, 0);
        let stats = roundtrip(&frames, &VideoConfig::default());
        assert_eq!(stats.intra_frames, 1);
    }

    #[test]
    fn static_sequence_compresses_to_near_nothing() {
        let frames = synthetic_sequence(48, 48, 4, 0, 0);
        let stats = roundtrip(&frames, &VideoConfig::default());
        assert_eq!(stats.intra_frames, 1, "only frame 0 is intra");
        // Frames 1..3 are identical to frame 0: residuals are all zero.
        let bpp = stats.bits_per_pixel();
        let intra_only = cbic_core::encode_raw(frames[0].view(), &CodecConfig::default())
            .1
            .bits_per_pixel();
        assert!(
            bpp < intra_only / 2.0,
            "static sequence {bpp} bpp vs intra {intra_only} bpp"
        );
    }

    #[test]
    fn translating_sequence_uses_inter_frames() {
        let frames = synthetic_sequence(64, 64, 4, 3, 1);
        let stats = roundtrip(&frames, &VideoConfig::default());
        assert_eq!(stats.intra_frames, 1, "motion is within search range");
    }

    #[test]
    fn motion_search_finds_exact_translation() {
        // A texture where the *whole frame* translates by (3, 2) per frame:
        // frame t samples the fixed field at (x - 3t, y - 2t).
        let tex = |x: i64, y: i64| {
            cbic_image::synth::quantize(
                120.0 + 60.0 * cbic_image::synth::fbm(5, x as f64, y as f64, 8.0, 3, 0.5),
            )
        };
        let frame = |t: i64| Image::from_fn(64, 64, |x, y| tex(x as i64 - 3 * t, y as i64 - 2 * t));
        let (f0, f1) = (frame(0), frame(1));
        // Interior block, far from borders: the exact shift must win.
        let (dx, dy) = motion_search(&f1, &f0, 32, 32, 16, 7, SearchKind::Full);
        assert_eq!((dx, dy), (-3, -2));
    }

    #[test]
    fn scene_cut_falls_back_to_intra() {
        let mut frames = synthetic_sequence(48, 48, 2, 0, 0);
        // Replace frame 1 with unrelated content beyond any motion match.
        frames[1] = Image::from_fn(48, 48, |x, y| {
            (cbic_image::synth::lattice(99, x as i64, y as i64) * 255.0) as u8
        });
        let stats = roundtrip(&frames, &VideoConfig::default());
        assert_eq!(stats.intra_frames, 2, "scene cut must force intra");
    }

    #[test]
    fn non_multiple_block_dimensions() {
        let frames = synthetic_sequence(50, 35, 3, 1, 1);
        roundtrip(&frames, &VideoConfig::default());
    }

    #[test]
    fn diamond_search_is_lossless_and_close_to_full() {
        let frames = synthetic_sequence(96, 96, 5, 3, 2);
        let full_cfg = VideoConfig::default();
        let diamond_cfg = VideoConfig {
            search_kind: SearchKind::Diamond,
            ..VideoConfig::default()
        };
        let full = roundtrip(&frames, &full_cfg);
        let diamond = roundtrip(&frames, &diamond_cfg);
        // Fast search can only lose match quality, never correctness; and
        // on clean translation it should land very close to full search.
        assert!(
            diamond.payload_bits as f64 <= full.payload_bits as f64 * 1.25,
            "diamond {} bits vs full {} bits",
            diamond.payload_bits,
            full.payload_bits
        );
    }

    #[test]
    fn diamond_finds_exact_translation_on_clean_motion() {
        let tex = |x: i64, y: i64| {
            cbic_image::synth::quantize(
                120.0 + 60.0 * cbic_image::synth::fbm(5, x as f64, y as f64, 8.0, 3, 0.5),
            )
        };
        let frame = |t: i64| Image::from_fn(64, 64, |x, y| tex(x as i64 - 3 * t, y as i64 - 2 * t));
        let (f0, f1) = (frame(0), frame(1));
        let (dx, dy) = motion_search(&f1, &f0, 32, 32, 16, 7, SearchKind::Diamond);
        assert_eq!((dx, dy), (-3, -2));
    }

    #[test]
    fn corrupt_stream_errors() {
        let frames = synthetic_sequence(32, 32, 2, 1, 0);
        let (bytes, _) = encode_frames(&frames, &VideoConfig::default());
        let err = decode_frames(&bytes[..4], 32, 32, 2, &VideoConfig::default());
        assert!(err.is_err());
    }

    #[test]
    #[should_panic(expected = "share dimensions")]
    fn mismatched_dimensions_panic() {
        let a = Image::new(8, 8);
        let b = Image::new(9, 8);
        let _ = encode_frames(&[a, b], &VideoConfig::default());
    }
}
