//! The time multiplexer of Fig. 1: dynamic modeling reconfiguration.
//!
//! A mixed stream of general data, still images, and video sequences is
//! compressed chunk by chunk, each chunk routed to the matching modeling
//! front end ("the current trend of network convergence where visual and
//! general data are transmitted along the same physical channel" — the
//! paper's motivation for a universal compressor). The container records
//! which model handled each chunk so the decoder can reconfigure in
//! lock-step.

use crate::data::{DataModel, DataStats};
use crate::video::{decode_frames, encode_frames, VideoConfig, VideoStats};
use crate::UniversalError;
use cbic_image::{Image, ImageCodec};
use std::fmt;
use std::sync::Arc;

/// One unit of the multiplexed input stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Chunk {
    /// General byte data (files, telemetry, text).
    Data(Vec<u8>),
    /// A still grayscale image.
    Image(Image),
    /// A video sequence (equally sized frames).
    Video(Vec<Image>),
}

/// Which front end compressed a chunk, with its bit cost.
#[derive(Debug, Clone, PartialEq)]
pub enum ChunkReport {
    /// Handled by the data model.
    Data(DataStats),
    /// Handled by the image codec (stored container bits).
    Image(u64),
    /// Handled by the video model.
    Video(VideoStats),
}

/// The universal codec: one configuration per front end.
///
/// The image front end is any [`ImageCodec`] trait object — the paper's
/// "dynamic modeling reconfiguration" taken to its conclusion: the
/// multiplexer does not know which image codec it drives. Image chunks
/// store the codec's self-describing container, and the decoder routes
/// each one through the workspace registry
/// ([`crate::codecs::default_registry`]) by container magic, so a stream
/// may even mix image codecs.
///
/// # Examples
///
/// ```
/// use cbic_universal::dispatch::{Chunk, UniversalCodec};
///
/// let codec = UniversalCodec::default();
/// let chunks = vec![Chunk::Data(b"abc".repeat(50))];
/// let bytes = codec.encode(&chunks);
/// assert_eq!(codec.decode(&bytes)?, chunks);
/// # Ok::<(), cbic_universal::UniversalError>(())
/// ```
#[derive(Clone)]
pub struct UniversalCodec {
    /// General-data front end.
    pub data_model: DataModel,
    /// Still-image front end (defaults to the paper's codec).
    pub image_codec: Arc<dyn ImageCodec>,
    /// Video front end.
    pub video_config: VideoConfig,
}

impl Default for UniversalCodec {
    fn default() -> Self {
        Self {
            data_model: DataModel::default(),
            image_codec: Arc::new(cbic_core::Proposed::default()),
            video_config: VideoConfig::default(),
        }
    }
}

impl fmt::Debug for UniversalCodec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UniversalCodec")
            .field("data_model", &self.data_model)
            .field("image_codec", &self.image_codec.name())
            .field("video_config", &self.video_config)
            .finish()
    }
}

const MAGIC: &[u8; 4] = b"CBUN";
const VERSION: u8 = 2;

const TAG_DATA: u8 = 0;
const TAG_IMAGE: u8 = 1;
const TAG_VIDEO: u8 = 2;

impl UniversalCodec {
    /// Compresses a multiplexed chunk stream into one container.
    pub fn encode(&self, chunks: &[Chunk]) -> Vec<u8> {
        self.encode_with_report(chunks).0
    }

    /// Compresses and additionally reports which front end handled each
    /// chunk and at what cost — the "dynamic modeling reconfiguration"
    /// trace.
    pub fn encode_with_report(&self, chunks: &[Chunk]) -> (Vec<u8>, Vec<ChunkReport>) {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.extend_from_slice(&(chunks.len() as u32).to_le_bytes());
        let mut reports = Vec::with_capacity(chunks.len());
        for chunk in chunks {
            match chunk {
                Chunk::Data(raw) => {
                    let (payload, stats) = self.data_model.encode(raw);
                    out.push(TAG_DATA);
                    out.extend_from_slice(&(raw.len() as u32).to_le_bytes());
                    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                    out.extend_from_slice(&payload);
                    reports.push(ChunkReport::Data(stats));
                }
                Chunk::Image(img) => {
                    let payload = self.image_codec.compress(img);
                    out.push(TAG_IMAGE);
                    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                    out.extend_from_slice(&payload);
                    reports.push(ChunkReport::Image(payload.len() as u64 * 8));
                }
                Chunk::Video(frames) => {
                    let (payload, stats) = encode_frames(frames, &self.video_config);
                    let (w, h) = frames[0].dimensions();
                    out.push(TAG_VIDEO);
                    out.extend_from_slice(&(w as u32).to_le_bytes());
                    out.extend_from_slice(&(h as u32).to_le_bytes());
                    out.extend_from_slice(&(frames.len() as u32).to_le_bytes());
                    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                    out.extend_from_slice(&payload);
                    reports.push(ChunkReport::Video(stats));
                }
            }
        }
        (out, reports)
    }

    /// Decompresses a container produced by [`Self::encode`]. The data and
    /// video configurations must match the encoder's; image chunks are
    /// self-describing and auto-detected through the codec registry.
    ///
    /// # Errors
    ///
    /// Returns [`UniversalError`] on malformed containers.
    pub fn decode(&self, bytes: &[u8]) -> Result<Vec<Chunk>, UniversalError> {
        let registry = crate::codecs::default_registry();
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], UniversalError> {
            let s = bytes.get(*pos..*pos + n).ok_or(UniversalError::Truncated)?;
            *pos += n;
            Ok(s)
        };
        let take_u32 = |pos: &mut usize| -> Result<usize, UniversalError> {
            Ok(u32::from_le_bytes(take(pos, 4)?.try_into().expect("sized")) as usize)
        };

        if take(&mut pos, 4)? != MAGIC {
            return Err(UniversalError::BadMagic);
        }
        let version = take(&mut pos, 1)?[0];
        if version != VERSION {
            return Err(UniversalError::InvalidStream(format!(
                "unsupported version {version}"
            )));
        }
        let count = take_u32(&mut pos)?;
        if count > 1 << 20 {
            return Err(UniversalError::InvalidStream(
                "chunk count too large".into(),
            ));
        }
        let mut chunks = Vec::with_capacity(count);
        for _ in 0..count {
            let tag = take(&mut pos, 1)?[0];
            match tag {
                TAG_DATA => {
                    let raw_len = take_u32(&mut pos)?;
                    if raw_len > 1 << 28 {
                        return Err(UniversalError::InvalidStream("chunk too large".into()));
                    }
                    let payload_len = take_u32(&mut pos)?;
                    let payload = take(&mut pos, payload_len)?;
                    chunks.push(Chunk::Data(self.data_model.decode(payload, raw_len)));
                }
                TAG_IMAGE => {
                    let payload_len = take_u32(&mut pos)?;
                    let payload = take(&mut pos, payload_len)?;
                    // Route by magic through the workspace registry; fall
                    // back to this codec's own front end so streams from
                    // custom (unregistered) image codecs still decode.
                    let img = match registry.detect(payload) {
                        Some(codec) => codec.decompress(payload),
                        None => self.image_codec.decompress(payload),
                    }
                    .map_err(|e| UniversalError::InvalidStream(e.to_string()))?;
                    chunks.push(Chunk::Image(img));
                }
                TAG_VIDEO => {
                    let w = take_u32(&mut pos)?;
                    let h = take_u32(&mut pos)?;
                    let frames = take_u32(&mut pos)?;
                    if w == 0
                        || h == 0
                        || frames == 0
                        || w.saturating_mul(h).saturating_mul(frames) > 1 << 28
                    {
                        return Err(UniversalError::InvalidStream("bad video dims".into()));
                    }
                    let payload_len = take_u32(&mut pos)?;
                    let payload = take(&mut pos, payload_len)?;
                    chunks.push(Chunk::Video(decode_frames(
                        payload,
                        w,
                        h,
                        frames,
                        &self.video_config,
                    )?));
                }
                t => {
                    return Err(UniversalError::InvalidStream(format!(
                        "unknown chunk tag {t}"
                    )))
                }
            }
        }
        Ok(chunks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::video::synthetic_sequence;
    use cbic_image::corpus::CorpusImage;

    fn codec() -> UniversalCodec {
        UniversalCodec::default()
    }

    #[test]
    fn mixed_stream_roundtrip() {
        let chunks = vec![
            Chunk::Data(b"telemetry frame 0001: ok; telemetry frame 0002: ok".repeat(20)),
            Chunk::Image(CorpusImage::Lena.generate(40, 40)),
            Chunk::Video(synthetic_sequence(32, 32, 3, 2, 1)),
            Chunk::Data(vec![0u8; 500]),
        ];
        let c = codec();
        let bytes = c.encode(&chunks);
        assert_eq!(c.decode(&bytes).unwrap(), chunks);
    }

    #[test]
    fn empty_stream_roundtrip() {
        let c = codec();
        let bytes = c.encode(&[]);
        assert_eq!(c.decode(&bytes).unwrap(), Vec::<Chunk>::new());
    }

    #[test]
    fn report_identifies_front_ends() {
        let chunks = vec![
            Chunk::Data(b"abc".repeat(100)),
            Chunk::Image(CorpusImage::Zelda.generate(24, 24)),
            Chunk::Video(synthetic_sequence(24, 24, 2, 1, 0)),
        ];
        let (_, reports) = codec().encode_with_report(&chunks);
        assert!(matches!(reports[0], ChunkReport::Data(_)));
        assert!(matches!(reports[1], ChunkReport::Image(_)));
        assert!(matches!(reports[2], ChunkReport::Video(_)));
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let c = codec();
        let mut bytes = c.encode(&[Chunk::Data(vec![1, 2, 3])]);
        let mut broken = bytes.clone();
        broken[0] = b'X';
        assert_eq!(c.decode(&broken), Err(UniversalError::BadMagic));
        bytes[4] = 99;
        assert!(matches!(
            c.decode(&bytes),
            Err(UniversalError::InvalidStream(_))
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let c = codec();
        let bytes = c.encode(&[
            Chunk::Data(b"hello world".to_vec()),
            Chunk::Image(CorpusImage::Boat.generate(16, 16)),
        ]);
        for cut in [0, 3, 8, 12, bytes.len() - 1] {
            assert!(c.decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn compression_actually_happens_on_mixed_content() {
        let chunks = vec![
            Chunk::Data(b"log line: everything nominal\n".repeat(100)),
            Chunk::Image(CorpusImage::Zelda.generate(64, 64)),
        ];
        let raw_size = 100 * 29 + 64 * 64;
        let bytes = codec().encode(&chunks);
        assert!(
            bytes.len() < raw_size,
            "container {} vs raw {raw_size}",
            bytes.len()
        );
    }

    #[test]
    fn custom_unregistered_image_codec_roundtrips() {
        // A codec outside the workspace registry: decode falls back to the
        // stream codec's own image front end.
        use cbic_image::ImageError;

        #[derive(Debug)]
        struct Stored;

        impl ImageCodec for Stored {
            fn name(&self) -> &'static str {
                "stored"
            }
            fn magic(&self) -> Option<[u8; 4]> {
                Some(*b"XSTO")
            }
            fn compress(&self, img: &Image) -> Vec<u8> {
                let mut out = b"XSTO".to_vec();
                out.extend_from_slice(&(img.width() as u32).to_le_bytes());
                out.extend_from_slice(&(img.height() as u32).to_le_bytes());
                out.extend_from_slice(img.pixels());
                out
            }
            fn decompress(&self, bytes: &[u8]) -> Result<Image, ImageError> {
                let dims = bytes.get(4..12).ok_or(ImageError::Io("truncated".into()))?;
                let w = u32::from_le_bytes(dims[0..4].try_into().expect("sized")) as usize;
                let h = u32::from_le_bytes(dims[4..8].try_into().expect("sized")) as usize;
                Image::from_vec(w, h, bytes[12..].to_vec())
            }
        }

        let codec = UniversalCodec {
            image_codec: Arc::new(Stored),
            ..UniversalCodec::default()
        };
        let img = CorpusImage::Boat.generate(16, 16);
        let bytes = codec.encode(&[Chunk::Image(img.clone())]);
        assert_eq!(codec.decode(&bytes).unwrap(), vec![Chunk::Image(img)]);
    }
}
