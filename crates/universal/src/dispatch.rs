//! The time multiplexer of Fig. 1: dynamic modeling reconfiguration.
//!
//! A mixed stream of general data, still images, and video sequences is
//! compressed chunk by chunk, each chunk routed to the matching modeling
//! front end ("the current trend of network convergence where visual and
//! general data are transmitted along the same physical channel" — the
//! paper's motivation for a universal compressor). The container records
//! which model handled each chunk so the decoder can reconfigure in
//! lock-step.

use crate::data::{DataModel, DataStats};
use crate::video::{decode_frames, encode_frames, VideoConfig, VideoStats};
use crate::UniversalError;
use cbic_image::{CbicError, Codec, DecodeOptions, EncodeOptions, Image};
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// One unit of the multiplexed input stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Chunk {
    /// General byte data (files, telemetry, text).
    Data(Vec<u8>),
    /// A still grayscale image.
    Image(Image),
    /// A video sequence (equally sized frames).
    Video(Vec<Image>),
}

/// Which front end compressed a chunk, with its bit cost.
#[derive(Debug, Clone, PartialEq)]
pub enum ChunkReport {
    /// Handled by the data model.
    Data(DataStats),
    /// Handled by the image codec (stored container bits).
    Image(u64),
    /// Handled by the video model.
    Video(VideoStats),
}

/// The universal codec: one configuration per front end.
///
/// The image front end is any [`Codec`] trait object — the paper's
/// "dynamic modeling reconfiguration" taken to its conclusion: the
/// multiplexer does not know which image codec it drives. Image chunks
/// store the codec's self-describing container, and the decoder routes
/// each one through the workspace registry
/// ([`crate::codecs::default_registry`]) by container magic, so a stream
/// may even mix image codecs.
///
/// # Examples
///
/// ```
/// use cbic_universal::dispatch::{Chunk, UniversalCodec};
///
/// let codec = UniversalCodec::default();
/// let chunks = vec![Chunk::Data(b"abc".repeat(50))];
/// let bytes = codec.encode(&chunks);
/// assert_eq!(codec.decode(&bytes)?, chunks);
/// # Ok::<(), cbic_universal::UniversalError>(())
/// ```
#[derive(Clone)]
pub struct UniversalCodec {
    /// General-data front end.
    pub data_model: DataModel,
    /// Still-image front end (defaults to the paper's codec).
    pub image_codec: Arc<dyn Codec>,
    /// Video front end.
    pub video_config: VideoConfig,
}

impl Default for UniversalCodec {
    fn default() -> Self {
        Self {
            data_model: DataModel::default(),
            image_codec: Arc::new(cbic_core::Proposed::default()),
            video_config: VideoConfig::default(),
        }
    }
}

impl fmt::Debug for UniversalCodec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UniversalCodec")
            .field("data_model", &self.data_model)
            .field("image_codec", &self.image_codec.name())
            .field("video_config", &self.video_config)
            .finish()
    }
}

const MAGIC: &[u8; 4] = b"CBUN";
const VERSION: u8 = 2;

const TAG_DATA: u8 = 0;
const TAG_IMAGE: u8 = 1;
const TAG_VIDEO: u8 = 2;

/// Ceiling on any single length field in the container (2^28 bytes /
/// pixels). A corrupt stream may claim arbitrary lengths; nothing larger
/// than this is ever read or allocated.
const MAX_SEGMENT: usize = 1 << 28;

impl UniversalCodec {
    /// Compresses a multiplexed chunk stream into one container.
    ///
    /// # Panics
    ///
    /// Panics if an image chunk exceeds the image codec's container limit
    /// (2^28 pixels for the workspace codecs). Use [`Self::encode_to`]
    /// for a fallible path.
    pub fn encode(&self, chunks: &[Chunk]) -> Vec<u8> {
        self.encode_with_report(chunks).0
    }

    /// Compresses and additionally reports which front end handled each
    /// chunk and at what cost — the "dynamic modeling reconfiguration"
    /// trace.
    ///
    /// # Panics
    ///
    /// As [`Self::encode`]: an image chunk beyond the image codec's
    /// container limit panics; [`Self::encode_to`] is the fallible path.
    pub fn encode_with_report(&self, chunks: &[Chunk]) -> (Vec<u8>, Vec<ChunkReport>) {
        let mut out = Vec::new();
        let reports = self
            .encode_to(chunks, &mut out)
            .expect("Vec<u8> writes cannot fail and chunk images fit the container");
        (out, reports)
    }

    /// Streaming [`Self::encode`]: writes the container into any
    /// [`io::Write`], one length-prefixed segment per chunk, buffering only
    /// the segment currently being coded. The bytes are identical to
    /// [`Self::encode`]'s.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    pub fn encode_to<W: Write>(
        &self,
        chunks: &[Chunk],
        out: &mut W,
    ) -> io::Result<Vec<ChunkReport>> {
        out.write_all(MAGIC)?;
        out.write_all(&[VERSION])?;
        out.write_all(&(chunks.len() as u32).to_le_bytes())?;
        let mut reports = Vec::with_capacity(chunks.len());
        for chunk in chunks {
            match chunk {
                Chunk::Data(raw) => {
                    let (payload, stats) = self.data_model.encode(raw);
                    out.write_all(&[TAG_DATA])?;
                    out.write_all(&(raw.len() as u32).to_le_bytes())?;
                    out.write_all(&(payload.len() as u32).to_le_bytes())?;
                    out.write_all(&payload)?;
                    reports.push(ChunkReport::Data(stats));
                }
                Chunk::Image(img) => {
                    let payload = self
                        .image_codec
                        .encode_vec(img.view(), &EncodeOptions::default())
                        .map_err(io::Error::from)?;
                    out.write_all(&[TAG_IMAGE])?;
                    out.write_all(&(payload.len() as u32).to_le_bytes())?;
                    out.write_all(&payload)?;
                    reports.push(ChunkReport::Image(payload.len() as u64 * 8));
                }
                Chunk::Video(frames) => {
                    let (payload, stats) = encode_frames(frames, &self.video_config);
                    let (w, h) = frames[0].dimensions();
                    out.write_all(&[TAG_VIDEO])?;
                    out.write_all(&(w as u32).to_le_bytes())?;
                    out.write_all(&(h as u32).to_le_bytes())?;
                    out.write_all(&(frames.len() as u32).to_le_bytes())?;
                    out.write_all(&(payload.len() as u32).to_le_bytes())?;
                    out.write_all(&payload)?;
                    reports.push(ChunkReport::Video(stats));
                }
            }
        }
        Ok(reports)
    }

    /// Decompresses a container produced by [`Self::encode`]. The data and
    /// video configurations must match the encoder's; image chunks are
    /// self-describing and auto-detected through the codec registry.
    ///
    /// # Errors
    ///
    /// Returns [`UniversalError`] on malformed containers.
    pub fn decode(&self, bytes: &[u8]) -> Result<Vec<Chunk>, UniversalError> {
        self.decode_from(&mut &bytes[..])
    }

    /// Streaming [`Self::decode`]: reads length-prefixed segments off any
    /// [`io::Read`] one at a time, so a multiplexed stream is routed
    /// without ever being slurped — peak compressed-side buffering is the
    /// largest single segment.
    ///
    /// # Errors
    ///
    /// [`UniversalError::Truncated`] when the stream ends inside a declared
    /// segment, [`UniversalError::Io`] on transport failures, and the
    /// usual malformed-container errors otherwise.
    pub fn decode_from<R: Read>(&self, input: &mut R) -> Result<Vec<Chunk>, UniversalError> {
        let registry = crate::codecs::default_registry();
        let io_err = |e: io::Error| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                UniversalError::Truncated
            } else {
                UniversalError::Io(e.to_string())
            }
        };
        fn fixed<const N: usize, R: Read>(
            input: &mut R,
            io_err: &impl Fn(io::Error) -> UniversalError,
        ) -> Result<[u8; N], UniversalError> {
            let mut buf = [0u8; N];
            input.read_exact(&mut buf).map_err(io_err)?;
            Ok(buf)
        }
        let take_u32 = |input: &mut R| -> Result<usize, UniversalError> {
            Ok(u32::from_le_bytes(fixed::<4, R>(input, &io_err)?) as usize)
        };
        // Reads a `len`-byte segment. `take` bounds the read by what the
        // stream actually holds, so a forged length can neither over-read
        // nor force a huge up-front allocation.
        let segment = |input: &mut R, len: usize| -> Result<Vec<u8>, UniversalError> {
            if len > MAX_SEGMENT {
                return Err(UniversalError::InvalidStream(format!(
                    "segment of {len} bytes exceeds the container limit"
                )));
            }
            let mut payload = Vec::new();
            input
                .take(len as u64)
                .read_to_end(&mut payload)
                .map_err(&io_err)?;
            if payload.len() != len {
                return Err(UniversalError::Truncated);
            }
            Ok(payload)
        };

        if fixed::<4, R>(input, &io_err)? != *MAGIC {
            return Err(UniversalError::BadMagic);
        }
        let version = fixed::<1, R>(input, &io_err)?[0];
        if version != VERSION {
            return Err(UniversalError::InvalidStream(format!(
                "unsupported version {version}"
            )));
        }
        let count = take_u32(input)?;
        if count > 1 << 20 {
            return Err(UniversalError::InvalidStream(
                "chunk count too large".into(),
            ));
        }
        let mut chunks = Vec::with_capacity(count.min(1 << 10));
        for _ in 0..count {
            let tag = fixed::<1, R>(input, &io_err)?[0];
            match tag {
                TAG_DATA => {
                    let raw_len = take_u32(input)?;
                    if raw_len > MAX_SEGMENT {
                        return Err(UniversalError::InvalidStream("chunk too large".into()));
                    }
                    let payload_len = take_u32(input)?;
                    let payload = segment(input, payload_len)?;
                    chunks.push(Chunk::Data(self.data_model.decode(&payload, raw_len)));
                }
                TAG_IMAGE => {
                    let payload_len = take_u32(input)?;
                    let payload = segment(input, payload_len)?;
                    // Route by magic through the workspace registry; fall
                    // back to this codec's own front end so streams from
                    // custom (unregistered) image codecs still decode.
                    let opts = DecodeOptions::default();
                    // Keep the codec error structured where this layer can:
                    // a truncated image payload is a truncated stream, not
                    // an opaque message.
                    let img = match registry.detect(&payload) {
                        Some(codec) => codec.decode_vec(&payload, &opts),
                        None => self.image_codec.decode_vec(&payload, &opts),
                    }
                    .map_err(|e| match e {
                        CbicError::Truncated => UniversalError::Truncated,
                        other => UniversalError::InvalidStream(other.to_string()),
                    })?;
                    chunks.push(Chunk::Image(img));
                }
                TAG_VIDEO => {
                    let w = take_u32(input)?;
                    let h = take_u32(input)?;
                    let frames = take_u32(input)?;
                    if w == 0
                        || h == 0
                        || frames == 0
                        || w.saturating_mul(h).saturating_mul(frames) > MAX_SEGMENT
                    {
                        return Err(UniversalError::InvalidStream("bad video dims".into()));
                    }
                    let payload_len = take_u32(input)?;
                    let payload = segment(input, payload_len)?;
                    chunks.push(Chunk::Video(decode_frames(
                        &payload,
                        w,
                        h,
                        frames,
                        &self.video_config,
                    )?));
                }
                t => {
                    return Err(UniversalError::InvalidStream(format!(
                        "unknown chunk tag {t}"
                    )))
                }
            }
        }
        Ok(chunks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::video::synthetic_sequence;
    use cbic_image::corpus::CorpusImage;

    fn codec() -> UniversalCodec {
        UniversalCodec::default()
    }

    #[test]
    fn mixed_stream_roundtrip() {
        let chunks = vec![
            Chunk::Data(b"telemetry frame 0001: ok; telemetry frame 0002: ok".repeat(20)),
            Chunk::Image(CorpusImage::Lena.generate(40, 40)),
            Chunk::Video(synthetic_sequence(32, 32, 3, 2, 1)),
            Chunk::Data(vec![0u8; 500]),
        ];
        let c = codec();
        let bytes = c.encode(&chunks);
        assert_eq!(c.decode(&bytes).unwrap(), chunks);
    }

    #[test]
    fn empty_stream_roundtrip() {
        let c = codec();
        let bytes = c.encode(&[]);
        assert_eq!(c.decode(&bytes).unwrap(), Vec::<Chunk>::new());
    }

    #[test]
    fn report_identifies_front_ends() {
        let chunks = vec![
            Chunk::Data(b"abc".repeat(100)),
            Chunk::Image(CorpusImage::Zelda.generate(24, 24)),
            Chunk::Video(synthetic_sequence(24, 24, 2, 1, 0)),
        ];
        let (_, reports) = codec().encode_with_report(&chunks);
        assert!(matches!(reports[0], ChunkReport::Data(_)));
        assert!(matches!(reports[1], ChunkReport::Image(_)));
        assert!(matches!(reports[2], ChunkReport::Video(_)));
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let c = codec();
        let mut bytes = c.encode(&[Chunk::Data(vec![1, 2, 3])]);
        let mut broken = bytes.clone();
        broken[0] = b'X';
        assert_eq!(c.decode(&broken), Err(UniversalError::BadMagic));
        bytes[4] = 99;
        assert!(matches!(
            c.decode(&bytes),
            Err(UniversalError::InvalidStream(_))
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let c = codec();
        let bytes = c.encode(&[
            Chunk::Data(b"hello world".to_vec()),
            Chunk::Image(CorpusImage::Boat.generate(16, 16)),
        ]);
        for cut in [0, 3, 8, 12, bytes.len() - 1] {
            assert!(c.decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn streaming_encode_is_byte_identical_to_buffered() {
        let chunks = vec![
            Chunk::Data(b"stream me ".repeat(40)),
            Chunk::Image(CorpusImage::Peppers.generate(24, 24)),
            Chunk::Video(synthetic_sequence(16, 16, 2, 1, 1)),
        ];
        let c = codec();
        let buffered = c.encode(&chunks);
        let mut streamed = Vec::new();
        let reports = c.encode_to(&chunks, &mut streamed).unwrap();
        assert_eq!(streamed, buffered);
        assert_eq!(reports.len(), chunks.len());
    }

    #[test]
    fn streaming_decode_routes_segments_from_a_reader() {
        let chunks = vec![
            Chunk::Data(b"abc".repeat(50)),
            Chunk::Image(CorpusImage::Zelda.generate(20, 20)),
        ];
        let c = codec();
        let bytes = c.encode(&chunks);
        // Hand the decoder a reader that trickles bytes in small pieces to
        // prove nothing depends on slurping.
        struct Trickle<'a>(&'a [u8]);
        impl Read for Trickle<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                let n = buf.len().min(self.0.len()).min(7);
                buf[..n].copy_from_slice(&self.0[..n]);
                self.0 = &self.0[n..];
                Ok(n)
            }
        }
        assert_eq!(c.decode_from(&mut Trickle(&bytes)).unwrap(), chunks);
    }

    #[test]
    fn forged_segment_lengths_error_without_allocation() {
        let c = codec();
        let mut bytes = c.encode(&[Chunk::Data(vec![7u8; 100])]);
        // Forge the payload length to something enormous.
        bytes[14..18].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            c.decode(&bytes),
            Err(UniversalError::InvalidStream(_))
        ));
    }

    #[test]
    fn compression_actually_happens_on_mixed_content() {
        let chunks = vec![
            Chunk::Data(b"log line: everything nominal\n".repeat(100)),
            Chunk::Image(CorpusImage::Zelda.generate(64, 64)),
        ];
        let raw_size = 100 * 29 + 64 * 64;
        let bytes = codec().encode(&chunks);
        assert!(
            bytes.len() < raw_size,
            "container {} vs raw {raw_size}",
            bytes.len()
        );
    }

    #[test]
    fn custom_unregistered_image_codec_roundtrips() {
        // A codec outside the workspace registry: decode falls back to the
        // stream codec's own image front end.
        use cbic_image::{CbicError, EncodeStats};

        #[derive(Debug)]
        struct Stored;

        impl Codec for Stored {
            fn name(&self) -> &'static str {
                "stored"
            }
            fn magic(&self) -> Option<[u8; 4]> {
                Some(*b"XSTO")
            }
            fn encode(
                &self,
                img: cbic_image::ImageView<'_>,
                _opts: &EncodeOptions,
                sink: &mut dyn Write,
            ) -> Result<EncodeStats, CbicError> {
                sink.write_all(b"XSTO")?;
                sink.write_all(&(img.width() as u32).to_le_bytes())?;
                sink.write_all(&(img.height() as u32).to_le_bytes())?;
                for row in img.rows() {
                    let bytes: Vec<u8> = row.iter().map(|&s| s as u8).collect();
                    sink.write_all(&bytes)?;
                }
                Ok(EncodeStats::new(
                    img.pixel_count() as u64,
                    12 + img.pixel_count() as u64,
                    None,
                ))
            }
            fn decode(
                &self,
                source: &mut dyn Read,
                _opts: &DecodeOptions,
            ) -> Result<Image, CbicError> {
                let mut head = [0u8; 12];
                source.read_exact(&mut head)?;
                let w = u32::from_le_bytes(head[4..8].try_into().expect("sized")) as usize;
                let h = u32::from_le_bytes(head[8..12].try_into().expect("sized")) as usize;
                let mut pixels = vec![0u8; w.saturating_mul(h)];
                source.read_exact(&mut pixels)?;
                Image::from_vec(w, h, pixels).map_err(CbicError::from)
            }
        }

        let codec = UniversalCodec {
            image_codec: Arc::new(Stored),
            ..UniversalCodec::default()
        };
        let img = CorpusImage::Boat.generate(16, 16);
        let bytes = codec.encode(&[Chunk::Image(img.clone())]);
        assert_eq!(codec.decode(&bytes).unwrap(), vec![Chunk::Image(img)]);
    }
}
