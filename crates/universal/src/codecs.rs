//! The workspace codec registry: every [`Codec`] the universal system can
//! reconfigure its image front end to.
//!
//! This is the single place a new codec is registered. The CLI, the
//! Table 1 benchmark harness, and the chunk multiplexer in
//! [`dispatch`](crate::dispatch) all enumerate codecs from here instead of
//! hard-coding per-codec `match` arms.

use cbic_core::tiles::Tiled;
use cbic_image::{Codec, CodecRegistry};

/// The four Table 1 codecs — the paper's scheme and its three baselines —
/// in the paper's column order.
///
/// Every entry is a [`Codec`]: the baselines buffer their containers when
/// streamed, while the proposed codec runs its bounded-memory row
/// pipeline through the same `encode`/`decode` signatures.
///
/// # Examples
///
/// ```
/// use cbic_image::corpus::CorpusImage;
/// use cbic_image::{DecodeOptions, EncodeOptions};
/// use cbic_universal::codecs::all_codecs;
///
/// let img = CorpusImage::Lena.generate(32, 32);
/// let (enc, dec) = (EncodeOptions::default(), DecodeOptions::default());
/// for codec in all_codecs() {
///     let bytes = codec.encode_vec(img.view(), &enc).unwrap();
///     assert_eq!(codec.decode_vec(&bytes, &dec).unwrap(), img, "{}", codec.name());
/// }
/// ```
pub fn all_codecs() -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(cbic_jpegls::Jpegls),
        Box::new(cbic_slp::Slp),
        Box::new(cbic_calic::Calic),
        Box::new(cbic_core::Proposed::default()),
    ]
}

/// A registry of every decodable container format: the four Table 1
/// codecs plus the tiled multi-core variant. Schedules (worker threads,
/// band counts) are chosen per call through
/// [`EncodeOptions`](cbic_image::EncodeOptions) /
/// [`DecodeOptions`](cbic_image::DecodeOptions), so one registry serves
/// every configuration.
///
/// Registration is collision-checked: a new codec whose name or container
/// magic clashes with an existing one panics here instead of silently
/// losing auto-detection (see
/// [`CodecRegistry::try_register`](cbic_image::registry::CodecRegistry::try_register)).
pub fn default_registry() -> CodecRegistry {
    let mut registry = CodecRegistry::new();
    for codec in all_codecs() {
        registry.register(codec);
    }
    registry.register(Box::new(Tiled::default()));
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbic_image::corpus::CorpusImage;
    use cbic_image::{DecodeOptions, EncodeOptions};

    #[test]
    fn table1_codecs_are_all_registered() {
        let names: Vec<_> = all_codecs().iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["jpegls", "slp", "calic", "proposed"]);
    }

    #[test]
    fn registry_detects_every_container_format() {
        let registry = default_registry();
        assert_eq!(registry.len(), 5);
        let img = CorpusImage::Peppers.generate(24, 24);
        for codec in registry.codecs() {
            let bytes = codec
                .encode_vec(img.view(), &EncodeOptions::default())
                .unwrap();
            let detected = registry.detect(&bytes).expect("magic registered");
            assert_eq!(detected.name(), codec.name());
            assert_eq!(
                registry
                    .decode_auto(&bytes, &DecodeOptions::default())
                    .unwrap(),
                img
            );
        }
    }

    #[test]
    fn magics_are_unique() {
        let registry = default_registry();
        let mut seen = std::collections::HashSet::new();
        for codec in registry.codecs() {
            let magic = codec.magic().expect("all workspace codecs have magics");
            assert!(seen.insert(magic), "duplicate magic {magic:?}");
        }
    }
}
