//! The workspace codec registry: every [`ImageCodec`] the universal system
//! can reconfigure its image front end to.
//!
//! This is the single place a new codec is registered. The CLI, the
//! Table 1 benchmark harness, and the chunk multiplexer in [`dispatch`]
//! (crate::dispatch) all enumerate codecs from here instead of hard-coding
//! per-codec `match` arms.

use cbic_core::tiles::{Parallelism, Tiled};
use cbic_image::{CodecRegistry, StreamingCodec};

/// The four Table 1 codecs — the paper's scheme and its three baselines —
/// in the paper's column order.
///
/// Every entry is a [`StreamingCodec`]: the baselines fall back to their
/// whole-buffer paths when streamed, while the proposed codec runs its
/// bounded-memory row pipeline.
///
/// # Examples
///
/// ```
/// use cbic_universal::codecs::all_codecs;
/// use cbic_image::corpus::CorpusImage;
///
/// let img = CorpusImage::Lena.generate(32, 32);
/// for codec in all_codecs() {
///     let bytes = codec.compress(&img);
///     assert_eq!(codec.decompress(&bytes).unwrap(), img, "{}", codec.name());
/// }
/// ```
pub fn all_codecs() -> Vec<Box<dyn StreamingCodec>> {
    vec![
        Box::new(cbic_jpegls::Jpegls),
        Box::new(cbic_slp::Slp),
        Box::new(cbic_calic::Calic),
        Box::new(cbic_core::Proposed::default()),
    ]
}

/// A registry of every decodable container format: the four Table 1
/// codecs plus the tiled multi-core variant, with `par` workers driving
/// banded coding.
///
/// Registration is collision-checked: a new codec whose name or container
/// magic clashes with an existing one panics here instead of silently
/// losing auto-detection (see
/// [`CodecRegistry::try_register`](cbic_image::registry::CodecRegistry::try_register)).
pub fn registry_with(par: Parallelism) -> CodecRegistry {
    let mut registry = CodecRegistry::new();
    for codec in all_codecs() {
        registry.register(codec);
    }
    registry.register(Box::new(Tiled {
        parallelism: par,
        ..Tiled::default()
    }));
    registry
}

/// [`registry_with`] at [`Parallelism::Auto`] — the default decode path.
pub fn default_registry() -> CodecRegistry {
    registry_with(Parallelism::Auto)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbic_image::corpus::CorpusImage;

    #[test]
    fn table1_codecs_are_all_registered() {
        let names: Vec<_> = all_codecs().iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["jpegls", "slp", "calic", "proposed"]);
    }

    #[test]
    fn registry_detects_every_container_format() {
        let registry = default_registry();
        assert_eq!(registry.len(), 5);
        let img = CorpusImage::Peppers.generate(24, 24);
        for codec in registry.codecs() {
            let bytes = codec.compress(&img);
            let detected = registry.detect(&bytes).expect("magic registered");
            assert_eq!(detected.name(), codec.name());
            assert_eq!(registry.decompress_auto(&bytes).unwrap(), img);
        }
    }

    #[test]
    fn magics_are_unique() {
        let registry = default_registry();
        let mut seen = std::collections::HashSet::new();
        for codec in registry.codecs() {
            let magic = codec.magic().expect("all workspace codecs have magics");
            assert!(seen.insert(magic), "duplicate magic {magic:?}");
        }
    }
}
