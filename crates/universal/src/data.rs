//! Lossless data modeling: a finite-context byte model over the shared
//! tree estimator and binary arithmetic coder.
//!
//! This is the "Lossless Data Modeling → Context Modeling" box of the
//! paper's Fig. 1 — general-purpose byte streams coded with the same back
//! end as the image path. Conditioning context is the previous `order`
//! bytes (order 2 hashes the pair into 4096 buckets, a standard trick to
//! keep the tree memory bounded).

use cbic_arith::{BinaryDecoder, BinaryEncoder, EstimatorConfig, SymbolCoder};
use cbic_bitio::{BitReader, BitWriter};

/// Model order: how many preceding bytes select the coding context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Order {
    /// No context: one adaptive distribution.
    Zero,
    /// Condition on the previous byte (256 contexts).
    #[default]
    One,
    /// Condition on the previous two bytes, hashed to 4096 contexts.
    Two,
}

impl Order {
    /// Number of coding contexts this order instantiates.
    pub fn contexts(self) -> usize {
        match self {
            Order::Zero => 1,
            Order::One => 256,
            Order::Two => 4096,
        }
    }

    /// Context index for the byte following `prev1` (most recent) and
    /// `prev2`.
    #[inline]
    fn context(self, prev1: u8, prev2: u8) -> usize {
        match self {
            Order::Zero => 0,
            Order::One => usize::from(prev1),
            Order::Two => {
                // Cheap 2-byte hash into 12 bits; collisions just share
                // statistics.
                (usize::from(prev1) << 4) ^ (usize::from(prev2).wrapping_mul(0x9E) & 0xFFF)
            }
        }
    }
}

/// Statistics from one data-model encode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataStats {
    /// Bytes coded.
    pub bytes: u64,
    /// Payload bits produced.
    pub payload_bits: u64,
    /// Symbols escaped to the static tree.
    pub escapes: u64,
}

impl DataStats {
    /// Compressed size in bits per byte (8.0 = no compression).
    pub fn bits_per_byte(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.payload_bits as f64 / self.bytes as f64
        }
    }
}

/// The adaptive byte model.
///
/// # Examples
///
/// ```
/// use cbic_universal::data::{DataModel, Order};
///
/// let model = DataModel::new(Order::One);
/// let input = b"abcabcabcabcabcabcabcabc".to_vec();
/// let (bytes, stats) = model.encode(&input);
/// assert!(stats.bits_per_byte() < 8.0);
/// assert_eq!(model.decode(&bytes, input.len()), input);
/// ```
#[derive(Debug, Clone)]
pub struct DataModel {
    order: Order,
    estimator: EstimatorConfig,
}

impl Default for DataModel {
    fn default() -> Self {
        Self::new(Order::One)
    }
}

impl DataModel {
    /// Creates a model of the given order with the default estimator.
    pub fn new(order: Order) -> Self {
        Self {
            order,
            estimator: EstimatorConfig::default(),
        }
    }

    /// Creates a model with an explicit estimator configuration.
    pub fn with_estimator(order: Order, estimator: EstimatorConfig) -> Self {
        Self { order, estimator }
    }

    /// The model order.
    pub fn order(&self) -> Order {
        self.order
    }

    /// Encodes `input`, returning the payload and statistics.
    pub fn encode(&self, input: &[u8]) -> (Vec<u8>, DataStats) {
        let mut coder = SymbolCoder::new(self.order.contexts(), self.estimator);
        let mut enc = BinaryEncoder::new(BitWriter::new());
        let (mut p1, mut p2) = (0u8, 0u8);
        for &b in input {
            coder.encode(&mut enc, self.order.context(p1, p2), b);
            p2 = p1;
            p1 = b;
        }
        let payload_bits = enc.bits_written();
        let escapes = coder.stats().escapes;
        let bytes = enc.finish().into_bytes();
        (
            bytes,
            DataStats {
                bytes: input.len() as u64,
                payload_bits,
                escapes,
            },
        )
    }

    /// Decodes `len` bytes from a payload produced by [`Self::encode`].
    pub fn decode(&self, payload: &[u8], len: usize) -> Vec<u8> {
        let mut coder = SymbolCoder::new(self.order.contexts(), self.estimator);
        let mut dec = BinaryDecoder::new(BitReader::new(payload));
        let mut out = Vec::with_capacity(len);
        let (mut p1, mut p2) = (0u8, 0u8);
        for _ in 0..len {
            let b = coder.decode(&mut dec, self.order.context(p1, p2));
            out.push(b);
            p2 = p1;
            p1 = b;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(order: Order, input: &[u8]) -> DataStats {
        let model = DataModel::new(order);
        let (bytes, stats) = model.encode(input);
        assert_eq!(model.decode(&bytes, input.len()), input, "{order:?}");
        stats
    }

    #[test]
    fn roundtrip_all_orders() {
        let text = b"the quick brown fox jumps over the lazy dog, repeatedly \
                     and deterministically, to build up some statistics."
            .repeat(10);
        for order in [Order::Zero, Order::One, Order::Two] {
            roundtrip(order, &text);
        }
    }

    #[test]
    fn empty_input() {
        for order in [Order::Zero, Order::One, Order::Two] {
            let stats = roundtrip(order, b"");
            assert_eq!(stats.bytes, 0);
        }
    }

    #[test]
    fn all_byte_values_roundtrip() {
        let input: Vec<u8> = (0..=255u8).cycle().take(2048).collect();
        roundtrip(Order::One, &input);
    }

    #[test]
    fn repetitive_text_compresses_well() {
        let input = b"abababababababab".repeat(200);
        let stats = roundtrip(Order::One, &input);
        assert!(
            stats.bits_per_byte() < 1.0,
            "got {} bits/byte",
            stats.bits_per_byte()
        );
    }

    #[test]
    fn higher_order_wins_on_structured_text() {
        let input = b"the rain in spain stays mainly in the plain. ".repeat(80);
        let o0 = roundtrip(Order::Zero, &input).bits_per_byte();
        let o1 = roundtrip(Order::One, &input).bits_per_byte();
        let o2 = roundtrip(Order::Two, &input).bits_per_byte();
        assert!(o1 < o0, "order-1 {o1} vs order-0 {o0}");
        assert!(o2 < o1, "order-2 {o2} vs order-1 {o1}");
    }

    #[test]
    fn random_bytes_do_not_explode() {
        let input: Vec<u8> = (0..4096u32)
            .map(|i| (cbic_image::synth::lattice(7, i as i64, 0) * 256.0) as u8)
            .collect();
        let stats = roundtrip(Order::One, &input);
        assert!(stats.bits_per_byte() < 9.3);
    }

    #[test]
    fn context_counts() {
        assert_eq!(Order::Zero.contexts(), 1);
        assert_eq!(Order::One.contexts(), 256);
        assert_eq!(Order::Two.contexts(), 4096);
    }

    #[test]
    fn order2_context_stays_in_range() {
        for p1 in [0u8, 1, 127, 255] {
            for p2 in [0u8, 3, 200, 255] {
                assert!(Order::Two.context(p1, p2) < 4096);
            }
        }
    }
}
