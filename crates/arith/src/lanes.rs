//! Lane-interleaved arithmetic coding: N independent coder lanes over a
//! round-robin-striped decision stream.
//!
//! A single binary arithmetic coder serializes every decision: each one
//! reads the interval registers the previous decision wrote, so the CPU
//! sees one long dependency chain and its pipelines sit idle. The fix —
//! standard in rANS/CABAC accelerator designs — is to keep **N complete
//! interval states** and deal decisions across them round-robin: decision
//! `k` of the coded stream goes to lane `k mod N`. Each lane renormalizes
//! into its **own substream**, so consecutive decisions touch *different*
//! registers and execute overlapped; the decoder replays the identical
//! deal, so any lane count round-trips bit-exactly.
//!
//! Two invariants make this work with *adaptive* models:
//!
//! * **Model state stays shared.** Estimator trees and context banks are
//!   updated in strict program order on both sides, exactly as with one
//!   coder; only the interval arithmetic is striped. Compression loss is
//!   limited to the per-lane flush tails (≤ a few bytes per lane).
//! * **Deterministic decisions never touch a lane.** A decision whose coded
//!   side owns the whole interval (`c0 == 0` or `c0 == total`) emits no
//!   bits and leaves every register untouched, and — crucially — both
//!   sides can see that from `(c0, total)` *before* coding. Retiring such
//!   decisions at the mux keeps the lane cursor in lockstep between
//!   encoder and decoder by construction.
//!
//! The independence only pays if the lanes' registers actually live in
//! registers, so [`LaneEncoder`] does not call into N boxed coders per
//! decision. It *buffers* coded decisions (the model cannot observe the
//! coder, so encode-side deferral is free) and drains them in batches
//! through a lockstep loop whose per-lane interval/accumulator state is
//! hoisted into locals for the whole batch — the round-robin then costs
//! loads and stores once per batch instead of once per decision, and the
//! N renormalization chains overlap in the out-of-order window. The
//! emitted substreams are bit-identical to feeding N [`BinaryEncoder`]s
//! decision-by-decision (differentially tested); with one lane the output
//! is that plain coder's exact stream. Decode cannot defer (each decoded
//! bit feeds the model that produces the next probability), so
//! [`LaneDecoder`] simply rotates over N [`BinaryDecoder`]s — its win is
//! the shortened per-decision dependency chain, not batching.
//!
//! [`LaneEncoder`] / [`LaneDecoder`] implement
//! [`DecisionEncoder`](crate::DecisionEncoder) /
//! [`DecisionDecoder`](crate::DecisionDecoder), so the whole model layer
//! (symbol coders, estimator trees) drives them unchanged.
//!
//! # Examples
//!
//! ```
//! use cbic_arith::{DecisionDecoder, DecisionEncoder, LaneDecoder, LaneEncoder};
//! use cbic_bitio::BitReader;
//!
//! let decisions = [(false, 3u32, 4u32), (true, 1, 4), (false, 2, 4)];
//! let mut enc = LaneEncoder::new(2);
//! for &(bit, c0, total) in &decisions {
//!     enc.encode(bit, c0, total);
//! }
//! let substreams: Vec<Vec<u8>> = enc.finish_to_bytes();
//! assert_eq!(substreams.len(), 2);
//!
//! let sources: Vec<_> = substreams.iter().map(|s| BitReader::new(s)).collect();
//! let mut dec = LaneDecoder::new(sources);
//! for &(bit, c0, total) in &decisions {
//!     assert_eq!(dec.decode(c0, total), bit);
//! }
//! ```

use crate::bincoder::{
    div_by_recip, mask64, recip_table, BinaryDecoder, DecisionBatch, DecisionDecoder,
    DecisionEncoder, HALF, MAX_TOTAL, QUARTER,
};
use cbic_bitio::BitSource;

/// Upper bound on the lane count accepted by [`LaneEncoder`] and
/// [`LaneDecoder`] (and encodable in a container's lane byte).
///
/// Past roughly a dozen lanes the dependency chains are already fully
/// overlapped and each extra lane only adds flush-tail overhead, so the
/// cap costs nothing real while keeping per-lane state (and the decoder's
/// substream table) trivially bounded.
pub const MAX_LANES: usize = 32;

/// Coded decisions buffered before a lockstep drain. Small enough that
/// the buffer (8 bytes per decision) stays L1-resident alongside the lane
/// accumulators, large enough to amortize hoisting the lane registers.
const BATCH_TARGET: usize = 1024;

/// One lane's complete coder state: the [`BinaryEncoder`](crate::BinaryEncoder)
/// interval registers fused with the
/// [`BitWriter`](cbic_bitio::BitWriter) accumulator, as plain scalars so a
/// drain loop can hoist the whole thing into locals. The algorithm is a
/// field-for-field mirror of `BinaryEncoder::encode_coded` over a
/// `BitWriter` (see `bincoder.rs` for the renormalization derivation);
/// [`bit_identical_to_per_lane_binary_encoders`](tests) pins the
/// equivalence.
#[derive(Debug, Clone, Copy)]
struct LaneRegs {
    low: u32,
    high: u32,
    /// Banked E3 follow bits awaiting the next settled bit.
    pending: u64,
    /// Bit accumulator, right-aligned in the low `nacc` bits.
    acc: u64,
    nacc: u32,
    /// Bits emitted into this lane so far (excluding flush padding).
    bits: u64,
}

impl Default for LaneRegs {
    fn default() -> Self {
        Self {
            low: 0,
            high: u32::MAX,
            pending: 0,
            acc: 0,
            nacc: 0,
            bits: 0,
        }
    }
}

/// Mirror of `BitWriter::write_bits` on the fused lane state.
#[inline(always)]
fn push_bits(r: &mut LaneRegs, out: &mut Vec<u8>, value: u64, count: u32) {
    debug_assert!(count <= 64 && (count == 64 || value >> count == 0));
    r.bits += u64::from(count);
    if count < 64 - r.nacc {
        r.acc = (r.acc << count) | value;
        r.nacc += count;
    } else {
        push_bits_spill(r, out, value, count);
    }
}

/// Cold tail of [`push_bits`]: the append crosses the 64-bit accumulator
/// boundary (~once per 64 emitted bits).
#[cold]
fn push_bits_spill(r: &mut LaneRegs, out: &mut Vec<u8>, value: u64, count: u32) {
    let space = 64 - r.nacc;
    let spill = count - space;
    let filled = if space == 64 {
        value
    } else {
        (r.acc << space) | (value >> spill)
    };
    out.extend_from_slice(&filled.to_be_bytes());
    r.nacc = spill;
    r.acc = if spill == 0 {
        0
    } else {
        value & ((1u64 << spill) - 1)
    };
}

/// `count` copies of `bit` (the cold carry-resolution run).
fn push_run(r: &mut LaneRegs, out: &mut Vec<u8>, bit: bool, count: u64) {
    let pattern = if bit { u64::MAX } else { 0 };
    let mut rem = count;
    while rem >= 64 {
        push_bits(r, out, pattern, 64);
        rem -= 64;
    }
    if rem > 0 {
        push_bits(r, out, pattern >> (64 - rem), rem as u32);
    }
}

/// One coded decision through one lane — the body of
/// `BinaryEncoder::encode_coded` (see there for the branch-free
/// renormalization derivation) inlined over [`LaneRegs`].
// Deliberately out of line: the drain loop calls this N times per chunk,
// and N inlined copies of the body blow past the register file — one
// shared body with the lane state passed by pointer measures faster at
// every lane count tried.
#[inline(never)]
fn lane_step(r: &mut LaneRegs, out: &mut Vec<u8>, packed: u64, recip: &[u64]) {
    let total = (packed & 0x1_FFFF) as u32;
    let c0 = ((packed >> 17) & 0x1_FFFF) as u32;
    let bit = (packed >> 34) & 1 == 1;
    // Re-established from the pack in `encode` (asserted there); lets LLVM
    // elide the `recip` bounds check in this hot loop.
    assert!(total > 0 && total <= MAX_TOTAL, "invalid total {total}");

    let range = u64::from(r.high) - u64::from(r.low) + 1;
    let split = u64::from(r.low) + div_by_recip(range * u64::from(c0), recip[total as usize]);
    r.low = if bit { split as u32 } else { r.low };
    r.high = if bit { r.high } else { (split - 1) as u32 };

    let n = (r.low ^ r.high).leading_zeros(); // ≤ 31: low < high
    let bits = u64::from(r.low) >> (32 - n);
    if (n > 0) & (u64::from(n) + r.pending > 48) {
        // Cold: an E3 run banked more follow bits than the packed release
        // can address.
        let first = (bits >> (n - 1)) & 1 == 1;
        push_bits(r, out, u64::from(first), 1);
        let pending = r.pending;
        r.pending = 0;
        push_run(r, out, !first, pending);
        if n > 1 {
            push_bits(r, out, bits & ((1u64 << (n - 1)) - 1), n - 1);
        }
    } else {
        // Packed release: first settled bit, `pending` complements, then
        // the remaining settled bits, as one append. No-op when n == 0.
        let keep = u64::from(n == 0).wrapping_neg();
        let first = bits.wrapping_shr(n.wrapping_sub(1)) & 1;
        let comps =
            ((first ^ 1).wrapping_neg() & mask64(r.pending as u32)).wrapping_shl(n.wrapping_sub(1));
        let head = first.wrapping_shl((r.pending as u32).wrapping_add(n).wrapping_sub(1));
        let body = bits & (1u64.wrapping_shl(n.wrapping_sub(1))).wrapping_sub(1);
        push_bits(
            r,
            out,
            (head | comps | body) & !keep,
            ((r.pending + u64::from(n)) & !keep) as u32,
        );
        r.pending &= keep;
    }
    r.low = (u64::from(r.low) << n) as u32;
    r.high = ((u64::from(r.high) << n) | ((1u64 << n) - 1)) as u32;

    let k = (r.low << 1)
        .leading_ones()
        .min((r.high << 1).leading_zeros());
    r.pending += u64::from(k);
    r.low = (r.low << k) & !HALF;
    r.high = HALF | ((r.high << k) & !HALF) | (1u32.wrapping_shl(k)).wrapping_sub(1);
}

/// Flush one lane: `BinaryEncoder::finish` + `BitWriter::into_bytes`.
/// Returns the substream bytes and the lane's total emitted bits
/// (coded + flush tail, excluding the byte-align padding — the same
/// pre-padding count a single coder's transport reports after `finish`).
fn lane_finish(mut r: LaneRegs, mut out: Vec<u8>) -> (Vec<u8>, u64) {
    r.pending += 1;
    let bit = r.low >= QUARTER;
    push_bits(&mut r, &mut out, u64::from(bit), 1);
    let pending = r.pending;
    push_run(&mut r, &mut out, !bit, pending);
    push_bits(&mut r, &mut out, 1, 1);
    // Align to a byte boundary and flush the accumulator (padding is not
    // counted in `bits`, mirroring `BitWriter::align_to_byte`).
    let tail = r.nacc % 8;
    if tail > 0 {
        r.acc <<= 8 - tail;
        r.nacc += 8 - tail;
    }
    while r.nacc > 0 {
        r.nacc -= 8;
        out.push((r.acc >> r.nacc) as u8);
    }
    (out, r.bits)
}

/// Deals coded decisions round-robin across `N` independent coder lanes,
/// each writing its own substream.
///
/// See the module-level docs for the striping rule and the batched
/// drain. Construct with [`new`](Self::new), push decisions through
/// [`DecisionEncoder::encode`], then call
/// [`finish_to_bytes`](Self::finish_to_bytes) to flush every lane.
#[derive(Debug, Default)]
pub struct LaneEncoder {
    regs: Vec<LaneRegs>,
    outs: Vec<Vec<u8>>,
    /// Coded decisions awaiting a drain, packed as
    /// `bit << 34 | c0 << 17 | total` (both counts fit 17 bits: the coder
    /// caps `total` at 2^16).
    buf: Vec<u64>,
    /// Drain threshold: the largest multiple of the lane count at or below
    /// [`BATCH_TARGET`], so every full drain leaves the round-robin cursor
    /// back at lane 0 and the lockstep loop needs no cursor at all.
    batch: usize,
    decisions: u64,
    coded: u64,
}

impl LaneEncoder {
    /// Creates `lanes` coder lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or exceeds [`MAX_LANES`].
    pub fn new(lanes: usize) -> Self {
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "lane count {lanes} outside 1..={MAX_LANES}"
        );
        Self {
            regs: vec![LaneRegs::default(); lanes],
            outs: vec![Vec::new(); lanes],
            buf: Vec::with_capacity(BATCH_TARGET + DecisionBatch::CAPACITY),
            batch: (BATCH_TARGET / lanes) * lanes,
            decisions: 0,
            coded: 0,
        }
    }

    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.regs.len()
    }

    /// Total bits emitted across all lanes, draining buffered decisions
    /// first so the count is near-exact (excludes un-flushed interval
    /// state plus at most `lanes − 1` decisions held back to keep the
    /// round-robin deal aligned — a mid-stream drain may only retire whole
    /// rounds, or the decisions that follow would land on the wrong lanes).
    pub fn bits_written(&mut self) -> u64 {
        self.drain();
        self.regs.iter().map(|r| r.bits).sum()
    }

    /// Total bits already coded into the lanes, *excluding* decisions
    /// still buffered at the mux (up to one batch's worth). The `&self`
    /// counterpart of [`bits_written`](Self::bits_written) for mid-stream
    /// progress reporting.
    pub fn bits_flushed(&self) -> u64 {
        self.regs.iter().map(|r| r.bits).sum()
    }

    /// Codes the buffered decisions through the lanes in lockstep batches
    /// of the lane count with the per-lane registers hoisted into locals
    /// (the monomorphized widths cover the benched lane counts; other
    /// counts take the dynamic loop).
    ///
    /// Only *whole rounds* are drained: a tail shorter than the lane count
    /// stays buffered (moved to the front), because after a partial round
    /// the next decision belongs to a mid-cycle lane and the lockstep loop
    /// assumes every drain starts at lane 0. The tail is retired by
    /// [`finish_with_bits`](Self::finish_with_bits), where it really is
    /// the end of the deal.
    fn drain(&mut self) {
        match self.regs.len() {
            1 => self.drain_const::<1>(),
            2 => self.drain_const::<2>(),
            4 => self.drain_const::<4>(),
            8 => self.drain_const::<8>(),
            16 => self.drain_const::<16>(),
            _ => self.drain_dyn(),
        }
        let n = self.regs.len();
        let drained = self.buf.len() - self.buf.len() % n;
        self.buf.copy_within(drained.., 0);
        self.buf.truncate(self.buf.len() - drained);
    }

    fn drain_const<const N: usize>(&mut self) {
        let Self {
            regs, outs, buf, ..
        } = self;
        let mut r: [LaneRegs; N] = regs[..N].try_into().expect("lane count matches N");
        let recip = recip_table();
        for chunk in buf.chunks_exact(N) {
            // Lane-minor order: the N chains advance abreast, so each
            // step's interval update overlaps the other lanes' in the
            // out-of-order window. (Lane-major — one lane's whole stride
            // in a tight loop — measures ~15% slower here: a single
            // lane's renormalization chain is latency-bound, and running
            // it alone serializes on exactly that latency.)
            for i in 0..N {
                lane_step(&mut r[i], &mut outs[i], chunk[i], recip);
            }
        }
        regs[..N].copy_from_slice(&r);
    }

    fn drain_dyn(&mut self) {
        let Self {
            regs, outs, buf, ..
        } = self;
        let recip = recip_table();
        let n = regs.len();
        for (i, &packed) in buf[..buf.len() - buf.len() % n].iter().enumerate() {
            let lane = i % n;
            lane_step(&mut regs[lane], &mut outs[lane], packed, recip);
        }
    }

    /// Flushes every lane and returns the per-lane substream bytes, in
    /// lane order.
    pub fn finish_to_bytes(self) -> Vec<Vec<u8>> {
        self.finish_with_bits().0
    }

    /// [`finish_to_bytes`](Self::finish_to_bytes) that also reports the
    /// exact payload bits emitted across all lanes *including* each lane's
    /// flush tail (but not the byte-align padding) — the lane-striped
    /// equivalent of a single coder's post-`finish`
    /// [`bits_written`](cbic_bitio::BitSink::bits_written) count, which is
    /// what encode statistics report.
    pub fn finish_with_bits(mut self) -> (Vec<Vec<u8>>, u64) {
        self.drain();
        // The sub-round tail `drain` held back is the true end of the
        // deal, so it lands on lanes 0.. in order.
        let recip = recip_table();
        for (i, &packed) in self.buf.iter().enumerate() {
            lane_step(&mut self.regs[i], &mut self.outs[i], packed, recip);
        }
        let mut bits = 0u64;
        let subs = self
            .regs
            .into_iter()
            .zip(self.outs)
            .map(|(r, out)| {
                let (sub, lane_bits) = lane_finish(r, out);
                bits += lane_bits;
                sub
            })
            .collect();
        (subs, bits)
    }
}

impl DecisionEncoder for LaneEncoder {
    #[inline]
    fn encode(&mut self, bit: bool, c0: u32, total: u32) {
        assert!(total > 0 && total <= MAX_TOTAL, "invalid total {total}");
        debug_assert!(c0 <= total, "c0 {c0} exceeds total {total}");
        debug_assert!(
            if bit { c0 < total } else { c0 > 0 },
            "coding a zero-probability decision (bit={bit}, c0={c0}, total={total})"
        );
        self.decisions += 1;
        // Deterministic decisions retire at the mux: no bits, no interval
        // change, and — so the decoder's deal stays aligned — no lane
        // turn. Both sides see `(c0, total)` before coding, so both make
        // the same call.
        if if bit { c0 == 0 } else { c0 == total } {
            return;
        }
        self.coded += 1;
        self.buf
            .push(u64::from(bit) << 34 | u64::from(c0) << 17 | u64::from(total));
        if self.buf.len() >= self.batch {
            self.drain();
        }
    }

    #[inline]
    fn decisions(&self) -> u64 {
        self.decisions
    }

    #[inline]
    fn coded_decisions(&self) -> u64 {
        self.coded
    }

    #[inline]
    fn note_deterministic(&mut self, n: u64) {
        self.decisions += n;
    }

    /// Batched entry point: the model already packs coded decisions in the
    /// mux's own `bit << 34 | c0 << 17 | total` layout, so a batch appends
    /// to the stripe buffer with one `memcpy` — no per-decision screening,
    /// re-packing, or drain check.
    #[inline]
    fn encode_batch(&mut self, batch: &DecisionBatch) {
        self.decisions += batch.decisions();
        self.coded += batch.coded_len() as u64;
        self.buf.extend_from_slice(batch.coded());
        if self.buf.len() >= self.batch {
            self.drain();
        }
    }
}

/// Replays the [`LaneEncoder`] deal on the decode side: coded decisions
/// are pulled round-robin from `N` independent [`BinaryDecoder`] lanes.
#[derive(Debug)]
pub struct LaneDecoder<S> {
    lanes: Vec<BinaryDecoder<S>>,
    cursor: usize,
    decisions: u64,
    coded: u64,
}

impl<S: BitSource> LaneDecoder<S> {
    /// Wraps one coder lane around each substream source, in lane order.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or holds more than [`MAX_LANES`]
    /// sources.
    pub fn new(sources: Vec<S>) -> Self {
        assert!(
            (1..=MAX_LANES).contains(&sources.len()),
            "lane count {} outside 1..={MAX_LANES}",
            sources.len()
        );
        Self {
            lanes: sources.into_iter().map(BinaryDecoder::new).collect(),
            cursor: 0,
            decisions: 0,
            coded: 0,
        }
    }

    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The largest number of zero-padding bits any lane has read past the
    /// end of its substream — the truncation detector for lane-striped
    /// payloads (compare against the same per-coder budget as a single
    /// coder's [`padding_bits`](BitSource::padding_bits)).
    pub fn max_padding_bits(&self) -> u64 {
        self.lanes
            .iter()
            .map(|lane| lane.source().padding_bits())
            .max()
            .unwrap_or(0)
    }
}

impl<S: BitSource> DecisionDecoder for LaneDecoder<S> {
    #[inline]
    fn decode(&mut self, c0: u32, total: u32) -> bool {
        // Mirror of the encoder mux: deterministic decisions are resolved
        // here and never touch (or rotate past) a lane.
        if c0 == 0 {
            self.decisions += 1;
            return true;
        }
        if c0 == total {
            self.decisions += 1;
            return false;
        }
        self.decode_nondeterministic(c0, total)
    }

    #[inline]
    fn decisions(&self) -> u64 {
        self.decisions
    }

    #[inline]
    fn coded_decisions(&self) -> u64 {
        self.coded
    }

    #[inline]
    fn note_deterministic(&mut self, n: u64) {
        self.decisions += n;
    }

    /// Model-screened entry point: the caller has already established
    /// `0 < c0 < total`, so rotate the deal and hit the lane directly.
    #[inline]
    fn decode_nondeterministic(&mut self, c0: u32, total: u32) -> bool {
        self.decisions += 1;
        self.coded += 1;
        let lane = self.cursor;
        self.cursor += 1;
        if self.cursor == self.lanes.len() {
            self.cursor = 0;
        }
        self.lanes[lane].decode_coded(c0, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bincoder::BinaryEncoder;
    use cbic_bitio::{BitReader, BitWriter};

    fn mixed_decisions(n: u32) -> Vec<(bool, u32, u32)> {
        (0..n)
            .map(|i| {
                let h = i.wrapping_mul(2654435761);
                match i % 5 {
                    // Deterministic decisions must be retired at the mux.
                    0 => (false, 7, 7),
                    1 => (true, 0, 9),
                    _ => ((h >> 3) % 3 == 0, 1 + h % 99, 100),
                }
            })
            .collect()
    }

    fn roundtrip(lanes: usize, decisions: &[(bool, u32, u32)]) {
        let mut enc = LaneEncoder::new(lanes);
        for &(bit, c0, total) in decisions {
            enc.encode(bit, c0, total);
        }
        assert_eq!(enc.decisions(), decisions.len() as u64);
        let substreams = enc.finish_to_bytes();
        assert_eq!(substreams.len(), lanes);
        let sources = substreams.iter().map(|s| BitReader::new(s)).collect();
        let mut dec = LaneDecoder::new(sources);
        for (i, &(bit, c0, total)) in decisions.iter().enumerate() {
            assert_eq!(dec.decode(c0, total), bit, "decision {i} ({lanes} lanes)");
        }
    }

    #[test]
    fn roundtrips_across_lane_counts() {
        let decisions = mixed_decisions(5000);
        for lanes in [1, 2, 3, 4, 8, MAX_LANES] {
            roundtrip(lanes, &decisions);
        }
    }

    /// The fused drain loop must be bit-identical to dealing the same
    /// decisions across N plain `BinaryEncoder`s by hand — every lane, at
    /// widths with and without a monomorphized drain, across batch
    /// boundaries (the stream length is not a batch multiple) and extreme
    /// probabilities (to reach the cold follow-bit run).
    #[test]
    fn bit_identical_to_per_lane_binary_encoders() {
        let mut decisions = mixed_decisions(BATCH_TARGET as u32 * 3 + 137);
        // Long improbable runs bank enough pending bits to force the cold
        // release path.
        for _ in 0..300 {
            decisions.push((true, 65_535, 65_536));
        }
        for lanes in [1usize, 2, 3, 4, 5, 8, 16, MAX_LANES] {
            let mut enc = LaneEncoder::new(lanes);
            let mut reference: Vec<BinaryEncoder<BitWriter>> = (0..lanes)
                .map(|_| BinaryEncoder::new(BitWriter::new()))
                .collect();
            let mut cursor = 0;
            for &(bit, c0, total) in &decisions {
                enc.encode(bit, c0, total);
                if if bit { c0 != 0 } else { c0 != total } {
                    reference[cursor].encode_coded(bit, c0, total);
                    cursor = (cursor + 1) % lanes;
                }
            }
            let expected: Vec<Vec<u8>> = reference
                .into_iter()
                .map(|e| e.finish().into_bytes())
                .collect();
            assert_eq!(enc.finish_to_bytes(), expected, "{lanes} lanes");
        }
    }

    #[test]
    fn single_lane_matches_plain_coder() {
        let decisions = mixed_decisions(2000);
        let mut plain = BinaryEncoder::new(BitWriter::new());
        let mut laned = LaneEncoder::new(1);
        for &(bit, c0, total) in &decisions {
            plain.encode(bit, c0, total);
            laned.encode(bit, c0, total);
        }
        let plain_bytes = plain.finish().into_bytes();
        let lane_bytes = laned.finish_to_bytes();
        assert_eq!(lane_bytes.len(), 1);
        assert_eq!(lane_bytes[0], plain_bytes);
    }

    #[test]
    fn deterministic_decisions_do_not_rotate_the_deal() {
        // Two streams that differ only in interleaved deterministic
        // decisions must produce identical substreams.
        let coded = [(true, 3u32, 8u32), (false, 5, 8), (true, 1, 8)];
        let mut without = LaneEncoder::new(2);
        let mut with = LaneEncoder::new(2);
        for &(bit, c0, total) in &coded {
            without.encode(bit, c0, total);
            with.encode(false, 4, 4);
            with.encode(bit, c0, total);
            with.encode(true, 0, 4);
        }
        assert_eq!(without.finish_to_bytes(), with.finish_to_bytes());
    }

    /// Submitting decisions as pre-classified batches — with mid-stream
    /// `bits_written` drains at awkward (non-round-multiple) points — must
    /// deal them to exactly the same lanes as per-decision submission.
    #[test]
    fn batched_submission_matches_per_decision_deal() {
        let decisions = mixed_decisions(BATCH_TARGET as u32 * 2 + 61);
        for lanes in [1usize, 2, 3, 4, 8] {
            let mut batched = LaneEncoder::new(lanes);
            let mut plain = LaneEncoder::new(lanes);
            let mut batch = DecisionBatch::new();
            for (i, chunk) in decisions.chunks(7).enumerate() {
                batch.clear();
                for &(bit, c0, total) in chunk {
                    if if bit { c0 == 0 } else { c0 == total } {
                        batch.skip_deterministic(1);
                    } else {
                        batch.push_coded(bit, c0, total);
                    }
                    plain.encode(bit, c0, total);
                }
                batched.encode_batch(&batch);
                if i % 97 == 0 {
                    // A mid-stream count drains whole rounds only; the
                    // held-back tail must keep the deal aligned.
                    let _ = batched.bits_written();
                }
            }
            assert_eq!(batched.decisions(), plain.decisions(), "{lanes} lanes");
            assert_eq!(
                batched.coded_decisions(),
                plain.coded_decisions(),
                "{lanes} lanes"
            );
            assert_eq!(
                batched.finish_to_bytes(),
                plain.finish_to_bytes(),
                "{lanes} lanes"
            );
        }
    }

    #[test]
    fn bits_written_is_exact_mid_stream() {
        let decisions = mixed_decisions(3000);
        let mut enc = LaneEncoder::new(4);
        let mut reference = LaneEncoder::new(4);
        for &(bit, c0, total) in &decisions {
            enc.encode(bit, c0, total);
            reference.encode(bit, c0, total);
        }
        let exact = enc.bits_written();
        assert!(exact >= reference.bits_flushed());
        // Draining for the count must not change the output.
        assert_eq!(enc.finish_to_bytes(), reference.finish_to_bytes());
    }

    /// `finish_with_bits` must account every lane's flush tail: the total
    /// sits within one byte-align padding per lane of the substream byte
    /// count, and is never below the pre-finish running count.
    #[test]
    fn finish_with_bits_counts_every_lane_flush() {
        let decisions = mixed_decisions(3000);
        for lanes in [1usize, 2, 4, 8, MAX_LANES] {
            let mut enc = LaneEncoder::new(lanes);
            let mut reference = LaneEncoder::new(lanes);
            for &(bit, c0, total) in &decisions {
                enc.encode(bit, c0, total);
                reference.encode(bit, c0, total);
            }
            let pre = enc.bits_written();
            let (subs, bits) = enc.finish_with_bits();
            assert!(bits >= pre, "{lanes} lanes: flush tail lost");
            let byte_bits: u64 = subs.iter().map(|s| s.len() as u64 * 8).sum();
            assert!(
                bits <= byte_bits && byte_bits - bits < 8 * lanes as u64,
                "{lanes} lanes: {bits} bits vs {byte_bits} substream bits"
            );
            assert_eq!(subs, reference.finish_to_bytes(), "{lanes} lanes");
        }
    }

    #[test]
    fn empty_stream_flushes_every_lane() {
        let substreams = LaneEncoder::new(4).finish_to_bytes();
        assert_eq!(substreams.len(), 4);
        for s in substreams {
            assert!(s.len() <= 1);
        }
    }

    #[test]
    fn truncated_substreams_report_padding_not_panic() {
        let decisions = mixed_decisions(4000);
        let mut enc = LaneEncoder::new(4);
        for &(bit, c0, total) in &decisions {
            enc.encode(bit, c0, total);
        }
        let mut substreams = enc.finish_to_bytes();
        // Cut one lane's substream in half.
        let cut = substreams[2].len() / 2;
        substreams[2].truncate(cut);
        let sources = substreams.iter().map(|s| BitReader::new(s)).collect();
        let mut dec = LaneDecoder::new(sources);
        for &(_, c0, total) in &decisions {
            let _ = dec.decode(c0, total);
        }
        assert!(dec.max_padding_bits() > 64, "truncation must be visible");
    }

    #[test]
    #[should_panic(expected = "lane count")]
    fn zero_lanes_rejected() {
        let _ = LaneEncoder::new(0);
    }

    #[test]
    #[should_panic(expected = "lane count")]
    fn oversized_lane_count_rejected() {
        let _ = LaneEncoder::new(MAX_LANES + 1);
    }
}
