//! Integer binary arithmetic coder.
//!
//! This is the software equivalent of the bit-serial coder the paper takes
//! from its reference \[7\]: a classic Witten–Neal–Cleary style interval
//! coder specialised to *binary* decisions, with 32-bit interval registers
//! and carry resolution via pending "follow" bits. Probabilities arrive as
//! a pair `(c0, total)`: the decision is `0` with probability `c0/total`.
//!
//! A zero count is legal on the side that is *not* being coded: the empty
//! sub-interval is simply never selected. Coding a decision whose own count
//! is zero is a caller bug (the estimator escapes instead) and panics in
//! debug builds.

use cbic_bitio::{BitSink, BitSource, BitWriter};
use std::sync::OnceLock;

pub(crate) const HALF: u32 = 1 << 31;
pub(crate) const QUARTER: u32 = 1 << 30;

/// Maximum decision `total` accepted by the coder.
///
/// Keeping totals at or below 2^16 guarantees every non-empty sub-interval
/// spans at least one code value after renormalisation (the interval is
/// always at least a quarter of the 32-bit range, i.e. 2^30 ≥ 2^16·2^14).
pub(crate) const MAX_TOTAL: u32 = 1 << 16;

/// Reciprocal ROM for the interval split: entry `d` holds `⌈2⁶⁴ / d⌉`, so
/// the per-decision `⌊range·c0 / total⌋` becomes one widening multiply and
/// a shift instead of a hardware divide — the division-free datapath a
/// hardware coder would synthesize.
///
/// **Exactness** (Granlund–Montgomery invariant division): with
/// `m = ⌈2⁶⁴/d⌉` the error `e = m·d − 2⁶⁴` is in `[0, d)`, so
/// `n·m/2⁶⁴ = n/d + n·e/(d·2⁶⁴)` and the excess is below `n/2⁶⁴ ≤ 2⁻¹⁶`
/// for every dividend `n ≤ 2⁴⁸` — too small to carry `⌊n/d⌋` to the next
/// integer (the fractional part of `n/d` is at most `1 − 2⁻¹⁶`). Here
/// `n = range·c0 ≤ 2³²·2¹⁶`, so every split is bit-exact; the property
/// test sweeps the corners.
///
/// Entry 1 would need `2⁶⁴` and stays 0 — a divisor of 1 forces `c0 = 0`
/// or `c0 = total`, which the deterministic-decision shortcut retires
/// before any division.
pub(crate) fn recip_table() -> &'static [u64] {
    static RECIP: OnceLock<Vec<u64>> = OnceLock::new();
    RECIP.get_or_init(|| {
        let mut t = vec![0u64; MAX_TOTAL as usize + 1];
        for (d, slot) in t.iter_mut().enumerate().skip(2) {
            *slot = (1u128 << 64).div_ceil(d as u128) as u64;
        }
        t
    })
}

/// `⌊n / d⌋` by reciprocal multiplication (see [`recip_table`]).
#[inline]
pub(crate) fn div_by_recip(n: u64, recip: u64) -> u64 {
    ((u128::from(n) * u128::from(recip)) >> 64) as u64
}

/// The low `count` bits set, without branching on `count == 0`. Shift
/// amounts ≥ 64 wrap (callers mask the result in those lanes).
#[inline]
pub(crate) fn mask64(count: u32) -> u64 {
    (1u64.wrapping_shl(count)).wrapping_sub(1)
}

/// Anything that can encode a stream of binary decisions.
///
/// The adaptive model layer (estimator trees, context banks, symbol coders)
/// is written against this trait, so the same model code drives a single
/// [`BinaryEncoder`] or a lane-interleaved
/// [`LaneEncoder`](crate::LaneEncoder) without knowing which.
pub trait DecisionEncoder {
    /// Encodes one binary decision with `P(bit = 0) = c0 / total`.
    fn encode(&mut self, bit: bool, c0: u32, total: u32);

    /// Number of decisions encoded so far.
    fn decisions(&self) -> u64;
}

/// Anything that can decode a stream of binary decisions.
///
/// Must be fed the same `(c0, total)` sequence its encoding counterpart
/// consumed; adaptive models guarantee this by updating identically on
/// both sides.
pub trait DecisionDecoder {
    /// Decodes one binary decision with `P(bit = 0) = c0 / total`.
    fn decode(&mut self, c0: u32, total: u32) -> bool;

    /// Number of decisions decoded so far.
    fn decisions(&self) -> u64;
}

/// Encoding half of the binary arithmetic coder.
///
/// Decisions are pushed with [`encode`](Self::encode); the coder emits bits
/// into the wrapped [`BitSink`] as the interval narrows (a [`BitWriter`] by
/// default; a [`StreamBitWriter`](cbic_bitio::StreamBitWriter) for the
/// bounded-memory streaming pipeline). [`finish`](Self::finish) flushes the
/// final disambiguating bits and returns the sink.
///
/// # Examples
///
/// ```
/// use cbic_arith::{BinaryDecoder, BinaryEncoder};
/// use cbic_bitio::{BitReader, BitWriter};
///
/// let mut enc = BinaryEncoder::new(BitWriter::new());
/// enc.encode(false, 3, 4); // P(0) = 3/4
/// enc.encode(true, 1, 4);  // P(1) = 3/4
/// let bytes = enc.finish().into_bytes();
///
/// let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
/// assert!(!dec.decode(3, 4));
/// assert!(dec.decode(1, 4));
/// ```
#[derive(Debug)]
pub struct BinaryEncoder<S = BitWriter> {
    low: u32,
    high: u32,
    pending: u64,
    writer: S,
    decisions: u64,
    recip: &'static [u64],
}

impl<S: BitSink> BinaryEncoder<S> {
    /// Wraps a bit sink in a fresh encoder covering the full interval.
    pub fn new(writer: S) -> Self {
        Self {
            low: 0,
            high: u32::MAX,
            pending: 0,
            writer,
            decisions: 0,
            recip: recip_table(),
        }
    }

    #[inline]
    fn emit(&mut self, bit: bool) {
        self.writer.write_bit(bit);
        // Carry/underflow resolution: pending bits are the complement.
        for _ in 0..self.pending {
            self.writer.write_bit(!bit);
        }
        self.pending = 0;
    }

    /// Encodes one binary decision with `P(bit = 0) = c0 / total`.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero or exceeds 2^16, if `c0 > total`, or (in
    /// debug builds) if the coded side has zero probability.
    #[inline]
    pub fn encode(&mut self, bit: bool, c0: u32, total: u32) {
        assert!(total > 0 && total <= MAX_TOTAL, "invalid total {total}");
        assert!(c0 <= total, "c0 {c0} exceeds total {total}");
        debug_assert!(
            if bit { c0 < total } else { c0 > 0 },
            "coding a zero-probability decision (bit={bit}, c0={c0}, total={total})"
        );

        // Deterministic decisions are free: when the coded side owns the
        // whole interval (`P = 1`), the split leaves `low`/`high` exactly
        // where they were, no renormalisation can trigger, and no bit is
        // emitted — so skip the 64-bit multiply/divide entirely. Adapted
        // trees hit this constantly (every node whose sibling branch has
        // decayed to zero), which makes it the hottest shortcut in the
        // coder. The emitted stream is identical by construction.
        if if bit { c0 == 0 } else { c0 == total } {
            self.decisions += 1;
            return;
        }

        self.encode_coded(bit, c0, total);
    }

    /// Encodes a decision already known to be non-deterministic
    /// (`0 < c0 < total`), skipping the deterministic shortcut.
    ///
    /// This is the lane entry point: a
    /// [`LaneEncoder`](crate::LaneEncoder) retires deterministic decisions
    /// at the mux level — they touch no interval state, so they must not
    /// advance the lane cursor — and forwards only coded decisions here.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero or exceeds 2^16; in debug builds, also if
    /// `c0 > total` or the decision is deterministic. Release builds do
    /// not re-validate `c0` (the adaptive model layer guarantees it); a
    /// violating caller corrupts its own stream but stays memory-safe.
    #[inline(always)]
    pub fn encode_coded(&mut self, bit: bool, c0: u32, total: u32) {
        // This bound doubles as the recip bounds-check, letting LLVM elide
        // the slice panic branch below.
        assert!(total > 0 && total <= MAX_TOTAL, "invalid total {total}");
        debug_assert!(
            c0 > 0 && c0 < total,
            "encode_coded requires a non-deterministic decision (c0={c0}, total={total})"
        );
        self.decisions += 1;

        let range = u64::from(self.high) - u64::from(self.low) + 1;
        // First code value of the `1` sub-interval (may be high + 1 when
        // the `1` side is empty, hence the 64-bit arithmetic). The divide
        // runs through the reciprocal ROM — bit-exact, see [`recip_table`].
        let split =
            u64::from(self.low) + div_by_recip(range * u64::from(c0), self.recip[total as usize]);
        // Value selects, not branches: the outcome bit is data the branch
        // predictor cannot learn, so this must compile to conditional
        // moves.
        self.low = if bit { split as u32 } else { self.low };
        self.high = if bit { self.high } else { (split - 1) as u32 };

        // Renormalisation, straight-line and branch-free. The classic loop
        // interleaves two kinds of step, but they cannot actually
        // alternate: all top bits shared by `low` and `high` are settled
        // and emit first (an E3 straddle needs the top bits to *differ*),
        // and once the maximal run of E3 straddles is absorbed the top
        // bits still differ and no further straddle holds. So: one bulk
        // emit, one bulk E3, done — bit-for-bit what the loop produces
        // (the shift-without-subtract is the same discard of the emitted
        // top bit).
        //
        // Branch-freedom matters more than the op count here: whether a
        // decision settles bits (`n > 0`, roughly half of them, patternless)
        // is exactly what a branch predictor cannot learn, and one flush
        // costs more than this whole function.
        let n = (self.low ^ self.high).leading_zeros(); // ≤ 31: low < high
        let bits = u64::from(self.low) >> (32 - n);
        if (n > 0) & (u64::from(n) + self.pending > 48) {
            // Cold: an E3 run has banked more follow bits than the packed
            // release below can address. Non-short-circuit `&` keeps this
            // a single near-never-taken branch rather than a branch on the
            // patternless `n > 0`.
            let first = (bits >> (n - 1)) & 1 == 1;
            self.emit(first);
            if n > 1 {
                self.writer
                    .write_bits(bits & ((1u64 << (n - 1)) - 1), n - 1);
            }
        } else {
            // Packed release: the first settled bit, then `pending`
            // complements of it, then the remaining settled bits verbatim
            // — assembled as one `write_bits` word. When n == 0 the
            // `keep` mask zeroes the pattern and length and preserves
            // `pending`, so the same straight-line code is a no-op.
            // (Shift amounts are masked: with n == 0 they go out of range
            // but their results are discarded by `keep`.)
            let keep = u64::from(n == 0).wrapping_neg(); // n==0 ? !0 : 0
            let first = bits.wrapping_shr(n.wrapping_sub(1)) & 1;
            let comps = ((first ^ 1).wrapping_neg() & mask64(self.pending as u32))
                .wrapping_shl(n.wrapping_sub(1));
            let head = first.wrapping_shl((self.pending as u32).wrapping_add(n).wrapping_sub(1));
            let body = bits & (1u64.wrapping_shl(n.wrapping_sub(1))).wrapping_sub(1);
            self.writer.write_bits(
                (head | comps | body) & !keep,
                ((self.pending + u64::from(n)) & !keep) as u32,
            );
            self.pending &= keep;
        }
        self.low = (u64::from(self.low) << n) as u32;
        self.high = ((u64::from(self.high) << n) | ((1u64 << n) - 1)) as u32;

        // Bulk E3: `low = 01…`, `high = 10…` straddle the midpoint for
        // exactly k more steps, where k counts how long low keeps leading
        // 1s (below its top 0) and high keeps leading 0s (below its top
        // 1). Each step deletes bit 30 — the straddling bit — from every
        // register and records one pending complement. At k == 0 every
        // line below is the identity (low's top bit is 0 and high's is 1
        // after the emit shift), so again no branch.
        let k = (self.low << 1)
            .leading_ones()
            .min((self.high << 1).leading_zeros());
        self.pending += u64::from(k);
        self.low = (self.low << k) & !HALF;
        self.high = HALF | ((self.high << k) & !HALF) | (1u32.wrapping_shl(k)).wrapping_sub(1);
    }

    /// Number of decisions encoded so far.
    ///
    /// The hardware model uses this: the paper's coder retires one binary
    /// decision per clock, so decisions/pixel sets the pipeline's
    /// initiation interval.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Bits emitted so far (excluding un-flushed interval state).
    pub fn bits_written(&self) -> u64 {
        self.writer.bits_written()
    }

    /// Borrows the underlying bit sink (e.g. to poll a streaming sink for
    /// latched I/O errors mid-encode).
    pub fn sink(&self) -> &S {
        &self.writer
    }

    /// Mutably borrows the underlying bit sink.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.writer
    }

    /// Flushes the interval state and returns the underlying sink.
    ///
    /// Emits `pending + 2` bits that pin the final code value inside the
    /// interval, after which the decoder's zero-padded reads cannot leave it.
    pub fn finish(mut self) -> S {
        self.pending += 1;
        let bit = self.low >= QUARTER;
        self.emit(bit);
        // One more bit keeps the value strictly inside [low, high] even
        // when the decoder pads with zeros.
        self.writer.write_bit(true);
        self.writer
    }
}

impl<S: BitSink> DecisionEncoder for BinaryEncoder<S> {
    #[inline]
    fn encode(&mut self, bit: bool, c0: u32, total: u32) {
        BinaryEncoder::encode(self, bit, c0, total);
    }

    #[inline]
    fn decisions(&self) -> u64 {
        BinaryEncoder::decisions(self)
    }
}

/// Decoding half of the binary arithmetic coder.
///
/// Must be fed the same `(c0, total)` sequence the encoder used; adaptive
/// models guarantee this by updating identically on both sides. The bit
/// source is generic: a [`BitReader`](cbic_bitio::BitReader) over a buffered
/// payload, or a [`StreamBitReader`](cbic_bitio::StreamBitReader) refilled
/// incrementally from `std::io::Read`.
#[derive(Debug)]
pub struct BinaryDecoder<S> {
    low: u32,
    high: u32,
    value: u32,
    reader: S,
    decisions: u64,
    recip: &'static [u64],
}

impl<S: BitSource> BinaryDecoder<S> {
    /// Wraps a bit source and pre-loads the first 32 code bits.
    pub fn new(mut reader: S) -> Self {
        let value = reader.read_bits(32) as u32;
        Self {
            low: 0,
            high: u32::MAX,
            value,
            reader,
            decisions: 0,
            recip: recip_table(),
        }
    }

    /// Decodes one binary decision with `P(bit = 0) = c0 / total`.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero or exceeds 2^16 or if `c0 > total`.
    #[inline]
    pub fn decode(&mut self, c0: u32, total: u32) -> bool {
        assert!(total > 0 && total <= MAX_TOTAL, "invalid total {total}");
        assert!(c0 <= total, "c0 {c0} exceeds total {total}");

        // The encoder's deterministic-decision shortcut, mirrored: with
        // `c0 == 0` the split lands on `low` so the decision is always 1;
        // with `c0 == total` it lands past `high` so it is always 0. The
        // interval (and the code value) are untouched either way.
        if c0 == 0 {
            self.decisions += 1;
            return true;
        }
        if c0 == total {
            self.decisions += 1;
            return false;
        }

        self.decode_coded(c0, total)
    }

    /// Decodes a decision already known to be non-deterministic
    /// (`0 < c0 < total`), skipping the deterministic check. The lane entry
    /// point, mirroring [`BinaryEncoder::encode_coded`].
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero or exceeds 2^16 or if `c0 > total`; in
    /// debug builds, also if the decision is deterministic.
    #[inline(always)]
    pub fn decode_coded(&mut self, c0: u32, total: u32) -> bool {
        // This bound doubles as the recip bounds-check, letting LLVM elide
        // the slice panic branch below. `c0` is only debug-checked: it
        // comes from the adaptive model (never from the bitstream), so
        // corrupt input cannot reach here with a bad value.
        assert!(total > 0 && total <= MAX_TOTAL, "invalid total {total}");
        debug_assert!(c0 <= total, "c0 {c0} exceeds total {total}");
        debug_assert!(
            c0 > 0 && c0 < total,
            "decode_coded requires a non-deterministic decision (c0={c0}, total={total})"
        );
        self.decisions += 1;

        let range = u64::from(self.high) - u64::from(self.low) + 1;
        let split =
            u64::from(self.low) + div_by_recip(range * u64::from(c0), self.recip[total as usize]);
        let bit = u64::from(self.value) >= split;
        self.low = if bit { split as u32 } else { self.low };
        self.high = if bit { self.high } else { (split - 1) as u32 };

        // Renormalisation, mirroring the encoder's straight-line
        // branch-free form (one settled-bits shift, then one bulk E3 batch
        // — see the encoder for why the two steps cannot alternate). The
        // invariant `low ≤ value ≤ high` holds for *any* input bits (each
        // decision moves the boundary `value` is already on the right side
        // of), so `value` shares the settled top bits and the wrapping
        // shift below discards exactly what the classic subtract-then-shift
        // would.
        let n = (self.low ^ self.high).leading_zeros(); // ≤ 31: low < high
        self.low = (u64::from(self.low) << n) as u32;
        self.high = ((u64::from(self.high) << n) | ((1u64 << n) - 1)) as u32;

        // Bulk E3: each straddle step deletes bit 30 from low/high/value
        // (value sits between them, so its top two bits are 01 or 10 and
        // the subtract-then-shift is the same bit-delete) and shifts one
        // fresh input bit into value's low end. At k == 0 every line is
        // the identity (low's top bit is 0, high's is 1, and value keeps
        // both of its halves), so no branch is needed. `k` depends only on
        // the post-shift bounds, never on the input bits, so both refills
        // (n settled-shift bits, then k E3 bits — consecutive in the
        // stream) merge into one `read_bits(n + k)` call, halving the
        // refill overhead on this hot path. n + k ≤ 62.
        let k = (self.low << 1)
            .leading_ones()
            .min((self.high << 1).leading_zeros());
        let fresh = self.reader.read_bits(n + k);
        let fresh_n = (fresh >> k) as u32;
        let fresh_k = (fresh & mask64(k)) as u32;
        self.value = ((u64::from(self.value) << n) as u32) | fresh_n;
        self.low = (self.low << k) & !HALF;
        self.high = HALF | ((self.high << k) & !HALF) | (1u32.wrapping_shl(k)).wrapping_sub(1);
        self.value = (self.value & HALF) | ((self.value << k) & !HALF) | fresh_k;
        bit
    }

    /// Number of decisions decoded so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Borrows the underlying bit source (e.g. to inspect
    /// [`padding_bits`](BitSource::padding_bits) for truncation detection).
    pub fn source(&self) -> &S {
        &self.reader
    }

    /// Consumes the decoder, returning the underlying reader.
    pub fn into_reader(self) -> S {
        self.reader
    }
}

impl<S: BitSource> DecisionDecoder for BinaryDecoder<S> {
    #[inline]
    fn decode(&mut self, c0: u32, total: u32) -> bool {
        BinaryDecoder::decode(self, c0, total)
    }

    #[inline]
    fn decisions(&self) -> u64 {
        BinaryDecoder::decisions(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbic_bitio::BitReader;

    fn roundtrip(decisions: &[(bool, u32, u32)]) {
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &(bit, c0, total) in decisions {
            enc.encode(bit, c0, total);
        }
        let bytes = enc.finish().into_bytes();
        let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
        for &(bit, c0, total) in decisions {
            assert_eq!(dec.decode(c0, total), bit);
        }
    }

    #[test]
    fn empty_stream() {
        let enc = BinaryEncoder::new(BitWriter::new());
        let bytes = enc.finish().into_bytes();
        assert!(bytes.len() <= 1);
    }

    #[test]
    fn single_decisions() {
        roundtrip(&[(false, 1, 2)]);
        roundtrip(&[(true, 1, 2)]);
    }

    #[test]
    fn equiprobable_sequence_costs_about_one_bit_each() {
        let decisions: Vec<_> = (0..1000).map(|i| (i % 2 == 0, 1u32, 2u32)).collect();
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &(bit, c0, total) in &decisions {
            enc.encode(bit, c0, total);
        }
        let bits = enc.finish().into_bytes().len() * 8;
        assert!((1000..=1016).contains(&bits), "got {bits} bits");
    }

    #[test]
    fn skewed_sequence_compresses() {
        // P(0) = 255/256, all-zero input: ~0.0056 bits each.
        let decisions: Vec<_> = (0..10_000).map(|_| (false, 255u32, 256u32)).collect();
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &(bit, c0, total) in &decisions {
            enc.encode(bit, c0, total);
        }
        let bits = enc.finish().into_bytes().len() * 8;
        assert!(bits < 200, "got {bits} bits for 10k near-certain decisions");
        roundtrip(&decisions);
    }

    #[test]
    fn improbable_bits_roundtrip() {
        // Code the unlikely side repeatedly.
        let decisions: Vec<_> = (0..100).map(|_| (true, 255u32, 256u32)).collect();
        roundtrip(&decisions);
    }

    #[test]
    fn zero_count_on_uncoded_side_is_fine() {
        // P(0) = 1 (c0 == total): coding a 0 must work, interval for 1 empty.
        roundtrip(&[(false, 4, 4), (true, 0, 4), (false, 4, 4)]);
    }

    /// The zero-probability guard is a `debug_assert`, so the panic only
    /// exists in debug builds — release builds would fail the
    /// `should_panic` expectation.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "zero-probability")]
    fn zero_probability_decision_panics_in_debug() {
        let mut enc = BinaryEncoder::new(BitWriter::new());
        enc.encode(false, 0, 4);
    }

    #[test]
    #[should_panic(expected = "invalid total")]
    fn total_too_large_panics() {
        let mut enc = BinaryEncoder::new(BitWriter::new());
        enc.encode(false, 1, MAX_TOTAL + 1);
    }

    #[test]
    fn alternating_extreme_probabilities() {
        let mut decisions = Vec::new();
        for i in 0..500 {
            decisions.push((i % 7 == 0, 65_535u32, 65_536u32));
            decisions.push((i % 3 != 0, 1u32, 65_536u32));
        }
        roundtrip(&decisions);
    }

    /// The reciprocal ROM must compute the exact truncating quotient for
    /// every `(range, c0, total)` the coder can form: corners of the range
    /// register, every divisor width, and both sides of each multiple.
    #[test]
    fn reciprocal_division_is_exact_at_the_corners() {
        let recip = recip_table();
        let ranges = [
            1u64 << 30,
            (1 << 30) + 1,
            (1 << 31) - 1,
            1 << 31,
            (1u64 << 32) - 1,
            1u64 << 32,
        ];
        for total in (2u64..=65536).flat_map(|d| [d]) {
            // Sample c0 values across the divisor, always including the
            // extremes and neighbours of total/2.
            for c0 in [0, 1, total / 2, total / 2 + 1, total - 1, total] {
                for &range in &ranges {
                    let n = range * c0;
                    assert_eq!(
                        div_by_recip(n, recip[total as usize]),
                        n / total,
                        "n {n}, total {total}"
                    );
                }
            }
        }
    }

    #[test]
    fn decision_counters_match() {
        let decisions: Vec<_> = (0..77).map(|i| (i % 3 == 0, 2u32, 5u32)).collect();
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &(bit, c0, total) in &decisions {
            enc.encode(bit, c0, total);
        }
        assert_eq!(enc.decisions(), 77);
        let bytes = enc.finish().into_bytes();
        let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
        for &(_, c0, total) in &decisions {
            dec.decode(c0, total);
        }
        assert_eq!(dec.decisions(), 77);
    }
}
