//! Integer binary arithmetic coder.
//!
//! This is the software equivalent of the bit-serial coder the paper takes
//! from its reference \[7\]: a classic Witten–Neal–Cleary style interval
//! coder specialised to *binary* decisions, with 32-bit interval registers
//! and carry resolution via pending "follow" bits. Probabilities arrive as
//! a pair `(c0, total)`: the decision is `0` with probability `c0/total`.
//!
//! A zero count is legal on the side that is *not* being coded: the empty
//! sub-interval is simply never selected. Coding a decision whose own count
//! is zero is a caller bug (the estimator escapes instead) and panics in
//! debug builds.

use cbic_bitio::{BitSink, BitSource, BitWriter};

const HALF: u32 = 1 << 31;
const QUARTER: u32 = 1 << 30;
const THREE_QUARTERS: u32 = HALF + QUARTER;

/// Maximum decision `total` accepted by the coder.
///
/// Keeping totals at or below 2^16 guarantees every non-empty sub-interval
/// spans at least one code value after renormalisation (the interval is
/// always at least a quarter of the 32-bit range, i.e. 2^30 ≥ 2^16·2^14).
pub(crate) const MAX_TOTAL: u32 = 1 << 16;

/// Encoding half of the binary arithmetic coder.
///
/// Decisions are pushed with [`encode`](Self::encode); the coder emits bits
/// into the wrapped [`BitSink`] as the interval narrows (a [`BitWriter`] by
/// default; a [`StreamBitWriter`](cbic_bitio::StreamBitWriter) for the
/// bounded-memory streaming pipeline). [`finish`](Self::finish) flushes the
/// final disambiguating bits and returns the sink.
///
/// # Examples
///
/// ```
/// use cbic_arith::{BinaryDecoder, BinaryEncoder};
/// use cbic_bitio::{BitReader, BitWriter};
///
/// let mut enc = BinaryEncoder::new(BitWriter::new());
/// enc.encode(false, 3, 4); // P(0) = 3/4
/// enc.encode(true, 1, 4);  // P(1) = 3/4
/// let bytes = enc.finish().into_bytes();
///
/// let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
/// assert!(!dec.decode(3, 4));
/// assert!(dec.decode(1, 4));
/// ```
#[derive(Debug)]
pub struct BinaryEncoder<S = BitWriter> {
    low: u32,
    high: u32,
    pending: u64,
    writer: S,
    decisions: u64,
}

impl<S: BitSink> BinaryEncoder<S> {
    /// Wraps a bit sink in a fresh encoder covering the full interval.
    pub fn new(writer: S) -> Self {
        Self {
            low: 0,
            high: u32::MAX,
            pending: 0,
            writer,
            decisions: 0,
        }
    }

    #[inline]
    fn emit(&mut self, bit: bool) {
        self.writer.write_bit(bit);
        // Carry/underflow resolution: pending bits are the complement.
        for _ in 0..self.pending {
            self.writer.write_bit(!bit);
        }
        self.pending = 0;
    }

    /// Encodes one binary decision with `P(bit = 0) = c0 / total`.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero or exceeds 2^16, if `c0 > total`, or (in
    /// debug builds) if the coded side has zero probability.
    #[inline]
    pub fn encode(&mut self, bit: bool, c0: u32, total: u32) {
        assert!(total > 0 && total <= MAX_TOTAL, "invalid total {total}");
        assert!(c0 <= total, "c0 {c0} exceeds total {total}");
        debug_assert!(
            if bit { c0 < total } else { c0 > 0 },
            "coding a zero-probability decision (bit={bit}, c0={c0}, total={total})"
        );
        self.decisions += 1;

        let range = u64::from(self.high) - u64::from(self.low) + 1;
        // First code value of the `1` sub-interval (may be high + 1 when
        // the `1` side is empty, hence the 64-bit arithmetic).
        let split = u64::from(self.low) + (range * u64::from(c0)) / u64::from(total);
        if bit {
            self.low = split as u32;
        } else {
            self.high = (split - 1) as u32;
        }

        loop {
            if self.high < HALF {
                self.emit(false);
            } else if self.low >= HALF {
                self.emit(true);
                self.low -= HALF;
                self.high -= HALF;
            } else if self.low >= QUARTER && self.high < THREE_QUARTERS {
                self.pending += 1;
                self.low -= QUARTER;
                self.high -= QUARTER;
            } else {
                break;
            }
            self.low <<= 1;
            self.high = (self.high << 1) | 1;
        }
    }

    /// Number of decisions encoded so far.
    ///
    /// The hardware model uses this: the paper's coder retires one binary
    /// decision per clock, so decisions/pixel sets the pipeline's
    /// initiation interval.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Bits emitted so far (excluding un-flushed interval state).
    pub fn bits_written(&self) -> u64 {
        self.writer.bits_written()
    }

    /// Borrows the underlying bit sink (e.g. to poll a streaming sink for
    /// latched I/O errors mid-encode).
    pub fn sink(&self) -> &S {
        &self.writer
    }

    /// Mutably borrows the underlying bit sink.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.writer
    }

    /// Flushes the interval state and returns the underlying sink.
    ///
    /// Emits `pending + 2` bits that pin the final code value inside the
    /// interval, after which the decoder's zero-padded reads cannot leave it.
    pub fn finish(mut self) -> S {
        self.pending += 1;
        let bit = self.low >= QUARTER;
        self.emit(bit);
        // One more bit keeps the value strictly inside [low, high] even
        // when the decoder pads with zeros.
        self.writer.write_bit(true);
        self.writer
    }
}

/// Decoding half of the binary arithmetic coder.
///
/// Must be fed the same `(c0, total)` sequence the encoder used; adaptive
/// models guarantee this by updating identically on both sides. The bit
/// source is generic: a [`BitReader`](cbic_bitio::BitReader) over a buffered
/// payload, or a [`StreamBitReader`](cbic_bitio::StreamBitReader) refilled
/// incrementally from `std::io::Read`.
#[derive(Debug)]
pub struct BinaryDecoder<S> {
    low: u32,
    high: u32,
    value: u32,
    reader: S,
    decisions: u64,
}

impl<S: BitSource> BinaryDecoder<S> {
    /// Wraps a bit source and pre-loads the first 32 code bits.
    pub fn new(mut reader: S) -> Self {
        let value = reader.read_bits(32) as u32;
        Self {
            low: 0,
            high: u32::MAX,
            value,
            reader,
            decisions: 0,
        }
    }

    /// Decodes one binary decision with `P(bit = 0) = c0 / total`.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero or exceeds 2^16 or if `c0 > total`.
    #[inline]
    pub fn decode(&mut self, c0: u32, total: u32) -> bool {
        assert!(total > 0 && total <= MAX_TOTAL, "invalid total {total}");
        assert!(c0 <= total, "c0 {c0} exceeds total {total}");
        self.decisions += 1;

        let range = u64::from(self.high) - u64::from(self.low) + 1;
        let split = u64::from(self.low) + (range * u64::from(c0)) / u64::from(total);
        let bit = u64::from(self.value) >= split;
        if bit {
            self.low = split as u32;
        } else {
            self.high = (split - 1) as u32;
        }

        loop {
            if self.high < HALF {
                // Top bits are 0; nothing to subtract.
            } else if self.low >= HALF {
                self.low -= HALF;
                self.high -= HALF;
                self.value -= HALF;
            } else if self.low >= QUARTER && self.high < THREE_QUARTERS {
                self.low -= QUARTER;
                self.high -= QUARTER;
                self.value -= QUARTER;
            } else {
                break;
            }
            self.low <<= 1;
            self.high = (self.high << 1) | 1;
            self.value = (self.value << 1) | u32::from(self.reader.read_bit());
        }
        bit
    }

    /// Number of decisions decoded so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Borrows the underlying bit source (e.g. to inspect
    /// [`padding_bits`](BitSource::padding_bits) for truncation detection).
    pub fn source(&self) -> &S {
        &self.reader
    }

    /// Consumes the decoder, returning the underlying reader.
    pub fn into_reader(self) -> S {
        self.reader
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbic_bitio::BitReader;

    fn roundtrip(decisions: &[(bool, u32, u32)]) {
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &(bit, c0, total) in decisions {
            enc.encode(bit, c0, total);
        }
        let bytes = enc.finish().into_bytes();
        let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
        for &(bit, c0, total) in decisions {
            assert_eq!(dec.decode(c0, total), bit);
        }
    }

    #[test]
    fn empty_stream() {
        let enc = BinaryEncoder::new(BitWriter::new());
        let bytes = enc.finish().into_bytes();
        assert!(bytes.len() <= 1);
    }

    #[test]
    fn single_decisions() {
        roundtrip(&[(false, 1, 2)]);
        roundtrip(&[(true, 1, 2)]);
    }

    #[test]
    fn equiprobable_sequence_costs_about_one_bit_each() {
        let decisions: Vec<_> = (0..1000).map(|i| (i % 2 == 0, 1u32, 2u32)).collect();
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &(bit, c0, total) in &decisions {
            enc.encode(bit, c0, total);
        }
        let bits = enc.finish().into_bytes().len() * 8;
        assert!((1000..=1016).contains(&bits), "got {bits} bits");
    }

    #[test]
    fn skewed_sequence_compresses() {
        // P(0) = 255/256, all-zero input: ~0.0056 bits each.
        let decisions: Vec<_> = (0..10_000).map(|_| (false, 255u32, 256u32)).collect();
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &(bit, c0, total) in &decisions {
            enc.encode(bit, c0, total);
        }
        let bits = enc.finish().into_bytes().len() * 8;
        assert!(bits < 200, "got {bits} bits for 10k near-certain decisions");
        roundtrip(&decisions);
    }

    #[test]
    fn improbable_bits_roundtrip() {
        // Code the unlikely side repeatedly.
        let decisions: Vec<_> = (0..100).map(|_| (true, 255u32, 256u32)).collect();
        roundtrip(&decisions);
    }

    #[test]
    fn zero_count_on_uncoded_side_is_fine() {
        // P(0) = 1 (c0 == total): coding a 0 must work, interval for 1 empty.
        roundtrip(&[(false, 4, 4), (true, 0, 4), (false, 4, 4)]);
    }

    #[test]
    #[should_panic(expected = "zero-probability")]
    fn zero_probability_decision_panics_in_debug() {
        let mut enc = BinaryEncoder::new(BitWriter::new());
        enc.encode(false, 0, 4);
    }

    #[test]
    #[should_panic(expected = "invalid total")]
    fn total_too_large_panics() {
        let mut enc = BinaryEncoder::new(BitWriter::new());
        enc.encode(false, 1, MAX_TOTAL + 1);
    }

    #[test]
    fn alternating_extreme_probabilities() {
        let mut decisions = Vec::new();
        for i in 0..500 {
            decisions.push((i % 7 == 0, 65_535u32, 65_536u32));
            decisions.push((i % 3 != 0, 1u32, 65_536u32));
        }
        roundtrip(&decisions);
    }

    #[test]
    fn decision_counters_match() {
        let decisions: Vec<_> = (0..77).map(|i| (i % 3 == 0, 2u32, 5u32)).collect();
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &(bit, c0, total) in &decisions {
            enc.encode(bit, c0, total);
        }
        assert_eq!(enc.decisions(), 77);
        let bytes = enc.finish().into_bytes();
        let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
        for &(_, c0, total) in &decisions {
            dec.decode(c0, total);
        }
        assert_eq!(dec.decisions(), 77);
    }
}
