//! Integer binary arithmetic coder.
//!
//! This is the software equivalent of the bit-serial coder the paper takes
//! from its reference \[7\]: a classic Witten–Neal–Cleary style interval
//! coder specialised to *binary* decisions, with 32-bit interval registers
//! and carry resolution via pending "follow" bits. Probabilities arrive as
//! a pair `(c0, total)`: the decision is `0` with probability `c0/total`.
//!
//! A zero count is legal on the side that is *not* being coded: the empty
//! sub-interval is simply never selected. Coding a decision whose own count
//! is zero is a caller bug (the estimator escapes instead) and panics in
//! debug builds.

use cbic_bitio::{BitSink, BitSource, BitWriter};
use std::sync::OnceLock;

pub(crate) const HALF: u32 = 1 << 31;
pub(crate) const QUARTER: u32 = 1 << 30;

/// Maximum decision `total` accepted by the coder.
///
/// Keeping totals at or below 2^16 guarantees every non-empty sub-interval
/// spans at least one code value after renormalisation (the interval is
/// always at least a quarter of the 32-bit range, i.e. 2^30 ≥ 2^16·2^14).
pub(crate) const MAX_TOTAL: u32 = 1 << 16;

/// Reciprocal ROM for the interval split: entry `d` holds `⌈2⁶⁴ / d⌉`, so
/// the per-decision `⌊range·c0 / total⌋` becomes one widening multiply and
/// a shift instead of a hardware divide — the division-free datapath a
/// hardware coder would synthesize.
///
/// **Exactness** (Granlund–Montgomery invariant division): with
/// `m = ⌈2⁶⁴/d⌉` the error `e = m·d − 2⁶⁴` is in `[0, d)`, so
/// `n·m/2⁶⁴ = n/d + n·e/(d·2⁶⁴)` and the excess is below `n/2⁶⁴ ≤ 2⁻¹⁶`
/// for every dividend `n ≤ 2⁴⁸` — too small to carry `⌊n/d⌋` to the next
/// integer (the fractional part of `n/d` is at most `1 − 2⁻¹⁶`). Here
/// `n = range·c0 ≤ 2³²·2¹⁶`, so every split is bit-exact; the property
/// test sweeps the corners.
///
/// Entry 1 would need `2⁶⁴` and stays 0 — a divisor of 1 forces `c0 = 0`
/// or `c0 = total`, which the deterministic-decision shortcut retires
/// before any division.
pub(crate) fn recip_table() -> &'static [u64] {
    static RECIP: OnceLock<Vec<u64>> = OnceLock::new();
    RECIP.get_or_init(|| {
        let mut t = vec![0u64; MAX_TOTAL as usize + 1];
        for (d, slot) in t.iter_mut().enumerate().skip(2) {
            *slot = (1u128 << 64).div_ceil(d as u128) as u64;
        }
        t
    })
}

/// `⌊n / d⌋` by reciprocal multiplication (see [`recip_table`]).
#[inline]
pub(crate) fn div_by_recip(n: u64, recip: u64) -> u64 {
    ((u128::from(n) * u128::from(recip)) >> 64) as u64
}

/// The low `count` bits set, without branching on `count == 0`. Shift
/// amounts ≥ 64 wrap (callers mask the result in those lanes).
#[inline]
pub(crate) fn mask64(count: u32) -> u64 {
    (1u64.wrapping_shl(count)).wrapping_sub(1)
}

/// A pixel's worth of pre-classified binary decisions, built by the model
/// layer and retired by one [`DecisionEncoder::encode_batch`] call.
///
/// The model (tree descent + escape context) knows which decisions are
/// deterministic — `c0 == 0` or `c0 == total` means the coded side owns the
/// whole interval, so the coder would emit zero bits and leave its
/// registers untouched. Those decisions never enter the batch: they are
/// only *counted* (via [`skip_deterministic`](Self::skip_deterministic)) so
/// the decisions/pixel accounting that sets the hardware model's initiation
/// interval stays exact. Coded decisions are stored in the same
/// `bit<<34 | c0<<17 | total` packing the lane mux uses, so a
/// [`LaneEncoder`](crate::LaneEncoder) can append them to its stripe buffer
/// without re-packing.
/// Cacheline-aligned: the batch is written by the model descent and read
/// back immediately by the coder, so its placement relative to the tree's
/// counter stores is hot; letting the packed array straddle lines at the
/// allocator's whim makes that store-to-load traffic layout-dependent.
#[derive(Debug, Clone)]
#[repr(align(64))]
pub struct DecisionBatch {
    packed: [u64; Self::CAPACITY],
    len: usize,
    deterministic: u32,
}

impl Default for DecisionBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl DecisionBatch {
    /// Maximum coded decisions per batch: enough for two sub-symbol
    /// descents (escape + 8 path/static decisions each) with headroom.
    pub const CAPACITY: usize = 32;

    /// An empty batch.
    #[inline]
    pub fn new() -> Self {
        Self {
            packed: [0; Self::CAPACITY],
            len: 0,
            deterministic: 0,
        }
    }

    /// Appends one coded (non-deterministic) decision.
    ///
    /// # Panics
    ///
    /// Panics if the batch is full; in debug builds, also if the decision
    /// is deterministic or `total` is out of range.
    #[inline]
    pub fn push_coded(&mut self, bit: bool, c0: u32, total: u32) {
        debug_assert!(total > 0 && total <= MAX_TOTAL, "invalid total {total}");
        debug_assert!(
            c0 > 0 && c0 < total,
            "batched decision must be non-deterministic (c0={c0}, total={total})"
        );
        self.packed[self.len] = (u64::from(bit) << 34) | (u64::from(c0) << 17) | u64::from(total);
        self.len += 1;
    }

    /// Accounts `n` deterministic decisions retired at the model layer.
    #[inline]
    pub fn skip_deterministic(&mut self, n: u32) {
        self.deterministic += n;
    }

    /// Branchless append for the fused capture descent: always writes the
    /// packed word at the cursor, advances the cursor only when `coded`.
    /// A deterministic decision's word is left behind the cursor and
    /// overwritten by the next level — the classic compaction idiom, so
    /// the descent never branches on the patternless coded/deterministic
    /// outcome.
    #[inline]
    pub(crate) fn stage(&mut self, packed: u64, coded: bool) {
        self.packed[self.len] = packed;
        self.len += usize::from(coded);
    }

    /// The packed coded decisions, in stream order.
    #[inline]
    pub fn coded(&self) -> &[u64] {
        &self.packed[..self.len]
    }

    /// Number of coded decisions in the batch.
    #[inline]
    pub fn coded_len(&self) -> usize {
        self.len
    }

    /// Number of deterministic decisions folded into the batch.
    #[inline]
    pub fn deterministic_len(&self) -> u64 {
        u64::from(self.deterministic)
    }

    /// Total decisions the batch represents (coded + deterministic).
    #[inline]
    pub fn decisions(&self) -> u64 {
        self.len as u64 + u64::from(self.deterministic)
    }

    /// Empties the batch for reuse.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
        self.deterministic = 0;
    }
}

/// Anything that can encode a stream of binary decisions.
///
/// The adaptive model layer (estimator trees, context banks, symbol coders)
/// is written against this trait, so the same model code drives a single
/// [`BinaryEncoder`] or a lane-interleaved
/// [`LaneEncoder`](crate::LaneEncoder) without knowing which.
pub trait DecisionEncoder {
    /// Encodes one binary decision with `P(bit = 0) = c0 / total`.
    fn encode(&mut self, bit: bool, c0: u32, total: u32);

    /// Number of decisions encoded so far.
    fn decisions(&self) -> u64;

    /// Number of *coded* (non-deterministic) decisions encoded so far —
    /// the subset that actually moved the interval and cost code space.
    fn coded_decisions(&self) -> u64;

    /// Accounts `n` deterministic decisions the model layer retired
    /// without calling [`encode`](Self::encode). They emit no bits and
    /// touch no coder state; only the decision counter moves.
    fn note_deterministic(&mut self, n: u64);

    /// Whether this encoder is cheaper to drive through
    /// [`encode_batch`](Self::encode_batch) than through per-decision
    /// [`encode`](Self::encode) calls.
    ///
    /// Buffering encoders (the lane mux) want the batch: they append the
    /// packed words with a straight copy. An immediate encoder like
    /// [`BinaryEncoder`] does not — materialising the batch turns the
    /// model's captured decisions into a store-then-reload roundtrip that
    /// sits right behind the tree's counter stores, and whether those
    /// stores alias the reload is decided by heap placement, which makes
    /// throughput layout-dependent. The model layer consults this to pick
    /// between staging a batch and coding decisions as the descent
    /// produces them (both orders are byte-identical by construction).
    #[inline]
    fn prefers_batch(&self) -> bool {
        true
    }

    /// Encodes a pre-classified batch of decisions.
    ///
    /// The default simply replays the batch through
    /// [`encode`](Self::encode) one decision at a time — bit-identical to
    /// the fast implementations by construction, and the reference the
    /// differential tests pin them against. Implementations override this
    /// to amortise renormalisation and output flushes across the batch.
    #[inline]
    fn encode_batch(&mut self, batch: &DecisionBatch) {
        self.note_deterministic(batch.deterministic_len());
        for &packed in batch.coded() {
            let total = (packed & 0x1_FFFF) as u32;
            let c0 = ((packed >> 17) & 0x1_FFFF) as u32;
            self.encode(packed >> 34 != 0, c0, total);
        }
    }
}

/// A null [`DecisionEncoder`]: counts decisions, codes nothing.
///
/// Driving the full model pipeline into this encoder measures the *model*
/// stage alone — prediction, context formation, tree descents — with the
/// interval arithmetic and output path removed. The throughput harness
/// subtracts such a pass from a real encode to split per-pixel time into
/// model and coder shares.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingEncoder {
    decisions: u64,
    coded: u64,
}

impl CountingEncoder {
    /// A fresh counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DecisionEncoder for CountingEncoder {
    #[inline]
    fn encode(&mut self, _bit: bool, c0: u32, total: u32) {
        self.decisions += 1;
        self.coded += u64::from((c0 != 0) & (c0 != total));
    }

    /// Mirrors [`BinaryEncoder`]: the model-stage timing this encoder
    /// exists for must drive the model through the same code path a real
    /// single-coder encode takes.
    #[inline]
    fn prefers_batch(&self) -> bool {
        false
    }

    #[inline]
    fn decisions(&self) -> u64 {
        self.decisions
    }

    #[inline]
    fn coded_decisions(&self) -> u64 {
        self.coded
    }

    #[inline]
    fn note_deterministic(&mut self, n: u64) {
        self.decisions += n;
    }

    #[inline]
    fn encode_batch(&mut self, batch: &DecisionBatch) {
        self.decisions += batch.decisions();
        self.coded += batch.coded_len() as u64;
    }
}

/// Anything that can decode a stream of binary decisions.
///
/// Must be fed the same `(c0, total)` sequence its encoding counterpart
/// consumed; adaptive models guarantee this by updating identically on
/// both sides.
pub trait DecisionDecoder {
    /// Decodes one binary decision with `P(bit = 0) = c0 / total`.
    fn decode(&mut self, c0: u32, total: u32) -> bool;

    /// Number of decisions decoded so far.
    fn decisions(&self) -> u64;

    /// Number of *coded* (non-deterministic) decisions decoded so far.
    fn coded_decisions(&self) -> u64;

    /// Accounts `n` deterministic decisions the model layer resolved
    /// without consulting the bitstream.
    fn note_deterministic(&mut self, n: u64);

    /// Decodes a decision the model layer already classified as
    /// non-deterministic (`0 < c0 < total`), letting implementations skip
    /// their own deterministic screening. The default defers to
    /// [`decode`](Self::decode), whose screening is then dead but harmless.
    #[inline]
    fn decode_nondeterministic(&mut self, c0: u32, total: u32) -> bool {
        self.decode(c0, total)
    }
}

/// Encoding half of the binary arithmetic coder.
///
/// Decisions are pushed with [`encode`](Self::encode); the coder emits bits
/// into the wrapped [`BitSink`] as the interval narrows (a [`BitWriter`] by
/// default; a [`StreamBitWriter`](cbic_bitio::StreamBitWriter) for the
/// bounded-memory streaming pipeline). [`finish`](Self::finish) flushes the
/// final disambiguating bits and returns the sink.
///
/// # Examples
///
/// ```
/// use cbic_arith::{BinaryDecoder, BinaryEncoder};
/// use cbic_bitio::{BitReader, BitWriter};
///
/// let mut enc = BinaryEncoder::new(BitWriter::new());
/// enc.encode(false, 3, 4); // P(0) = 3/4
/// enc.encode(true, 1, 4);  // P(1) = 3/4
/// let bytes = enc.finish().into_bytes();
///
/// let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
/// assert!(!dec.decode(3, 4));
/// assert!(dec.decode(1, 4));
/// ```
#[derive(Debug)]
pub struct BinaryEncoder<S = BitWriter> {
    low: u32,
    high: u32,
    pending: u64,
    writer: S,
    decisions: u64,
    coded: u64,
    recip: &'static [u64],
}

impl<S: BitSink> BinaryEncoder<S> {
    /// Wraps a bit sink in a fresh encoder covering the full interval.
    pub fn new(writer: S) -> Self {
        Self {
            low: 0,
            high: u32::MAX,
            pending: 0,
            writer,
            decisions: 0,
            coded: 0,
            recip: recip_table(),
        }
    }

    #[inline]
    fn emit(&mut self, bit: bool) {
        self.writer.write_bit(bit);
        // Carry/underflow resolution: pending bits are the complement.
        for _ in 0..self.pending {
            self.writer.write_bit(!bit);
        }
        self.pending = 0;
    }

    /// Encodes one binary decision with `P(bit = 0) = c0 / total`.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero or exceeds 2^16, if `c0 > total`, or (in
    /// debug builds) if the coded side has zero probability.
    #[inline]
    pub fn encode(&mut self, bit: bool, c0: u32, total: u32) {
        assert!(total > 0 && total <= MAX_TOTAL, "invalid total {total}");
        assert!(c0 <= total, "c0 {c0} exceeds total {total}");
        debug_assert!(
            if bit { c0 < total } else { c0 > 0 },
            "coding a zero-probability decision (bit={bit}, c0={c0}, total={total})"
        );

        // Deterministic decisions are free: when the coded side owns the
        // whole interval (`P = 1`), the split leaves `low`/`high` exactly
        // where they were, no renormalisation can trigger, and no bit is
        // emitted — so skip the 64-bit multiply/divide entirely. Adapted
        // trees hit this constantly (every node whose sibling branch has
        // decayed to zero), which makes it the hottest shortcut in the
        // coder. The emitted stream is identical by construction.
        if if bit { c0 == 0 } else { c0 == total } {
            self.decisions += 1;
            return;
        }

        self.encode_coded(bit, c0, total);
    }

    /// Encodes a decision already known to be non-deterministic
    /// (`0 < c0 < total`), skipping the deterministic shortcut.
    ///
    /// This is the lane entry point: a
    /// [`LaneEncoder`](crate::LaneEncoder) retires deterministic decisions
    /// at the mux level — they touch no interval state, so they must not
    /// advance the lane cursor — and forwards only coded decisions here.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero or exceeds 2^16; in debug builds, also if
    /// `c0 > total` or the decision is deterministic. Release builds do
    /// not re-validate `c0` (the adaptive model layer guarantees it); a
    /// violating caller corrupts its own stream but stays memory-safe.
    #[inline(always)]
    pub fn encode_coded(&mut self, bit: bool, c0: u32, total: u32) {
        // This bound doubles as the recip bounds-check, letting LLVM elide
        // the slice panic branch below.
        assert!(total > 0 && total <= MAX_TOTAL, "invalid total {total}");
        debug_assert!(
            c0 > 0 && c0 < total,
            "encode_coded requires a non-deterministic decision (c0={c0}, total={total})"
        );
        self.decisions += 1;
        self.coded += 1;

        let range = u64::from(self.high) - u64::from(self.low) + 1;
        // First code value of the `1` sub-interval (may be high + 1 when
        // the `1` side is empty, hence the 64-bit arithmetic). The divide
        // runs through the reciprocal ROM — bit-exact, see [`recip_table`].
        let split =
            u64::from(self.low) + div_by_recip(range * u64::from(c0), self.recip[total as usize]);
        // Value selects, not branches: the outcome bit is data the branch
        // predictor cannot learn, so this must compile to conditional
        // moves.
        self.low = if bit { split as u32 } else { self.low };
        self.high = if bit { self.high } else { (split - 1) as u32 };

        // Renormalisation, straight-line and branch-free. The classic loop
        // interleaves two kinds of step, but they cannot actually
        // alternate: all top bits shared by `low` and `high` are settled
        // and emit first (an E3 straddle needs the top bits to *differ*),
        // and once the maximal run of E3 straddles is absorbed the top
        // bits still differ and no further straddle holds. So: one bulk
        // emit, one bulk E3, done — bit-for-bit what the loop produces
        // (the shift-without-subtract is the same discard of the emitted
        // top bit).
        //
        // Branch-freedom matters more than the op count here: whether a
        // decision settles bits (`n > 0`, roughly half of them, patternless)
        // is exactly what a branch predictor cannot learn, and one flush
        // costs more than this whole function.
        let n = (self.low ^ self.high).leading_zeros(); // ≤ 31: low < high
        let bits = u64::from(self.low) >> (32 - n);
        if (n > 0) & (u64::from(n) + self.pending > 48) {
            // Cold: an E3 run has banked more follow bits than the packed
            // release below can address. Non-short-circuit `&` keeps this
            // a single near-never-taken branch rather than a branch on the
            // patternless `n > 0`.
            let first = (bits >> (n - 1)) & 1 == 1;
            self.emit(first);
            if n > 1 {
                self.writer
                    .write_bits(bits & ((1u64 << (n - 1)) - 1), n - 1);
            }
        } else {
            // Packed release: the first settled bit, then `pending`
            // complements of it, then the remaining settled bits verbatim
            // — assembled as one `write_bits` word. When n == 0 the
            // `keep` mask zeroes the pattern and length and preserves
            // `pending`, so the same straight-line code is a no-op.
            // (Shift amounts are masked: with n == 0 they go out of range
            // but their results are discarded by `keep`.)
            let keep = u64::from(n == 0).wrapping_neg(); // n==0 ? !0 : 0
            let first = bits.wrapping_shr(n.wrapping_sub(1)) & 1;
            let comps = ((first ^ 1).wrapping_neg() & mask64(self.pending as u32))
                .wrapping_shl(n.wrapping_sub(1));
            let head = first.wrapping_shl((self.pending as u32).wrapping_add(n).wrapping_sub(1));
            let body = bits & (1u64.wrapping_shl(n.wrapping_sub(1))).wrapping_sub(1);
            self.writer.write_bits(
                (head | comps | body) & !keep,
                ((self.pending + u64::from(n)) & !keep) as u32,
            );
            self.pending &= keep;
        }
        self.low = (u64::from(self.low) << n) as u32;
        self.high = ((u64::from(self.high) << n) | ((1u64 << n) - 1)) as u32;

        // Bulk E3: `low = 01…`, `high = 10…` straddle the midpoint for
        // exactly k more steps, where k counts how long low keeps leading
        // 1s (below its top 0) and high keeps leading 0s (below its top
        // 1). Each step deletes bit 30 — the straddling bit — from every
        // register and records one pending complement. At k == 0 every
        // line below is the identity (low's top bit is 0 and high's is 1
        // after the emit shift), so again no branch.
        let k = (self.low << 1)
            .leading_ones()
            .min((self.high << 1).leading_zeros());
        self.pending += u64::from(k);
        self.low = (self.low << k) & !HALF;
        self.high = HALF | ((self.high << k) & !HALF) | (1u32.wrapping_shl(k)).wrapping_sub(1);
    }

    /// Encodes a pre-classified batch of decisions, byte-identical to
    /// replaying it through [`encode`](Self::encode) decision by decision.
    ///
    /// This is the single-coder analogue of the lane lockstep loop in
    /// `lanes.rs`: the interval registers and the pending-bit counter live
    /// in locals across the whole batch, and every packed bit release is
    /// staged into a local 64-bit accumulator, so the sink's `write_bits`
    /// runs once per spill / batch instead of once per decision. The cold
    /// long-follow-run branch (> 48 banked bits) drains the accumulator
    /// first and then falls back to the plain writer path.
    ///
    /// # Panics
    ///
    /// Panics if a batched `total` is zero or exceeds 2^16.
    pub fn encode_batch(&mut self, batch: &DecisionBatch) {
        self.decisions += batch.decisions();
        self.coded += batch.coded_len() as u64;
        let mut low = self.low;
        let mut high = self.high;
        let mut pending = self.pending;
        let mut acc = 0u64;
        let mut nacc = 0u32;
        for &packed in batch.coded() {
            let total = (packed & 0x1_FFFF) as u32;
            let c0 = ((packed >> 17) & 0x1_FFFF) as u32;
            let bit = packed >> 34 != 0;
            assert!(total > 0 && total <= MAX_TOTAL, "invalid total {total}");
            debug_assert!(c0 > 0 && c0 < total);

            let range = u64::from(high) - u64::from(low) + 1;
            let split =
                u64::from(low) + div_by_recip(range * u64::from(c0), self.recip[total as usize]);
            low = if bit { split as u32 } else { low };
            high = if bit { high } else { (split - 1) as u32 };

            // Renormalisation, identical in structure to `encode_coded`;
            // see the commentary there. Only the destination of the packed
            // release differs: the local accumulator instead of the sink.
            let n = (low ^ high).leading_zeros();
            let bits = u64::from(low) >> (32 - n);
            if (n > 0) & (u64::from(n) + pending > 48) {
                // Cold: drain the accumulator so the sink sees the bits in
                // order, then release the long follow run directly.
                if nacc > 0 {
                    self.writer.write_bits(acc, nacc);
                    acc = 0;
                    nacc = 0;
                }
                let first = (bits >> (n - 1)) & 1 == 1;
                self.writer.write_bit(first);
                for _ in 0..pending {
                    self.writer.write_bit(!first);
                }
                pending = 0;
                if n > 1 {
                    self.writer
                        .write_bits(bits & ((1u64 << (n - 1)) - 1), n - 1);
                }
            } else {
                let keep = u64::from(n == 0).wrapping_neg();
                let first = bits.wrapping_shr(n.wrapping_sub(1)) & 1;
                let comps = ((first ^ 1).wrapping_neg() & mask64(pending as u32))
                    .wrapping_shl(n.wrapping_sub(1));
                let head = first.wrapping_shl((pending as u32).wrapping_add(n).wrapping_sub(1));
                let body = bits & (1u64.wrapping_shl(n.wrapping_sub(1))).wrapping_sub(1);
                let word = (head | comps | body) & !keep;
                let count = ((pending + u64::from(n)) & !keep) as u32;
                // Stage into the accumulator; each release is ≤ 48 bits,
                // so one spill always makes room.
                if count > 64 - nacc {
                    self.writer.write_bits(acc, nacc);
                    acc = 0;
                    nacc = 0;
                }
                acc = (acc << count) | word;
                nacc += count;
                pending &= keep;
            }
            low = (u64::from(low) << n) as u32;
            high = ((u64::from(high) << n) | ((1u64 << n) - 1)) as u32;

            let k = (low << 1).leading_ones().min((high << 1).leading_zeros());
            pending += u64::from(k);
            low = (low << k) & !HALF;
            high = HALF | ((high << k) & !HALF) | (1u32.wrapping_shl(k)).wrapping_sub(1);
        }
        if nacc > 0 {
            self.writer.write_bits(acc, nacc);
        }
        self.low = low;
        self.high = high;
        self.pending = pending;
    }

    /// Number of decisions encoded so far.
    ///
    /// The hardware model uses this: the paper's coder retires one binary
    /// decision per clock, so decisions/pixel sets the pipeline's
    /// initiation interval.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Number of coded (non-deterministic) decisions encoded so far.
    pub fn coded_decisions(&self) -> u64 {
        self.coded
    }

    /// Bits emitted so far (excluding un-flushed interval state).
    pub fn bits_written(&self) -> u64 {
        self.writer.bits_written()
    }

    /// Borrows the underlying bit sink (e.g. to poll a streaming sink for
    /// latched I/O errors mid-encode).
    pub fn sink(&self) -> &S {
        &self.writer
    }

    /// Mutably borrows the underlying bit sink.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.writer
    }

    /// Flushes the interval state and returns the underlying sink.
    ///
    /// Emits `pending + 2` bits that pin the final code value inside the
    /// interval, after which the decoder's zero-padded reads cannot leave it.
    pub fn finish(mut self) -> S {
        self.pending += 1;
        let bit = self.low >= QUARTER;
        self.emit(bit);
        // One more bit keeps the value strictly inside [low, high] even
        // when the decoder pads with zeros.
        self.writer.write_bit(true);
        self.writer
    }
}

impl<S: BitSink> DecisionEncoder for BinaryEncoder<S> {
    #[inline]
    fn encode(&mut self, bit: bool, c0: u32, total: u32) {
        BinaryEncoder::encode(self, bit, c0, total);
    }

    /// Immediate encoder: decisions are cheapest coded as the descent
    /// produces them (see the trait doc for why materialised batches are
    /// layout-sensitive here). [`encode_batch`](Self::encode_batch) stays
    /// available — and byte-identical — for callers that already hold a
    /// batch.
    #[inline]
    fn prefers_batch(&self) -> bool {
        false
    }

    #[inline]
    fn decisions(&self) -> u64 {
        BinaryEncoder::decisions(self)
    }

    #[inline]
    fn coded_decisions(&self) -> u64 {
        BinaryEncoder::coded_decisions(self)
    }

    #[inline]
    fn note_deterministic(&mut self, n: u64) {
        self.decisions += n;
    }

    #[inline]
    fn encode_batch(&mut self, batch: &DecisionBatch) {
        BinaryEncoder::encode_batch(self, batch);
    }
}

/// Decoding half of the binary arithmetic coder.
///
/// Must be fed the same `(c0, total)` sequence the encoder used; adaptive
/// models guarantee this by updating identically on both sides. The bit
/// source is generic: a [`BitReader`](cbic_bitio::BitReader) over a buffered
/// payload, or a [`StreamBitReader`](cbic_bitio::StreamBitReader) refilled
/// incrementally from `std::io::Read`.
#[derive(Debug)]
pub struct BinaryDecoder<S> {
    low: u32,
    high: u32,
    value: u32,
    reader: S,
    decisions: u64,
    coded: u64,
    recip: &'static [u64],
}

impl<S: BitSource> BinaryDecoder<S> {
    /// Wraps a bit source and pre-loads the first 32 code bits.
    pub fn new(mut reader: S) -> Self {
        let value = reader.read_bits(32) as u32;
        Self {
            low: 0,
            high: u32::MAX,
            value,
            reader,
            decisions: 0,
            coded: 0,
            recip: recip_table(),
        }
    }

    /// Decodes one binary decision with `P(bit = 0) = c0 / total`.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero or exceeds 2^16 or if `c0 > total`.
    #[inline]
    pub fn decode(&mut self, c0: u32, total: u32) -> bool {
        assert!(total > 0 && total <= MAX_TOTAL, "invalid total {total}");
        assert!(c0 <= total, "c0 {c0} exceeds total {total}");

        // The encoder's deterministic-decision shortcut, mirrored: with
        // `c0 == 0` the split lands on `low` so the decision is always 1;
        // with `c0 == total` it lands past `high` so it is always 0. The
        // interval (and the code value) are untouched either way.
        if c0 == 0 {
            self.decisions += 1;
            return true;
        }
        if c0 == total {
            self.decisions += 1;
            return false;
        }

        self.decode_coded(c0, total)
    }

    /// Decodes a decision already known to be non-deterministic
    /// (`0 < c0 < total`), skipping the deterministic check. The lane entry
    /// point, mirroring [`BinaryEncoder::encode_coded`].
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero or exceeds 2^16 or if `c0 > total`; in
    /// debug builds, also if the decision is deterministic.
    #[inline(always)]
    pub fn decode_coded(&mut self, c0: u32, total: u32) -> bool {
        // This bound doubles as the recip bounds-check, letting LLVM elide
        // the slice panic branch below. `c0` is only debug-checked: it
        // comes from the adaptive model (never from the bitstream), so
        // corrupt input cannot reach here with a bad value.
        assert!(total > 0 && total <= MAX_TOTAL, "invalid total {total}");
        debug_assert!(c0 <= total, "c0 {c0} exceeds total {total}");
        debug_assert!(
            c0 > 0 && c0 < total,
            "decode_coded requires a non-deterministic decision (c0={c0}, total={total})"
        );
        self.decisions += 1;
        self.coded += 1;

        let range = u64::from(self.high) - u64::from(self.low) + 1;
        let split =
            u64::from(self.low) + div_by_recip(range * u64::from(c0), self.recip[total as usize]);
        let bit = u64::from(self.value) >= split;
        self.low = if bit { split as u32 } else { self.low };
        self.high = if bit { self.high } else { (split - 1) as u32 };

        // Renormalisation, mirroring the encoder's straight-line
        // branch-free form (one settled-bits shift, then one bulk E3 batch
        // — see the encoder for why the two steps cannot alternate). The
        // invariant `low ≤ value ≤ high` holds for *any* input bits (each
        // decision moves the boundary `value` is already on the right side
        // of), so `value` shares the settled top bits and the wrapping
        // shift below discards exactly what the classic subtract-then-shift
        // would.
        let n = (self.low ^ self.high).leading_zeros(); // ≤ 31: low < high
        self.low = (u64::from(self.low) << n) as u32;
        self.high = ((u64::from(self.high) << n) | ((1u64 << n) - 1)) as u32;

        // Bulk E3: each straddle step deletes bit 30 from low/high/value
        // (value sits between them, so its top two bits are 01 or 10 and
        // the subtract-then-shift is the same bit-delete) and shifts one
        // fresh input bit into value's low end. At k == 0 every line is
        // the identity (low's top bit is 0, high's is 1, and value keeps
        // both of its halves), so no branch is needed. `k` depends only on
        // the post-shift bounds, never on the input bits, so both refills
        // (n settled-shift bits, then k E3 bits — consecutive in the
        // stream) merge into one `read_bits(n + k)` call, halving the
        // refill overhead on this hot path. n + k ≤ 62.
        let k = (self.low << 1)
            .leading_ones()
            .min((self.high << 1).leading_zeros());
        let fresh = self.reader.read_bits(n + k);
        let fresh_n = (fresh >> k) as u32;
        let fresh_k = (fresh & mask64(k)) as u32;
        self.value = ((u64::from(self.value) << n) as u32) | fresh_n;
        self.low = (self.low << k) & !HALF;
        self.high = HALF | ((self.high << k) & !HALF) | (1u32.wrapping_shl(k)).wrapping_sub(1);
        self.value = (self.value & HALF) | ((self.value << k) & !HALF) | fresh_k;
        bit
    }

    /// Number of decisions decoded so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Number of coded (non-deterministic) decisions decoded so far.
    pub fn coded_decisions(&self) -> u64 {
        self.coded
    }

    /// Borrows the underlying bit source (e.g. to inspect
    /// [`padding_bits`](BitSource::padding_bits) for truncation detection).
    pub fn source(&self) -> &S {
        &self.reader
    }

    /// Consumes the decoder, returning the underlying reader.
    pub fn into_reader(self) -> S {
        self.reader
    }
}

impl<S: BitSource> DecisionDecoder for BinaryDecoder<S> {
    #[inline]
    fn decode(&mut self, c0: u32, total: u32) -> bool {
        BinaryDecoder::decode(self, c0, total)
    }

    #[inline]
    fn decisions(&self) -> u64 {
        BinaryDecoder::decisions(self)
    }

    #[inline]
    fn coded_decisions(&self) -> u64 {
        BinaryDecoder::coded_decisions(self)
    }

    #[inline]
    fn note_deterministic(&mut self, n: u64) {
        self.decisions += n;
    }

    #[inline]
    fn decode_nondeterministic(&mut self, c0: u32, total: u32) -> bool {
        self.decode_coded(c0, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbic_bitio::BitReader;

    fn roundtrip(decisions: &[(bool, u32, u32)]) {
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &(bit, c0, total) in decisions {
            enc.encode(bit, c0, total);
        }
        let bytes = enc.finish().into_bytes();
        let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
        for &(bit, c0, total) in decisions {
            assert_eq!(dec.decode(c0, total), bit);
        }
    }

    #[test]
    fn empty_stream() {
        let enc = BinaryEncoder::new(BitWriter::new());
        let bytes = enc.finish().into_bytes();
        assert!(bytes.len() <= 1);
    }

    #[test]
    fn single_decisions() {
        roundtrip(&[(false, 1, 2)]);
        roundtrip(&[(true, 1, 2)]);
    }

    #[test]
    fn equiprobable_sequence_costs_about_one_bit_each() {
        let decisions: Vec<_> = (0..1000).map(|i| (i % 2 == 0, 1u32, 2u32)).collect();
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &(bit, c0, total) in &decisions {
            enc.encode(bit, c0, total);
        }
        let bits = enc.finish().into_bytes().len() * 8;
        assert!((1000..=1016).contains(&bits), "got {bits} bits");
    }

    #[test]
    fn skewed_sequence_compresses() {
        // P(0) = 255/256, all-zero input: ~0.0056 bits each.
        let decisions: Vec<_> = (0..10_000).map(|_| (false, 255u32, 256u32)).collect();
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &(bit, c0, total) in &decisions {
            enc.encode(bit, c0, total);
        }
        let bits = enc.finish().into_bytes().len() * 8;
        assert!(bits < 200, "got {bits} bits for 10k near-certain decisions");
        roundtrip(&decisions);
    }

    #[test]
    fn improbable_bits_roundtrip() {
        // Code the unlikely side repeatedly.
        let decisions: Vec<_> = (0..100).map(|_| (true, 255u32, 256u32)).collect();
        roundtrip(&decisions);
    }

    #[test]
    fn zero_count_on_uncoded_side_is_fine() {
        // P(0) = 1 (c0 == total): coding a 0 must work, interval for 1 empty.
        roundtrip(&[(false, 4, 4), (true, 0, 4), (false, 4, 4)]);
    }

    /// The zero-probability guard is a `debug_assert`, so the panic only
    /// exists in debug builds — release builds would fail the
    /// `should_panic` expectation.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "zero-probability")]
    fn zero_probability_decision_panics_in_debug() {
        let mut enc = BinaryEncoder::new(BitWriter::new());
        enc.encode(false, 0, 4);
    }

    #[test]
    #[should_panic(expected = "invalid total")]
    fn total_too_large_panics() {
        let mut enc = BinaryEncoder::new(BitWriter::new());
        enc.encode(false, 1, MAX_TOTAL + 1);
    }

    #[test]
    fn alternating_extreme_probabilities() {
        let mut decisions = Vec::new();
        for i in 0..500 {
            decisions.push((i % 7 == 0, 65_535u32, 65_536u32));
            decisions.push((i % 3 != 0, 1u32, 65_536u32));
        }
        roundtrip(&decisions);
    }

    /// The reciprocal ROM must compute the exact truncating quotient for
    /// every `(range, c0, total)` the coder can form: corners of the range
    /// register, every divisor width, and both sides of each multiple.
    #[test]
    fn reciprocal_division_is_exact_at_the_corners() {
        let recip = recip_table();
        let ranges = [
            1u64 << 30,
            (1 << 30) + 1,
            (1 << 31) - 1,
            1 << 31,
            (1u64 << 32) - 1,
            1u64 << 32,
        ];
        for total in (2u64..=65536).flat_map(|d| [d]) {
            // Sample c0 values across the divisor, always including the
            // extremes and neighbours of total/2.
            for c0 in [0, 1, total / 2, total / 2 + 1, total - 1, total] {
                for &range in &ranges {
                    let n = range * c0;
                    assert_eq!(
                        div_by_recip(n, recip[total as usize]),
                        n / total,
                        "n {n}, total {total}"
                    );
                }
            }
        }
    }

    /// The fused batch path must be byte-identical to per-decision replay
    /// (the trait's default), across accumulator offsets, deterministic
    /// gaps, and long E3 follow runs that take the cold branch.
    #[test]
    fn encode_batch_matches_per_decision_replay() {
        let mut seq: Vec<(bool, u32, u32)> = Vec::new();
        for i in 0u32..4000 {
            // A mix that exercises near-certain runs (E3 banking), coin
            // flips, and occasional improbable bits.
            let (bit, c0, total) = match i % 7 {
                0..=3 => (false, 65_535, 65_536),
                4 => (i % 2 == 0, 1, 2),
                5 => (true, 1, 65_536),
                _ => (i % 3 == 0, 2, 5),
            };
            seq.push((bit, c0, total));
        }
        let mut fast = BinaryEncoder::new(BitWriter::new());
        let mut slow = BinaryEncoder::new(BitWriter::new());
        let mut batch = DecisionBatch::new();
        for chunk in seq.chunks(11) {
            batch.clear();
            batch.skip_deterministic(2);
            for &(bit, c0, total) in chunk {
                batch.push_coded(bit, c0, total);
            }
            fast.encode_batch(&batch);
            for &(bit, c0, total) in chunk {
                slow.encode(bit, c0, total);
            }
            slow.note_deterministic(2);
        }
        assert_eq!(fast.decisions(), slow.decisions());
        assert_eq!(fast.coded_decisions(), seq.len() as u64);
        assert_eq!(
            fast.finish().into_bytes(),
            slow.finish().into_bytes(),
            "batched renormalisation changed the stream"
        );
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut enc = BinaryEncoder::new(BitWriter::new());
        let mut batch = DecisionBatch::new();
        batch.skip_deterministic(9);
        enc.encode_batch(&batch);
        assert_eq!(enc.decisions(), 9);
        assert_eq!(enc.coded_decisions(), 0);
        assert!(enc.finish().into_bytes().len() <= 1);
    }

    #[test]
    fn decision_counters_match() {
        let decisions: Vec<_> = (0..77).map(|i| (i % 3 == 0, 2u32, 5u32)).collect();
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &(bit, c0, total) in &decisions {
            enc.encode(bit, c0, total);
        }
        assert_eq!(enc.decisions(), 77);
        let bytes = enc.finish().into_bytes();
        let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
        for &(_, c0, total) in &decisions {
            dec.decode(c0, total);
        }
        assert_eq!(dec.decisions(), 77);
    }
}
