//! Property-based tests for the arithmetic coding stack.

use proptest::prelude::*;

use crate::{AdaptiveBit, BinaryDecoder, BinaryEncoder, EstimatorConfig, SymbolCoder, TreeModel};
use cbic_bitio::{BitReader, BitWriter};

/// Strategy: a sequence of (bit, c0, total) decisions with valid counts and
/// a nonzero probability for the coded side.
fn decisions() -> impl Strategy<Value = Vec<(bool, u32, u32)>> {
    proptest::collection::vec(
        (any::<bool>(), 1u32..=65_535).prop_flat_map(|(bit, total_minus_one)| {
            let total = total_minus_one + 1;
            // Coded side must have nonzero count.
            let c0 = if bit { 0..total } else { 1..total + 1 };
            (Just(bit), c0, Just(total))
        }),
        0..512,
    )
}

fn estimator_config() -> impl Strategy<Value = EstimatorConfig> {
    (10u8..=16, 1u16..=64, 1u16..=32).prop_map(|(count_bits, increment, noesc)| EstimatorConfig {
        count_bits,
        increment,
        escape_init: (noesc, 1),
    })
}

proptest! {
    /// The raw binary coder round-trips any legal decision sequence.
    #[test]
    fn bincoder_roundtrip(seq in decisions()) {
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &(bit, c0, total) in &seq {
            enc.encode(bit, c0, total);
        }
        let bytes = enc.finish().into_bytes();
        let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
        for &(bit, c0, total) in &seq {
            prop_assert_eq!(dec.decode(c0, total), bit);
        }
    }

    /// Code length never exceeds information content by more than a tiny
    /// per-decision overhead (coder near-optimality).
    #[test]
    fn bincoder_near_optimal(seq in decisions()) {
        let mut enc = BinaryEncoder::new(BitWriter::new());
        let mut info = 0.0f64;
        for &(bit, c0, total) in &seq {
            let p = if bit {
                f64::from(total - c0) / f64::from(total)
            } else {
                f64::from(c0) / f64::from(total)
            };
            info -= p.log2();
            enc.encode(bit, c0, total);
        }
        let bits = enc.finish().into_bytes().len() as f64 * 8.0;
        // 0.01 bits/decision rounding slack + 48 bits flush/padding slack.
        prop_assert!(bits <= info + 0.02 * seq.len() as f64 + 48.0,
            "coded {bits} bits for {info} bits of information");
    }

    /// SymbolCoder round-trips arbitrary (context, symbol) streams under
    /// arbitrary estimator configurations, and the decoder reconstructs the
    /// exact model state.
    #[test]
    fn symbol_coder_roundtrip(
        cfg in estimator_config(),
        stream in proptest::collection::vec((0usize..8, any::<u8>()), 0..600),
    ) {
        let mut enc_model = SymbolCoder::new(8, cfg);
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &(ctx, sym) in &stream {
            enc_model.encode(&mut enc, ctx, sym);
        }
        let bytes = enc.finish().into_bytes();

        let mut dec_model = SymbolCoder::new(8, cfg);
        let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
        for &(ctx, sym) in &stream {
            prop_assert_eq!(dec_model.decode(&mut dec, ctx), sym);
        }
        prop_assert_eq!(enc_model.stats(), dec_model.stats());
    }

    /// Tree invariants survive arbitrary update sequences (including
    /// rescales), and probabilities always sum to 1 over the alphabet.
    #[test]
    fn tree_invariants_hold(
        cfg in estimator_config(),
        updates in proptest::collection::vec(any::<u8>(), 0..3000),
    ) {
        let mut tree = TreeModel::new(8, cfg);
        for &s in &updates {
            tree.update(s);
        }
        prop_assert!(tree.check_invariants().is_ok());
        let mass: f64 = (0..=255u8).map(|s| tree.probability(s)).sum();
        prop_assert!((mass - 1.0).abs() < 1e-9, "probability mass {mass}");
    }

    /// Escape bookkeeping: encode-side and decode-side escape counts agree
    /// even with aggressive aging.
    #[test]
    fn escape_symmetry(stream in proptest::collection::vec(any::<u8>(), 0..1500)) {
        let cfg = EstimatorConfig { count_bits: 10, increment: 64, ..EstimatorConfig::default() };
        let mut enc_model = SymbolCoder::new(1, cfg);
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &sym in &stream {
            enc_model.encode(&mut enc, 0, sym);
        }
        let bytes = enc.finish().into_bytes();
        let mut dec_model = SymbolCoder::new(1, cfg);
        let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
        for &sym in &stream {
            prop_assert_eq!(dec_model.decode(&mut dec, 0), sym);
        }
        prop_assert_eq!(enc_model.stats().escapes, dec_model.stats().escapes);
    }

    /// AdaptiveBit round-trips arbitrary bit streams with arbitrary caps.
    #[test]
    fn adaptive_bit_roundtrip(
        bits in proptest::collection::vec(any::<bool>(), 0..2000),
        cap in 4u32..4096,
    ) {
        let mut enc_ctx = AdaptiveBit::new(cap);
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &b in &bits {
            enc_ctx.encode(&mut enc, b);
        }
        let bytes = enc.finish().into_bytes();
        let mut dec_ctx = AdaptiveBit::new(cap);
        let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
        for &b in &bits {
            prop_assert_eq!(dec_ctx.decode(&mut dec), b);
        }
    }
}
