//! Property-based tests for the arithmetic coding stack.

use proptest::prelude::*;

use crate::{
    AdaptiveBit, BinaryDecoder, BinaryEncoder, DecisionBatch, DecisionEncoder, EstimatorConfig,
    LaneDecoder, LaneEncoder, SymbolCoder, TreeModel,
};
use cbic_bitio::{BitReader, BitWriter};

/// Forwards per-decision calls to the wrapped encoder but deliberately does
/// **not** override [`DecisionEncoder::encode_batch`], so batches go through
/// the trait's default per-decision replay — turning any encoder into its
/// own batching reference.
struct PerDecision<E>(E);

impl<E: DecisionEncoder> DecisionEncoder for PerDecision<E> {
    fn encode(&mut self, bit: bool, c0: u32, total: u32) {
        self.0.encode(bit, c0, total);
    }
    fn decisions(&self) -> u64 {
        self.0.decisions()
    }
    fn coded_decisions(&self) -> u64 {
        self.0.coded_decisions()
    }
    fn note_deterministic(&mut self, n: u64) {
        self.0.note_deterministic(n);
    }
}

/// Strategy: a sequence of (bit, c0, total) decisions with valid counts and
/// a nonzero probability for the coded side.
fn decisions() -> impl Strategy<Value = Vec<(bool, u32, u32)>> {
    proptest::collection::vec(
        (any::<bool>(), 1u32..=65_535).prop_flat_map(|(bit, total_minus_one)| {
            let total = total_minus_one + 1;
            // Coded side must have nonzero count.
            let c0 = if bit { 0..total } else { 1..total + 1 };
            (Just(bit), c0, Just(total))
        }),
        0..512,
    )
}

fn estimator_config() -> impl Strategy<Value = EstimatorConfig> {
    (10u8..=16, 1u16..=64, 1u16..=32).prop_map(|(count_bits, increment, noesc)| EstimatorConfig {
        count_bits,
        increment,
        escape_init: (noesc, 1),
    })
}

proptest! {
    /// The raw binary coder round-trips any legal decision sequence.
    #[test]
    fn bincoder_roundtrip(seq in decisions()) {
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &(bit, c0, total) in &seq {
            enc.encode(bit, c0, total);
        }
        let bytes = enc.finish().into_bytes();
        let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
        for &(bit, c0, total) in &seq {
            prop_assert_eq!(dec.decode(c0, total), bit);
        }
    }

    /// Code length never exceeds information content by more than a tiny
    /// per-decision overhead (coder near-optimality).
    #[test]
    fn bincoder_near_optimal(seq in decisions()) {
        let mut enc = BinaryEncoder::new(BitWriter::new());
        let mut info = 0.0f64;
        for &(bit, c0, total) in &seq {
            let p = if bit {
                f64::from(total - c0) / f64::from(total)
            } else {
                f64::from(c0) / f64::from(total)
            };
            info -= p.log2();
            enc.encode(bit, c0, total);
        }
        let bits = enc.finish().into_bytes().len() as f64 * 8.0;
        // 0.01 bits/decision rounding slack + 48 bits flush/padding slack.
        prop_assert!(bits <= info + 0.02 * seq.len() as f64 + 48.0,
            "coded {bits} bits for {info} bits of information");
    }

    /// SymbolCoder round-trips arbitrary (context, symbol) streams under
    /// arbitrary estimator configurations, and the decoder reconstructs the
    /// exact model state.
    #[test]
    fn symbol_coder_roundtrip(
        cfg in estimator_config(),
        stream in proptest::collection::vec((0usize..8, any::<u8>()), 0..600),
    ) {
        let mut enc_model = SymbolCoder::new(8, cfg);
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &(ctx, sym) in &stream {
            enc_model.encode(&mut enc, ctx, sym);
        }
        let bytes = enc.finish().into_bytes();

        let mut dec_model = SymbolCoder::new(8, cfg);
        let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
        for &(ctx, sym) in &stream {
            prop_assert_eq!(dec_model.decode(&mut dec, ctx), sym);
        }
        prop_assert_eq!(enc_model.stats(), dec_model.stats());
    }

    /// Tree invariants survive arbitrary update sequences (including
    /// rescales), and probabilities always sum to 1 over the alphabet.
    #[test]
    fn tree_invariants_hold(
        cfg in estimator_config(),
        updates in proptest::collection::vec(any::<u8>(), 0..3000),
    ) {
        let mut tree = TreeModel::new(8, cfg);
        for &s in &updates {
            tree.update(s);
        }
        prop_assert!(tree.check_invariants().is_ok());
        let mass: f64 = (0..=255u8).map(|s| tree.probability(s)).sum();
        prop_assert!((mass - 1.0).abs() < 1e-9, "probability mass {mass}");
    }

    /// Escape bookkeeping: encode-side and decode-side escape counts agree
    /// even with aggressive aging.
    #[test]
    fn escape_symmetry(stream in proptest::collection::vec(any::<u8>(), 0..1500)) {
        let cfg = EstimatorConfig { count_bits: 10, increment: 64, ..EstimatorConfig::default() };
        let mut enc_model = SymbolCoder::new(1, cfg);
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &sym in &stream {
            enc_model.encode(&mut enc, 0, sym);
        }
        let bytes = enc.finish().into_bytes();
        let mut dec_model = SymbolCoder::new(1, cfg);
        let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
        for &sym in &stream {
            prop_assert_eq!(dec_model.decode(&mut dec, 0), sym);
        }
        prop_assert_eq!(enc_model.stats().escapes, dec_model.stats().escapes);
    }

    /// The batched fast path through `SymbolCoder::encode`/`decode` is
    /// byte- and statistics-identical to the historical per-decision
    /// reference sequence, for every depth, estimator configuration, and
    /// symbol stream.
    #[test]
    fn symbol_coder_fast_path_matches_reference(
        cfg in estimator_config(),
        depth in 1u32..=8,
        stream in proptest::collection::vec((0usize..4, any::<u8>()), 0..800),
    ) {
        let mask = ((1u32 << depth) - 1) as u8;
        let mut fast_model = SymbolCoder::with_depth(4, depth, cfg);
        let mut ref_model = SymbolCoder::with_depth(4, depth, cfg);
        let mut fast_enc = BinaryEncoder::new(BitWriter::new());
        let mut ref_enc = BinaryEncoder::new(BitWriter::new());
        for &(ctx, sym) in &stream {
            fast_model.encode(&mut fast_enc, ctx, sym & mask);
            ref_model.encode_reference(&mut ref_enc, ctx, sym & mask);
        }
        prop_assert_eq!(fast_model.stats(), ref_model.stats());
        let fast_bytes = fast_enc.finish().into_bytes();
        let ref_bytes = ref_enc.finish().into_bytes();
        prop_assert_eq!(&fast_bytes, &ref_bytes);

        let mut fast_dec_model = SymbolCoder::with_depth(4, depth, cfg);
        let mut fast_dec = BinaryDecoder::new(BitReader::new(&fast_bytes));
        let mut ref_dec_model = SymbolCoder::with_depth(4, depth, cfg);
        let mut ref_dec = BinaryDecoder::new(BitReader::new(&ref_bytes));
        for &(ctx, sym) in &stream {
            prop_assert_eq!(fast_dec_model.decode(&mut fast_dec, ctx), sym & mask);
            prop_assert_eq!(ref_dec_model.decode_reference(&mut ref_dec, ctx), sym & mask);
        }
        prop_assert_eq!(fast_dec_model.stats(), fast_model.stats());
        prop_assert_eq!(ref_dec_model.stats(), fast_model.stats());
    }

    /// The lane-striped batched entry point deals decisions to exactly the
    /// same lanes as per-decision submission of the reference sequence, at
    /// every lane count, across an aging-heavy (rescale + escape) stream —
    /// and the lane decoder's model-screened path round-trips it.
    #[test]
    fn lane_fast_path_matches_reference(
        lane_idx in 0usize..4,
        stream in proptest::collection::vec((0usize..4, any::<u8>()), 0..900),
    ) {
        let lanes = [1usize, 2, 4, 8][lane_idx];
        let cfg = EstimatorConfig { count_bits: 10, increment: 64, ..EstimatorConfig::default() };
        let mut fast_model = SymbolCoder::new(4, cfg);
        let mut ref_model = SymbolCoder::new(4, cfg);
        let mut fast_enc = LaneEncoder::new(lanes);
        let mut ref_enc = LaneEncoder::new(lanes);
        for &(ctx, sym) in &stream {
            fast_model.encode(&mut fast_enc, ctx, sym);
            ref_model.encode_reference(&mut ref_enc, ctx, sym);
        }
        prop_assert_eq!(fast_model.stats(), ref_model.stats());
        prop_assert_eq!(fast_enc.coded_decisions(), ref_enc.coded_decisions());
        let fast_subs = fast_enc.finish_to_bytes();
        prop_assert_eq!(&fast_subs, &ref_enc.finish_to_bytes());

        let sources = fast_subs.iter().map(|s| BitReader::new(s)).collect();
        let mut dec_model = SymbolCoder::new(4, cfg);
        let mut dec = LaneDecoder::new(sources);
        for &(ctx, sym) in &stream {
            prop_assert_eq!(dec_model.decode(&mut dec, ctx), sym);
        }
        prop_assert_eq!(dec_model.stats(), fast_model.stats());
    }

    /// `BinaryEncoder::encode_batch`'s fused renormalisation is
    /// byte-identical to the trait's default per-decision replay for
    /// arbitrary batch contents and boundaries.
    #[test]
    fn batched_encoder_matches_default_replay(
        seq in decisions(),
        chunk in 1usize..12,
    ) {
        let mut fast = BinaryEncoder::new(BitWriter::new());
        let mut slow = PerDecision(BinaryEncoder::new(BitWriter::new()));
        let mut batch = DecisionBatch::new();
        for part in seq.chunks(chunk) {
            batch.clear();
            for &(bit, c0, total) in part {
                if if bit { c0 == 0 } else { c0 == total } {
                    batch.skip_deterministic(1);
                } else {
                    batch.push_coded(bit, c0, total);
                }
            }
            fast.encode_batch(&batch);
            slow.encode_batch(&batch);
        }
        prop_assert_eq!(fast.decisions(), slow.0.decisions());
        prop_assert_eq!(fast.coded_decisions(), slow.0.coded_decisions());
        prop_assert_eq!(fast.finish().into_bytes(), slow.0.finish().into_bytes());
    }

    /// AdaptiveBit round-trips arbitrary bit streams with arbitrary caps.
    #[test]
    fn adaptive_bit_roundtrip(
        bits in proptest::collection::vec(any::<bool>(), 0..2000),
        cap in 4u32..4096,
    ) {
        let mut enc_ctx = AdaptiveBit::new(cap);
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &b in &bits {
            enc_ctx.encode(&mut enc, b);
        }
        let bytes = enc.finish().into_bytes();
        let mut dec_ctx = AdaptiveBit::new(cap);
        let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
        for &b in &bits {
            prop_assert_eq!(dec_ctx.decode(&mut dec), b);
        }
    }
}
