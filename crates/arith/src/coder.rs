//! The complete probability estimator of the paper: dynamic trees per
//! coding context, adaptive escape decisions, and the static tree.

use crate::adaptive::AdaptiveBit;
use crate::bincoder::{DecisionBatch, DecisionDecoder, DecisionEncoder, MAX_TOTAL};
use crate::stats::CoderStats;
use crate::tree::{DecisionPath, TreeModel};

/// Per-symbol decision budget of a [`SymbolCoder`], static ceiling and
/// measured reality side by side.
///
/// The design's *ceiling* is constant — one escape decision plus `depth`
/// path (or static-tree) decisions, the figure that sets the hardware
/// pipeline's initiation interval. What actually reaches the arithmetic
/// coder is smaller: deterministic decisions (a path node whose sibling
/// branch holds zero count) are classified at capture time and retired at
/// the model layer, so `coded` reports the measured average of decisions
/// that moved the interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionsPerSymbol {
    /// Static decisions per symbol: `1 + depth`, independent of content.
    pub ceiling: u32,
    /// Measured coded (non-deterministic) decisions per symbol so far
    /// (0.0 before any symbol is coded).
    pub coded: f64,
}

/// Tuning knobs of the probability estimator.
///
/// `count_bits` is the frequency-counter width the paper sweeps in Fig. 4
/// (10–16 bits, settling on 14): counters cap at `2^count_bits − 1` and the
/// whole tree is halved when the cap is reached. `increment` is the step
/// added per observation; larger steps adapt faster but hit the cap (and
/// therefore age) sooner.
///
/// # Examples
///
/// ```
/// use cbic_arith::EstimatorConfig;
///
/// let cfg = EstimatorConfig { count_bits: 12, ..EstimatorConfig::default() };
/// assert_eq!(cfg.max_total(), (1 << 12) - 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EstimatorConfig {
    /// Frequency counter width in bits (the paper's Fig. 4 x-axis).
    /// Valid range `10..=16`.
    pub count_bits: u8,
    /// Count added per observed symbol (per tree level on its path).
    pub increment: u16,
    /// Initial (no-escape, escape) counts of the per-tree escape decision.
    pub escape_init: (u16, u16),
}

impl Default for EstimatorConfig {
    /// The paper's operating point: 14-bit counters (chosen in Fig. 4).
    ///
    /// The increment of 2 reproduces Fig. 4's shape on the 512×512 corpus —
    /// the average bit rate bottoms out at 14 counter bits and *rises* for
    /// both narrower counters (escape churn) and wider ones (over-skewed,
    /// stale statistics) — while costing Table 1 under 0.005 bpp against
    /// faster-adapting increments.
    fn default() -> Self {
        Self {
            count_bits: 14,
            increment: 2,
            escape_init: (16, 1),
        }
    }
}

impl EstimatorConfig {
    /// Maximum value a frequency counter may reach: `2^count_bits − 1`.
    ///
    /// # Panics
    ///
    /// Panics if `count_bits` is outside `10..=16`.
    pub fn max_total(&self) -> u32 {
        assert!(
            (10..=16).contains(&self.count_bits),
            "count_bits {} outside supported range 10..=16",
            self.count_bits
        );
        let m = (1u32 << self.count_bits) - 1;
        debug_assert!(m < MAX_TOTAL);
        m
    }
}

/// Adaptive symbol coder: `N` dynamic context trees + escape + static tree.
///
/// This is the paper's Section IV estimator in full. For the image codec
/// `N = 8` (the quantized coding contexts `QE`); other front ends (the
/// general-data model of the Fig. 1 universal system) instantiate more.
///
/// Symbols whose probability has decayed to zero in their context tree are
/// *escaped*: an adaptive per-context binary decision signals the escape and
/// the raw symbol is transmitted through the static (uniform) tree, i.e.
/// "sent as it is" in 8 bits of code space. The dynamic tree is updated
/// either way so the symbol regains probability.
#[derive(Debug, Clone)]
pub struct SymbolCoder {
    trees: Vec<TreeModel>,
    escape: Vec<AdaptiveBit>,
    depth: u32,
    cfg: EstimatorConfig,
    stats: CoderStats,
    /// Scratch batch reused across [`Self::encode`] calls. A
    /// [`DecisionBatch`] is 32 packed words; constructing one per symbol
    /// would memset it per symbol, which is measurable at the coder's
    /// throughput — `clear` only resets the cursor.
    batch: DecisionBatch,
}

impl SymbolCoder {
    /// Creates a coder with `contexts` dynamic trees over the full 8-bit
    /// alphabet.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is zero or the configuration is invalid (see
    /// [`EstimatorConfig::max_total`]).
    pub fn new(contexts: usize, cfg: EstimatorConfig) -> Self {
        Self::with_depth(contexts, 8, cfg)
    }

    /// Creates a coder over a `2^depth`-symbol alphabet (used by tests and
    /// by front ends with reduced alphabets).
    ///
    /// # Panics
    ///
    /// Panics if `contexts == 0` or `depth` is not in `1..=8`.
    pub fn with_depth(contexts: usize, depth: u32, cfg: EstimatorConfig) -> Self {
        assert!(contexts > 0, "need at least one coding context");
        let max = cfg.max_total();
        Self {
            trees: (0..contexts).map(|_| TreeModel::new(depth, cfg)).collect(),
            escape: (0..contexts)
                .map(|_| AdaptiveBit::with_counts(cfg.escape_init.0, cfg.escape_init.1, max))
                .collect(),
            depth,
            cfg,
            stats: CoderStats::default(),
            batch: DecisionBatch::new(),
        }
    }

    /// Restores the start-of-stream state in place — every tree back to
    /// the uniform distribution, every escape decision to its initial
    /// counts, statistics zeroed — without reallocating any table. A reset
    /// coder codes byte-identically to a freshly constructed one, which is
    /// what lets an encoder *session* reuse its estimator across images.
    pub fn reset(&mut self) {
        let max = self.cfg.max_total();
        for tree in &mut self.trees {
            tree.reset();
        }
        for esc in &mut self.escape {
            *esc = AdaptiveBit::with_counts(self.cfg.escape_init.0, self.cfg.escape_init.1, max);
        }
        self.stats = CoderStats::default();
    }

    /// Number of coding contexts (dynamic trees).
    pub fn contexts(&self) -> usize {
        self.trees.len()
    }

    /// Accumulated coding statistics.
    pub fn stats(&self) -> CoderStats {
        let mut s = self.stats;
        s.rescales = self.trees.iter().map(TreeModel::rescales).sum();
        s
    }

    /// Borrow a context tree (diagnostics and tests).
    pub fn tree(&self, ctx: usize) -> &TreeModel {
        &self.trees[ctx]
    }

    /// Encodes `symbol` in coding context `ctx`.
    ///
    /// Runs the slice-batched fast path: one
    /// [`capture_and_update`](TreeModel::capture_and_update) descent
    /// records the decision probabilities and folds in the count update,
    /// then the escape decision and the captured slice (or the static
    /// bits) go to the coder as a batch. Bit-identical to the historical
    /// probe/code/update sequence.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range, or (for reduced alphabets) if
    /// `symbol` has bits above `depth`.
    pub fn encode<E: DecisionEncoder>(&mut self, enc: &mut E, ctx: usize, symbol: u8) {
        assert!(
            self.depth == 8 || u32::from(symbol) < (1u32 << self.depth),
            "symbol {symbol} out of range for {}-bit alphabet",
            self.depth
        );
        self.stats.symbols += 1;
        self.stats.decisions += 1 + u64::from(self.depth);
        let tree = &mut self.trees[ctx];
        if !enc.prefers_batch() {
            // Immediate encoder: code decisions as the descent produces
            // them — no batch materialisation (see
            // [`DecisionEncoder::prefers_batch`]). The coder screens
            // deterministic decisions itself, so the stream and every
            // counter match the batch route exactly.
            let before = enc.coded_decisions();
            if !tree.maybe_escapes(symbol) {
                // Hot case: a clear maybe-zero bit *guarantees* the path
                // has no zero branch, so the escape outcome is known
                // without a probe and one fused descent codes + updates.
                self.escape[ctx].encode(enc, false);
                tree.encode_and_update(enc, symbol);
            } else {
                let mut path = DecisionPath::empty();
                let escaped = tree.capture_and_update(symbol, &mut path);
                self.escape[ctx].encode(enc, escaped);
                if escaped {
                    self.stats.escapes += 1;
                    for k in (0..self.depth).rev() {
                        enc.encode((symbol >> k) & 1 == 1, 1, 2);
                    }
                } else {
                    path.replay(enc, symbol);
                }
            }
            self.stats.coded_decisions += enc.coded_decisions() - before;
            return;
        }
        let batch = &mut self.batch;
        batch.clear();
        if !tree.maybe_escapes(symbol) {
            // Hot case, batch route: the escape decision leads the batch
            // in stream order (both its counts stay nonzero, so it is
            // always coded), then one fused descent stages the path
            // decisions directly.
            self.escape[ctx].encode_into(batch, false);
            tree.capture_update_into(symbol, batch);
        } else {
            // The mask bit is set: the symbol *may* escape, so run the
            // exact capture walk and decide from it.
            let mut path = DecisionPath::empty();
            let escaped = tree.capture_and_update(symbol, &mut path);
            self.escape[ctx].encode_into(batch, escaped);
            if escaped {
                self.stats.escapes += 1;
                // Static tree: the symbol is sent as-is, one equiprobable
                // (never deterministic) decision per bit.
                for k in (0..self.depth).rev() {
                    batch.push_coded((symbol >> k) & 1 == 1, 1, 2);
                }
            } else {
                path.push_onto(batch, symbol);
            }
        }
        self.stats.coded_decisions += batch.coded_len() as u64;
        enc.encode_batch(batch);
    }

    /// Decodes one symbol from coding context `ctx` (the fused
    /// decode-and-update descent, the dual of [`Self::encode`]).
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn decode<D: DecisionDecoder>(&mut self, dec: &mut D, ctx: usize) -> u8 {
        self.stats.symbols += 1;
        self.stats.decisions += 1 + u64::from(self.depth);
        // The decoder screens deterministic decisions at the model layer
        // (inside `decode_and_update`), so the coder's own counter tells us
        // how many of this symbol's decisions actually consumed code space
        // — which must mirror the encoder's capture-time classification.
        let before = dec.coded_decisions();
        let escaped = self.escape[ctx].decode(dec);
        let symbol = if escaped {
            self.stats.escapes += 1;
            let mut s = 0u8;
            for _ in 0..self.depth {
                s = (s << 1) | u8::from(dec.decode(1, 2));
            }
            self.trees[ctx].update(s);
            s
        } else {
            self.trees[ctx].decode_and_update(dec)
        };
        self.stats.coded_decisions += dec.coded_decisions() - before;
        symbol
    }

    /// Per-symbol decision counts: the static ceiling (1 escape decision +
    /// `depth` path/static decisions — the figure that sets the hardware
    /// pipeline's initiation interval) alongside the *measured* coded
    /// decisions per symbol, which deterministic-prefix skipping makes
    /// strictly smaller on adapted streams.
    pub fn decisions_per_symbol(&self) -> DecisionsPerSymbol {
        DecisionsPerSymbol {
            ceiling: 1 + self.depth,
            coded: if self.stats.symbols == 0 {
                0.0
            } else {
                self.stats.coded_decisions as f64 / self.stats.symbols as f64
            },
        }
    }
}

/// The historical per-decision coding sequence, kept as the reference the
/// differential tests pin the batched fast path against (and compiled into
/// dependants under `--features reference-coder` for their own
/// differentials).
#[cfg(any(test, feature = "reference-coder"))]
impl SymbolCoder {
    /// Encodes `symbol` exactly as the pre-fast-path coder did: an escape
    /// probe descent, per-decision coder calls, then a separate update
    /// descent. Byte-identical to [`Self::encode`]; kept for differential
    /// testing only.
    pub fn encode_reference<E: DecisionEncoder>(&mut self, enc: &mut E, ctx: usize, symbol: u8) {
        assert!(
            self.depth == 8 || u32::from(symbol) < (1u32 << self.depth),
            "symbol {symbol} out of range for {}-bit alphabet",
            self.depth
        );
        self.stats.symbols += 1;
        self.stats.decisions += 1 + u64::from(self.depth);
        let before = enc.coded_decisions();
        let escaped = self.trees[ctx].path_has_zero(symbol);
        self.escape[ctx].encode(enc, escaped);
        if escaped {
            self.stats.escapes += 1;
            for k in (0..self.depth).rev() {
                enc.encode((symbol >> k) & 1 == 1, 1, 2);
            }
        } else {
            self.trees[ctx].encode_decisions(enc, symbol);
        }
        self.trees[ctx].update(symbol);
        self.stats.coded_decisions += enc.coded_decisions() - before;
    }

    /// Decodes one symbol via the historical decode-then-update sequence.
    /// Byte-identical to [`Self::decode`]; kept for differential testing.
    pub fn decode_reference<D: DecisionDecoder>(&mut self, dec: &mut D, ctx: usize) -> u8 {
        self.stats.symbols += 1;
        self.stats.decisions += 1 + u64::from(self.depth);
        let before = dec.coded_decisions();
        let escaped = self.escape[ctx].decode(dec);
        let symbol = if escaped {
            self.stats.escapes += 1;
            let mut s = 0u8;
            for _ in 0..self.depth {
                s = (s << 1) | u8::from(dec.decode(1, 2));
            }
            s
        } else {
            self.trees[ctx].decode_decisions(dec)
        };
        self.trees[ctx].update(symbol);
        self.stats.coded_decisions += dec.coded_decisions() - before;
        symbol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinaryDecoder, BinaryEncoder};
    use cbic_bitio::{BitReader, BitWriter};

    fn roundtrip(cfg: EstimatorConfig, contexts: usize, stream: &[(usize, u8)]) -> (u64, u64) {
        let mut enc_model = SymbolCoder::new(contexts, cfg);
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &(ctx, sym) in stream {
            enc_model.encode(&mut enc, ctx, sym);
        }
        let escapes = enc_model.stats().escapes;
        let bytes = enc.finish().into_bytes();
        let bits = bytes.len() as u64 * 8;

        let mut dec_model = SymbolCoder::new(contexts, cfg);
        let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
        for &(ctx, sym) in stream {
            assert_eq!(dec_model.decode(&mut dec, ctx), sym, "context {ctx}");
        }
        assert_eq!(enc_model.stats().escapes, dec_model.stats().escapes);
        (bits, escapes)
    }

    #[test]
    fn roundtrip_simple() {
        let stream: Vec<(usize, u8)> = (0..500u32)
            .map(|i| ((i % 3) as usize, (i % 7 * 40) as u8))
            .collect();
        roundtrip(EstimatorConfig::default(), 3, &stream);
    }

    #[test]
    fn roundtrip_all_symbols_all_contexts() {
        let mut stream = Vec::new();
        for pass in 0..3 {
            for s in 0..=255u8 {
                stream.push(((usize::from(s) + pass) % 8, s));
            }
        }
        roundtrip(EstimatorConfig::default(), 8, &stream);
    }

    #[test]
    fn escapes_occur_with_narrow_counters_and_roundtrip() {
        let cfg = EstimatorConfig {
            count_bits: 10,
            increment: 32,
            ..EstimatorConfig::default()
        };
        // Rare symbols interleaved with a hammered one: halvings will push
        // the rare paths to zero, forcing escapes.
        let mut stream = Vec::new();
        for i in 0..4000u32 {
            stream.push((0usize, 128u8));
            if i % 333 == 0 {
                stream.push((0usize, (i % 256) as u8));
            }
        }
        let (_, escapes) = roundtrip(cfg, 1, &stream);
        assert!(escapes > 0, "narrow counters must force escapes");
    }

    #[test]
    fn contexts_are_independent() {
        let cfg = EstimatorConfig::default();
        let mut model = SymbolCoder::new(2, cfg);
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for _ in 0..500 {
            model.encode(&mut enc, 0, 10);
        }
        // Context 1 must still be uniform.
        let p = model.tree(1).probability(10);
        assert!((p - 1.0 / 256.0).abs() < 1e-12);
        // Context 0 must have adapted.
        assert!(model.tree(0).probability(10) > 0.5);
    }

    #[test]
    fn skewed_source_beats_uniform() {
        let stream: Vec<(usize, u8)> = (0..30_000u32)
            .map(|i| (0usize, if i % 11 == 0 { 200 } else { 100 }))
            .collect();
        let (bits, _) = roundtrip(EstimatorConfig::default(), 1, &stream);
        let bps = bits as f64 / stream.len() as f64;
        assert!(bps < 1.2, "two-symbol source cost {bps} bits/symbol");
    }

    #[test]
    fn reduced_alphabet_roundtrip() {
        let stream: Vec<(usize, u8)> = (0..800u32).map(|i| (0usize, (i % 16) as u8)).collect();
        let mut enc_model = SymbolCoder::with_depth(1, 4, EstimatorConfig::default());
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &(ctx, sym) in &stream {
            enc_model.encode(&mut enc, ctx, sym);
        }
        let bytes = enc.finish().into_bytes();
        let mut dec_model = SymbolCoder::with_depth(1, 4, EstimatorConfig::default());
        let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
        for &(_, sym) in &stream {
            assert_eq!(dec_model.decode(&mut dec, 0), sym);
        }
    }

    #[test]
    fn decisions_per_symbol_is_nine_for_bytes() {
        let model = SymbolCoder::new(8, EstimatorConfig::default());
        let dps = model.decisions_per_symbol();
        assert_eq!(dps.ceiling, 9);
        assert_eq!(dps.coded, 0.0, "nothing coded yet");
    }

    #[test]
    fn measured_coded_decisions_fall_below_the_ceiling() {
        // Narrow counters rescale often, decaying unused branches to zero;
        // a skewed source then walks mostly one-sided nodes, so
        // deterministic-prefix skipping must push the measured coded
        // decisions well under the static 9/symbol.
        let cfg = EstimatorConfig {
            count_bits: 10,
            increment: 32,
            ..EstimatorConfig::default()
        };
        let mut model = SymbolCoder::new(1, cfg);
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for i in 0..20_000u32 {
            model.encode(&mut enc, 0, if i % 11 == 0 { 200 } else { 100 });
        }
        let dps = model.decisions_per_symbol();
        assert_eq!(dps.ceiling, 9);
        assert!(
            dps.coded < 6.0,
            "skewed source still coded {} decisions/symbol",
            dps.coded
        );
        let stats = model.stats();
        assert_eq!(stats.decisions, 9 * 20_000);
        assert!(stats.deterministic_fraction() > 0.3);
        // Encoder-side counters must agree with the model's accounting.
        assert_eq!(enc.decisions(), stats.decisions);
        assert_eq!(enc.coded_decisions(), stats.coded_decisions);
    }

    /// The batched fast path must match the historical per-decision
    /// reference byte for byte — and statistic for statistic — across a
    /// rescale- and escape-heavy stream.
    #[test]
    fn fast_path_matches_reference_bytes_and_stats() {
        let cfg = EstimatorConfig {
            count_bits: 10,
            increment: 32,
            ..EstimatorConfig::default()
        };
        let stream: Vec<(usize, u8)> = (0..6000u32)
            .map(|i| ((i % 3) as usize, (i.wrapping_mul(2654435761) >> 15) as u8))
            .collect();

        let mut fast_model = SymbolCoder::new(3, cfg);
        let mut ref_model = SymbolCoder::new(3, cfg);
        let mut fast_enc = BinaryEncoder::new(BitWriter::new());
        let mut ref_enc = BinaryEncoder::new(BitWriter::new());
        for &(ctx, sym) in &stream {
            fast_model.encode(&mut fast_enc, ctx, sym);
            ref_model.encode_reference(&mut ref_enc, ctx, sym);
        }
        assert_eq!(fast_model.stats(), ref_model.stats());
        assert!(fast_model.stats().escapes > 0, "stream must escape");
        assert!(fast_model.stats().rescales > 0, "stream must rescale");
        let fast_bytes = fast_enc.finish().into_bytes();
        let ref_bytes = ref_enc.finish().into_bytes();
        assert_eq!(fast_bytes, ref_bytes, "fast path changed the stream");

        // Decode side: fused decode == reference decode, same stats.
        let mut fast_dec_model = SymbolCoder::new(3, cfg);
        let mut fast_dec = BinaryDecoder::new(BitReader::new(&fast_bytes));
        let mut ref_dec_model = SymbolCoder::new(3, cfg);
        let mut ref_dec = BinaryDecoder::new(BitReader::new(&ref_bytes));
        for &(ctx, sym) in &stream {
            assert_eq!(fast_dec_model.decode(&mut fast_dec, ctx), sym);
            assert_eq!(ref_dec_model.decode_reference(&mut ref_dec, ctx), sym);
        }
        assert_eq!(fast_dec_model.stats(), fast_model.stats());
        assert_eq!(ref_dec_model.stats(), fast_model.stats());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_contexts_rejected() {
        let _ = SymbolCoder::new(0, EstimatorConfig::default());
    }

    #[test]
    fn stats_count_symbols() {
        let mut model = SymbolCoder::new(1, EstimatorConfig::default());
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for s in 0..100u8 {
            model.encode(&mut enc, 0, s);
        }
        assert_eq!(model.stats().symbols, 100);
    }
}
