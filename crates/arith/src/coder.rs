//! The complete probability estimator of the paper: dynamic trees per
//! coding context, adaptive escape decisions, and the static tree.

use crate::adaptive::AdaptiveBit;
use crate::bincoder::{DecisionDecoder, DecisionEncoder, MAX_TOTAL};
use crate::stats::CoderStats;
use crate::tree::{DecisionPath, TreeModel};

/// Tuning knobs of the probability estimator.
///
/// `count_bits` is the frequency-counter width the paper sweeps in Fig. 4
/// (10–16 bits, settling on 14): counters cap at `2^count_bits − 1` and the
/// whole tree is halved when the cap is reached. `increment` is the step
/// added per observation; larger steps adapt faster but hit the cap (and
/// therefore age) sooner.
///
/// # Examples
///
/// ```
/// use cbic_arith::EstimatorConfig;
///
/// let cfg = EstimatorConfig { count_bits: 12, ..EstimatorConfig::default() };
/// assert_eq!(cfg.max_total(), (1 << 12) - 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EstimatorConfig {
    /// Frequency counter width in bits (the paper's Fig. 4 x-axis).
    /// Valid range `10..=16`.
    pub count_bits: u8,
    /// Count added per observed symbol (per tree level on its path).
    pub increment: u16,
    /// Initial (no-escape, escape) counts of the per-tree escape decision.
    pub escape_init: (u16, u16),
}

impl Default for EstimatorConfig {
    /// The paper's operating point: 14-bit counters (chosen in Fig. 4).
    ///
    /// The increment of 2 reproduces Fig. 4's shape on the 512×512 corpus —
    /// the average bit rate bottoms out at 14 counter bits and *rises* for
    /// both narrower counters (escape churn) and wider ones (over-skewed,
    /// stale statistics) — while costing Table 1 under 0.005 bpp against
    /// faster-adapting increments.
    fn default() -> Self {
        Self {
            count_bits: 14,
            increment: 2,
            escape_init: (16, 1),
        }
    }
}

impl EstimatorConfig {
    /// Maximum value a frequency counter may reach: `2^count_bits − 1`.
    ///
    /// # Panics
    ///
    /// Panics if `count_bits` is outside `10..=16`.
    pub fn max_total(&self) -> u32 {
        assert!(
            (10..=16).contains(&self.count_bits),
            "count_bits {} outside supported range 10..=16",
            self.count_bits
        );
        let m = (1u32 << self.count_bits) - 1;
        debug_assert!(m < MAX_TOTAL);
        m
    }
}

/// Adaptive symbol coder: `N` dynamic context trees + escape + static tree.
///
/// This is the paper's Section IV estimator in full. For the image codec
/// `N = 8` (the quantized coding contexts `QE`); other front ends (the
/// general-data model of the Fig. 1 universal system) instantiate more.
///
/// Symbols whose probability has decayed to zero in their context tree are
/// *escaped*: an adaptive per-context binary decision signals the escape and
/// the raw symbol is transmitted through the static (uniform) tree, i.e.
/// "sent as it is" in 8 bits of code space. The dynamic tree is updated
/// either way so the symbol regains probability.
#[derive(Debug, Clone)]
pub struct SymbolCoder {
    trees: Vec<TreeModel>,
    escape: Vec<AdaptiveBit>,
    depth: u32,
    cfg: EstimatorConfig,
    stats: CoderStats,
}

impl SymbolCoder {
    /// Creates a coder with `contexts` dynamic trees over the full 8-bit
    /// alphabet.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is zero or the configuration is invalid (see
    /// [`EstimatorConfig::max_total`]).
    pub fn new(contexts: usize, cfg: EstimatorConfig) -> Self {
        Self::with_depth(contexts, 8, cfg)
    }

    /// Creates a coder over a `2^depth`-symbol alphabet (used by tests and
    /// by front ends with reduced alphabets).
    ///
    /// # Panics
    ///
    /// Panics if `contexts == 0` or `depth` is not in `1..=8`.
    pub fn with_depth(contexts: usize, depth: u32, cfg: EstimatorConfig) -> Self {
        assert!(contexts > 0, "need at least one coding context");
        let max = cfg.max_total();
        Self {
            trees: (0..contexts).map(|_| TreeModel::new(depth, cfg)).collect(),
            escape: (0..contexts)
                .map(|_| AdaptiveBit::with_counts(cfg.escape_init.0, cfg.escape_init.1, max))
                .collect(),
            depth,
            cfg,
            stats: CoderStats::default(),
        }
    }

    /// Restores the start-of-stream state in place — every tree back to
    /// the uniform distribution, every escape decision to its initial
    /// counts, statistics zeroed — without reallocating any table. A reset
    /// coder codes byte-identically to a freshly constructed one, which is
    /// what lets an encoder *session* reuse its estimator across images.
    pub fn reset(&mut self) {
        let max = self.cfg.max_total();
        for tree in &mut self.trees {
            tree.reset();
        }
        for esc in &mut self.escape {
            *esc = AdaptiveBit::with_counts(self.cfg.escape_init.0, self.cfg.escape_init.1, max);
        }
        self.stats = CoderStats::default();
    }

    /// Number of coding contexts (dynamic trees).
    pub fn contexts(&self) -> usize {
        self.trees.len()
    }

    /// Accumulated coding statistics.
    pub fn stats(&self) -> CoderStats {
        let mut s = self.stats;
        s.rescales = self.trees.iter().map(TreeModel::rescales).sum();
        s
    }

    /// Borrow a context tree (diagnostics and tests).
    pub fn tree(&self, ctx: usize) -> &TreeModel {
        &self.trees[ctx]
    }

    /// Encodes `symbol` in coding context `ctx`.
    ///
    /// Runs the slice-batched fast path: one
    /// [`capture_and_update`](TreeModel::capture_and_update) descent
    /// records the decision probabilities and folds in the count update,
    /// then the escape decision and the captured slice (or the static
    /// bits) go to the coder as a batch. Bit-identical to the historical
    /// probe/code/update sequence.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range, or (for reduced alphabets) if
    /// `symbol` has bits above `depth`.
    pub fn encode<E: DecisionEncoder>(&mut self, enc: &mut E, ctx: usize, symbol: u8) {
        assert!(
            self.depth == 8 || u32::from(symbol) < (1u32 << self.depth),
            "symbol {symbol} out of range for {}-bit alphabet",
            self.depth
        );
        self.stats.symbols += 1;
        if !self.trees[ctx].maybe_escapes(symbol) {
            // Guaranteed-codable symbol: the escape decision is known
            // before any tree walk, so code it and run the single fused
            // descent.
            self.escape[ctx].encode(enc, false);
            self.trees[ctx].encode_and_update(enc, symbol);
            return;
        }
        let mut path = DecisionPath::empty();
        let escaped = self.trees[ctx].capture_and_update(symbol, &mut path);
        self.escape[ctx].encode(enc, escaped);
        if escaped {
            self.stats.escapes += 1;
            // Static tree: the symbol is sent as-is, one equiprobable
            // decision per bit.
            for k in (0..self.depth).rev() {
                enc.encode((symbol >> k) & 1 == 1, 1, 2);
            }
        } else {
            path.replay(enc, symbol);
        }
    }

    /// Decodes one symbol from coding context `ctx` (the fused
    /// decode-and-update descent, the dual of [`Self::encode`]).
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn decode<D: DecisionDecoder>(&mut self, dec: &mut D, ctx: usize) -> u8 {
        self.stats.symbols += 1;
        let escaped = self.escape[ctx].decode(dec);
        if escaped {
            self.stats.escapes += 1;
            let mut s = 0u8;
            for _ in 0..self.depth {
                s = (s << 1) | u8::from(dec.decode(1, 2));
            }
            self.trees[ctx].update(s);
            s
        } else {
            self.trees[ctx].decode_and_update(dec)
        }
    }

    /// Binary decisions needed to code one symbol in the current state
    /// (1 escape decision + `depth` path/static decisions). Constant for
    /// this design; exposed for the hardware pipeline model.
    pub fn decisions_per_symbol(&self) -> u32 {
        1 + self.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinaryDecoder, BinaryEncoder};
    use cbic_bitio::{BitReader, BitWriter};

    fn roundtrip(cfg: EstimatorConfig, contexts: usize, stream: &[(usize, u8)]) -> (u64, u64) {
        let mut enc_model = SymbolCoder::new(contexts, cfg);
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &(ctx, sym) in stream {
            enc_model.encode(&mut enc, ctx, sym);
        }
        let escapes = enc_model.stats().escapes;
        let bytes = enc.finish().into_bytes();
        let bits = bytes.len() as u64 * 8;

        let mut dec_model = SymbolCoder::new(contexts, cfg);
        let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
        for &(ctx, sym) in stream {
            assert_eq!(dec_model.decode(&mut dec, ctx), sym, "context {ctx}");
        }
        assert_eq!(enc_model.stats().escapes, dec_model.stats().escapes);
        (bits, escapes)
    }

    #[test]
    fn roundtrip_simple() {
        let stream: Vec<(usize, u8)> = (0..500u32)
            .map(|i| ((i % 3) as usize, (i % 7 * 40) as u8))
            .collect();
        roundtrip(EstimatorConfig::default(), 3, &stream);
    }

    #[test]
    fn roundtrip_all_symbols_all_contexts() {
        let mut stream = Vec::new();
        for pass in 0..3 {
            for s in 0..=255u8 {
                stream.push(((usize::from(s) + pass) % 8, s));
            }
        }
        roundtrip(EstimatorConfig::default(), 8, &stream);
    }

    #[test]
    fn escapes_occur_with_narrow_counters_and_roundtrip() {
        let cfg = EstimatorConfig {
            count_bits: 10,
            increment: 32,
            ..EstimatorConfig::default()
        };
        // Rare symbols interleaved with a hammered one: halvings will push
        // the rare paths to zero, forcing escapes.
        let mut stream = Vec::new();
        for i in 0..4000u32 {
            stream.push((0usize, 128u8));
            if i % 333 == 0 {
                stream.push((0usize, (i % 256) as u8));
            }
        }
        let (_, escapes) = roundtrip(cfg, 1, &stream);
        assert!(escapes > 0, "narrow counters must force escapes");
    }

    #[test]
    fn contexts_are_independent() {
        let cfg = EstimatorConfig::default();
        let mut model = SymbolCoder::new(2, cfg);
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for _ in 0..500 {
            model.encode(&mut enc, 0, 10);
        }
        // Context 1 must still be uniform.
        let p = model.tree(1).probability(10);
        assert!((p - 1.0 / 256.0).abs() < 1e-12);
        // Context 0 must have adapted.
        assert!(model.tree(0).probability(10) > 0.5);
    }

    #[test]
    fn skewed_source_beats_uniform() {
        let stream: Vec<(usize, u8)> = (0..30_000u32)
            .map(|i| (0usize, if i % 11 == 0 { 200 } else { 100 }))
            .collect();
        let (bits, _) = roundtrip(EstimatorConfig::default(), 1, &stream);
        let bps = bits as f64 / stream.len() as f64;
        assert!(bps < 1.2, "two-symbol source cost {bps} bits/symbol");
    }

    #[test]
    fn reduced_alphabet_roundtrip() {
        let stream: Vec<(usize, u8)> = (0..800u32).map(|i| (0usize, (i % 16) as u8)).collect();
        let mut enc_model = SymbolCoder::with_depth(1, 4, EstimatorConfig::default());
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &(ctx, sym) in &stream {
            enc_model.encode(&mut enc, ctx, sym);
        }
        let bytes = enc.finish().into_bytes();
        let mut dec_model = SymbolCoder::with_depth(1, 4, EstimatorConfig::default());
        let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
        for &(_, sym) in &stream {
            assert_eq!(dec_model.decode(&mut dec, 0), sym);
        }
    }

    #[test]
    fn decisions_per_symbol_is_nine_for_bytes() {
        let model = SymbolCoder::new(8, EstimatorConfig::default());
        assert_eq!(model.decisions_per_symbol(), 9);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_contexts_rejected() {
        let _ = SymbolCoder::new(0, EstimatorConfig::default());
    }

    #[test]
    fn stats_count_symbols() {
        let mut model = SymbolCoder::new(1, EstimatorConfig::default());
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for s in 0..100u8 {
            model.encode(&mut enc, 0, s);
        }
        assert_eq!(model.stats().symbols, 100);
    }
}
