//! Coding statistics reported by the estimator.

/// Counters accumulated by a [`SymbolCoder`](crate::SymbolCoder).
///
/// `escapes` tracks how often a symbol had to be transmitted through the
/// static tree — the paper's Fig. 4 trades these against probability skew
/// when choosing the frequency counter width.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoderStats {
    /// Symbols coded (encode + decode calls).
    pub symbols: u64,
    /// Symbols that escaped to the static tree.
    pub escapes: u64,
    /// Tree-wide counter halvings across all contexts.
    pub rescales: u64,
    /// Binary decisions processed (the static `1 + depth` per symbol).
    pub decisions: u64,
    /// Decisions that were *coded* — non-deterministic, so they moved the
    /// arithmetic coder's interval and cost code space. The remainder were
    /// deterministic prefixes retired at the model layer for free.
    pub coded_decisions: u64,
}

impl CoderStats {
    /// Fraction of symbols that escaped, in `0.0..=1.0`.
    pub fn escape_rate(&self) -> f64 {
        if self.symbols == 0 {
            0.0
        } else {
            self.escapes as f64 / self.symbols as f64
        }
    }

    /// Fraction of decisions that were deterministic (skipped without
    /// touching the coder), in `0.0..=1.0`.
    pub fn deterministic_fraction(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            1.0 - self.coded_decisions as f64 / self.decisions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_rate_handles_empty() {
        assert_eq!(CoderStats::default().escape_rate(), 0.0);
    }

    #[test]
    fn escape_rate_computes_fraction() {
        let s = CoderStats {
            symbols: 200,
            escapes: 50,
            rescales: 0,
            decisions: 1800,
            coded_decisions: 450,
        };
        assert!((s.escape_rate() - 0.25).abs() < 1e-12);
        assert!((s.deterministic_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn deterministic_fraction_handles_empty() {
        assert_eq!(CoderStats::default().deterministic_fraction(), 0.0);
    }
}
