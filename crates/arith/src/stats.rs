//! Coding statistics reported by the estimator.

/// Counters accumulated by a [`SymbolCoder`](crate::SymbolCoder).
///
/// `escapes` tracks how often a symbol had to be transmitted through the
/// static tree — the paper's Fig. 4 trades these against probability skew
/// when choosing the frequency counter width.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoderStats {
    /// Symbols coded (encode + decode calls).
    pub symbols: u64,
    /// Symbols that escaped to the static tree.
    pub escapes: u64,
    /// Tree-wide counter halvings across all contexts.
    pub rescales: u64,
}

impl CoderStats {
    /// Fraction of symbols that escaped, in `0.0..=1.0`.
    pub fn escape_rate(&self) -> f64 {
        if self.symbols == 0 {
            0.0
        } else {
            self.escapes as f64 / self.symbols as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_rate_handles_empty() {
        assert_eq!(CoderStats::default().escape_rate(), 0.0);
    }

    #[test]
    fn escape_rate_computes_fraction() {
        let s = CoderStats {
            symbols: 200,
            escapes: 50,
            rescales: 0,
        };
        assert!((s.escape_rate() - 0.25).abs() < 1e-12);
    }
}
