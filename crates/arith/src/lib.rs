//! Binary arithmetic coding with tree-structured adaptive probability
//! estimation — the entropy-coding back end of Chen et al. (SOCC 2007).
//!
//! The paper (Section IV) encodes 8-bit symbols as the sequence of
//! left/right decisions on the path through a balanced binary tree with one
//! adaptive counter per node, and drives a binary arithmetic coder with the
//! per-node probabilities. This crate is a faithful software model of that
//! back end:
//!
//! * [`BinaryEncoder`] / [`BinaryDecoder`] — an integer binary arithmetic
//!   coder (32-bit registers, follow-bit carry resolution) standing in for
//!   the configurable coder of the paper's reference \[7\]
//!   (Nunez-Yanez & Chouliaras, IEEE Trans. Computers 2005).
//! * [`TreeModel`] — one "dynamic" context tree: 255 internal nodes, each
//!   storing a single frequency counter (the count of *left* outcomes; the
//!   node total is inherited from the parent during descent, which is what
//!   lets the paper fit 9 trees in 4 KBytes of SRAM). Counters are capped at
//!   a configurable bit width (the paper's Fig. 4 sweeps 10–16 bits, picking
//!   14) and the whole tree is halved on overflow, which "ages" statistics
//!   and makes once-seen symbols decay back to probability zero.
//! * [`SymbolCoder`] — the complete estimator of the paper: `N` dynamic
//!   trees (one per coding context; the image codec uses 8), a per-tree
//!   adaptive *escape* decision, and the shared "static" tree that transmits
//!   escaped symbols "as is" (eight equiprobable decisions = 8 bits of code
//!   space).
//!
//! # Examples
//!
//! ```
//! use cbic_arith::{EstimatorConfig, SymbolCoder, BinaryEncoder, BinaryDecoder};
//! use cbic_bitio::{BitReader, BitWriter};
//!
//! let cfg = EstimatorConfig::default();
//! let mut enc = SymbolCoder::new(8, cfg);
//! let mut ac = BinaryEncoder::new(BitWriter::new());
//! for (ctx, sym) in [(0usize, 42u8), (1, 42), (0, 7)] {
//!     enc.encode(&mut ac, ctx, sym);
//! }
//! let bytes = ac.finish().into_bytes();
//!
//! let mut dec = SymbolCoder::new(8, cfg);
//! let mut ad = BinaryDecoder::new(BitReader::new(&bytes));
//! assert_eq!(dec.decode(&mut ad, 0), 42);
//! assert_eq!(dec.decode(&mut ad, 1), 42);
//! assert_eq!(dec.decode(&mut ad, 0), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod bincoder;
mod coder;
mod lanes;
mod stats;
mod tree;

pub use adaptive::AdaptiveBit;
pub use bincoder::{
    BinaryDecoder, BinaryEncoder, CountingEncoder, DecisionBatch, DecisionDecoder, DecisionEncoder,
};
pub use coder::{DecisionsPerSymbol, EstimatorConfig, SymbolCoder};
pub use lanes::{LaneDecoder, LaneEncoder, MAX_LANES};
pub use stats::CoderStats;
pub use tree::{DecisionPath, TreeModel};

#[cfg(test)]
mod proptests;
