//! A single adaptive binary decision context.

use crate::bincoder::{DecisionBatch, DecisionDecoder, DecisionEncoder};

/// An adaptive probability for one recurring binary decision.
///
/// Keeps `(count_false, count_true)` and codes the decision with
/// `P(false) = count_false / (count_false + count_true)`. Counts are capped:
/// when the total would exceed the cap, both are halved with a floor of 1,
/// so neither side ever reaches probability zero (this context must always
/// be able to code either outcome — it guards the escape path).
///
/// Used for the per-tree escape decision here, and reused by the CALIC
/// baseline and the universal system for mode flags.
///
/// # Examples
///
/// ```
/// use cbic_arith::{AdaptiveBit, BinaryDecoder, BinaryEncoder};
/// use cbic_bitio::{BitReader, BitWriter};
///
/// let mut enc_ctx = AdaptiveBit::new(1 << 12);
/// let mut enc = BinaryEncoder::new(BitWriter::new());
/// for _ in 0..10 {
///     enc_ctx.encode(&mut enc, false);
/// }
/// let bytes = enc.finish().into_bytes();
///
/// let mut dec_ctx = AdaptiveBit::new(1 << 12);
/// let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
/// for _ in 0..10 {
///     assert!(!dec_ctx.decode(&mut dec));
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveBit {
    c_false: u32,
    c_true: u32,
    max_total: u32,
    increment: u32,
}

impl AdaptiveBit {
    /// Creates an unbiased context (counts 1/1) with the given total cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_total < 4`.
    pub fn new(max_total: u32) -> Self {
        Self::with_counts(1, 1, max_total)
    }

    /// Creates a context with explicit initial counts (used to bias the
    /// escape decision towards "no escape" at start-up).
    ///
    /// # Panics
    ///
    /// Panics if either count is zero or their sum exceeds `max_total`, or
    /// if `max_total < 4`.
    pub fn with_counts(c_false: u16, c_true: u16, max_total: u32) -> Self {
        assert!(max_total >= 4, "max_total {max_total} too small");
        assert!(c_false > 0 && c_true > 0, "initial counts must be nonzero");
        assert!(
            u32::from(c_false) + u32::from(c_true) <= max_total,
            "initial counts exceed cap"
        );
        Self {
            c_false: u32::from(c_false),
            c_true: u32::from(c_true),
            max_total,
            increment: 16,
        }
    }

    /// Current `P(true)` (diagnostics).
    pub fn p_true(&self) -> f64 {
        f64::from(self.c_true) / f64::from(self.c_false + self.c_true)
    }

    /// Encodes `bit` and adapts.
    #[inline]
    pub fn encode<E: DecisionEncoder>(&mut self, enc: &mut E, bit: bool) {
        enc.encode(bit, self.c_false, self.c_false + self.c_true);
        self.update(bit);
    }

    /// Pushes `bit` onto a [`DecisionBatch`] (instead of coding it
    /// immediately) and adapts — the batched counterpart of
    /// [`encode`](Self::encode). Both counts are kept nonzero by
    /// construction, so the decision is always coded, never deterministic.
    #[inline]
    pub fn encode_into(&mut self, batch: &mut DecisionBatch, bit: bool) {
        batch.push_coded(bit, self.c_false, self.c_false + self.c_true);
        self.update(bit);
    }

    /// Decodes one bit and adapts.
    #[inline]
    pub fn decode<D: DecisionDecoder>(&mut self, dec: &mut D) -> bool {
        let bit = dec.decode(self.c_false, self.c_false + self.c_true);
        self.update(bit);
        bit
    }

    #[inline]
    fn update(&mut self, bit: bool) {
        if self.c_false + self.c_true + self.increment > self.max_total {
            // Halve with a floor of 1: both outcomes stay codable.
            self.c_false = (self.c_false + 1) >> 1;
            self.c_true = (self.c_true + 1) >> 1;
        }
        if bit {
            self.c_true += self.increment;
        } else {
            self.c_false += self.increment;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinaryDecoder, BinaryEncoder};
    use cbic_bitio::{BitReader, BitWriter};

    #[test]
    fn adapts_towards_observed_bias() {
        let mut ctx = AdaptiveBit::new(1 << 14);
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for _ in 0..500 {
            ctx.encode(&mut enc, true);
        }
        assert!(ctx.p_true() > 0.95, "p_true = {}", ctx.p_true());
    }

    #[test]
    fn counts_never_reach_zero() {
        let mut ctx = AdaptiveBit::new(64);
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for _ in 0..10_000 {
            ctx.encode(&mut enc, true);
        }
        // The false side must remain codable.
        ctx.encode(&mut enc, false);
        let bytes = enc.finish().into_bytes();

        let mut dctx = AdaptiveBit::new(64);
        let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
        for _ in 0..10_000 {
            assert!(dctx.decode(&mut dec));
        }
        assert!(!dctx.decode(&mut dec));
    }

    #[test]
    fn biased_initial_counts() {
        let ctx = AdaptiveBit::with_counts(16, 1, 1 << 14);
        assert!(ctx.p_true() < 0.1);
    }

    #[test]
    fn biased_stream_compresses_well() {
        let mut ctx = AdaptiveBit::new(1 << 14);
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for i in 0..20_000u32 {
            ctx.encode(&mut enc, i % 100 == 0);
        }
        let bits = enc.finish().into_bytes().len() * 8;
        // H(0.01) ≈ 0.08 bits; allow generous adaptation slack.
        assert!(bits < 4000, "got {bits} bits");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_initial_count_rejected() {
        let _ = AdaptiveBit::with_counts(0, 1, 64);
    }
}
