//! The "dynamic tree" of the paper's probability estimator.
//!
//! Each coding context owns a balanced binary tree over the 2ⁿ-symbol
//! alphabet. A symbol is identified with the root-to-leaf path given by its
//! bits (MSB first), and coding a symbol means coding the n left/right
//! decisions along that path.
//!
//! # Memory layout (and why it matches the paper's 4 KBytes)
//!
//! Every internal node stores a **single** counter: the number of times a
//! symbol passed through the node and went *left*. The number of times the
//! node was visited at all is not stored — it is inherited from the parent
//! during descent (the root's visit count is the tree total). With 255
//! nodes × 14-bit counters per tree and 9 trees, the estimator needs
//! ≈ 4 KBytes of SRAM, exactly the figure the paper reports. Storing
//! (left, right) pairs would double that.

use crate::bincoder::{BinaryDecoder, BinaryEncoder};
use crate::coder::EstimatorConfig;
use cbic_bitio::{BitSink, BitSource};

/// One adaptive context tree over a `2^depth`-symbol alphabet.
///
/// See this module's source documentation for the representation. The tree
/// maintains the invariant `left[i] <= visits(i)` for every node, where
/// `visits` is derived top-down from [`Self::total`].
///
/// # Examples
///
/// ```
/// use cbic_arith::{BinaryDecoder, BinaryEncoder, EstimatorConfig, TreeModel};
/// use cbic_bitio::{BitReader, BitWriter};
///
/// let cfg = EstimatorConfig::default();
/// let mut enc_tree = TreeModel::new(8, cfg);
/// let mut enc = BinaryEncoder::new(BitWriter::new());
/// enc_tree.encode_decisions(&mut enc, 200);
/// enc_tree.update(200);
/// let bytes = enc.finish().into_bytes();
///
/// let mut dec_tree = TreeModel::new(8, cfg);
/// let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
/// assert_eq!(dec_tree.decode_decisions(&mut dec), 200);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeModel {
    /// `left[i]` = count of left outcomes at heap node `i` (index 0 unused).
    /// Heap layout: root at 1, children of `i` at `2i` (left) and `2i+1`.
    left: Vec<u16>,
    /// Visit count of the root = total symbols accumulated (post-aging).
    total: u32,
    depth: u32,
    max_total: u32,
    increment: u32,
    rescales: u64,
}

impl TreeModel {
    /// Creates a tree over a `2^depth`-symbol alphabet with uniform initial
    /// probabilities (each symbol starts at `1 / 2^depth`, the paper's
    /// "initially, all the symbols in the alphabet are assigned an equal
    /// probability").
    ///
    /// # Panics
    ///
    /// Panics if `depth` is not in `1..=8`, or if the configuration's
    /// counter width cannot hold the initial uniform counts
    /// (`count_bits` must satisfy `2^count_bits - 1 >= 2^(depth+1)`).
    pub fn new(depth: u32, cfg: EstimatorConfig) -> Self {
        assert!((1..=8).contains(&depth), "depth {depth} out of range 1..=8");
        let max_total = cfg.max_total();
        assert!(
            max_total >= 1 << (depth + 1),
            "count_bits {} too small for a {}-bit alphabet",
            cfg.count_bits,
            depth
        );
        assert!(
            cfg.increment >= 1 && u32::from(cfg.increment) <= max_total / 2,
            "increment {} outside 1..={} (counter totals would overflow the cap)",
            cfg.increment,
            max_total / 2
        );
        let nodes = 1usize << depth; // indices 1..nodes are internal nodes
        let mut tree = Self {
            left: vec![0u16; nodes],
            total: 0,
            depth,
            max_total,
            increment: u32::from(cfg.increment),
            rescales: 0,
        };
        tree.reset();
        tree
    }

    /// Restores the initial uniform distribution in place, reusing the
    /// node storage — the session-reuse path's alternative to
    /// reconstructing the tree per image.
    pub fn reset(&mut self) {
        let depth = self.depth;
        for (i, slot) in self.left.iter_mut().enumerate().skip(1) {
            let node_depth = u32::BITS - 1 - (i as u32).leading_zeros();
            *slot = 1 << (depth - 1 - node_depth);
        }
        self.total = 1 << depth;
        self.rescales = 0;
    }

    /// Number of symbol bits (tree levels).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of internal nodes (counters) in the tree.
    pub fn node_count(&self) -> usize {
        self.left.len() - 1
    }

    /// Total visit count at the root.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// How many tree-wide halvings have occurred.
    pub fn rescales(&self) -> u64 {
        self.rescales
    }

    /// `true` if `symbol` currently has zero probability, i.e. some decision
    /// on its path has a zero count and the symbol must be *escaped*.
    ///
    /// This happens after tree-wide halvings decay a once-seen branch to
    /// zero — the paper's "counts of symbols that have not been seen before
    /// will be rescaled from 1 to 0, resulting in escape".
    #[inline]
    pub fn path_has_zero(&self, symbol: u8) -> bool {
        debug_assert!(u32::from(symbol) < (1u32 << self.depth) || self.depth == 8);
        let mut node = 1usize;
        let mut visits = self.total;
        for k in (0..self.depth).rev() {
            let bit = (symbol >> k) & 1;
            let c0 = u32::from(self.left[node]);
            let branch = if bit == 0 { c0 } else { visits - c0 };
            if branch == 0 {
                return true;
            }
            visits = branch;
            node = node * 2 + usize::from(bit);
        }
        false
    }

    /// Codes the decision path of `symbol` using the *current* counts.
    ///
    /// Does **not** update the model; call [`Self::update`] afterwards (the
    /// split lets the escape mechanism update the tree even for symbols that
    /// were transmitted through the static tree instead).
    ///
    /// # Panics
    ///
    /// Debug-panics if `symbol` has zero probability (the caller must check
    /// [`Self::path_has_zero`] and escape).
    #[inline]
    pub fn encode_decisions<S: BitSink>(&self, enc: &mut BinaryEncoder<S>, symbol: u8) {
        let mut node = 1usize;
        let mut visits = self.total;
        for k in (0..self.depth).rev() {
            let bit = (symbol >> k) & 1 == 1;
            let c0 = u32::from(self.left[node]);
            enc.encode(bit, c0, visits);
            visits = if bit { visits - c0 } else { c0 };
            node = node * 2 + usize::from(bit);
        }
    }

    /// Decodes one symbol's decision path using the *current* counts.
    ///
    /// Does **not** update the model; call [`Self::update`] afterwards.
    #[inline]
    pub fn decode_decisions<S: BitSource>(&self, dec: &mut BinaryDecoder<S>) -> u8 {
        let mut node = 1usize;
        let mut visits = self.total;
        let mut symbol = 0u8;
        for _ in 0..self.depth {
            let c0 = u32::from(self.left[node]);
            let bit = dec.decode(c0, visits);
            visits = if bit { visits - c0 } else { c0 };
            symbol = (symbol << 1) | u8::from(bit);
            node = node * 2 + usize::from(bit);
        }
        symbol
    }

    /// Accumulates `symbol` into the tree, halving all counters first if the
    /// root total would exceed the configured cap (the paper's overflow
    /// rescaling, which "ages" the statistics).
    #[inline]
    pub fn update(&mut self, symbol: u8) {
        if self.total + self.increment > self.max_total {
            self.rescale();
        }
        let mut node = 1usize;
        for k in (0..self.depth).rev() {
            let bit = (symbol >> k) & 1;
            if bit == 0 {
                self.left[node] += self.increment as u16;
            }
            node = node * 2 + usize::from(bit);
        }
        self.total += self.increment;
    }

    /// Halves every counter in the tree (and the root total).
    fn rescale(&mut self) {
        for c in &mut self.left[1..] {
            *c >>= 1;
        }
        self.total >>= 1;
        self.rescales += 1;
    }

    /// Probability of `symbol` as a fraction (numerator, denominator-log2
    /// scaled): returns the product of per-level conditionals as an `f64`.
    /// Intended for diagnostics and tests, not the coding path.
    pub fn probability(&self, symbol: u8) -> f64 {
        let mut node = 1usize;
        let mut visits = self.total;
        let mut p = 1.0f64;
        for k in (0..self.depth).rev() {
            let bit = (symbol >> k) & 1;
            let c0 = u32::from(self.left[node]);
            let branch = if bit == 0 { c0 } else { visits - c0 };
            if visits == 0 {
                return 0.0;
            }
            p *= f64::from(branch) / f64::from(visits);
            if branch == 0 {
                return 0.0;
            }
            visits = branch;
            node = node * 2 + usize::from(bit);
        }
        p
    }

    /// Verifies the structural invariant `left[i] <= visits(i)` everywhere.
    /// Exposed for tests and debugging.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.check_node(1, self.total)
    }

    fn check_node(&self, node: usize, visits: u32) -> Result<(), String> {
        if node >= self.left.len() {
            return Ok(());
        }
        let c0 = u32::from(self.left[node]);
        if c0 > visits {
            return Err(format!(
                "node {node}: left count {c0} exceeds visits {visits}"
            ));
        }
        self.check_node(node * 2, c0)?;
        self.check_node(node * 2 + 1, visits - c0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbic_bitio::{BitReader, BitWriter};

    fn cfg() -> EstimatorConfig {
        EstimatorConfig::default()
    }

    #[test]
    fn initial_distribution_is_uniform() {
        let t = TreeModel::new(8, cfg());
        assert_eq!(t.total(), 256);
        assert_eq!(t.node_count(), 255);
        for s in [0u8, 1, 127, 128, 200, 255] {
            let p = t.probability(s);
            assert!((p - 1.0 / 256.0).abs() < 1e-12, "p({s}) = {p}");
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn smaller_alphabets_are_uniform_too() {
        for depth in 1..=7 {
            let t = TreeModel::new(depth, cfg());
            let expected = 1.0 / f64::from(1u32 << depth);
            assert!((t.probability(0) - expected).abs() < 1e-12);
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn update_raises_probability() {
        let mut t = TreeModel::new(8, cfg());
        let before = t.probability(42);
        for _ in 0..10 {
            t.update(42);
        }
        let after = t.probability(42);
        assert!(after > before * 5.0, "before {before}, after {after}");
        t.check_invariants().unwrap();
    }

    #[test]
    fn update_preserves_invariants_under_stress() {
        let mut t = TreeModel::new(8, cfg());
        for i in 0u32..20_000 {
            t.update((i.wrapping_mul(2654435761) >> 8) as u8);
        }
        t.check_invariants().unwrap();
        assert!(t.rescales() > 0, "cap must have been hit");
        assert!(t.total() <= cfg().max_total());
    }

    #[test]
    fn rescaling_creates_zero_probability_paths() {
        // Small counter width forces frequent halvings; a symbol seen once
        // must eventually decay to probability zero.
        let cfg = EstimatorConfig {
            count_bits: 10,
            increment: 32,
            ..EstimatorConfig::default()
        };
        let mut t = TreeModel::new(8, cfg);
        t.update(7); // seen once
        assert!(!t.path_has_zero(7));
        for _ in 0..10_000 {
            t.update(200);
        }
        assert!(t.path_has_zero(7), "symbol 7 should have decayed to zero");
        // ...but the hammered symbol keeps a healthy probability.
        assert!(t.probability(200) > 0.9);
        t.check_invariants().unwrap();
    }

    #[test]
    fn no_initial_escapes() {
        let t = TreeModel::new(8, cfg());
        for s in 0..=255u8 {
            assert!(!t.path_has_zero(s));
        }
    }

    #[test]
    fn roundtrip_with_adaptation() {
        let symbols: Vec<u8> = (0..3000u32)
            .map(|i| ((i * i * 31) % 97) as u8) // skewed distribution
            .collect();

        let mut enc_tree = TreeModel::new(8, cfg());
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &s in &symbols {
            assert!(!s_escapes(&enc_tree, s), "test stream should not escape");
            enc_tree.encode_decisions(&mut enc, s);
            enc_tree.update(s);
        }
        let bytes = enc.finish().into_bytes();

        let mut dec_tree = TreeModel::new(8, cfg());
        let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
        for &s in &symbols {
            assert_eq!(dec_tree.decode_decisions(&mut dec), s);
            dec_tree.update(s);
        }
        assert_eq!(enc_tree, dec_tree, "encoder and decoder models must agree");

        fn s_escapes(t: &TreeModel, s: u8) -> bool {
            t.path_has_zero(s)
        }
    }

    #[test]
    fn adaptation_beats_uniform_coding() {
        // A heavily skewed source must cost well under 8 bits/symbol.
        let symbols: Vec<u8> = (0..20_000u32).map(|i| ((i % 10) / 9 * 17) as u8).collect();
        let mut tree = TreeModel::new(8, cfg());
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &s in &symbols {
            tree.encode_decisions(&mut enc, s);
            tree.update(s);
        }
        let bits = enc.finish().into_bytes().len() * 8;
        let bps = bits as f64 / symbols.len() as f64;
        assert!(bps < 1.0, "skewed source cost {bps} bits/symbol");
    }

    #[test]
    #[should_panic(expected = "outside supported range")]
    fn rejects_insufficient_counter_width() {
        let cfg = EstimatorConfig {
            count_bits: 8,
            ..EstimatorConfig::default()
        };
        let _ = TreeModel::new(8, cfg);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_zero_depth() {
        let _ = TreeModel::new(0, cfg());
    }
}
