//! The "dynamic tree" of the paper's probability estimator.
//!
//! Each coding context owns a balanced binary tree over the 2ⁿ-symbol
//! alphabet. A symbol is identified with the root-to-leaf path given by its
//! bits (MSB first), and coding a symbol means coding the n left/right
//! decisions along that path.
//!
//! # Memory layout (and why it matches the paper's 4 KBytes)
//!
//! Every internal node stores a **single** counter: the number of times a
//! symbol passed through the node and went *left*. The number of times the
//! node was visited at all is not stored — it is inherited from the parent
//! during descent (the root's visit count is the tree total). With 255
//! nodes × 14-bit counters per tree and 9 trees, the estimator needs
//! ≈ 4 KBytes of SRAM, exactly the figure the paper reports. Storing
//! (left, right) pairs would double that.

use crate::bincoder::{DecisionBatch, DecisionDecoder, DecisionEncoder};
use crate::coder::EstimatorConfig;
use std::sync::OnceLock;

/// Per-depth path-node-index ROMs: entry `s` of the depth-`d` ROM packs
/// the heap indices of the `d` internal nodes on symbol `s`'s root-to-leaf
/// path, one byte per level (level `k` in bits `8k..8k+8`).
///
/// The tree *shape* is static — only the counters adapt — so the node
/// sequence of a descent is a pure function of `(depth, symbol)`. Encoding
/// knows the symbol up front, so with the ROM one descent becomes one u64
/// load plus `depth` independent counter loads instead of a serial
/// `node = 2·node + bit` address chain. Node indices fit a byte because a
/// level-`k` node index is below `2^(k+1) ≤ 2^depth ≤ 256`.
fn path_rom(depth: u32) -> &'static [u64] {
    static ROMS: [OnceLock<Vec<u64>>; 9] = [const { OnceLock::new() }; 9];
    ROMS[depth as usize].get_or_init(|| {
        (0..1u32 << depth)
            .map(|s| {
                let mut packed = 0u64;
                for k in 0..depth {
                    let node = (1u32 << k) | (s >> (depth - k));
                    packed |= u64::from(node) << (8 * k);
                }
                packed
            })
            .collect()
    })
}

/// Captured per-level decision probabilities of one symbol's root-to-leaf
/// path: the `(c0, visits)` pair of every internal node the symbol
/// traverses, recorded in one descent by
/// [`TreeModel::capture_and_update`] and replayed into the arithmetic
/// coder as a batch.
///
/// This is the slice-batched fast path the image engine codes through:
/// instead of three separate descents per symbol (escape probe, decision
/// coding, count update) the tree is walked **once**, and the coder
/// consumes the captured slice afterwards. The emitted bits are identical
/// to the three-descent sequence — only the number of tree traversals
/// changes.
#[derive(Debug, Clone, Copy)]
pub struct DecisionPath {
    c0: [u32; 8],
    visits: [u32; 8],
    len: u32,
    /// Bit `k` set ⇔ level `k`'s decision is *coded* (`0 < c0 < visits`).
    /// Decisions with a clear bit are deterministic — the coded side owns
    /// the whole interval, zero bits are emitted, no coder state moves —
    /// and the fast path retires them without ever calling the coder.
    coded_mask: u32,
}

impl DecisionPath {
    /// An empty path, ready to be filled by
    /// [`TreeModel::capture_and_update`].
    pub const fn empty() -> Self {
        Self {
            c0: [0; 8],
            visits: [0; 8],
            len: 0,
            coded_mask: 0,
        }
    }

    /// Number of captured decisions (the tree depth).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` until a capture fills the path.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bitmask of the levels whose decisions are non-deterministic, as
    /// classified at capture time (bit `k` = level `k`, root first).
    pub fn coded_mask(&self) -> u32 {
        self.coded_mask
    }

    /// Number of captured decisions that will actually reach the coder.
    pub fn coded_len(&self) -> u32 {
        self.coded_mask.count_ones()
    }

    /// Replays the captured decision sequence of `symbol` into the coder —
    /// bit-identical to [`TreeModel::encode_decisions`] with the counts
    /// that were current at capture time.
    #[inline]
    pub fn replay<E: DecisionEncoder>(&self, enc: &mut E, symbol: u8) {
        for k in 0..self.len {
            let bit = (symbol >> (self.len - 1 - k)) & 1 == 1;
            let i = k as usize;
            enc.encode(bit, self.c0[i], self.visits[i]);
        }
    }

    /// Appends the captured path to a [`DecisionBatch`]: coded levels are
    /// pushed in stream order (root first), deterministic levels are only
    /// counted. Equivalent to [`replay`](Self::replay) once the batch is
    /// submitted, with the per-decision deterministic screening already
    /// resolved here at the model layer.
    #[inline]
    pub fn push_onto(&self, batch: &mut DecisionBatch, symbol: u8) {
        let mut mask = self.coded_mask;
        batch.skip_deterministic(self.len - mask.count_ones());
        while mask != 0 {
            let k = mask.trailing_zeros();
            let bit = (symbol >> (self.len - 1 - k)) & 1 == 1;
            let i = k as usize;
            batch.push_coded(bit, self.c0[i], self.visits[i]);
            mask &= mask - 1;
        }
    }
}

impl Default for DecisionPath {
    fn default() -> Self {
        Self::empty()
    }
}

/// One adaptive context tree over a `2^depth`-symbol alphabet.
///
/// See this module's source documentation for the representation. The tree
/// maintains the invariant `left[i] <= visits(i)` for every node, where
/// `visits` is derived top-down from [`Self::total`].
///
/// # Examples
///
/// ```
/// use cbic_arith::{BinaryDecoder, BinaryEncoder, EstimatorConfig, TreeModel};
/// use cbic_bitio::{BitReader, BitWriter};
///
/// let cfg = EstimatorConfig::default();
/// let mut enc_tree = TreeModel::new(8, cfg);
/// let mut enc = BinaryEncoder::new(BitWriter::new());
/// enc_tree.encode_decisions(&mut enc, 200);
/// enc_tree.update(200);
/// let bytes = enc.finish().into_bytes();
///
/// let mut dec_tree = TreeModel::new(8, cfg);
/// let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
/// assert_eq!(dec_tree.decode_decisions(&mut dec), 200);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeModel {
    /// `left[i]` = count of left outcomes at heap node `i` (index 0 unused).
    /// Heap layout: root at 1, children of `i` at `2i` (left) and `2i+1`.
    left: Vec<u16>,
    /// Visit count of the root = total symbols accumulated (post-aging).
    total: u32,
    depth: u32,
    max_total: u32,
    increment: u32,
    rescales: u64,
    /// One bit per symbol: **may** the symbol's path contain a zero
    /// branch? Zero branches are *created* only by [`Self::rescale`]
    /// (which recomputes this mask exactly) and *removed* only by
    /// [`Self::update`] (which leaves the mask alone), so a clear bit is
    /// a guarantee — the symbol cannot escape and its decisions can be
    /// coded in one fused descent — while a set bit merely routes the
    /// symbol through the exact capture walk.
    maybe_zero: [u64; 4],
    /// Shared per-depth path-node ROM (see [`path_rom`]): flattens the
    /// encode-side descent into independent counter loads.
    rom: &'static [u64],
}

impl TreeModel {
    /// Creates a tree over a `2^depth`-symbol alphabet with uniform initial
    /// probabilities (each symbol starts at `1 / 2^depth`, the paper's
    /// "initially, all the symbols in the alphabet are assigned an equal
    /// probability").
    ///
    /// # Panics
    ///
    /// Panics if `depth` is not in `1..=8`, or if the configuration's
    /// counter width cannot hold the initial uniform counts
    /// (`count_bits` must satisfy `2^count_bits - 1 >= 2^(depth+1)`).
    pub fn new(depth: u32, cfg: EstimatorConfig) -> Self {
        assert!((1..=8).contains(&depth), "depth {depth} out of range 1..=8");
        let max_total = cfg.max_total();
        assert!(
            max_total >= 1 << (depth + 1),
            "count_bits {} too small for a {}-bit alphabet",
            cfg.count_bits,
            depth
        );
        assert!(
            cfg.increment >= 1 && u32::from(cfg.increment) <= max_total / 2,
            "increment {} outside 1..={} (counter totals would overflow the cap)",
            cfg.increment,
            max_total / 2
        );
        let nodes = 1usize << depth; // indices 1..nodes are internal nodes
        let mut tree = Self {
            left: vec![0u16; nodes],
            total: 0,
            depth,
            max_total,
            increment: u32::from(cfg.increment),
            rescales: 0,
            maybe_zero: [0; 4],
            rom: path_rom(depth),
        };
        tree.reset();
        tree
    }

    /// Restores the initial uniform distribution in place, reusing the
    /// node storage — the session-reuse path's alternative to
    /// reconstructing the tree per image.
    pub fn reset(&mut self) {
        let depth = self.depth;
        for (i, slot) in self.left.iter_mut().enumerate().skip(1) {
            let node_depth = u32::BITS - 1 - (i as u32).leading_zeros();
            *slot = 1 << (depth - 1 - node_depth);
        }
        self.total = 1 << depth;
        self.rescales = 0;
        // The uniform distribution has no zero branch anywhere.
        self.maybe_zero = [0; 4];
    }

    /// Number of symbol bits (tree levels).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of internal nodes (counters) in the tree.
    pub fn node_count(&self) -> usize {
        self.left.len() - 1
    }

    /// Total visit count at the root.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// How many tree-wide halvings have occurred.
    pub fn rescales(&self) -> u64 {
        self.rescales
    }

    /// `true` if `symbol` currently has zero probability, i.e. some decision
    /// on its path has a zero count and the symbol must be *escaped*.
    ///
    /// This happens after tree-wide halvings decay a once-seen branch to
    /// zero — the paper's "counts of symbols that have not been seen before
    /// will be rescaled from 1 to 0, resulting in escape".
    #[inline]
    pub fn path_has_zero(&self, symbol: u8) -> bool {
        debug_assert!(u32::from(symbol) < (1u32 << self.depth) || self.depth == 8);
        let mut node = 1usize;
        let mut visits = self.total;
        for k in (0..self.depth).rev() {
            let bit = (symbol >> k) & 1;
            let c0 = u32::from(self.left[node]);
            let branch = if bit == 0 { c0 } else { visits - c0 };
            if branch == 0 {
                return true;
            }
            visits = branch;
            node = node * 2 + usize::from(bit);
        }
        false
    }

    /// Codes the decision path of `symbol` using the *current* counts.
    ///
    /// Does **not** update the model; call [`Self::update`] afterwards (the
    /// split lets the escape mechanism update the tree even for symbols that
    /// were transmitted through the static tree instead).
    ///
    /// # Panics
    ///
    /// Debug-panics if `symbol` has zero probability (the caller must check
    /// [`Self::path_has_zero`] and escape).
    #[inline]
    pub fn encode_decisions<E: DecisionEncoder>(&self, enc: &mut E, symbol: u8) {
        let mut node = 1usize;
        let mut visits = self.total;
        for k in (0..self.depth).rev() {
            let bit = (symbol >> k) & 1 == 1;
            let c0 = u32::from(self.left[node]);
            enc.encode(bit, c0, visits);
            visits = if bit { visits - c0 } else { c0 };
            node = node * 2 + usize::from(bit);
        }
    }

    /// Decodes one symbol's decision path using the *current* counts.
    ///
    /// Does **not** update the model; call [`Self::update`] afterwards.
    #[inline]
    pub fn decode_decisions<D: DecisionDecoder>(&self, dec: &mut D) -> u8 {
        let mut node = 1usize;
        let mut visits = self.total;
        let mut symbol = 0u8;
        for _ in 0..self.depth {
            let c0 = u32::from(self.left[node]);
            let bit = dec.decode(c0, visits);
            visits = if bit { visits - c0 } else { c0 };
            symbol = (symbol << 1) | u8::from(bit);
            node = node * 2 + usize::from(bit);
        }
        symbol
    }

    /// The slice-batched fast path: walks `symbol`'s root-to-leaf path
    /// **once**, capturing each level's `(c0, visits)` pair into `path`,
    /// detecting whether the symbol must escape, and folding the count
    /// update into the same descent. Returns `true` when some branch on
    /// the path has a zero count (the symbol must be escaped; the
    /// captured probabilities are then meaningless and must not be
    /// replayed).
    ///
    /// Equivalent to `path_has_zero` + `encode_decisions`-capture +
    /// [`Self::update`], in one traversal instead of three: the captured
    /// pairs are the **pre-update** counts, and the rare rescale case
    /// falls back to a separate capture so the coded probabilities never
    /// see a half-aged tree.
    #[inline]
    pub fn capture_and_update(&mut self, symbol: u8, path: &mut DecisionPath) -> bool {
        path.len = self.depth;
        if self.total + self.increment > self.max_total {
            // Aging imminent: capture with the pre-rescale counts the
            // coder must use, then let the plain update rescale and add.
            let escaped = self.capture(symbol, path);
            self.update(symbol);
            return escaped;
        }
        let inc = self.increment as u16;
        // Flattened descent: the ROM supplies every node index up front,
        // so the `left[]` loads are independent instead of chained through
        // `node = 2·node + bit` address arithmetic.
        let nodes = self.rom[usize::from(symbol)];
        let mut visits = self.total;
        let mut escaped = false;
        let mut coded_mask = 0u32;
        for k in 0..self.depth {
            let bit = (symbol >> (self.depth - 1 - k)) & 1;
            let node = ((nodes >> (8 * k)) & 0xFF) as usize;
            let c0 = u32::from(self.left[node]);
            let i = k as usize;
            path.c0[i] = c0;
            path.visits[i] = visits;
            // By the invariant `left[node] <= visits`, both branches are
            // non-negative; once a branch hits zero every deeper count is
            // zero too, so the walk stays well-defined.
            let branch = if bit == 0 { c0 } else { visits - c0 };
            escaped |= branch == 0;
            // Capture-time classification: the decision is deterministic
            // when either side owns the whole visit count — the coder
            // would emit zero bits — so only `0 < c0 < visits` levels are
            // marked for coding.
            coded_mask |= u32::from((c0 != 0) & (c0 != visits)) << k;
            // Branchless conditional bump: the symbol bits are close to
            // random, so a `if bit == 0` store would mispredict every
            // other level of the descent.
            self.left[node] += inc & u16::from(bit).wrapping_sub(1);
            visits = branch;
        }
        path.coded_mask = coded_mask;
        self.total += self.increment;
        escaped
    }

    /// The encode hot path for symbols whose [`Self::maybe_escapes`] bit
    /// is clear: one flattened descent that classifies each level and
    /// stages the coded decisions *directly* into the batch — no
    /// intermediate [`DecisionPath`], no repack pass. Bit-identical to
    /// [`Self::capture_and_update`] + [`DecisionPath::push_onto`] (the
    /// rescale-imminent case falls back to exactly that pair, so the
    /// coded probabilities never see a half-aged tree).
    ///
    /// The caller must have screened the symbol with
    /// [`Self::maybe_escapes`]: a zero branch on the path would stage a
    /// zero-probability decision and corrupt the stream (debug builds
    /// catch it in the coder).
    #[inline]
    pub(crate) fn capture_update_into(&mut self, symbol: u8, batch: &mut DecisionBatch) {
        if self.total + self.increment > self.max_total {
            let mut path = DecisionPath::empty();
            path.len = self.depth;
            let escaped = self.capture(symbol, &mut path);
            debug_assert!(!escaped, "caller must screen with maybe_escapes");
            self.update(symbol);
            path.push_onto(batch, symbol);
            return;
        }
        let inc = self.increment as u16;
        let nodes = self.rom[usize::from(symbol)];
        let mut visits = self.total;
        let start = batch.coded_len();
        for k in 0..self.depth {
            let bit = (symbol >> (self.depth - 1 - k)) & 1;
            let node = ((nodes >> (8 * k)) & 0xFF) as usize;
            let c0 = u32::from(self.left[node]);
            // Capture-time classification, staged without a branch: only
            // `0 < c0 < visits` levels advance the batch cursor.
            let coded = (c0 != 0) & (c0 != visits);
            batch.stage(
                (u64::from(bit) << 34) | (u64::from(c0) << 17) | u64::from(visits),
                coded,
            );
            // Branchless conditional bump (see `capture_and_update`).
            self.left[node] += inc & u16::from(bit).wrapping_sub(1);
            visits = if bit == 0 { c0 } else { visits - c0 };
        }
        batch.skip_deterministic(self.depth - (batch.coded_len() - start) as u32);
        self.total += self.increment;
    }

    /// Read-only capture of `symbol`'s path (the rescale-imminent slow
    /// branch of [`Self::capture_and_update`]).
    fn capture(&self, symbol: u8, path: &mut DecisionPath) -> bool {
        let mut node = 1usize;
        let mut visits = self.total;
        let mut escaped = false;
        let mut coded_mask = 0u32;
        for k in 0..self.depth {
            let bit = (symbol >> (self.depth - 1 - k)) & 1;
            let c0 = u32::from(self.left[node]);
            let i = k as usize;
            path.c0[i] = c0;
            path.visits[i] = visits;
            let branch = if bit == 0 { c0 } else { visits - c0 };
            escaped |= branch == 0;
            coded_mask |= u32::from((c0 != 0) & (c0 != visits)) << k;
            visits = branch;
            node = node * 2 + usize::from(bit);
        }
        path.coded_mask = coded_mask;
        escaped
    }

    /// The decoder's fused descent: decodes one symbol's decisions and
    /// applies the count update in the same walk (each node's counter is
    /// read before it is bumped, so the decoded probabilities match the
    /// encoder's pre-update capture exactly). Falls back to decode-then-
    /// update when a rescale is due, mirroring
    /// [`Self::capture_and_update`].
    ///
    /// Deterministic levels (`c0 == 0` or `c0 == visits`) are resolved
    /// here at the model layer — the encoder emitted zero bits for them,
    /// so the decoder never consults the bitstream; only the coder's
    /// decision counters are advanced (in one batched
    /// [`note_deterministic`](DecisionDecoder::note_deterministic) call).
    #[inline]
    pub fn decode_and_update<D: DecisionDecoder>(&mut self, dec: &mut D) -> u8 {
        if self.total + self.increment > self.max_total {
            let symbol = self.decode_decisions(dec);
            self.update(symbol);
            return symbol;
        }
        let inc = self.increment as u16;
        let mut node = 1usize;
        let mut visits = self.total;
        let mut symbol = 0u8;
        let mut deterministic = 0u64;
        for _ in 0..self.depth {
            let c0 = u32::from(self.left[node]);
            // Deterministic-prefix skipping, decode side: a one-sided
            // count pins the bit without touching the coder.
            let bit = if c0 == 0 {
                deterministic += 1;
                true
            } else if c0 == visits {
                deterministic += 1;
                false
            } else {
                dec.decode_nondeterministic(c0, visits)
            };
            visits = if bit { visits - c0 } else { c0 };
            // Branchless conditional bump (see `capture_and_update`).
            self.left[node] += inc & u16::from(bit).wrapping_sub(1);
            symbol = (symbol << 1) | u8::from(bit);
            node = node * 2 + usize::from(bit);
        }
        dec.note_deterministic(deterministic);
        self.total += self.increment;
        symbol
    }

    /// Accumulates `symbol` into the tree, halving all counters first if the
    /// root total would exceed the configured cap (the paper's overflow
    /// rescaling, which "ages" the statistics).
    #[inline]
    pub fn update(&mut self, symbol: u8) {
        if self.total + self.increment > self.max_total {
            self.rescale();
        }
        let inc = self.increment as u16;
        let mut node = 1usize;
        for k in (0..self.depth).rev() {
            let bit = (symbol >> k) & 1;
            // Branchless conditional bump (see `capture_and_update`).
            self.left[node] += inc & u16::from(bit).wrapping_sub(1);
            node = node * 2 + usize::from(bit);
        }
        self.total += self.increment;
    }

    /// Halves every counter in the tree (and the root total), then
    /// recomputes the maybe-zero mask exactly — rescaling is the only
    /// operation that can create zero branches, so the mask is precise at
    /// this point and only grows stale in the safe direction (updates
    /// remove zeros but never add them).
    fn rescale(&mut self) {
        for c in &mut self.left[1..] {
            *c >>= 1;
        }
        self.total >>= 1;
        self.rescales += 1;
        self.maybe_zero = [0; 4];
        self.mark_zero_paths(1, self.total, 0, self.depth);
    }

    /// Marks every symbol under `node` whose remaining path crosses an
    /// empty branch (`visits` is the node's inherited visit count,
    /// `prefix` the symbol bits chosen so far).
    fn mark_zero_paths(&mut self, node: usize, visits: u32, prefix: u32, levels_left: u32) {
        if levels_left == 0 {
            return;
        }
        let c0 = u32::from(self.left[node]);
        let c1 = visits - c0;
        for (bit, branch) in [(0u32, c0), (1u32, c1)] {
            let child_prefix = (prefix << 1) | bit;
            if branch == 0 {
                // Every symbol with this prefix escapes: set the whole
                // 2^(levels_left - 1)-symbol run in one mask pass.
                let first = (child_prefix << (levels_left - 1)) as usize;
                let count = 1usize << (levels_left - 1);
                for s in first..first + count {
                    self.maybe_zero[s >> 6] |= 1u64 << (s & 63);
                }
            } else {
                self.mark_zero_paths(
                    node * 2 + bit as usize,
                    branch,
                    child_prefix,
                    levels_left - 1,
                );
            }
        }
    }

    /// `true` when `symbol`'s path **might** cross a zero branch (a set
    /// bit in the maybe-zero mask). A `false` answer is a guarantee that
    /// [`Self::path_has_zero`] is `false`, letting encoders skip the
    /// escape probe and code in one fused descent.
    #[inline]
    pub fn maybe_escapes(&self, symbol: u8) -> bool {
        let s = usize::from(symbol);
        self.maybe_zero[s >> 6] & (1u64 << (s & 63)) != 0
    }

    /// The encoder's fused fast path for symbols whose mask bit is clear:
    /// codes the decision path and applies the update in a single
    /// descent, bit-identical to `encode_decisions` + [`Self::update`].
    /// Falls back to the two-step sequence when a rescale is due (the
    /// coded probabilities must be the pre-rescale counts).
    ///
    /// # Panics
    ///
    /// Debug-panics (inside the arithmetic coder) if the path does have a
    /// zero branch — callers must check [`Self::maybe_escapes`] first.
    #[inline]
    pub fn encode_and_update<E: DecisionEncoder>(&mut self, enc: &mut E, symbol: u8) {
        if self.total + self.increment > self.max_total {
            self.encode_decisions(enc, symbol);
            self.update(symbol);
            return;
        }
        let inc = self.increment as u16;
        let mut node = 1usize;
        let mut visits = self.total;
        for k in (0..self.depth).rev() {
            let bit = (symbol >> k) & 1 == 1;
            let c0 = u32::from(self.left[node]);
            enc.encode(bit, c0, visits);
            // Branchless conditional bump (see `capture_and_update`).
            self.left[node] += inc & u16::from(bit).wrapping_sub(1);
            visits = if bit { visits - c0 } else { c0 };
            node = node * 2 + usize::from(bit);
        }
        self.total += self.increment;
    }

    /// Probability of `symbol` as a fraction (numerator, denominator-log2
    /// scaled): returns the product of per-level conditionals as an `f64`.
    /// Intended for diagnostics and tests, not the coding path.
    pub fn probability(&self, symbol: u8) -> f64 {
        let mut node = 1usize;
        let mut visits = self.total;
        let mut p = 1.0f64;
        for k in (0..self.depth).rev() {
            let bit = (symbol >> k) & 1;
            let c0 = u32::from(self.left[node]);
            let branch = if bit == 0 { c0 } else { visits - c0 };
            if visits == 0 {
                return 0.0;
            }
            p *= f64::from(branch) / f64::from(visits);
            if branch == 0 {
                return 0.0;
            }
            visits = branch;
            node = node * 2 + usize::from(bit);
        }
        p
    }

    /// Verifies the structural invariant `left[i] <= visits(i)` everywhere.
    /// Exposed for tests and debugging.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.check_node(1, self.total)
    }

    fn check_node(&self, node: usize, visits: u32) -> Result<(), String> {
        if node >= self.left.len() {
            return Ok(());
        }
        let c0 = u32::from(self.left[node]);
        if c0 > visits {
            return Err(format!(
                "node {node}: left count {c0} exceeds visits {visits}"
            ));
        }
        self.check_node(node * 2, c0)?;
        self.check_node(node * 2 + 1, visits - c0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinaryDecoder, BinaryEncoder};
    use cbic_bitio::{BitReader, BitWriter};

    fn cfg() -> EstimatorConfig {
        EstimatorConfig::default()
    }

    #[test]
    fn initial_distribution_is_uniform() {
        let t = TreeModel::new(8, cfg());
        assert_eq!(t.total(), 256);
        assert_eq!(t.node_count(), 255);
        for s in [0u8, 1, 127, 128, 200, 255] {
            let p = t.probability(s);
            assert!((p - 1.0 / 256.0).abs() < 1e-12, "p({s}) = {p}");
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn smaller_alphabets_are_uniform_too() {
        for depth in 1..=7 {
            let t = TreeModel::new(depth, cfg());
            let expected = 1.0 / f64::from(1u32 << depth);
            assert!((t.probability(0) - expected).abs() < 1e-12);
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn update_raises_probability() {
        let mut t = TreeModel::new(8, cfg());
        let before = t.probability(42);
        for _ in 0..10 {
            t.update(42);
        }
        let after = t.probability(42);
        assert!(after > before * 5.0, "before {before}, after {after}");
        t.check_invariants().unwrap();
    }

    #[test]
    fn update_preserves_invariants_under_stress() {
        let mut t = TreeModel::new(8, cfg());
        for i in 0u32..20_000 {
            t.update((i.wrapping_mul(2654435761) >> 8) as u8);
        }
        t.check_invariants().unwrap();
        assert!(t.rescales() > 0, "cap must have been hit");
        assert!(t.total() <= cfg().max_total());
    }

    #[test]
    fn rescaling_creates_zero_probability_paths() {
        // Small counter width forces frequent halvings; a symbol seen once
        // must eventually decay to probability zero.
        let cfg = EstimatorConfig {
            count_bits: 10,
            increment: 32,
            ..EstimatorConfig::default()
        };
        let mut t = TreeModel::new(8, cfg);
        t.update(7); // seen once
        assert!(!t.path_has_zero(7));
        for _ in 0..10_000 {
            t.update(200);
        }
        assert!(t.path_has_zero(7), "symbol 7 should have decayed to zero");
        // ...but the hammered symbol keeps a healthy probability.
        assert!(t.probability(200) > 0.9);
        t.check_invariants().unwrap();
    }

    #[test]
    fn no_initial_escapes() {
        let t = TreeModel::new(8, cfg());
        for s in 0..=255u8 {
            assert!(!t.path_has_zero(s));
        }
    }

    #[test]
    fn roundtrip_with_adaptation() {
        let symbols: Vec<u8> = (0..3000u32)
            .map(|i| ((i * i * 31) % 97) as u8) // skewed distribution
            .collect();

        let mut enc_tree = TreeModel::new(8, cfg());
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &s in &symbols {
            assert!(!s_escapes(&enc_tree, s), "test stream should not escape");
            enc_tree.encode_decisions(&mut enc, s);
            enc_tree.update(s);
        }
        let bytes = enc.finish().into_bytes();

        let mut dec_tree = TreeModel::new(8, cfg());
        let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
        for &s in &symbols {
            assert_eq!(dec_tree.decode_decisions(&mut dec), s);
            dec_tree.update(s);
        }
        assert_eq!(enc_tree, dec_tree, "encoder and decoder models must agree");

        fn s_escapes(t: &TreeModel, s: u8) -> bool {
            t.path_has_zero(s)
        }
    }

    #[test]
    fn adaptation_beats_uniform_coding() {
        // A heavily skewed source must cost well under 8 bits/symbol.
        let symbols: Vec<u8> = (0..20_000u32).map(|i| ((i % 10) / 9 * 17) as u8).collect();
        let mut tree = TreeModel::new(8, cfg());
        let mut enc = BinaryEncoder::new(BitWriter::new());
        for &s in &symbols {
            tree.encode_decisions(&mut enc, s);
            tree.update(s);
        }
        let bits = enc.finish().into_bytes().len() * 8;
        let bps = bits as f64 / symbols.len() as f64;
        assert!(bps < 1.0, "skewed source cost {bps} bits/symbol");
    }

    /// A clear maybe-zero bit must guarantee a nonzero path, at every
    /// point of a long adapting run with frequent rescales; and the fused
    /// encode fast path must match the two-step reference bit for bit.
    #[test]
    fn maybe_zero_mask_is_sound_and_fast_encode_matches() {
        let cfg = EstimatorConfig {
            count_bits: 10,
            increment: 32,
            ..EstimatorConfig::default()
        };
        let mut fast = TreeModel::new(8, cfg);
        let mut slow = TreeModel::new(8, cfg);
        let mut fast_enc = BinaryEncoder::new(BitWriter::new());
        let mut slow_enc = BinaryEncoder::new(BitWriter::new());
        let mut fast_hits = 0u32;
        for i in 0..8000u32 {
            let s = (i.wrapping_mul(2654435761) >> 18) as u8;
            // Soundness: a clear bit means the exact probe agrees.
            if !fast.maybe_escapes(s) {
                assert!(!fast.path_has_zero(s), "mask lied about symbol {s}");
            }
            if fast.path_has_zero(s) {
                assert!(fast.maybe_escapes(s), "zero path with clear mask bit");
                fast.update(s);
                slow.update(s);
                continue;
            }
            if fast.maybe_escapes(s) {
                // Stale-maybe: exact walk (reference handles it the same).
                fast.encode_decisions(&mut fast_enc, s);
                fast.update(s);
            } else {
                fast_hits += 1;
                fast.encode_and_update(&mut fast_enc, s);
            }
            slow.encode_decisions(&mut slow_enc, s);
            slow.update(s);
            assert_eq!(fast, slow, "state diverged at step {i}");
        }
        assert!(fast_hits > 0, "fast path never taken");
        assert!(fast.rescales() > 0, "test must cross rescales");
        assert_eq!(
            fast_enc.finish().into_bytes(),
            slow_enc.finish().into_bytes()
        );
    }

    /// The batched single-descent path must be bit- and state-identical to
    /// the historical three-descent sequence, including across rescales
    /// and escapes.
    #[test]
    fn capture_and_update_matches_three_descent_reference() {
        let cfg = EstimatorConfig {
            count_bits: 10, // narrow: forces frequent rescales and escapes
            increment: 32,
            ..EstimatorConfig::default()
        };
        let symbols: Vec<u8> = (0..5000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();

        let mut fast = TreeModel::new(8, cfg);
        let mut slow = TreeModel::new(8, cfg);
        let mut fast_enc = BinaryEncoder::new(BitWriter::new());
        let mut slow_enc = BinaryEncoder::new(BitWriter::new());
        let mut path = DecisionPath::empty();
        for &s in &symbols {
            let fast_escaped = fast.capture_and_update(s, &mut path);
            let slow_escaped = slow.path_has_zero(s);
            assert_eq!(fast_escaped, slow_escaped, "escape disagreement on {s}");
            if !fast_escaped {
                path.replay(&mut fast_enc, s);
                slow.encode_decisions(&mut slow_enc, s);
            }
            slow.update(s);
            assert_eq!(fast, slow, "tree state diverged after {s}");
        }
        assert_eq!(
            fast_enc.finish().into_bytes(),
            slow_enc.finish().into_bytes(),
            "batched path emitted different bits"
        );
    }

    #[test]
    fn decode_and_update_matches_reference() {
        let cfg = EstimatorConfig {
            count_bits: 10,
            increment: 32,
            ..EstimatorConfig::default()
        };
        // Build a stream with the reference encoder (skipping escapes).
        let symbols: Vec<u8> = (0..3000u32).map(|i| ((i * 31) % 256) as u8).collect();
        let mut enc_tree = TreeModel::new(8, cfg);
        let mut enc = BinaryEncoder::new(BitWriter::new());
        let mut coded = Vec::new();
        for &s in &symbols {
            if !enc_tree.path_has_zero(s) {
                enc_tree.encode_decisions(&mut enc, s);
                coded.push(s);
            }
            enc_tree.update(s);
        }
        let bytes = enc.finish().into_bytes();

        // The fused decoder must reproduce the coded symbols; replay the
        // skipped (escaped) updates outside the coder, as SymbolCoder does.
        let mut dec_tree = TreeModel::new(8, cfg);
        let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
        let mut it = coded.iter();
        for &s in &symbols {
            if dec_tree.path_has_zero(s) {
                dec_tree.update(s);
            } else {
                assert_eq!(dec_tree.decode_and_update(&mut dec), *it.next().unwrap());
            }
        }
        assert_eq!(dec_tree, enc_tree, "decoder state diverged");
    }

    /// The capture-time classification must agree with the coder's own
    /// deterministic screening: pushing only the coded levels of a path
    /// into a batch yields the same bytes as replaying every level through
    /// the per-decision entry point, across rescale-heavy adaptation.
    #[test]
    fn classified_batches_match_per_decision_replay() {
        let cfg = EstimatorConfig {
            count_bits: 10,
            increment: 32,
            ..EstimatorConfig::default()
        };
        let mut tree = TreeModel::new(8, cfg);
        let mut batch_enc = BinaryEncoder::new(BitWriter::new());
        let mut replay_enc = BinaryEncoder::new(BitWriter::new());
        let mut path = DecisionPath::empty();
        let mut batch = crate::DecisionBatch::new();
        let mut deterministic_seen = false;
        for i in 0..6000u32 {
            let s = (i.wrapping_mul(2654435761) >> 16) as u8;
            if tree.capture_and_update(s, &mut path) {
                continue;
            }
            deterministic_seen |= path.coded_len() < path.len() as u32;
            batch.clear();
            path.push_onto(&mut batch, s);
            batch_enc.encode_batch(&batch);
            path.replay(&mut replay_enc, s);
        }
        assert!(deterministic_seen, "stream never hit a deterministic level");
        assert!(tree.rescales() > 0, "test must cross rescales");
        assert_eq!(batch_enc.decisions(), replay_enc.decisions());
        assert_eq!(
            batch_enc.finish().into_bytes(),
            replay_enc.finish().into_bytes(),
            "classification or batching changed the stream"
        );
    }

    #[test]
    fn decision_path_replay_layout() {
        let t = TreeModel::new(3, cfg());
        let mut path = DecisionPath::empty();
        assert!(path.is_empty());
        let mut t2 = t.clone();
        assert!(!t2.capture_and_update(0b101, &mut path));
        assert_eq!(path.len(), 3);
    }

    #[test]
    #[should_panic(expected = "outside supported range")]
    fn rejects_insufficient_counter_width() {
        let cfg = EstimatorConfig {
            count_bits: 8,
            ..EstimatorConfig::default()
        };
        let _ = TreeModel::new(8, cfg);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_zero_depth() {
        let _ = TreeModel::new(0, cfg());
    }
}
