//! Regenerates every table and figure of the paper's evaluation section.
//!
//! This is a custom (non-Criterion) bench target so that `cargo bench`
//! reproduces the paper's artifacts directly in its output:
//!
//! * Table 1 — bit-rate comparison of the four codecs on the corpus,
//! * Fig. 4 — average bit rate vs frequency counter width,
//! * Table 2 — device utilization, memory budgets, and throughput,
//! * the DESIGN.md A1–A4 ablations.
//!
//! Size defaults to the paper's 512×512; set `CBIC_BENCH_SIZE` to override
//! (e.g. 128 for a quick smoke run).

fn main() {
    // `cargo bench -- --bench` style filters are not used here; accept and
    // ignore any CLI arguments so `cargo bench` flags don't break us.
    let size: usize = std::env::var("CBIC_BENCH_SIZE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);

    println!("regenerating the paper's evaluation artifacts at {size}x{size}\n");

    let t0 = std::time::Instant::now();
    let rows = cbic_bench::table1_rows(size);
    cbic_bench::print_table1(&rows);
    println!("  [table 1 in {:.1}s]\n", t0.elapsed().as_secs_f64());

    let t0 = std::time::Instant::now();
    let series = cbic_bench::fig4_series(size, &[10, 11, 12, 13, 14, 15, 16]);
    cbic_bench::print_fig4(&series);
    println!("  [fig 4 in {:.1}s]\n", t0.elapsed().as_secs_f64());

    print!("{}", cbic_bench::table2_report());
    println!();

    let t0 = std::time::Instant::now();
    let ablations = cbic_bench::ablation_report(size.min(256));
    cbic_bench::print_ablations(&ablations);
    println!("  [ablations in {:.1}s]", t0.elapsed().as_secs_f64());
}
