//! Criterion micro-benchmarks of the hardware-relevant primitives:
//! the 1 KB LUT divider vs an exact divider, the tree estimator, the raw
//! binary arithmetic coder, the GAP predictor, and corpus generation.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_division(c: &mut Criterion) {
    use cbic_hw::divlut::{exact_div, DivLut};
    let lut = DivLut::new();
    // The exact (sum, count) mix the codec produces.
    let inputs: Vec<(i32, u32)> = (0..4096)
        .map(|i| ((i * 37 % 2047) - 1023, (i % 31 + 1) as u32))
        .collect();

    let mut g = c.benchmark_group("division");
    g.throughput(Throughput::Elements(inputs.len() as u64));
    g.bench_function("lut_1kb", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for &(s, n) in &inputs {
                acc += i64::from(lut.div(black_box(s), black_box(n)));
            }
            acc
        })
    });
    g.bench_function("exact", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for &(s, n) in &inputs {
                acc += i64::from(exact_div(black_box(s), black_box(n)));
            }
            acc
        })
    });
    g.finish();
}

fn bench_tree(c: &mut Criterion) {
    use cbic_arith::{BinaryEncoder, EstimatorConfig, SymbolCoder};
    use cbic_bitio::BitWriter;

    let symbols: Vec<u8> = (0..16_384u32)
        .map(|i| ((i * 2654435761) >> 24) as u8)
        .collect();
    let mut g = c.benchmark_group("estimator");
    g.throughput(Throughput::Elements(symbols.len() as u64));
    g.sample_size(30);
    g.bench_function("encode_symbols_8ctx", |b| {
        b.iter(|| {
            let mut coder = SymbolCoder::new(8, EstimatorConfig::default());
            let mut enc = BinaryEncoder::new(BitWriter::new());
            for (i, &s) in symbols.iter().enumerate() {
                coder.encode(&mut enc, i & 7, s);
            }
            enc.finish().into_bytes()
        })
    });
    g.finish();
}

fn bench_bincoder(c: &mut Criterion) {
    use cbic_arith::BinaryEncoder;
    use cbic_bitio::BitWriter;

    let decisions: Vec<(bool, u32, u32)> = (0..65_536u32)
        .map(|i| ((i * 7) % 11 == 0, (i % 255) + 1, 256))
        .collect();
    let mut g = c.benchmark_group("bincoder");
    g.throughput(Throughput::Elements(decisions.len() as u64));
    g.bench_function("encode_decisions", |b| {
        b.iter(|| {
            let mut enc = BinaryEncoder::new(BitWriter::new());
            for &(bit, c0, total) in &decisions {
                // Skip zero-probability pairs the generator may produce.
                if (bit && c0 < total) || (!bit && c0 > 0) {
                    enc.encode(bit, c0, total);
                }
            }
            enc.finish().into_bytes()
        })
    });
    g.finish();
}

fn bench_predictor(c: &mut Criterion) {
    use cbic_core::neighborhood::Neighborhood;
    use cbic_core::predictor::{gap_predict, Gradients};

    let img = cbic_bench::bench_image(256);
    let mut g = c.benchmark_group("predictor");
    g.throughput(Throughput::Elements((255 * 255) as u64));
    g.bench_function("gap_full_image", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for y in 1..256 {
                for x in 1..255 {
                    let nb = Neighborhood::fetch(&img.view(), x, y);
                    let grad = Gradients::compute(&nb);
                    acc += i64::from(gap_predict(&nb, grad, 8));
                }
            }
            acc
        })
    });
    g.finish();
}

fn bench_corpus(c: &mut Criterion) {
    use cbic_image::corpus::CorpusImage;
    let mut g = c.benchmark_group("corpus");
    g.sample_size(10);
    g.bench_function("generate_lena_256", |b| {
        b.iter(|| CorpusImage::Lena.generate(256, 256))
    });
    g.bench_function("generate_mandrill_256", |b| {
        b.iter(|| CorpusImage::Mandrill.generate(256, 256))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_division,
    bench_tree,
    bench_bincoder,
    bench_predictor,
    bench_corpus
);
criterion_main!(benches);
