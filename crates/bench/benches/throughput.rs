//! Criterion throughput benchmarks: encode/decode speed of every codec in
//! Table 1, plus the universal front ends.
//!
//! The paper's hardware sustains 123 Mbit/s (≈15 Mpixel/s); these benches
//! measure what the software model reaches, and Criterion's reports track
//! regressions as the codecs evolve.

use cbic_core::session::EncoderSession;
use cbic_core::tiles::{compress_tiled, decompress_tiled};
use cbic_image::{DecodeOptions, EncodeOptions, Parallelism};
use cbic_universal::codecs::all_codecs;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const SIZE: usize = 256;

fn bench_encoders(c: &mut Criterion) {
    let img = cbic_bench::bench_image(SIZE);
    let pixels = img.pixel_count() as u64;
    let opts = EncodeOptions::default();

    let mut g = c.benchmark_group("encode");
    g.throughput(Throughput::Elements(pixels));
    g.sample_size(20);

    for codec in all_codecs() {
        g.bench_function(BenchmarkId::new(codec.name(), SIZE), |b| {
            b.iter(|| codec.encode_vec(img.view(), &opts).expect("Vec sink"))
        });
    }
    g.finish();
}

fn bench_decoders(c: &mut Criterion) {
    let img = cbic_bench::bench_image(SIZE);
    let pixels = img.pixel_count() as u64;
    let opts = DecodeOptions::default();

    let mut g = c.benchmark_group("decode");
    g.throughput(Throughput::Elements(pixels));
    g.sample_size(20);

    for codec in all_codecs() {
        let bytes = codec
            .encode_vec(img.view(), &EncodeOptions::default())
            .expect("Vec sink");
        g.bench_function(BenchmarkId::new(codec.name(), SIZE), |b| {
            b.iter(|| codec.decode_vec(&bytes, &opts).expect("own container"))
        });
    }
    g.finish();
}

/// The session-reuse claim, measured: per-call model construction (context
/// store + division LUT + estimator trees allocated per image) vs one
/// [`EncoderSession`] reset in place across the 256px corpus. The bits are
/// identical (asserted by the session differential tests); the delta is
/// pure allocation and table-building overhead.
fn bench_session_reuse(c: &mut Criterion) {
    let cfg = cbic_core::CodecConfig::default();
    let corpus = cbic_image::corpus::generate(SIZE);
    let pixels = corpus.iter().map(|(_, i)| i.pixel_count() as u64).sum();

    let mut g = c.benchmark_group("session_reuse");
    g.throughput(Throughput::Elements(pixels));
    g.sample_size(10);

    g.bench_function(BenchmarkId::new("per_call_construction", SIZE), |b| {
        let mut out = Vec::new();
        b.iter(|| {
            let mut total = 0u64;
            for (_, img) in &corpus {
                out.clear();
                // A fresh session per image = the old per-call cost.
                let stats = EncoderSession::new(&cfg)
                    .encode(img.view(), &mut out)
                    .expect("Vec sink");
                total += stats.payload_bits;
            }
            total
        })
    });
    g.bench_function(BenchmarkId::new("reused_session", SIZE), |b| {
        let mut session = EncoderSession::new(&cfg);
        let mut out = Vec::new();
        b.iter(|| {
            let mut total = 0u64;
            for (_, img) in &corpus {
                out.clear();
                let stats = session.encode(img.view(), &mut out).expect("Vec sink");
                total += stats.payload_bits;
            }
            total
        })
    });
    g.finish();
}

/// Section V's multi-core claim, measured: banded coding on 1 worker vs
/// N workers. The bands are identical bits either way (asserted by the
/// property tests), so the delta is pure scheduling.
fn bench_tiled(c: &mut Criterion) {
    let img = cbic_bench::bench_image(SIZE);
    let pixels = img.pixel_count() as u64;
    let cfg = cbic_core::CodecConfig::default();
    let bands = 4;
    let bytes = compress_tiled(img.view(), &cfg, bands, Parallelism::Auto);

    let hw = std::thread::available_parallelism().map_or(1, usize::from);
    println!("(tiled: {hw} hardware thread(s) available; speedup requires >1)");

    let mut g = c.benchmark_group("tiled");
    g.throughput(Throughput::Elements(pixels));
    g.sample_size(10);

    for (label, par) in [
        ("1thread", Parallelism::Sequential),
        ("4threads", Parallelism::Threads(bands)),
    ] {
        g.bench_function(
            BenchmarkId::new(format!("encode_{bands}band"), label),
            |b| b.iter(|| compress_tiled(img.view(), &cfg, bands, par)),
        );
        g.bench_function(
            BenchmarkId::new(format!("decode_{bands}band"), label),
            |b| b.iter(|| decompress_tiled(&bytes, par).expect("valid container")),
        );
    }
    g.finish();
}

/// The streaming transport vs the buffered one: identical bits (asserted
/// by the differential suite), so any delta is pure transport overhead —
/// the cost of bounded memory.
fn bench_streaming(c: &mut Criterion) {
    use cbic_core::stream::{compress_to, decompress_from};

    let img = cbic_bench::bench_image(SIZE);
    let pixels = img.pixel_count() as u64;
    let cfg = cbic_core::CodecConfig::default();
    let bytes = cbic_core::compress(img.view(), &cfg);

    let mut g = c.benchmark_group("streaming");
    g.throughput(Throughput::Elements(pixels));
    g.sample_size(20);

    g.bench_function(BenchmarkId::new("encode_buffered", SIZE), |b| {
        b.iter(|| cbic_core::compress(img.view(), &cfg))
    });
    g.bench_function(BenchmarkId::new("encode_streaming", SIZE), |b| {
        b.iter(|| compress_to(img.view(), &cfg, Vec::new()).expect("Vec sink"))
    });
    g.bench_function(BenchmarkId::new("decode_buffered", SIZE), |b| {
        b.iter(|| cbic_core::decompress(&bytes).expect("own container"))
    });
    g.bench_function(BenchmarkId::new("decode_streaming", SIZE), |b| {
        b.iter(|| decompress_from(&bytes[..]).expect("own container"))
    });
    g.finish();
}

fn bench_universal(c: &mut Criterion) {
    use cbic_universal::data::{DataModel, Order};

    let text: Vec<u8> = (0..32_768u32)
        .map(|i| b"the quick brown fox jumps over the lazy dog "[i as usize % 44])
        .collect();

    let mut g = c.benchmark_group("universal");
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.sample_size(20);
    for order in [Order::Zero, Order::One, Order::Two] {
        g.bench_function(BenchmarkId::new("data_encode", format!("{order:?}")), |b| {
            let model = DataModel::new(order);
            b.iter(|| model.encode(&text))
        });
    }
    g.finish();

    let frames = cbic_universal::video::synthetic_sequence(128, 128, 4, 2, 1);
    let mut g = c.benchmark_group("video");
    g.throughput(Throughput::Elements((128 * 128 * 4) as u64));
    g.sample_size(10);
    g.bench_function("encode_4_frames", |b| {
        let cfg = cbic_universal::video::VideoConfig::default();
        b.iter(|| cbic_universal::video::encode_frames(&frames, &cfg))
    });
    g.finish();
}

/// The zero-copy claim of the view redesign, measured: `split_bands`
/// hands out borrowed row-range views (no pixels move before coding), vs
/// the pre-redesign behavior of materializing every band as an owned
/// image first. Both variants produce identical bits; the delta is the
/// band copy itself, tracked here so a regression reintroducing the copy
/// shows up in BENCH output.
fn bench_tiled_view_vs_copy(c: &mut Criterion) {
    use cbic_core::tiles::split_bands;

    let img = cbic_bench::bench_image(SIZE);
    let pixels = img.pixel_count() as u64;
    let cfg = cbic_core::CodecConfig::default();
    let bands = 4;

    let mut g = c.benchmark_group("tiled_view_vs_copy");
    g.throughput(Throughput::Elements(pixels));
    g.sample_size(10);

    // The split alone: O(1) per band vs one full pixel copy.
    g.bench_function(BenchmarkId::new("split_views", SIZE), |b| {
        b.iter(|| split_bands(img.view(), bands))
    });
    g.bench_function(BenchmarkId::new("split_copies", SIZE), |b| {
        b.iter(|| {
            split_bands(img.view(), bands)
                .into_iter()
                .map(|band| band.to_image())
                .collect::<Vec<_>>()
        })
    });
    // The full encode path on top of each split.
    g.bench_function(BenchmarkId::new("encode_from_views", SIZE), |b| {
        b.iter(|| {
            split_bands(img.view(), bands)
                .into_iter()
                .map(|band| cbic_core::encode_raw(band, &cfg).0)
                .collect::<Vec<_>>()
        })
    });
    g.bench_function(BenchmarkId::new("encode_from_copies", SIZE), |b| {
        b.iter(|| {
            split_bands(img.view(), bands)
                .into_iter()
                .map(|band| cbic_core::encode_raw(band.to_image().view(), &cfg).0)
                .collect::<Vec<_>>()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_encoders,
    bench_decoders,
    bench_session_reuse,
    bench_tiled,
    bench_tiled_view_vs_copy,
    bench_streaming,
    bench_universal
);
criterion_main!(benches);
