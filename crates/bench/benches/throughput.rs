//! Criterion throughput benchmarks: encode/decode speed of every codec in
//! Table 1, plus the universal front ends.
//!
//! The paper's hardware sustains 123 Mbit/s (≈15 Mpixel/s); these benches
//! measure what the software model reaches, and Criterion's reports track
//! regressions as the codecs evolve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const SIZE: usize = 256;

fn bench_encoders(c: &mut Criterion) {
    let img = cbic_bench::bench_image(SIZE);
    let pixels = img.pixel_count() as u64;

    let mut g = c.benchmark_group("encode");
    g.throughput(Throughput::Elements(pixels));
    g.sample_size(20);

    g.bench_function(BenchmarkId::new("proposed", SIZE), |b| {
        let cfg = cbic_core::CodecConfig::default();
        b.iter(|| cbic_core::encode_raw(&img, &cfg))
    });
    g.bench_function(BenchmarkId::new("calic", SIZE), |b| {
        let cfg = cbic_calic::CalicConfig::default();
        b.iter(|| cbic_calic::encode_raw(&img, &cfg))
    });
    g.bench_function(BenchmarkId::new("jpegls", SIZE), |b| {
        let cfg = cbic_jpegls::JpeglsConfig::default();
        b.iter(|| cbic_jpegls::encode_raw(&img, &cfg))
    });
    g.bench_function(BenchmarkId::new("slp", SIZE), |b| {
        b.iter(|| cbic_slp::encode_raw(&img))
    });
    g.finish();
}

fn bench_decoders(c: &mut Criterion) {
    let img = cbic_bench::bench_image(SIZE);
    let pixels = img.pixel_count() as u64;

    let core_cfg = cbic_core::CodecConfig::default();
    let (core_bytes, _) = cbic_core::encode_raw(&img, &core_cfg);
    let calic_cfg = cbic_calic::CalicConfig::default();
    let (calic_bytes, _) = cbic_calic::encode_raw(&img, &calic_cfg);
    let jpegls_cfg = cbic_jpegls::JpeglsConfig::default();
    let (jpegls_bytes, _) = cbic_jpegls::encode_raw(&img, &jpegls_cfg);
    let (slp_bytes, _) = cbic_slp::encode_raw(&img);

    let mut g = c.benchmark_group("decode");
    g.throughput(Throughput::Elements(pixels));
    g.sample_size(20);

    g.bench_function(BenchmarkId::new("proposed", SIZE), |b| {
        b.iter(|| cbic_core::decode_raw(&core_bytes, SIZE, SIZE, &core_cfg))
    });
    g.bench_function(BenchmarkId::new("calic", SIZE), |b| {
        b.iter(|| cbic_calic::decode_raw(&calic_bytes, SIZE, SIZE, &calic_cfg))
    });
    g.bench_function(BenchmarkId::new("jpegls", SIZE), |b| {
        b.iter(|| cbic_jpegls::decode_raw(&jpegls_bytes, SIZE, SIZE, &jpegls_cfg))
    });
    g.bench_function(BenchmarkId::new("slp", SIZE), |b| {
        b.iter(|| cbic_slp::decode_raw(&slp_bytes, SIZE, SIZE))
    });
    g.finish();
}

fn bench_universal(c: &mut Criterion) {
    use cbic_universal::data::{DataModel, Order};

    let text: Vec<u8> = (0..32_768u32)
        .map(|i| b"the quick brown fox jumps over the lazy dog "[i as usize % 44])
        .collect();

    let mut g = c.benchmark_group("universal");
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.sample_size(20);
    for order in [Order::Zero, Order::One, Order::Two] {
        g.bench_function(BenchmarkId::new("data_encode", format!("{order:?}")), |b| {
            let model = DataModel::new(order);
            b.iter(|| model.encode(&text))
        });
    }
    g.finish();

    let frames = cbic_universal::video::synthetic_sequence(128, 128, 4, 2, 1);
    let mut g = c.benchmark_group("video");
    g.throughput(Throughput::Elements((128 * 128 * 4) as u64));
    g.sample_size(10);
    g.bench_function("encode_4_frames", |b| {
        let cfg = cbic_universal::video::VideoConfig::default();
        b.iter(|| cbic_universal::video::encode_frames(&frames, &cfg))
    });
    g.finish();
}

criterion_group!(benches, bench_encoders, bench_decoders, bench_universal);
criterion_main!(benches);
