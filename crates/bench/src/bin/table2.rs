//! Regenerates the paper's Table 2 (device utilization, memory budgets,
//! and throughput from the pipeline model).

fn main() {
    print!("{}", cbic_bench::table2_report());
}
