//! Regenerates the paper's Fig. 4 (bpp vs frequency counter bits).
//!
//! Usage: `cargo run --release -p cbic-bench --bin fig4 [size]`

fn main() {
    let size = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let series = cbic_bench::fig4_series(size, &[10, 11, 12, 13, 14, 15, 16]);
    cbic_bench::print_fig4(&series);
}
