//! Machine-readable bit-rate + wide-model ablation harness (the
//! compression-trajectory tracker).
//!
//! ```text
//! cargo run --release -p cbic-bench --bin ablate_json -- \
//!     [--json] [--size N] [--out PATH] [--quick] [--check PATH]
//! ```
//!
//! Without `--json`, prints two human-readable tables: payload bpp per
//! codec per corpus class per context-model mode, then the wide-model
//! ablation sweep (window × banks × mixer with measured bank collision
//! and occupancy rates). With `--json`, writes the report document
//! (schema 1: `{schema, size, results, ablation}`) to `--out` (default
//! `BENCH_bpp.json` in the current directory). `--quick` trims the
//! ablation sweep to the wire-default window for CI smoke runs.
//!
//! `--check PATH` turns the run into a regression gate: the document is
//! regenerated (full sweep at the committed file's size) and compared
//! **byte-for-byte** against PATH — every number is deterministic, so
//! any drift means the coding behavior changed and the file must be
//! regenerated and reviewed. The gate also re-asserts the headline
//! claim the committed file carries: the wide model beats CALIC's
//! payload bpp on at least 2 of the 3 corpus classes.

use cbic_bench::bpp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut quick = false;
    let mut size = 256usize;
    let mut out_path = "BENCH_bpp.json".to_string();
    let mut check_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("error: {} needs a value", args[*i - 1]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--json" => json = true,
            "--quick" => quick = true,
            "--size" => {
                size = take(&mut i).parse().unwrap_or_else(|e| {
                    eprintln!("error: bad --size: {e}");
                    std::process::exit(2);
                })
            }
            "--out" => out_path = take(&mut i),
            "--check" => check_path = Some(take(&mut i)),
            other => {
                eprintln!(
                    "error: unknown argument {other}\nusage: ablate_json [--json] [--size N] \
                     [--out PATH] [--quick] [--check PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(path) = check_path {
        check(&path, size);
        return;
    }

    let records = bpp::measure_bpp(size);
    let ablation = bpp::measure_ablation(size, quick);
    let wins = bpp::classes_where_wide_beats_calic(&records);

    if json {
        let doc = bpp::render_report(size, &records, &ablation);
        std::fs::write(&out_path, doc).unwrap_or_else(|e| {
            eprintln!("error: writing {out_path}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "wrote {out_path} ({} bpp cells, {} ablation cells, wide beats calic on {wins}/3 \
             classes)",
            records.len(),
            ablation.len()
        );
        return;
    }

    println!("payload bpp at {size}x{size} (per codec x class x model):");
    println!(
        "  {:<10} {:<10} {:<10} {:>8}",
        "codec", "class", "model", "bpp"
    );
    for r in &records {
        println!(
            "  {:<10} {:<10} {:<10} {:>8.4}",
            r.codec, r.class, r.model, r.bpp
        );
    }
    println!();
    println!(
        "wide-model ablation ({}):",
        if quick { "quick sweep" } else { "full sweep" }
    );
    println!(
        "  {:<10} {:<6} {:>5} {:<5} {:>8} {:>10} {:>10}",
        "class", "window", "banks", "mixer", "bpp", "collision", "occupancy"
    );
    for r in &ablation {
        println!(
            "  {:<10} {:<6} {:>5} {:<5} {:>8.4} {:>10.4} {:>10.4}",
            r.class,
            r.window,
            format!("2^{}", r.banks_log2),
            r.mixer,
            r.bpp,
            r.collision_rate,
            r.occupancy
        );
    }
    println!();
    println!("wide beats calic on {wins}/3 classes");
}

/// The `--check` gate: regenerate the committed document and compare
/// byte-for-byte, then re-assert the wide-beats-CALIC claim.
fn check(path: &str, default_size: usize) {
    let committed = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: reading {path}: {e}");
        std::process::exit(1);
    });
    // Regenerate at the committed document's size so `--check` doesn't
    // need a matching `--size` flag.
    let size = committed
        .lines()
        .find_map(|l| {
            l.trim()
                .strip_prefix("\"size\": ")?
                .trim_end_matches(',')
                .parse()
                .ok()
        })
        .unwrap_or(default_size);
    let records = bpp::measure_bpp(size);
    let ablation = bpp::measure_ablation(size, false);
    let fresh = bpp::render_report(size, &records, &ablation);
    if fresh != committed {
        eprintln!(
            "FAIL: {path} is stale — regenerate with `cargo run --release -p cbic-bench --bin \
             ablate_json -- --json --size {size} --out {path}` and review the diff"
        );
        std::process::exit(1);
    }
    let wins = bpp::classes_where_wide_beats_calic(&records);
    if wins < 2 {
        eprintln!("FAIL: wide model beats calic on only {wins}/3 classes (claim requires >= 2)");
        std::process::exit(1);
    }
    println!("OK: {path} matches a fresh run; wide beats calic on {wins}/3 classes");
}
