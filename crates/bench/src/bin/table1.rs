//! Regenerates the paper's Table 1 on the synthetic corpus.
//!
//! Usage: `cargo run --release -p cbic-bench --bin table1 [size]`

fn main() {
    let size = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let rows = cbic_bench::table1_rows(size);
    cbic_bench::print_table1(&rows);
}
