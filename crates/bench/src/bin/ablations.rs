//! Runs the DESIGN.md A1-A4 ablations on the synthetic corpus.
//!
//! Usage: `cargo run --release -p cbic-bench --bin ablations [size]`

fn main() {
    let size = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let rows = cbic_bench::ablation_report(size);
    cbic_bench::print_ablations(&rows);
}
