//! Machine-readable throughput harness (the perf-trajectory tracker).
//!
//! ```text
//! cargo run --release -p cbic-bench --bin throughput_json -- \
//!     [--json] [--size N] [--out PATH] [--baseline PATH] [--label TEXT] [--quick]
//! ```
//!
//! Without `--json`, prints a human-readable table. With `--json`, writes
//! the report document (schema 1: `{schema, size, label, results,
//! baseline}`) to `--out` (default `BENCH_throughput.json` in the current
//! directory). `--baseline PATH` embeds a previous report's `results`
//! array so the committed file carries its own speed-up reference;
//! `--quick` caps each cell at a handful of iterations for CI smoke runs.

use cbic_bench::perf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut quick = false;
    let mut size = 256usize;
    let mut out_path = "BENCH_throughput.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut label = "current".to_string();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("error: {} needs a value", args[*i - 1]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--json" => json = true,
            "--quick" => quick = true,
            "--size" => {
                size = take(&mut i).parse().unwrap_or_else(|e| {
                    eprintln!("error: bad --size: {e}");
                    std::process::exit(2);
                })
            }
            "--out" => out_path = take(&mut i),
            "--baseline" => baseline_path = Some(take(&mut i)),
            "--label" => label = take(&mut i),
            other => {
                eprintln!(
                    "usage: throughput_json [--json] [--size N] [--out PATH] \
                     [--baseline PATH] [--label TEXT] [--quick] (got {other})"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let (min_secs, max_iters) = if quick { (0.05, 3) } else { (0.4, 40) };
    eprintln!(
        "measuring {size}x{size} corpus ({} classes)...",
        perf::CLASSES.len()
    );
    let records = perf::measure_throughput(size, min_secs, max_iters);
    perf::print_report(&records);

    if json {
        let baseline_doc = baseline_path.map(|p| {
            std::fs::read_to_string(&p).unwrap_or_else(|e| {
                eprintln!("error: reading baseline {p}: {e}");
                std::process::exit(1);
            })
        });
        let baseline = baseline_doc
            .as_deref()
            .and_then(|doc| perf::extract_results(doc).map(|r| ("pre-refactor", r)));
        let report = perf::render_report(size, &label, &records, baseline);
        if let Err(e) = std::fs::write(&out_path, report) {
            eprintln!("error: writing {out_path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {out_path}");
    }
}
