//! Machine-readable throughput harness (the perf-trajectory tracker).
//!
//! ```text
//! cargo run --release -p cbic-bench --bin throughput_json -- \
//!     [--json] [--size N] [--out PATH] [--baseline PATH] [--label TEXT] \
//!     [--lanes L1,L2,...] [--threads T1,T2,...] [--grid WxH] \
//!     [--check PATH] [--quick]
//! ```
//!
//! Without `--json`, prints a human-readable table. With `--json`, writes
//! the report document (schema 1: `{schema, size, label, results,
//! baseline}`) to `--out` (default `BENCH_throughput.json` in the current
//! directory). `--baseline PATH` embeds a previous report's `results`
//! array so the committed file carries its own speed-up reference;
//! `--lanes` sweeps the proposed codec over the given coder-lane counts
//! (default `1,2,4,8`; other codecs always run single-lane); `--threads`
//! additionally measures the v4 tile-grid wavefront path on one
//! `--grid`-sized frame (default 3840x2160, i.e. 4K) once per thread
//! count — the multi-core scaling cells; `--quick` caps each cell at a
//! handful of iterations for CI smoke runs.
//!
//! `--check PATH` turns the run into a regression gate: after measuring,
//! the proposed-codec cells are compared against the `results` array of
//! the committed report at PATH, and the process exits non-zero if any
//! matching cell (same class and lane count) lost more than 25% encode or
//! decode throughput. Cells present on only one side are ignored, so the
//! sweep may widen without breaking the gate.

use cbic_bench::perf;

/// Fraction of baseline throughput a cell may lose before `--check` fails.
/// Generous because CI runners share cores; within-run ratios are stable
/// but absolute MP/s drifts (see `BENCH_*.json` measurement notes).
const CHECK_TOLERANCE: f64 = 0.25;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut quick = false;
    let mut size = 256usize;
    let mut out_path = "BENCH_throughput.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut label = "current".to_string();
    let mut lane_settings = vec![1usize, 2, 4, 8];
    let mut thread_settings: Vec<usize> = Vec::new();
    let mut grid = (3840usize, 2160usize);
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("error: {} needs a value", args[*i - 1]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--json" => json = true,
            "--quick" => quick = true,
            "--size" => {
                size = take(&mut i).parse().unwrap_or_else(|e| {
                    eprintln!("error: bad --size: {e}");
                    std::process::exit(2);
                })
            }
            "--out" => out_path = take(&mut i),
            "--baseline" => baseline_path = Some(take(&mut i)),
            "--check" => check_path = Some(take(&mut i)),
            "--label" => label = take(&mut i),
            "--lanes" => {
                lane_settings = take(&mut i)
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|l| (1..=cbic_core::MAX_LANES).contains(l))
                            .unwrap_or_else(|| {
                                eprintln!(
                                    "error: bad --lanes entry {s:?} (want 1..={})",
                                    cbic_core::MAX_LANES
                                );
                                std::process::exit(2);
                            })
                    })
                    .collect();
                if lane_settings.is_empty() {
                    eprintln!("error: --lanes needs at least one lane count");
                    std::process::exit(2);
                }
            }
            "--threads" => {
                thread_settings = take(&mut i)
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|&t| t >= 1)
                            .unwrap_or_else(|| {
                                eprintln!("error: bad --threads entry {s:?} (want >= 1)");
                                std::process::exit(2);
                            })
                    })
                    .collect();
            }
            "--grid" => {
                let value = take(&mut i);
                grid = value
                    .split_once(['x', 'X'])
                    .and_then(|(w, h)| Some((w.parse().ok()?, h.parse().ok()?)))
                    .filter(|&(w, h)| w >= 1 && h >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("error: bad --grid {value:?} (want WxH)");
                        std::process::exit(2);
                    });
            }
            other => {
                eprintln!(
                    "usage: throughput_json [--json] [--size N] [--out PATH] \
                     [--baseline PATH] [--label TEXT] [--lanes L1,L2,...] \
                     [--threads T1,T2,...] [--grid WxH] [--check PATH] \
                     [--quick] (got {other})"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let (min_secs, max_iters) = if quick { (0.05, 3) } else { (0.4, 40) };
    eprintln!(
        "measuring {size}x{size} corpus ({} classes, lanes {lane_settings:?})...",
        perf::CLASSES.len()
    );
    let mut records = perf::measure_throughput_lanes(size, min_secs, max_iters, &lane_settings);
    if !thread_settings.is_empty() {
        let (gw, gh) = grid;
        eprintln!("measuring {gw}x{gh} v4 tile grid (threads {thread_settings:?})...");
        records.extend(perf::measure_grid_threads(
            gw,
            gh,
            min_secs,
            max_iters.min(if quick { 2 } else { 5 }),
            &thread_settings,
        ));
    }
    perf::print_report(&records);

    if json {
        let baseline_doc = baseline_path.map(|p| {
            std::fs::read_to_string(&p).unwrap_or_else(|e| {
                eprintln!("error: reading baseline {p}: {e}");
                std::process::exit(1);
            })
        });
        let baseline = baseline_doc
            .as_deref()
            .and_then(|doc| perf::extract_results(doc).map(|r| ("pre-refactor", r)));
        let report = perf::render_report(size, &label, &records, baseline);
        if let Err(e) = std::fs::write(&out_path, report) {
            eprintln!("error: writing {out_path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {out_path}");
    }

    if let Some(path) = check_path {
        let doc = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: reading check baseline {path}: {e}");
            std::process::exit(1);
        });
        let baseline_records = perf::parse_records(&doc);
        if baseline_records.is_empty() {
            eprintln!("error: no records parsed from {path}");
            std::process::exit(1);
        }
        let regressions =
            perf::throughput_regressions(&records, &baseline_records, CHECK_TOLERANCE);
        if regressions.is_empty() {
            eprintln!(
                "perf check OK: proposed-codec throughput within {:.0}% of {path}",
                CHECK_TOLERANCE * 100.0
            );
        } else {
            eprintln!("perf check FAILED against {path}:");
            for msg in &regressions {
                eprintln!("  {msg}");
            }
            std::process::exit(1);
        }
    }
}
