//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation section (Section V).
//!
//! | paper artifact | function | binary | bench target |
//! |---|---|---|---|
//! | Table 1 (bit rates) | [`table1_rows`] | `table1` | `--bench tables` |
//! | Fig. 4 (bpp vs counter bits) | [`fig4_series`] | `fig4` | `--bench tables` |
//! | Table 2 (utilization, memory, throughput) | [`table2_report`] | `table2` | `--bench tables` |
//! | Ablations A1–A4 | [`ablation_report`] | `ablations` | `--bench tables` |
//!
//! Numbers are measured on the synthetic corpus (see `cbic-image`), so
//! absolute bit rates differ from the paper; each printer shows the paper's
//! values side by side and the *shape* claims (orderings, deltas,
//! crossovers) are asserted in `tests/` at the workspace root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bpp;
pub mod perf;

use cbic_arith::EstimatorConfig;
use cbic_core::{CodecConfig, DivisionKind};
use cbic_image::corpus::{self, CorpusImage};
use cbic_image::{EncodeOptions, Image};

/// The paper's Table 1, verbatim: (image, JPEG-LS, SLP(M0), CALIC,
/// proposed), in bits per pixel on the original USC-SIPI images.
pub const PAPER_TABLE1: [(&str, f64, f64, f64, f64); 8] = [
    ("barb", 4.86, 4.79, 4.59, 4.68),
    ("boat", 4.25, 4.28, 4.12, 4.18),
    ("goldhill", 4.71, 4.74, 4.61, 4.65),
    ("lena", 4.24, 4.17, 4.09, 4.14),
    ("mandrill", 6.04, 5.99, 5.90, 5.93),
    ("peppers", 4.49, 4.49, 4.35, 4.39),
    ("zelda", 4.01, 3.97, 3.84, 3.90),
    ("average", 4.66, 4.63, 4.50, 4.55),
];

/// The paper's Fig. 4 series (approximate read-off): average bpp at
/// frequency-counter widths 10/12/14/16 bits.
pub const PAPER_FIG4: [(u8, f64); 4] = [(10, 4.68), (12, 4.58), (14, 4.55), (16, 4.58)];

/// One measured row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Image name (or "average").
    pub name: String,
    /// JPEG-LS bits/pixel.
    pub jpegls: f64,
    /// SLP(M0) bits/pixel.
    pub slp: f64,
    /// CALIC bits/pixel.
    pub calic: f64,
    /// Proposed (the paper's codec) bits/pixel.
    pub proposed: f64,
}

/// Encodes one image with every registered codec (`all_codecs`), returning
/// `(name, payload bits/pixel)` pairs in registry order. Sizes are
/// measured through the counting-sink path of
/// [`Codec::payload_bits_per_pixel`](cbic_image::Codec::payload_bits_per_pixel)
/// — one encode pass per codec, no container buffers.
pub fn measure_all(img: &Image) -> Vec<(&'static str, f64)> {
    let opts = EncodeOptions::default();
    cbic_universal::codecs::all_codecs()
        .iter()
        .map(|codec| {
            let bpp = codec
                .payload_bits_per_pixel(img.view(), &opts)
                .expect("counting sinks cannot fail on corpus-sized images");
            (codec.name(), bpp)
        })
        .collect()
}

/// Encodes one image with all four Table 1 codecs, in the paper's column
/// order `(jpegls, slp, calic, proposed)`.
pub fn measure_image(img: &Image) -> (f64, f64, f64, f64) {
    let measured = measure_all(img);
    let get = |name: &str| {
        measured
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("codec {name} missing from registry"))
            .1
    };
    (get("jpegls"), get("slp"), get("calic"), get("proposed"))
}

/// Measures Table 1 on the synthetic corpus at `size`×`size` (the paper
/// uses 512). The final row is the average, as in the paper.
pub fn table1_rows(size: usize) -> Vec<Table1Row> {
    let mut rows: Vec<Table1Row> = corpus::generate(size)
        .into_iter()
        .map(|(c, img)| {
            let (jpegls, slp, calic, proposed) = measure_image(&img);
            Table1Row {
                name: c.name().to_string(),
                jpegls,
                slp,
                calic,
                proposed,
            }
        })
        .collect();
    let n = rows.len() as f64;
    rows.push(Table1Row {
        name: "average".into(),
        jpegls: rows.iter().map(|r| r.jpegls).sum::<f64>() / n,
        slp: rows.iter().map(|r| r.slp).sum::<f64>() / n,
        calic: rows.iter().map(|r| r.calic).sum::<f64>() / n,
        proposed: rows.iter().map(|r| r.proposed).sum::<f64>() / n,
    });
    rows
}

/// Prints Table 1 next to the paper's numbers.
pub fn print_table1(rows: &[Table1Row]) {
    println!("== Table 1: Bit Rates Comparison (bits/pixel) ==");
    println!("   measured on the synthetic corpus | paper values in brackets");
    println!(
        "{:<10} {:>16} {:>16} {:>16} {:>16}",
        "Image", "JPEG-LS", "SLP(M0)", "CALIC", "proposed"
    );
    for row in rows {
        let paper = PAPER_TABLE1.iter().find(|p| p.0 == row.name);
        let fmt = |v: f64, p: Option<f64>| match p {
            Some(p) => format!("{v:>6.2} [{p:4.2}]"),
            None => format!("{v:>6.2}       "),
        };
        println!(
            "{:<10} {:>16} {:>16} {:>16} {:>16}",
            row.name,
            fmt(row.jpegls, paper.map(|p| p.1)),
            fmt(row.slp, paper.map(|p| p.2)),
            fmt(row.calic, paper.map(|p| p.3)),
            fmt(row.proposed, paper.map(|p| p.4)),
        );
    }
}

/// Measures the Fig. 4 sweep: average corpus bpp of the proposed codec for
/// each frequency-counter width.
pub fn fig4_series(size: usize, bits: &[u8]) -> Vec<(u8, f64)> {
    let corpus = corpus::generate(size);
    bits.iter()
        .map(|&b| {
            let cfg = CodecConfig {
                estimator: EstimatorConfig {
                    count_bits: b,
                    ..EstimatorConfig::default()
                },
                ..CodecConfig::default()
            };
            let avg = corpus
                .iter()
                .map(|(_, img)| cbic_core::encode_raw(img.view(), &cfg).1.bits_per_pixel())
                .sum::<f64>()
                / corpus.len() as f64;
            (b, avg)
        })
        .collect()
}

/// Prints the Fig. 4 series next to the paper's curve.
pub fn print_fig4(series: &[(u8, f64)]) {
    println!("== Fig. 4: Average Bit Rate vs Frequency Count Bits ==");
    println!("{:>6} {:>12} {:>12}", "bits", "measured", "paper");
    for &(b, v) in series {
        let paper = PAPER_FIG4
            .iter()
            .find(|(pb, _)| *pb == b)
            .map(|(_, pv)| format!("{pv:.2}"))
            .unwrap_or_else(|| "-".into());
        println!("{b:>6} {v:>12.3} {paper:>12}");
    }
}

/// Regenerates Table 2: resource estimates, memory accounting, and the
/// pipeline-model throughput, next to the paper's figures.
pub fn table2_report() -> String {
    use cbic_hw::memory::{EstimatorMemory, ModelingMemory};
    use cbic_hw::pipeline::{PipelineConfig, PixelTrace};
    use cbic_hw::resources::{table2, PAPER_TABLE2};
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(out, "== Table 2: Device Utilization Summary ==");
    let _ = writeln!(
        out,
        "   analytic model | paper (Xilinx ISE 8.1, Virtex-4) in brackets"
    );
    let _ = writeln!(
        out,
        "{:<24} {:>16} {:>16} {:>16} {:>12} {:>10}",
        "Module", "Slices", "Flip-flops", "4-input LUTs", "IOBs", "GCLK"
    );
    for ((m, e), &(_, ps, pff, plut, piob, pg)) in table2().iter().zip(PAPER_TABLE2.iter()) {
        let _ = writeln!(
            out,
            "{:<24} {:>9} [{:>4}] {:>9} [{:>4}] {:>9} [{:>4}] {:>5} [{:>3}] {:>4} [{:>2}]",
            m.name(),
            e.slices,
            ps,
            e.flip_flops,
            pff,
            e.lut4,
            plut,
            e.iobs,
            piob,
            e.gclk,
            pg
        );
    }

    let modeling = ModelingMemory::default();
    let estimator = EstimatorMemory::default();
    let _ = writeln!(out, "\n-- Memory budget --");
    let _ = writeln!(
        out,
        "modeling memory:   {:>6} bytes = {:.2} KB  [paper: 3.7 KB]",
        modeling.total_bytes(),
        modeling.total_kbytes()
    );
    let _ = writeln!(
        out,
        "  line buffers {} B + context store {} B + division LUT {} B",
        modeling.line_buffer_bytes(),
        modeling.context_store_bytes(),
        modeling.div_lut_bytes
    );
    let _ = writeln!(
        out,
        "estimator memory:  {:>6} bytes = {:.2} KB  [paper: 4 KB]",
        estimator.total_bytes(),
        estimator.total_kbytes()
    );

    let _ = writeln!(out, "\n-- Throughput at the paper's 123 MHz clock --");
    for (label, overlap) in [
        ("conservative (9 dec/px)", false),
        ("overlapped escape (8 dec/px)", true),
    ] {
        let cfg = PipelineConfig {
            overlap_escape: overlap,
            ..PipelineConfig::default()
        };
        let r = cfg.simulate(&PixelTrace::uniform(512, 512, 9));
        let _ = writeln!(
            out,
            "{label:<30} {:.2} cycles/px  {:.1} Mpixel/s  {:.1} Mbit/s  [paper: 123 Mbit/s]",
            r.cycles_per_pixel, r.mpixels_per_sec, r.mbits_per_sec
        );
    }
    out
}

/// One ablation result: configuration label and average corpus bpp.
#[derive(Debug, Clone, PartialEq)]
pub struct Ablation {
    /// Human-readable configuration label.
    pub label: String,
    /// Average bits/pixel over the corpus.
    pub avg_bpp: f64,
}

/// Runs the A1–A4 ablations of `DESIGN.md` on the corpus at `size`.
pub fn ablation_report(size: usize) -> Vec<Ablation> {
    let corpus = corpus::generate(size);
    let avg = |cfg: &CodecConfig| -> f64 {
        corpus
            .iter()
            .map(|(_, img)| cbic_core::encode_raw(img.view(), cfg).1.bits_per_pixel())
            .sum::<f64>()
            / corpus.len() as f64
    };
    let base = CodecConfig::default();
    let mut out = Vec::new();
    let mut push = |label: &str, cfg: CodecConfig| {
        out.push(Ablation {
            label: label.to_string(),
            avg_bpp: avg(&cfg),
        });
    };
    push("baseline (paper operating point)", base);
    push(
        "A1: no aging (frozen context stats)",
        CodecConfig {
            aging: false,
            ..base
        },
    );
    push(
        "A2: exact division (vs 1KB LUT)",
        CodecConfig {
            division: DivisionKind::Exact,
            ..base
        },
    );
    push(
        "A3: no error feedback",
        CodecConfig {
            error_feedback: false,
            ..base
        },
    );
    for bits in [0u8, 2, 4] {
        push(
            &format!("A3: texture bits = {bits} ({} contexts)", 8 << bits),
            CodecConfig {
                texture_bits: bits,
                ..base
            },
        );
    }
    for inc in [1u16, 8, 64] {
        push(
            &format!("A4: estimator increment = {inc}"),
            CodecConfig {
                estimator: EstimatorConfig {
                    increment: inc,
                    ..EstimatorConfig::default()
                },
                ..base
            },
        );
    }
    push(
        "A4: unbiased escape prior (1,1)",
        CodecConfig {
            estimator: EstimatorConfig {
                escape_init: (1, 1),
                ..EstimatorConfig::default()
            },
            ..base
        },
    );
    out
}

/// Prints the ablation table.
pub fn print_ablations(rows: &[Ablation]) {
    println!("== Ablations (average corpus bits/pixel) ==");
    for r in rows {
        println!("{:<44} {:>8.4}", r.label, r.avg_bpp);
    }
}

/// Convenience: the corpus image used by throughput benches.
pub fn bench_image(size: usize) -> Image {
    CorpusImage::Lena.generate(size, size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_eight_rows() {
        let rows = table1_rows(32);
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[7].name, "average");
        for r in &rows {
            assert!(r.jpegls > 0.0 && r.slp > 0.0 && r.calic > 0.0 && r.proposed > 0.0);
        }
    }

    #[test]
    fn fig4_sweep_produces_all_points() {
        let s = fig4_series(32, &[10, 14]);
        assert_eq!(s.len(), 2);
        assert!(s.iter().all(|&(_, v)| v > 0.0 && v < 10.0));
    }

    #[test]
    fn table2_report_mentions_paper_values() {
        let r = table2_report();
        assert!(r.contains("3.7 KB"));
        assert!(r.contains("123 Mbit/s"));
        assert!(r.contains("Arithmetic Coder"));
    }

    #[test]
    fn ablations_cover_design_doc() {
        let rows = ablation_report(24);
        assert!(rows.len() >= 8);
        assert!(rows.iter().any(|r| r.label.contains("no aging")));
        assert!(rows.iter().any(|r| r.label.contains("exact division")));
    }
}
