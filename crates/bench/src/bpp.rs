//! Machine-readable bit-rate harness: payload bpp per codec per corpus
//! class per context-model mode, plus the wide-model ablation sweep
//! (window size × bank count × hash mixer), emitted as JSON so the
//! repository tracks its compression trajectory across PRs
//! (`BENCH_bpp.json` at the repo root).
//!
//! Unlike `BENCH_throughput.json` (wall-clock numbers that drift with
//! the host), every number here is a deterministic function of the
//! codec and the synthetic corpus, so the regression gate compares the
//! regenerated document **byte-for-byte** against the committed one: a
//! mismatch means the coding behavior changed and the file must be
//! regenerated and reviewed, not that a runner was slow.

use cbic_core::bigctx::{
    collision_stats, encode_measure, HashMixer, WideConfig, WideWindow, DEFAULT_BANKS_LOG2,
};
use cbic_core::{CodecConfig, ModelMode};
use cbic_image::{EncodeOptions, Image};

use crate::perf::CLASSES;

/// One measured bit-rate cell: a codec on a corpus class under one
/// context-model mode.
#[derive(Debug, Clone, PartialEq)]
pub struct BppRecord {
    /// Registry codec name.
    pub codec: String,
    /// Corpus class name.
    pub class: String,
    /// Context-model mode (`classic` or `wide:B`).
    pub model: String,
    /// Entropy-coded payload bits per pixel.
    pub bpp: f64,
}

/// One ablation cell: the wide model on a corpus class at one
/// window/banks/mixer combination.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRecord {
    /// Corpus class name.
    pub class: String,
    /// Causal window label (`w8`, `w13`, `w16`).
    pub window: String,
    /// Base-2 logarithm of the hash bank count.
    pub banks_log2: u8,
    /// Hash mixer label (`mult`, `xor`).
    pub mixer: String,
    /// Entropy-coded payload bits per pixel.
    pub bpp: f64,
    /// Fraction of distinct feature keys aliased into a shared bank.
    pub collision_rate: f64,
    /// Fraction of banks touched by at least one key.
    pub occupancy: f64,
}

/// The windows the full ablation sweeps.
pub const ABLATION_WINDOWS: [WideWindow; 3] = [WideWindow::W8, WideWindow::W13, WideWindow::W16];

/// The bank-count exponents the full ablation sweeps. `9` is the
/// classic-equivalent anchor (the bank index degenerates to the 512
/// `(QE, texture)` compound contexts, zero hash bits), `10` the wire
/// default (one hash bit per class, 2× the classic context memory),
/// `11` the 4×-budget ceiling, and `8`/`12` show a truncated texture
/// and a further hash split respectively.
pub const ABLATION_BANKS: [u8; 5] = [8, 9, 10, 11, 12];

/// Measures payload bpp for every registry codec on every corpus class
/// at `size`×`size`, once per context-model mode the codec supports
/// (the wide rows use the wire-default bank count).
pub fn measure_bpp(size: usize) -> Vec<BppRecord> {
    let mut out = Vec::new();
    for class in CLASSES {
        let img: Image = class.generate(size, size);
        for codec in cbic_universal::codecs::all_codecs() {
            for &model in codec.model_modes() {
                let opts = match model {
                    "wide" => EncodeOptions::default().with_model(ModelMode::WideHash {
                        banks_log2: DEFAULT_BANKS_LOG2,
                    }),
                    _ => EncodeOptions::default(),
                };
                let bpp = codec
                    .payload_bits_per_pixel(img.view(), &opts)
                    .expect("corpus image encodes");
                let model = match model {
                    "wide" => format!("wide:{DEFAULT_BANKS_LOG2}"),
                    other => other.to_string(),
                };
                out.push(BppRecord {
                    codec: codec.name().to_string(),
                    class: class.name().to_string(),
                    model,
                    bpp,
                });
            }
        }
    }
    out
}

/// Sweeps the wide model over window × banks × mixer on every corpus
/// class at `size`×`size`, measuring real encodes plus the exact bank
/// collision/occupancy scan. `quick` trims the sweep to the wire-default
/// window and its neighboring bank counts for CI smoke runs.
pub fn measure_ablation(size: usize, quick: bool) -> Vec<AblationRecord> {
    let windows: &[WideWindow] = if quick {
        &[WideWindow::W13]
    } else {
        &ABLATION_WINDOWS
    };
    let banks: &[u8] = if quick { &[10, 11] } else { &ABLATION_BANKS };
    let cfg = CodecConfig::default();
    let mut out = Vec::new();
    for class in CLASSES {
        let img: Image = class.generate(size, size);
        for &window in windows {
            for &banks_log2 in banks {
                for mixer in [HashMixer::MultiplyShift, HashMixer::XorMix] {
                    let wide = WideConfig {
                        window,
                        mixer,
                        banks_log2,
                    };
                    let stats = encode_measure(img.view(), &cfg, wide);
                    let coll = collision_stats(img.view(), wide);
                    out.push(AblationRecord {
                        class: class.name().to_string(),
                        window: window.label().to_string(),
                        banks_log2,
                        mixer: mixer.label().to_string(),
                        bpp: stats.payload_bits as f64 / stats.pixels as f64,
                        collision_rate: coll.collision_rate(),
                        occupancy: coll.occupancy(),
                    });
                }
            }
        }
    }
    out
}

/// Counts the corpus classes where the wide rows beat CALIC's payload
/// bpp — the headline claim `BENCH_bpp.json` commits to (wide wins on at
/// least 2 of the 3 classes at ≤ 4× the classic context memory).
pub fn classes_where_wide_beats_calic(records: &[BppRecord]) -> usize {
    CLASSES
        .iter()
        .filter(|class| {
            let calic = records
                .iter()
                .find(|r| r.codec == "calic" && r.class == class.name());
            let wide = records
                .iter()
                .find(|r| r.codec == "proposed" && r.class == class.name() && r.model != "classic");
            matches!((wide, calic), (Some(w), Some(c)) if w.bpp < c.bpp)
        })
        .count()
}

/// Builds the full `BENCH_bpp.json` document (schema 1). Deterministic:
/// same code + same `size` ⇒ the same bytes, which is what lets the
/// `--check` gate compare documents instead of parsing them.
pub fn render_report(size: usize, records: &[BppRecord], ablation: &[AblationRecord]) -> String {
    let cells: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "    {{\"codec\": \"{}\", \"class\": \"{}\", \"model\": \"{}\", \
                 \"bpp\": {:.4}}}",
                r.codec, r.class, r.model, r.bpp
            )
        })
        .collect();
    let abl: Vec<String> = ablation
        .iter()
        .map(|r| {
            format!(
                "    {{\"class\": \"{}\", \"window\": \"{}\", \"banks_log2\": {}, \
                 \"mixer\": \"{}\", \"bpp\": {:.4}, \"collision_rate\": {:.4}, \
                 \"occupancy\": {:.4}}}",
                r.class, r.window, r.banks_log2, r.mixer, r.bpp, r.collision_rate, r.occupancy
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": 1,\n  \"size\": {size},\n  \"results\": [\n{}\n  ],\n  \
         \"ablation\": [\n{}\n  ]\n}}\n",
        cells.join(",\n"),
        abl.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_deterministic_and_carries_every_cell() {
        let records = measure_bpp(32);
        let ablation = measure_ablation(32, true);
        // Every codec appears per class, once per model mode it supports.
        let modes: usize = cbic_universal::codecs::all_codecs()
            .iter()
            .map(|c| c.model_modes().len())
            .sum();
        assert_eq!(records.len(), CLASSES.len() * modes);
        assert_eq!(ablation.len(), CLASSES.len() * 2 * 2);
        let a = render_report(32, &records, &ablation);
        let b = render_report(32, &measure_bpp(32), &measure_ablation(32, true));
        assert_eq!(a, b);
        assert!(a.contains("\"model\": \"classic\""));
        assert!(a.contains(&format!("\"model\": \"wide:{DEFAULT_BANKS_LOG2}\"")));
        assert!(a.contains("\"collision_rate\""));
    }

    #[test]
    fn full_sweep_covers_every_combination() {
        let ablation = measure_ablation(16, false);
        assert_eq!(
            ablation.len(),
            CLASSES.len() * ABLATION_WINDOWS.len() * ABLATION_BANKS.len() * 2
        );
    }
}
