//! Machine-readable throughput harness: encode/decode megapixels per
//! second and bits per pixel, per codec per corpus class, emitted as JSON
//! so the repository can track its performance trajectory across PRs
//! (`BENCH_throughput.json` at the repo root).
//!
//! Unlike the Criterion benches (which produce statistical reports for
//! humans), this harness produces one small, diffable document: a flat
//! array of [`ThroughputRecord`]s plus an optional embedded baseline from
//! a previous run, so a "1.2× faster than the pre-refactor harness" claim
//! is a number in the committed file rather than a sentence in a PR
//! description.

use cbic_image::corpus::CorpusImage;
use cbic_image::{DecodeOptions, EncodeOptions, Image};
use std::time::Instant;

/// The corpus classes the harness measures: a smooth portrait stand-in,
/// an oriented texture, and a high-frequency one — the same panel the
/// golden fixtures pin.
pub const CLASSES: [CorpusImage; 3] = [CorpusImage::Lena, CorpusImage::Barb, CorpusImage::Mandrill];

/// One measured cell: a codec on a corpus class at a lane setting.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRecord {
    /// Registry codec name.
    pub codec: String,
    /// Corpus class name.
    pub class: String,
    /// Interleaved coder lanes (1 = the classic single-coder stream; only
    /// lane-aware codecs are measured above 1).
    pub lanes: usize,
    /// Worker threads driving the tile-grid wavefront (1 = sequential;
    /// only the v4 grid cells are measured above 1).
    pub threads: usize,
    /// Encode throughput in megapixels per second.
    pub encode_mps: f64,
    /// Decode throughput in megapixels per second.
    pub decode_mps: f64,
    /// Compressed container size in bits per pixel.
    pub bpp: f64,
    /// Total model decisions per pixel (escape + tree levels; the static
    /// ceiling is 9 for 8-bit sources). Proposed-codec cells only.
    pub decisions_per_px: Option<f64>,
    /// Fraction of decisions that were deterministic (zero-count branches
    /// retired without touching the coder). Proposed-codec cells only.
    pub deterministic_fraction: Option<f64>,
    /// Wall time of the *model* stage (prediction, contexts, tree descents
    /// into a null encoder) in nanoseconds per pixel. Proposed cells only.
    pub model_ns_px: Option<f64>,
    /// Encode time minus the model stage — the arithmetic coder's share —
    /// in nanoseconds per pixel (clamped at zero). Proposed cells only.
    pub coder_ns_px: Option<f64>,
}

/// Times `f` until at least `min_secs` of wall clock or `max_iters`
/// repetitions have elapsed (after one warm-up call), returning the
/// **fastest** single iteration in seconds.
///
/// The minimum — not the mean — is the estimator of choice on shared or
/// single-core hosts: background load only ever adds time, so the
/// fastest observed run is the closest sample to the codec's true cost,
/// and the number it yields is reproducible across runs where a mean
/// would wobble with the machine's load average.
fn time_per_iter<F: FnMut()>(mut f: F, min_secs: f64, max_iters: u32) -> f64 {
    f(); // warm-up: page in tables, touch the allocator
    let start = Instant::now();
    let mut best = f64::MAX;
    let mut iters = 0u32;
    while iters < max_iters.max(1) && (iters == 0 || start.elapsed().as_secs_f64() < min_secs) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
        iters += 1;
    }
    best
}

/// Measures every registry codec on every corpus class at `size`×`size`.
///
/// `min_secs`/`max_iters` bound each cell's measurement loop; the defaults
/// used by the `throughput_json` binary (0.4 s, 40 iters) keep a full run
/// under a minute on one core while averaging enough iterations to be
/// stable.
pub fn measure_throughput(size: usize, min_secs: f64, max_iters: u32) -> Vec<ThroughputRecord> {
    measure_throughput_lanes(size, min_secs, max_iters, &[1])
}

/// [`measure_throughput`] with a lane sweep: the lane-aware `proposed`
/// codec is measured once per entry of `lane_settings`, every other codec
/// once (at one lane — they have no lane knob).
pub fn measure_throughput_lanes(
    size: usize,
    min_secs: f64,
    max_iters: u32,
    lane_settings: &[usize],
) -> Vec<ThroughputRecord> {
    let dec_opts = DecodeOptions::default();
    let mut out = Vec::new();
    for class in CLASSES {
        let img: Image = class.generate(size, size);
        let pixels = img.pixel_count() as f64;
        // One model-only pass per class: the decision statistics and the
        // model stage's share of encode time for the proposed-codec rows.
        // Decisions depend only on the pixels and the model, never on the
        // lane count, so a single pass covers the whole lane sweep.
        let model_cfg = cbic_core::CodecConfig::default();
        let model_stats = cbic_core::encode_model_only(img.view(), &model_cfg);
        let model_secs = time_per_iter(
            || {
                std::hint::black_box(cbic_core::encode_model_only(img.view(), &model_cfg));
            },
            min_secs,
            max_iters,
        );
        for codec in cbic_universal::codecs::all_codecs() {
            let settings: &[usize] = if codec.name() == "proposed" {
                lane_settings
            } else {
                &[1]
            };
            for &lanes in settings {
                let enc_opts = EncodeOptions::default().with_lanes(lanes);
                let bytes = codec
                    .encode_vec(img.view(), &enc_opts)
                    .expect("Vec sink cannot fail");
                let bpp = bytes.len() as f64 * 8.0 / pixels;
                let enc_secs = time_per_iter(
                    || {
                        std::hint::black_box(
                            codec
                                .encode_vec(img.view(), &enc_opts)
                                .expect("Vec sink cannot fail"),
                        );
                    },
                    min_secs,
                    max_iters,
                );
                let dec_secs = time_per_iter(
                    || {
                        std::hint::black_box(
                            codec
                                .decode_vec(&bytes, &dec_opts)
                                .expect("own container decodes"),
                        );
                    },
                    min_secs,
                    max_iters,
                );
                let proposed = codec.name() == "proposed";
                out.push(ThroughputRecord {
                    codec: codec.name().to_string(),
                    class: class.name().to_string(),
                    lanes,
                    threads: 1,
                    encode_mps: pixels / enc_secs / 1e6,
                    decode_mps: pixels / dec_secs / 1e6,
                    bpp,
                    decisions_per_px: proposed.then(|| model_stats.decisions_per_pixel()),
                    deterministic_fraction: proposed.then(|| model_stats.deterministic_fraction()),
                    model_ns_px: proposed.then(|| model_secs * 1e9 / pixels),
                    coder_ns_px: proposed.then(|| (enc_secs - model_secs).max(0.0) * 1e9 / pixels),
                });
            }
        }
    }
    out
}

/// Measures the proposed codec's v4 tile-grid path (256×256 tiles,
/// wavefront scheduler) on one `width`×`height` Lena frame, once per
/// entry of `thread_settings` — the multi-core scaling cells.
///
/// The class name carries the geometry (`lena_3840x2160_grid`) so these
/// rows never collide with the flat `size`×`size` cells in the regression
/// gate's `(codec, class, lanes, threads)` key. On a single-core host the
/// `threads > 1` rows measure scheduler overhead rather than speedup;
/// commit them anyway — the trajectory file is for honest numbers.
pub fn measure_grid_threads(
    width: usize,
    height: usize,
    min_secs: f64,
    max_iters: u32,
    thread_settings: &[usize],
) -> Vec<ThroughputRecord> {
    use cbic_core::{compress_grid, decompress_grid, CodecConfig, TileGeometry};
    use cbic_image::Parallelism;

    let img: Image = CorpusImage::Lena.generate(width, height);
    let pixels = img.pixel_count() as f64;
    let cfg = CodecConfig::default();
    let geom = TileGeometry::default();
    let class = format!("lena_{width}x{height}_grid");
    let mut out = Vec::new();
    for &threads in thread_settings {
        let par = Parallelism::from_threads(threads);
        let bytes = compress_grid(img.view(), &cfg, geom, 1, par);
        let bpp = bytes.len() as f64 * 8.0 / pixels;
        let enc_secs = time_per_iter(
            || {
                std::hint::black_box(compress_grid(img.view(), &cfg, geom, 1, par));
            },
            min_secs,
            max_iters,
        );
        let dec_secs = time_per_iter(
            || {
                std::hint::black_box(decompress_grid(&bytes, par).expect("own container decodes"));
            },
            min_secs,
            max_iters,
        );
        out.push(ThroughputRecord {
            codec: "proposed".to_string(),
            class: class.clone(),
            lanes: 1,
            threads,
            encode_mps: pixels / enc_secs / 1e6,
            decode_mps: pixels / dec_secs / 1e6,
            bpp,
            // Grid cells time the scheduler, not the coder stages.
            decisions_per_px: None,
            deterministic_fraction: None,
            model_ns_px: None,
            coder_ns_px: None,
        });
    }
    out
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Serializes records as a JSON array (two-space indent, trailing
/// newline-free) — the `results` value of the document built by
/// [`render_report`].
pub fn records_to_json(records: &[ThroughputRecord]) -> String {
    let cells: Vec<String> = records
        .iter()
        .map(|r| {
            let mut cell = format!(
                "    {{\"codec\": \"{}\", \"class\": \"{}\", \"lanes\": {}, \"threads\": {}, \
                 \"encode_mps\": {:.3}, \"decode_mps\": {:.3}, \"bpp\": {:.4}",
                json_escape(&r.codec),
                json_escape(&r.class),
                r.lanes,
                r.threads,
                r.encode_mps,
                r.decode_mps,
                r.bpp
            );
            // Stage fields (schema 2) appear only on the cells that carry
            // them, so pre-fast-path reports stay parseable as baselines.
            for (key, value) in [
                ("decisions_per_px", r.decisions_per_px),
                ("deterministic_fraction", r.deterministic_fraction),
                ("model_ns_px", r.model_ns_px),
                ("coder_ns_px", r.coder_ns_px),
            ] {
                if let Some(v) = value {
                    cell.push_str(&format!(", \"{key}\": {v:.4}"));
                }
            }
            cell.push('}');
            cell
        })
        .collect();
    format!("[\n{}\n  ]", cells.join(",\n"))
}

/// Builds the full `BENCH_throughput.json` document. `baseline` embeds a
/// previous run's `results` array verbatim (extracted with
/// [`extract_results`]) so speed-up ratios are computable from the one
/// committed file.
pub fn render_report(
    size: usize,
    label: &str,
    records: &[ThroughputRecord],
    baseline: Option<(&str, &str)>,
) -> String {
    let baseline_json = match baseline {
        Some((blabel, bresults)) => format!(
            "{{\n    \"label\": \"{}\",\n    \"results\": {}\n  }}",
            json_escape(blabel),
            bresults.trim()
        ),
        None => "null".to_string(),
    };
    format!(
        "{{\n  \"schema\": 2,\n  \"size\": {size},\n  \"label\": \"{}\",\n  \
         \"results\": {},\n  \"baseline\": {}\n}}\n",
        json_escape(label),
        records_to_json(records),
        baseline_json
    )
}

/// Pulls the `"results": [...]` array out of a previously rendered report
/// (or a bare array), for embedding as the next report's baseline. Returns
/// `None` when no array can be found.
pub fn extract_results(report: &str) -> Option<&str> {
    let tail = match report.find("\"results\":") {
        Some(key) => &report[key + "\"results\":".len()..],
        None => report,
    };
    let start = tail.find('[')?;
    let mut depth = 0usize;
    for (i, b) in tail.as_bytes().iter().enumerate().skip(start) {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&tail[start..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Parses the record objects out of a `results` array previously rendered
/// by [`records_to_json`] (or a whole report — the first array wins).
/// Objects missing a `lanes` key (pre-lane reports) default to one lane,
/// and likewise a missing `threads` key (pre-grid reports) defaults to
/// one thread; the schema-2 stage fields (`decisions_per_px`,
/// `deterministic_fraction`, `model_ns_px`, `coder_ns_px`) parse as `None`
/// when absent; objects missing any other key are skipped. The parser only
/// understands the flat one-object-per-cell shape this module itself
/// emits.
pub fn parse_records(json: &str) -> Vec<ThroughputRecord> {
    let array = extract_results(json).unwrap_or(json);
    let field = |obj: &str, key: &str| -> Option<String> {
        let pos = obj.find(&format!("\"{key}\":"))?;
        let rest = obj[pos..].split_once(':')?.1.trim_start();
        let value = if let Some(stripped) = rest.strip_prefix('"') {
            stripped.split_once('"')?.0.to_string()
        } else {
            rest.split([',', '}']).next()?.trim().to_string()
        };
        Some(value)
    };
    let mut out = Vec::new();
    for obj in array.split('{').skip(1) {
        let Some(obj) = obj.split('}').next() else {
            continue;
        };
        let parsed = (|| -> Option<ThroughputRecord> {
            Some(ThroughputRecord {
                codec: field(obj, "codec")?,
                class: field(obj, "class")?,
                lanes: field(obj, "lanes").map_or(Some(1), |v| v.parse().ok())?,
                threads: field(obj, "threads").map_or(Some(1), |v| v.parse().ok())?,
                encode_mps: field(obj, "encode_mps")?.parse().ok()?,
                decode_mps: field(obj, "decode_mps")?.parse().ok()?,
                bpp: field(obj, "bpp")?.parse().ok()?,
                decisions_per_px: field(obj, "decisions_per_px").and_then(|v| v.parse().ok()),
                deterministic_fraction: field(obj, "deterministic_fraction")
                    .and_then(|v| v.parse().ok()),
                model_ns_px: field(obj, "model_ns_px").and_then(|v| v.parse().ok()),
                coder_ns_px: field(obj, "coder_ns_px").and_then(|v| v.parse().ok()),
            })
        })();
        if let Some(r) = parsed {
            out.push(r);
        }
    }
    out
}

/// Compares the `proposed`-codec rows of `current` against `baseline`,
/// returning one message per cell whose encode or decode throughput fell
/// below `1 - tolerance` of the baseline value (cells only present on one
/// side are ignored — a lane sweep may widen between runs). When both
/// sides carry the schema-2 stage fields, those are gated too: more
/// decisions per pixel or a smaller deterministic fraction beyond the same
/// tolerance are regressions; the model/coder stage times gate at twice
/// the tolerance because they are noisier sub-measurements. An empty
/// result means no regression beyond the tolerance.
pub fn throughput_regressions(
    current: &[ThroughputRecord],
    baseline: &[ThroughputRecord],
    tolerance: f64,
) -> Vec<String> {
    let mut out = Vec::new();
    for cur in current.iter().filter(|r| r.codec == "proposed") {
        let Some(base) = baseline.iter().find(|b| {
            b.codec == cur.codec
                && b.class == cur.class
                && b.lanes == cur.lanes
                && b.threads == cur.threads
        }) else {
            continue;
        };
        let floor_enc = base.encode_mps * (1.0 - tolerance);
        let floor_dec = base.decode_mps * (1.0 - tolerance);
        if cur.encode_mps < floor_enc {
            out.push(format!(
                "{}/{} lanes={} threads={}: encode {:.3} MP/s < {:.3} ({:.1}% below baseline {:.3})",
                cur.codec,
                cur.class,
                cur.lanes,
                cur.threads,
                cur.encode_mps,
                floor_enc,
                (1.0 - cur.encode_mps / base.encode_mps) * 100.0,
                base.encode_mps
            ));
        }
        if cur.decode_mps < floor_dec {
            out.push(format!(
                "{}/{} lanes={} threads={}: decode {:.3} MP/s < {:.3} ({:.1}% below baseline {:.3})",
                cur.codec,
                cur.class,
                cur.lanes,
                cur.threads,
                cur.decode_mps,
                floor_dec,
                (1.0 - cur.decode_mps / base.decode_mps) * 100.0,
                base.decode_mps
            ));
        }
        let cell = format!(
            "{}/{} lanes={} threads={}",
            cur.codec, cur.class, cur.lanes, cur.threads
        );
        // Lower-is-better stage fields: ceiling at 1 + tolerance.
        // `decisions_per_px` is an exact count and gets the base tolerance;
        // the stage times are wall-clock sub-measurements (and coder ns is
        // the *difference* of two timed passes, which amplifies relative
        // noise), so they gate at twice the tolerance.
        for (name, cur_v, base_v, tol) in [
            (
                "decisions_per_px",
                cur.decisions_per_px,
                base.decisions_per_px,
                tolerance,
            ),
            (
                "model_ns_px",
                cur.model_ns_px,
                base.model_ns_px,
                2.0 * tolerance,
            ),
            (
                "coder_ns_px",
                cur.coder_ns_px,
                base.coder_ns_px,
                2.0 * tolerance,
            ),
        ] {
            if let (Some(c), Some(b)) = (cur_v, base_v) {
                if c > b * (1.0 + tol) {
                    out.push(format!(
                        "{cell}: {name} {c:.4} > {:.4} (baseline {b:.4})",
                        b * (1.0 + tol)
                    ));
                }
            }
        }
        // Higher-is-better: losing deterministic coverage means the fast
        // path is retiring fewer decisions for free.
        if let (Some(c), Some(b)) = (cur.deterministic_fraction, base.deterministic_fraction) {
            if c < b * (1.0 - tolerance) {
                out.push(format!(
                    "{cell}: deterministic_fraction {c:.4} < {:.4} (baseline {b:.4})",
                    b * (1.0 - tolerance)
                ));
            }
        }
    }
    out
}

/// Prints the human-readable table (the non-`--json` mode). Stage columns
/// (deterministic fraction, model/coder ns per pixel) print only on the
/// cells that carry them.
pub fn print_report(records: &[ThroughputRecord]) {
    println!(
        "{:<10} {:<20} {:>5} {:>7} {:>12} {:>12} {:>8} {:>7} {:>9} {:>9}",
        "codec",
        "class",
        "lanes",
        "threads",
        "enc MP/s",
        "dec MP/s",
        "bpp",
        "det",
        "model ns",
        "coder ns"
    );
    let opt =
        |v: Option<f64>, prec: usize| v.map_or_else(|| "-".to_string(), |v| format!("{v:.prec$}"));
    for r in records {
        println!(
            "{:<10} {:<20} {:>5} {:>7} {:>12.3} {:>12.3} {:>8.4} {:>7} {:>9} {:>9}",
            r.codec,
            r.class,
            r.lanes,
            r.threads,
            r.encode_mps,
            r.decode_mps,
            r.bpp,
            opt(r.deterministic_fraction, 3),
            opt(r.model_ns_px, 1),
            opt(r.coder_ns_px, 1),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(codec: &str, mps: f64) -> ThroughputRecord {
        ThroughputRecord {
            codec: codec.into(),
            class: "lena".into(),
            lanes: 1,
            threads: 1,
            encode_mps: mps,
            decode_mps: mps / 2.0,
            bpp: 4.5,
            decisions_per_px: None,
            deterministic_fraction: None,
            model_ns_px: None,
            coder_ns_px: None,
        }
    }

    fn staged(mps: f64, dpx: f64, det: f64, model: f64, coder: f64) -> ThroughputRecord {
        ThroughputRecord {
            decisions_per_px: Some(dpx),
            deterministic_fraction: Some(det),
            model_ns_px: Some(model),
            coder_ns_px: Some(coder),
            ..record("proposed", mps)
        }
    }

    #[test]
    fn report_is_wellformed_and_embeds_baseline() {
        let records = vec![record("proposed", 3.25), record("calic", 1.5)];
        let first = render_report(64, "seed", &records, None);
        assert!(first.contains("\"schema\": 2"));
        assert!(first.contains("\"baseline\": null"));
        let baseline = extract_results(&first).expect("results array present");
        assert!(baseline.starts_with('[') && baseline.ends_with(']'));
        assert!(baseline.contains("\"proposed\""));
        let second = render_report(64, "engine", &records, Some(("seed", baseline)));
        assert!(second.contains("\"label\": \"seed\""));
        // The embedded baseline array must itself be re-extractable — the
        // *outer* results come first, the baseline's array second.
        assert_eq!(extract_results(&second), Some(baseline));
    }

    #[test]
    fn extract_results_rejects_garbage() {
        assert_eq!(extract_results("no array here"), None);
        assert_eq!(extract_results("\"results\": ["), None, "unclosed array");
    }

    #[test]
    fn measure_runs_on_a_tiny_corpus() {
        let records = measure_throughput(16, 0.0, 1);
        // Every registry codec on every class, all throughputs positive.
        assert_eq!(
            records.len(),
            CLASSES.len() * cbic_universal::codecs::all_codecs().len()
        );
        for r in &records {
            assert!(
                r.encode_mps > 0.0 && r.decode_mps > 0.0 && r.bpp > 0.0,
                "{r:?}"
            );
            assert_eq!(r.lanes, 1);
            // Stage statistics ride only on the proposed-codec cells.
            if r.codec == "proposed" {
                let dpx = r.decisions_per_px.expect("proposed carries decisions");
                assert!((8.0..=10.0).contains(&dpx), "{dpx} decisions/px");
                let det = r.deterministic_fraction.expect("proposed carries det");
                assert!((0.0..1.0).contains(&det), "{det}");
                assert!(r.model_ns_px.unwrap() > 0.0);
                assert!(r.coder_ns_px.unwrap() >= 0.0);
            } else {
                assert_eq!(r.decisions_per_px, None, "{r:?}");
                assert_eq!(r.coder_ns_px, None, "{r:?}");
            }
        }
    }

    #[test]
    fn lane_sweep_multiplies_only_the_proposed_rows() {
        let records = measure_throughput_lanes(16, 0.0, 1, &[1, 2]);
        let proposed = records.iter().filter(|r| r.codec == "proposed").count();
        let others = records.iter().filter(|r| r.codec != "proposed").count();
        assert_eq!(proposed, CLASSES.len() * 2);
        assert_eq!(
            others,
            CLASSES.len() * (cbic_universal::codecs::all_codecs().len() - 1)
        );
        assert!(records
            .iter()
            .any(|r| r.codec == "proposed" && r.lanes == 2));
    }

    #[test]
    fn records_roundtrip_through_json() {
        let records = vec![
            ThroughputRecord {
                lanes: 4,
                ..record("proposed", 10.0)
            },
            record("slp", 20.0),
        ];
        let report = render_report(64, "x", &records, None);
        let parsed = parse_records(&report);
        assert_eq!(parsed, records);
    }

    #[test]
    fn stage_fields_roundtrip_through_json() {
        // Values chosen exactly representable at the 4-decimal precision
        // the serializer emits, so PartialEq holds after the roundtrip.
        let records = vec![staged(10.0, 9.0, 0.125, 80.5, 210.25), record("slp", 20.0)];
        let json = records_to_json(&records);
        assert!(
            json.contains("\"deterministic_fraction\": 0.1250"),
            "{json}"
        );
        assert!(!json.split(",\n").nth(1).unwrap().contains("model_ns_px"));
        assert_eq!(parse_records(&json), records);
    }

    #[test]
    fn parser_defaults_missing_lanes_and_threads_to_one() {
        let legacy = r#"[
    {"codec": "proposed", "class": "lena", "encode_mps": 6.612, "decode_mps": 6.215, "bpp": 4.7}
  ]"#;
        let parsed = parse_records(legacy);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].lanes, 1);
        assert_eq!(parsed[0].threads, 1);
        assert_eq!(parsed[0].encode_mps, 6.612);
    }

    #[test]
    fn grid_cells_carry_their_thread_count_and_a_geometry_class() {
        let records = measure_grid_threads(48, 32, 0.0, 1, &[1, 2]);
        assert_eq!(records.len(), 2);
        for (r, threads) in records.iter().zip([1usize, 2]) {
            assert_eq!(r.codec, "proposed");
            assert_eq!(r.class, "lena_48x32_grid");
            assert_eq!((r.lanes, r.threads), (1, threads));
            assert!(
                r.encode_mps > 0.0 && r.decode_mps > 0.0 && r.bpp > 0.0,
                "{r:?}"
            );
        }
        // Thread count must not change the bytes, so bpp is identical.
        assert_eq!(records[0].bpp, records[1].bpp);
        // And the cells survive a JSON roundtrip with threads intact
        // (throughputs are rounded by the serializer, so compare keys).
        let parsed = parse_records(&records_to_json(&records));
        let keys = |rs: &[ThroughputRecord]| -> Vec<(String, String, usize, usize)> {
            rs.iter()
                .map(|r| (r.codec.clone(), r.class.clone(), r.lanes, r.threads))
                .collect()
        };
        assert_eq!(keys(&parsed), keys(&records));
    }

    #[test]
    fn regression_check_keys_on_threads() {
        let base = vec![ThroughputRecord {
            threads: 2,
            ..record("proposed", 10.0)
        }];
        // Same cell, too slow: flagged, and the message names the threads.
        let bad = vec![ThroughputRecord {
            threads: 2,
            ..record("proposed", 5.0)
        }];
        let msgs = throughput_regressions(&bad, &base, 0.25);
        assert_eq!(msgs.len(), 2);
        assert!(msgs[0].contains("threads=2"), "{msgs:?}");
        // A threads=1 cell does not match the threads=2 baseline.
        let other = vec![record("proposed", 5.0)];
        assert!(throughput_regressions(&other, &base, 0.25).is_empty());
    }

    #[test]
    fn stage_gates_flag_decision_and_timing_regressions() {
        let base = vec![staged(10.0, 9.0, 0.20, 80.0, 200.0)];
        // All stage stats within tolerance: clean. Stage times get twice
        // the tolerance (they are noisier sub-measurements), so 1.4x the
        // baseline model time still passes at 0.25.
        let ok = vec![staged(9.5, 9.0, 0.18, 112.0, 280.0)];
        assert!(throughput_regressions(&ok, &base, 0.25).is_empty());
        // More decisions, slower stages, collapsed deterministic share:
        // each gate fires once.
        let bad = vec![staged(9.5, 12.0, 0.05, 130.0, 310.0)];
        let msgs = throughput_regressions(&bad, &base, 0.25);
        assert_eq!(msgs.len(), 4, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("decisions_per_px")));
        assert!(msgs.iter().any(|m| m.contains("deterministic_fraction")));
        assert!(msgs.iter().any(|m| m.contains("model_ns_px")));
        assert!(msgs.iter().any(|m| m.contains("coder_ns_px")));
        // A pre-schema-2 baseline (no stage fields) gates throughput only.
        let legacy = vec![record("proposed", 10.0)];
        assert!(throughput_regressions(&bad, &legacy, 0.25).is_empty());
    }

    #[test]
    fn regression_check_flags_only_real_regressions() {
        let base = vec![record("proposed", 10.0), record("slp", 20.0)];
        // Within tolerance: no findings.
        let ok = vec![record("proposed", 8.0), record("slp", 1.0)];
        assert!(throughput_regressions(&ok, &base, 0.25).is_empty());
        // Beyond tolerance on encode: one finding naming the cell. A
        // non-proposed collapse stays ignored (only the paper codec is
        // gated).
        let bad = vec![record("proposed", 7.0), record("slp", 1.0)];
        let msgs = throughput_regressions(&bad, &base, 0.25);
        assert_eq!(msgs.len(), 2, "encode and decode both fell: {msgs:?}");
        assert!(msgs[0].contains("proposed/lena"));
        // Cells only in the current run (wider sweep) are ignored.
        let wider = vec![ThroughputRecord {
            lanes: 8,
            ..record("proposed", 0.1)
        }];
        assert!(throughput_regressions(&wider, &base, 0.25).is_empty());
    }
}
