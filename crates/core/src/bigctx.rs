//! Enlarged hash-banked context modeling — the `WideHash` model mode.
//!
//! The paper's compound context is formed from a 7-pixel causal window
//! (6 texture comparisons × 8 energy levels → 512 contexts). This module
//! widens the modeling window to 8–16 causal samples spanning **two prior
//! rows plus extended left context**, quantizes each sample's deviation
//! from the primary prediction `X̂` into a 3-bit level, and hashes the
//! packed feature vector into a power-of-two number of SoA context banks
//! — the same bounded-memory discipline the hardware uses, just with a
//! hash in front of the bank address instead of a direct index
//! (cf. the Lepton hardware encoder's hashed context memory and the
//! enlarged-context modeling of trimmed-convolution arithmetic coding).
//!
//! The bank index *generalizes* the classic compound context instead of
//! replacing it: the quantized error energy keeps the top [`QE_BITS`],
//! the classic texture pattern direct-indexes below it, and the hashed
//! wide feature refines the remaining low bits ([`WideConfig::bank_of`]).
//! At `banks_log2 = 9` the partition degenerates to exactly the classic
//! 512 contexts; every extra exponent splits each of them into hashed
//! sub-banks keyed by the enlarged window. (A pure hash of the feature
//! vector measured strictly worse: it scatters semantically adjacent
//! patterns across banks, so each bank's bias estimate averages
//! unrelated contexts.)
//!
//! Only the **error-feedback context** changes: the coding contexts (the
//! 8 `QE` estimator-tree banks) and the per-pixel decision count are the
//! classic ones, so lane striping, streaming, tiling, and the grid all
//! work unchanged. The memory budget is accounted by
//! [`cbic_hw::memory::ContextBankLayout`]: the default
//! [`WideConfig`] (2¹⁰ banks) costs exactly 2× the classic store at the
//! paper's bit widths, and the largest exponent the 4× budget admits is
//! `banks_log2 = 11`.
//!
//! The wire format (container v5) pins `window = 13 samples` and the
//! multiply-shift mixer; only `banks_log2` travels in the header. The
//! other windows and the xxhash-style mixer exist for the ablation
//! harness (`cbic-bench`'s `ablate_json`), driven through
//! [`encode_measure`] and [`collision_stats`].
//!
//! # Examples
//!
//! ```
//! use cbic_core::bigctx::ModelMode;
//! use cbic_core::CodecConfig;
//! use cbic_image::corpus::CorpusImage;
//!
//! let img = CorpusImage::Lena.generate(32, 32);
//! let cfg = CodecConfig {
//!     model: ModelMode::WideHash { banks_log2: 11 },
//!     ..CodecConfig::default()
//! };
//! let bytes = cbic_core::compress(img.view(), &cfg);
//! assert_eq!(bytes[4], 5, "WideHash travels in a v5 container");
//! assert_eq!(cbic_core::decompress(&bytes)?, img);
//! # Ok::<(), cbic_core::CodecError>(())
//! ```

use crate::codec::{CodecConfig, EncodeStats};
use crate::context::texture_pattern;
use crate::engine::EncoderState;
use crate::neighborhood::Neighborhood;
use crate::predictor::{gap_predict, threshold_shift, Gradients};
use crate::remap::half_for_depth;
use cbic_arith::BinaryEncoder;
use cbic_bitio::BitWriter;
use cbic_image::ImageView;
use std::collections::HashSet;

pub use cbic_image::{ModelMode, BANKS_LOG2_RANGE};

/// The largest causal window any [`WideWindow`] selects.
pub const MAX_WIDE_SAMPLES: usize = 16;

/// Texture-pattern width the wire format (and [`collision_stats`])
/// assumes — the paper's 6 sign comparisons, `CodecConfig::default()`'s
/// `texture_bits`.
pub const DEFAULT_TEXTURE_BITS: u32 = 6;

/// The wire-format bank-count exponent (2¹⁰ banks = 2× the classic
/// context-store bytes at the paper's widths, half the 4× budget
/// ceiling — see `cbic_hw::memory::ContextBankLayout::with_contexts`).
/// One hash bit per `(QE, texture)` class measured best on the corpus:
/// more banks dilute the bias estimates faster than the extra
/// conditioning pays (see `BENCH_bpp.json`'s ablation table).
pub const DEFAULT_BANKS_LOG2: u8 = 10;

/// How many causal samples the wide window gathers.
///
/// [`WideWindow::W13`] is the wire format; the others exist for the
/// neighborhood-size axis of the ablation sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum WideWindow {
    /// 8 samples: one-column halo over two prior rows plus `W`, `WW`.
    W8,
    /// 13 samples (the wire format): two-column halo over two prior rows
    /// plus `W`, `WW`, `WWW`.
    #[default]
    W13,
    /// 16 samples: [`WideWindow::W13`] plus `WWWW`, `NWWW`, `NEEE`.
    W16,
}

/// Causal sample offsets `(dy, dx)` of each window, rows above first.
/// Every offset is strictly causal: `dy < 0`, or `dy == 0 && dx < 0`.
const OFFSETS_W8: [(i8, i8); 8] = [
    (-2, -1),
    (-2, 0),
    (-2, 1),
    (-1, -1),
    (-1, 0),
    (-1, 1),
    (0, -2),
    (0, -1),
];
const OFFSETS_W13: [(i8, i8); 13] = [
    (-2, -2),
    (-2, -1),
    (-2, 0),
    (-2, 1),
    (-2, 2),
    (-1, -2),
    (-1, -1),
    (-1, 0),
    (-1, 1),
    (-1, 2),
    (0, -3),
    (0, -2),
    (0, -1),
];
const OFFSETS_W16: [(i8, i8); 16] = [
    (-2, -2),
    (-2, -1),
    (-2, 0),
    (-2, 1),
    (-2, 2),
    (-1, -3),
    (-1, -2),
    (-1, -1),
    (-1, 0),
    (-1, 1),
    (-1, 2),
    (-1, 3),
    (0, -4),
    (0, -3),
    (0, -2),
    (0, -1),
];

impl WideWindow {
    /// The window's causal sample offsets, `(dy, dx)` with `dy ≤ 0`.
    pub fn offsets(self) -> &'static [(i8, i8)] {
        match self {
            Self::W8 => &OFFSETS_W8,
            Self::W13 => &OFFSETS_W13,
            Self::W16 => &OFFSETS_W16,
        }
    }

    /// Number of samples the window gathers.
    pub fn samples(self) -> usize {
        self.offsets().len()
    }

    /// Short label for reports (`"w8"`, `"w13"`, `"w16"`).
    pub fn label(self) -> &'static str {
        match self {
            Self::W8 => "w8",
            Self::W13 => "w13",
            Self::W16 => "w16",
        }
    }
}

/// Which 64-bit mixer maps a packed feature key onto a bank index.
///
/// Both take the **top** `banks_log2` bits of the mixed word, so every
/// input bit influences the bank for either mixer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum HashMixer {
    /// One multiply by the 64-bit golden-ratio constant (the wire
    /// format): cheapest in hardware — a single multiplier.
    #[default]
    MultiplyShift,
    /// An xxhash/murmur-style finalizer (two multiplies, three xorshifts)
    /// — the ablation's stronger-but-costlier alternative.
    XorMix,
}

impl HashMixer {
    /// Maps a feature key onto a bank index in `0..2^banks_log2`
    /// (`banks_log2 = 0` is the degenerate single bank).
    #[inline]
    pub fn bank(self, key: u64, banks_log2: u8) -> usize {
        if banks_log2 == 0 {
            return 0;
        }
        let mixed = match self {
            Self::MultiplyShift => key.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            Self::XorMix => {
                let mut k = key;
                k ^= k >> 33;
                k = k.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                k ^= k >> 33;
                k = k.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
                k ^= k >> 33;
                k
            }
        };
        (mixed >> (64 - u32::from(banks_log2))) as usize
    }

    /// Short label for reports (`"mult"`, `"xor"`).
    pub fn label(self) -> &'static str {
        match self {
            Self::MultiplyShift => "mult",
            Self::XorMix => "xor",
        }
    }
}

/// Full configuration of the wide model: window size, mixer, and bank
/// count. The default is the wire format ([`WideWindow::W13`],
/// [`HashMixer::MultiplyShift`], 2¹⁰ banks); other combinations are
/// reachable only through the ablation entry points
/// ([`encode_measure`], `PixelEngine::with_wide`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WideConfig {
    /// Causal window the feature vector is gathered from.
    pub window: WideWindow,
    /// Mixer mapping the packed feature key onto a bank index.
    pub mixer: HashMixer,
    /// Base-2 logarithm of the bank count ([`BANKS_LOG2_RANGE`]).
    pub banks_log2: u8,
}

impl Default for WideConfig {
    fn default() -> Self {
        Self {
            window: WideWindow::default(),
            mixer: HashMixer::default(),
            banks_log2: DEFAULT_BANKS_LOG2,
        }
    }
}

/// Bits of the bank index carried by the quantized error-energy class
/// (the classic model's `QE` dimension, 8 classes). The energy class
/// keeps the **top** bits of the bank index, so each class owns a
/// contiguous run of hash-refined banks — the wide model generalizes the
/// classic `(QE, texture)` compound context rather than replacing it,
/// which is what keeps its bias estimates coherent under aliasing.
pub const QE_BITS: u8 = 3;

impl WideConfig {
    /// Number of context banks (`2^banks_log2`).
    pub fn banks(self) -> usize {
        1 << self.banks_log2
    }

    /// Base-2 log of the refined banks *within* one energy class
    /// (`banks_log2 − QE_BITS`; at least 1 across [`BANKS_LOG2_RANGE`]).
    pub fn refine_log2(self) -> u8 {
        self.banks_log2 - QE_BITS
    }

    /// Texture bits the refinement direct-indexes: the classic sign
    /// pattern, capped by the refinement width.
    pub fn texture_log2(self, texture_bits: u32) -> u32 {
        texture_bits.min(u32::from(self.refine_log2()))
    }

    /// Hash bits below the texture bits (`refine_log2 − texture_log2`):
    /// the sub-banks the wide feature key is mixed into.
    pub fn hash_log2(self, texture_bits: u32) -> u32 {
        u32::from(self.refine_log2()) - self.texture_log2(texture_bits)
    }

    /// The feedback-free refinement of the bank index: the classic
    /// texture pattern direct-indexed as the upper bits, the hashed wide
    /// feature key as the lower bits. `texture` must already be capped to
    /// [`Self::texture_log2`] bits.
    #[inline]
    pub fn refine_of(self, key: u64, texture: u16, texture_bits: u32) -> usize {
        let h = self.hash_log2(texture_bits);
        (usize::from(texture) << h) | self.mixer.bank(key, h as u8)
    }

    /// Maps a feature key, energy class, and texture pattern onto the
    /// final bank index: `qe` keeps the top [`QE_BITS`], the texture
    /// pattern direct-indexes below it, and the mixer hash-refines the
    /// remaining low bits. The wide model thereby *generalizes* the
    /// classic `(QE, texture)` compound context — at `banks_log2 = 9`
    /// the partition degenerates to exactly the classic 512 contexts,
    /// and every extra exponent splits each of them into hashed
    /// sub-banks keyed by the enlarged window.
    #[inline]
    pub fn bank_of(self, key: u64, qe: usize, texture: u16, texture_bits: u32) -> usize {
        (qe << self.refine_log2()) | self.refine_of(key, texture, texture_bits)
    }

    /// The wide configuration a [`ModelMode`] selects on the wire
    /// (default window and mixer, the mode's bank count), or `None` for
    /// [`ModelMode::Classic`].
    pub fn from_mode(mode: ModelMode) -> Option<Self> {
        mode.banks_log2().map(|banks_log2| Self {
            banks_log2,
            ..Self::default()
        })
    }
}

/// The enlarged causal neighborhood: up to [`MAX_WIDE_SAMPLES`] samples
/// from the current row's left context and the two prior rows.
///
/// Boundary replication follows the classic [`Neighborhood`] discipline:
/// missing left samples replicate the nearest available left/above
/// sample, missing prior rows fall back row-by-row (row −2 → row −1 →
/// the current row's `W` → mid-gray), and horizontal overhang clamps to
/// the row ends. Prior rows are fully decoded when the current pixel is
/// coded, so the clamp is causal on both sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WideNeighborhood {
    samples: [u16; MAX_WIDE_SAMPLES],
    len: usize,
}

impl WideNeighborhood {
    /// Gathers the window for column `x` from the current row and up to
    /// two rows above (`None` above the image top), replicating at the
    /// boundaries.
    pub fn from_rows(
        cur: &[u16],
        n1: Option<&[u16]>,
        n2: Option<&[u16]>,
        x: usize,
        mid: u16,
        window: WideWindow,
    ) -> Self {
        let width = cur.len();
        // The classic W fallback: left neighbour, else the sample above,
        // else mid-gray — the anchor every missing-row sample degrades to.
        let w = if x >= 1 {
            cur[x - 1]
        } else if let Some(r) = n1 {
            r[x]
        } else {
            mid
        };
        let clamped = |row: &[u16], dx: i8| {
            let xi = (x as i64 + i64::from(dx)).clamp(0, width as i64 - 1);
            row[xi as usize]
        };
        let mut samples = [0u16; MAX_WIDE_SAMPLES];
        let offsets = window.offsets();
        for (slot, &(dy, dx)) in samples.iter_mut().zip(offsets) {
            *slot = match dy {
                // Current row: only columns left of x are decoded.
                0 => {
                    let k = dx.unsigned_abs() as usize;
                    if x >= k {
                        cur[x - k]
                    } else {
                        w
                    }
                }
                -1 => n1.map_or(w, |r| clamped(r, dx)),
                _ => match n2 {
                    Some(r) => clamped(r, dx),
                    None => n1.map_or(w, |r| clamped(r, dx)),
                },
            };
        }
        Self {
            samples,
            len: offsets.len(),
        }
    }

    /// The gathered samples, window order.
    pub fn samples(&self) -> &[u16] {
        &self.samples[..self.len]
    }

    /// Packs the window into a feature key: each sample's deviation from
    /// the primary prediction `x_hat`, scaled to the 8-bit range by
    /// `energy_shift` (0 at depths ≤ 8), is quantized into one of 7
    /// levels (sign plus the ±4/±16 magnitude thresholds) and packed as
    /// 3 bits — at most 48 key bits for [`WideWindow::W16`].
    ///
    /// The key depends only on the pixels and `x_hat` (never on the
    /// feedback state), so encoder and decoder compute identical keys
    /// and [`collision_stats`] measures the exact coding-time keys.
    #[inline]
    pub fn feature_key(&self, x_hat: i32, energy_shift: u32) -> u64 {
        let mut key = 0u64;
        for (i, &s) in self.samples().iter().enumerate() {
            let dq = (i32::from(s) - x_hat) >> energy_shift;
            let level: u64 = if dq < -16 {
                0
            } else if dq <= -4 {
                1
            } else if dq < 0 {
                2
            } else if dq == 0 {
                3
            } else if dq < 4 {
                4
            } else if dq < 16 {
                5
            } else {
                6
            };
            key |= level << (3 * i);
        }
        key
    }
}

/// Exact bank-collision measurements of one image under one
/// [`WideConfig`], produced by [`collision_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollisionStats {
    /// Pixels scanned.
    pub pixels: u64,
    /// Distinct feature keys the image produced.
    pub distinct_keys: u64,
    /// Hash-refined banks (within one energy class) at least one key
    /// hashed into.
    pub banks_used: u64,
    /// Total hash-refined banks (`2^refine_log2`).
    pub banks_total: u64,
}

impl CollisionStats {
    /// Fraction of banks touched by at least one key.
    pub fn occupancy(&self) -> f64 {
        if self.banks_total == 0 {
            0.0
        } else {
            self.banks_used as f64 / self.banks_total as f64
        }
    }

    /// Fraction of distinct keys that share a bank with another key
    /// (`(distinct_keys − banks_used) / distinct_keys`): the aliasing the
    /// hash introduces versus an unbounded context table.
    pub fn collision_rate(&self) -> f64 {
        if self.distinct_keys == 0 {
            0.0
        } else {
            (self.distinct_keys - self.banks_used) as f64 / self.distinct_keys as f64
        }
    }
}

/// Measures the exact feature keys and refinement-bank indices coding
/// `img` under `wide` would use, at the wire-default texture width
/// ([`DEFAULT_TEXTURE_BITS`]). The feature key, the texture pattern,
/// and hence the whole refinement ([`WideConfig::refine_of`]) are
/// feedback-free, so this scan reproduces the coding-time bank sequence
/// without running the coder; only the energy class composed on top is
/// feedback-dependent, and it partitions banks further rather than
/// merging them, so the aliasing measured here bounds the aliasing of
/// the full bank index.
pub fn collision_stats(img: ImageView<'_>, wide: WideConfig) -> CollisionStats {
    let depth = img.bit_depth();
    let shift = threshold_shift(depth);
    let mid = half_for_depth(depth) as u16;
    let (width, height) = img.dimensions();
    let mut keys: HashSet<u64> = HashSet::new();
    let mut hit = vec![false; 1 << wide.refine_log2()];
    for y in 0..height {
        let cur = img.row(y);
        let n1 = (y >= 1).then(|| img.row(y - 1));
        let n2 = (y >= 2).then(|| img.row(y - 2));
        for x in 0..width {
            let nb = Neighborhood::from_rows(cur, n1, n2, x, mid);
            let x_hat = gap_predict(&nb, Gradients::compute(&nb), depth);
            let t = texture_pattern(&nb, x_hat, wide.texture_log2(DEFAULT_TEXTURE_BITS));
            let wn = WideNeighborhood::from_rows(cur, n1, n2, x, mid, wide.window);
            let key = wn.feature_key(x_hat, shift);
            keys.insert(key);
            hit[wide.refine_of(key, t, DEFAULT_TEXTURE_BITS)] = true;
        }
    }
    CollisionStats {
        pixels: (width * height) as u64,
        distinct_keys: keys.len() as u64,
        banks_used: hit.iter().filter(|&&b| b).count() as u64,
        banks_total: 1 << wide.refine_log2(),
    }
}

/// Runs a real encoding pass of `img` under an arbitrary [`WideConfig`]
/// (any window/mixer/bank combination, not just the wire format) and
/// returns the statistics — the ablation harness's measurement primitive.
/// `cfg.model` is ignored; `wide` wins.
pub fn encode_measure(img: ImageView<'_>, cfg: &CodecConfig, wide: WideConfig) -> EncodeStats {
    let mut state = EncoderState::with_wide(img.width(), img.bit_depth(), cfg, wide);
    let mut enc = BinaryEncoder::new(BitWriter::new());
    state.encode_view(img, &mut enc);
    let (width, height) = img.dimensions();
    let decisions = enc.decisions();
    let coded_decisions = enc.coded_decisions();
    let payload_bits = enc.bits_written();
    let coder_stats = state.coder_stats();
    let writer = enc.finish();
    EncodeStats {
        pixels: (width * height) as u64,
        payload_bits: payload_bits.max(writer.bits_written()),
        escapes: coder_stats.escapes,
        estimator_rescales: coder_stats.rescales,
        context_halvings: state.halvings(),
        decisions,
        coded_decisions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbic_image::corpus::CorpusImage;
    use cbic_image::Image;

    #[test]
    fn windows_are_causal_and_sized() {
        for window in [WideWindow::W8, WideWindow::W13, WideWindow::W16] {
            assert_eq!(window.offsets().len(), window.samples());
            assert!(window.samples() <= MAX_WIDE_SAMPLES);
            for &(dy, dx) in window.offsets() {
                assert!(
                    dy < 0 || (dy == 0 && dx < 0),
                    "{:?}: ({dy},{dx}) is not causal",
                    window
                );
            }
        }
        assert_eq!(WideWindow::W8.samples(), 8);
        assert_eq!(WideWindow::W13.samples(), 13);
        assert_eq!(WideWindow::W16.samples(), 16);
    }

    #[test]
    fn interior_window_reads_exact_pixels() {
        let img = Image::from_fn(8, 8, |x, y| (y * 8 + x) as u8);
        let (cur, n1, n2) = (img.row(4), Some(img.row(3)), Some(img.row(2)));
        let wn = WideNeighborhood::from_rows(cur, n1, n2, 4, 128, WideWindow::W13);
        let expect: Vec<u16> = OFFSETS_W13
            .iter()
            .map(|&(dy, dx)| {
                let yy = (4 + i64::from(dy)) as usize;
                let xx = (4 + i64::from(dx)) as usize;
                img.row(yy)[xx]
            })
            .collect();
        assert_eq!(wn.samples(), &expect[..]);
    }

    #[test]
    fn boundary_replication_degrades_to_mid() {
        // Very first pixel: no rows above, no left context.
        let cur = [7u16, 9, 11];
        let wn = WideNeighborhood::from_rows(&cur, None, None, 0, 128, WideWindow::W13);
        assert!(wn.samples().iter().all(|&s| s == 128));
        // Second pixel of the first row: everything replicates W.
        let wn = WideNeighborhood::from_rows(&cur, None, None, 1, 128, WideWindow::W16);
        assert!(wn.samples().iter().all(|&s| s == 7));
    }

    #[test]
    fn right_edge_clamps_instead_of_overruns() {
        let cur = [1u16, 2, 3];
        let above = [10u16, 20, 30];
        let wn = WideNeighborhood::from_rows(&cur, Some(&above), None, 2, 128, WideWindow::W13);
        // NE/NEE clamp to the last column of the row above.
        assert!(wn.samples().contains(&30));
        assert!(!wn.samples().contains(&0));
    }

    #[test]
    fn feature_key_levels_cover_and_fit() {
        let mut wn = WideNeighborhood {
            samples: [0; MAX_WIDE_SAMPLES],
            len: MAX_WIDE_SAMPLES,
        };
        // Samples spanning every quantizer level around x_hat = 100.
        let deltas = [-100i32, -16, -4, -1, 0, 1, 3, 4, 15, 16, 100, 0, 0, 0, 0, 0];
        for (slot, d) in wn.samples.iter_mut().zip(deltas) {
            *slot = (100 + d) as u16;
        }
        let key = wn.feature_key(100, 0);
        assert!(key < 1 << (3 * MAX_WIDE_SAMPLES), "48-bit key");
        let levels: Vec<u64> = (0..MAX_WIDE_SAMPLES)
            .map(|i| (key >> (3 * i)) & 7)
            .collect();
        assert_eq!(&levels[..11], &[0, 1, 1, 2, 3, 4, 4, 5, 5, 6, 6]);
        // Deep samples scale the deviation back to the 8-bit range.
        let shallow = wn.feature_key(100, 0);
        let deep = wn.feature_key(100, 4);
        assert_ne!(shallow, deep);
    }

    #[test]
    fn mixers_cover_the_bank_range() {
        for mixer in [HashMixer::MultiplyShift, HashMixer::XorMix] {
            let mut hit = vec![false; 1 << 8];
            for key in 0..4096u64 {
                let bank = mixer.bank(key * 0x0123_4567, 8);
                assert!(bank < 256);
                hit[bank] = true;
            }
            let used = hit.iter().filter(|&&b| b).count();
            assert!(used > 200, "{:?} used only {used}/256 banks", mixer);
        }
    }

    #[test]
    fn collision_stats_are_consistent() {
        let img = CorpusImage::Barb.generate(48, 48);
        let stats = collision_stats(img.view(), WideConfig::default());
        assert_eq!(stats.pixels, 48 * 48);
        assert!(stats.banks_used <= stats.distinct_keys);
        assert!(stats.banks_used <= stats.banks_total);
        assert!(stats.distinct_keys <= stats.pixels);
        assert!((0.0..=1.0).contains(&stats.occupancy()));
        assert!((0.0..=1.0).contains(&stats.collision_rate()));
        // More banks can only reduce aliasing.
        let big = collision_stats(
            img.view(),
            WideConfig {
                banks_log2: 14,
                ..WideConfig::default()
            },
        );
        assert!(big.collision_rate() <= stats.collision_rate());
    }

    #[test]
    fn encode_measure_matches_container_payload_mode() {
        // The wire-format WideConfig must measure the same decisions the
        // container path codes.
        let img = CorpusImage::Lena.generate(32, 32);
        let cfg = CodecConfig {
            model: ModelMode::WideHash {
                banks_log2: DEFAULT_BANKS_LOG2,
            },
            ..CodecConfig::default()
        };
        let stats = encode_measure(img.view(), &cfg, WideConfig::default());
        let (_, raw_stats) = crate::codec::encode_raw(img.view(), &cfg);
        assert_eq!(stats.payload_bits, raw_stats.payload_bits);
        assert_eq!(stats.decisions, raw_stats.decisions);
    }

    #[test]
    fn wide_roundtrips_and_differs_from_classic() {
        let img = CorpusImage::Mandrill.generate(40, 40);
        let classic = CodecConfig::default();
        let wide = CodecConfig {
            model: ModelMode::WideHash { banks_log2: 11 },
            ..classic
        };
        let (classic_bytes, _) = crate::codec::encode_raw(img.view(), &classic);
        let (wide_bytes, _) = crate::codec::encode_raw(img.view(), &wide);
        assert_ne!(classic_bytes, wide_bytes, "the mode must change the bits");
        let back = crate::codec::decode_raw(&wide_bytes, 40, 40, 8, &wide);
        assert_eq!(back, img);
    }

    #[test]
    fn wide_roundtrips_across_depths_and_windows() {
        for depth in [1u8, 4, 8, 12, 16] {
            let max = if depth == 16 {
                u16::MAX as u32
            } else {
                (1u32 << depth) - 1
            };
            let img = Image::from_fn16(19, 13, depth, |x, y| {
                ((x as u32 * 977 + y as u32 * 3301) % (max + 1)) as u16
            });
            for window in [WideWindow::W8, WideWindow::W13, WideWindow::W16] {
                for mixer in [HashMixer::MultiplyShift, HashMixer::XorMix] {
                    let wide = WideConfig {
                        window,
                        mixer,
                        banks_log2: 9,
                    };
                    let stats = encode_measure(img.view(), &CodecConfig::default(), wide);
                    assert!(stats.payload_bits > 0, "depth {depth} {window:?} {mixer:?}");
                }
            }
            let cfg = CodecConfig {
                model: ModelMode::WideHash { banks_log2: 9 },
                ..CodecConfig::default()
            };
            let (bytes, _) = crate::codec::encode_raw(img.view(), &cfg);
            let back = crate::codec::decode_raw(&bytes, 19, 13, depth, &cfg);
            assert_eq!(back, img, "depth {depth}");
        }
    }
}
